package core

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/metrics"
)

// NoTx is the sentinel for "no dynamic transaction" in waiting-on fields
// and CPU tables.
const NoTx = -1

// Config parameterizes a BFGTS runtime instance.
type Config struct {
	NumThreads int // N: OS threads (64 in the paper's setup)
	NumStatic  int // M: static transactions declared in the code

	BloomBits   int  // signature size, 512–8192 in the paper's sweep
	BloomHashes int  // hash functions per signature
	Perfect     bool // use exact sets instead of Bloom filters (NoOverhead)

	// ConfThreshold is the confidence above which a predicted conflict
	// serializes the transaction (the hardware predictor's threshold
	// register).
	ConfThreshold float64
	// IncVal scales confidence increments (weighted by similarity,
	// Example 3); DecayVal scales decrements (weighted by 1−similarity,
	// Example 2).
	IncVal   float64
	DecayVal float64

	// SmallTxLines is the average read/write-set size (in cache lines) at
	// or below which a transaction counts as "small": similarity updates
	// are batched for small transactions, and a predicted conflict with a
	// small transaction spin-stalls rather than yielding (Example 2).
	SmallTxLines float64
	// SimInterval updates similarity for small transactions only once
	// every this many commits (Section 5.3.2; 20 in the headline results).
	SimInterval int

	// AliasBuckets, when non-zero, folds sTxIDs modulo this value in the
	// confidence table and dTxIDs in the statistics arrays — the paper's
	// "future work" aliasing scheme for unbounded transactional codes.
	AliasBuckets int
}

// DefaultConfig returns the configuration used for the headline results:
// 2048-bit filters, similarity interval 20, small-transaction threshold of
// 10 cache lines (Section 5.2.1).
func DefaultConfig(nThreads, nStatic int) Config {
	return Config{
		NumThreads:    nThreads,
		NumStatic:     nStatic,
		BloomBits:     2048,
		BloomHashes:   bloom.DefaultHashes,
		ConfThreshold: 0.30,
		IncVal:        0.50,
		DecayVal:      0.10,
		SmallTxLines:  10,
		SimInterval:   20,
	}
}

// txStats is one entry of the Tx Statistics Array (Figure 3): kept per
// dTxID encountered at runtime.
type txStats struct {
	avgSize    float64 // historical average read/write-set size in lines
	sim        float64 // similarity EWMA
	waitingOn  int     // dTxID this transaction serialized behind, or NoTx
	commits    int64
	sinceSim   int  // commits since the last similarity update
	hasHistory bool // a previous signature exists in the Bloom table
}

// runtimeMetrics caches the instruments the scheduling routines record
// into. All fields are nil (and every record call a no-op) until
// SetMetrics is called with a live registry.
type runtimeMetrics struct {
	confInc    *metrics.Counter // confidence-table increments
	confDec    *metrics.Counter // confidence-table decrements
	incWeight  *metrics.Summary // similarity weights of increments (Example 3)
	decWeight  *metrics.Summary // 1−similarity weights of decays (Example 2)
	validHits  *metrics.Counter // commit validations confirming overlap
	validMiss  *metrics.Counter // commit validations refuting overlap
	simUpdates *metrics.Counter // similarity calculations actually run
	similarity *metrics.Summary // post-update similarity EWMA values
	fill       *metrics.Summary // Bloom signature fill ratio at build time
}

// Runtime is the BFGTS software runtime state: confidence tables,
// statistics arrays and the Bloom-filter table (Figure 3).
type Runtime struct {
	cfg  Config
	cost CostModel
	met  runtimeMetrics

	// conf is the confidence table, M×M between static transaction IDs
	// (the paper's key compression over PTS's per-dTxID table).
	conf []float64
	// stats and sigs are indexed by dTxID = thread*M + sTxID. sigs holds
	// the full read/write-set signature (similarity, Eq. 4); wsigs holds
	// the write-set-only signature used by commit validation, because a
	// "conflict would have happened" requires a write on at least one
	// side — intersecting two full R/W sets would count read-read sharing
	// of hot read-only structures as phantom conflicts.
	stats []txStats
	sigs  []bloom.Signature
	wsigs []bloom.Signature

	// sigFree recycles signatures displaced from sigs/wsigs by a newer
	// commit, so steady-state commit bookkeeping allocates nothing.
	sigFree []bloom.Signature

	// suspectBuf is the reusable backing store of SuspectStatics, sized
	// to the confidence table's axis so suspect collection never grows it.
	suspectBuf []uint64
}

// NewRuntime allocates a runtime for the given configuration and cost
// model.
func NewRuntime(cfg Config, cost CostModel) *Runtime {
	if cfg.NumThreads <= 0 || cfg.NumStatic <= 0 {
		panic("core: runtime needs positive thread and static-transaction counts")
	}
	if cfg.SimInterval <= 0 {
		cfg.SimInterval = 1
	}
	m := cfg.confDim()
	n := cfg.NumThreads * cfg.statDim()
	r := &Runtime{
		cfg:        cfg,
		cost:       cost,
		conf:       make([]float64, m*m),
		stats:      make([]txStats, n),
		sigs:       make([]bloom.Signature, n),
		wsigs:      make([]bloom.Signature, n),
		suspectBuf: make([]uint64, 0, m),
	}
	for i := range r.stats {
		r.stats[i].waitingOn = NoTx
		// Similarity starts neutral: with no history, neither the
		// fast-decay (dissimilar) nor the slow-decay (similar) regime is
		// justified, and small transactions may not update similarity for
		// many commits (Section 5.3.2's batching).
		r.stats[i].sim = 0.5
	}
	return r
}

// SetMetrics points the runtime's instrumentation at a registry. A nil
// registry yields nil instruments, whose record methods short-circuit, so
// calling this unconditionally keeps the disabled path allocation-free.
func (r *Runtime) SetMetrics(reg *metrics.Registry) {
	r.met = runtimeMetrics{
		confInc:    reg.Counter("core.conf.inc"),
		confDec:    reg.Counter("core.conf.dec"),
		incWeight:  reg.Summary("core.conf.inc_weight"),
		decWeight:  reg.Summary("core.conf.dec_weight"),
		validHits:  reg.Counter("core.validation.hits"),
		validMiss:  reg.Counter("core.validation.misses"),
		simUpdates: reg.Counter("core.sim_updates"),
		similarity: reg.Summary("core.similarity"),
		fill:       reg.Summary("bloom.fill_ratio"),
	}
}

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Costs returns the runtime's cost model.
func (r *Runtime) Costs() CostModel { return r.cost }

// confDim is the per-axis size of the confidence table after aliasing.
func (c Config) confDim() int {
	if c.AliasBuckets > 0 && c.AliasBuckets < c.NumStatic {
		return c.AliasBuckets
	}
	return c.NumStatic
}

// statDim is the number of per-thread statistics slots after aliasing.
func (c Config) statDim() int {
	return c.confDim()
}

// confIdx folds a static ID per the aliasing configuration.
func (c Config) confIdx(stx int) int {
	d := c.confDim()
	if stx >= d {
		return stx % d
	}
	return stx
}

// FoldStx exposes the confidence-table folding of a static ID — the
// identity key the Bloofi directory indexes a running transaction under,
// so that leaf-level key equality coincides exactly with confidence-cell
// equality.
func (c Config) FoldStx(stx int) int { return c.confIdx(stx) }

// ConfDim exposes the per-axis confidence-table size: the number of
// distinct folded static IDs, and therefore an upper bound on the size of
// any begin-time suspect set.
func (c Config) ConfDim() int { return c.confDim() }

// DTx builds a dynamic transaction ID from a thread and static ID. This is
// the paper's concatenation of thread ID and sTxID.
func (c Config) DTx(thread, stx int) int { return thread*c.NumStatic + stx }

// SplitDTx recovers (thread, sTxID) from a dynamic ID; this is the shift
// register of the hardware predictor.
func (c Config) SplitDTx(dtx int) (thread, stx int) {
	return dtx / c.NumStatic, dtx % c.NumStatic
}

// dtxSlot maps a dynamic ID to its statistics slot, applying aliasing.
func (r *Runtime) dtxSlot(dtx int) int {
	th, stx := r.cfg.SplitDTx(dtx)
	return th*r.cfg.statDim() + r.cfg.confIdx(stx)
}

// Conf returns the confidence that static transactions a and b conflict.
func (r *Runtime) Conf(a, b int) float64 {
	d := r.cfg.confDim()
	return r.conf[r.cfg.confIdx(a)*d+r.cfg.confIdx(b)]
}

// SuspectStatics returns the folded static IDs whose learned confidence
// against stx clears the threshold, in ascending order — the exact set a
// begin-time linear scan tests every running transaction's static ID
// against. The returned slice aliases an internal buffer valid until the
// next call.
//
//bfgts:allocfree
func (r *Runtime) SuspectStatics(stx int) []uint64 {
	d := r.cfg.confDim()
	base := r.cfg.confIdx(stx) * d
	r.suspectBuf = r.suspectBuf[:0]
	for k := 0; k < d; k++ {
		if r.conf[base+k] > r.cfg.ConfThreshold {
			r.suspectBuf = append(r.suspectBuf, uint64(k))
		}
	}
	return r.suspectBuf
}

func (r *Runtime) addConf(a, b int, delta float64) {
	d := r.cfg.confDim()
	i := r.cfg.confIdx(a)*d + r.cfg.confIdx(b)
	v := r.conf[i] + delta
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	r.conf[i] = v
	if delta >= 0 {
		r.met.confInc.Inc()
	} else {
		r.met.confDec.Inc()
	}
}

// MeanConf returns the mean confidence across the whole table — the
// phase-dynamics signal the time-series sampler records (high mean =
// serialized phase, low mean = optimistic phase).
func (r *Runtime) MeanConf() float64 {
	if len(r.conf) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.conf {
		sum += v
	}
	return sum / float64(len(r.conf))
}

// Similarity returns the similarity EWMA of a dynamic transaction.
func (r *Runtime) Similarity(dtx int) float64 { return r.stats[r.dtxSlot(dtx)].sim }

// AvgSize returns the historical average read/write-set size of a dynamic
// transaction, in cache lines.
func (r *Runtime) AvgSize(dtx int) float64 { return r.stats[r.dtxSlot(dtx)].avgSize }

// WaitingOn returns the dTxID this transaction last serialized behind, or
// NoTx.
func (r *Runtime) WaitingOn(dtx int) int { return r.stats[r.dtxSlot(dtx)].waitingOn }

// ConfidenceTableBytes reports the memory footprint of the confidence
// table at one byte per entry, as the paper sizes it ("a maximum size of
// 800 bytes for the benchmarks tested" — per-CPU copies not included).
func (r *Runtime) ConfidenceTableBytes() int {
	d := r.cfg.confDim()
	return d * d
}

func (r *Runtime) newSignature() bloom.Signature {
	if r.cfg.Perfect {
		return bloom.NewExactSet()
	}
	return bloom.NewFilter(r.cfg.BloomBits, r.cfg.BloomHashes)
}

// getSignature returns an empty signature, reusing a recycled one when
// available.
func (r *Runtime) getSignature() bloom.Signature {
	if n := len(r.sigFree); n > 0 {
		s := r.sigFree[n-1]
		r.sigFree[n-1] = nil
		r.sigFree = r.sigFree[:n-1]
		s.Reset()
		return s
	}
	return r.newSignature()
}

// putSignature recycles a signature no longer referenced by the tables.
func (r *Runtime) putSignature(s bloom.Signature) {
	if s != nil {
		r.sigFree = append(r.sigFree, s)
	}
}

func (r *Runtime) String() string {
	return fmt.Sprintf("bfgts.Runtime(M=%d, N=%d, bloom=%db, thresh=%.2f)",
		r.cfg.NumStatic, r.cfg.NumThreads, r.cfg.BloomBits, r.cfg.ConfThreshold)
}
