package core

import "sync/atomic"

// SharedConf is a confidence table safe for concurrent use: the real STM's
// rendering of the paper's per-CPU confidence-table copies. In hardware,
// each CPU snoops broadcast updates into a private copy so the begin-time
// scan reads local registers; under the Go memory model the equivalent is
// one shared table of word-sized cells read with atomic loads (no lock,
// no inter-scan coordination) and updated with bounded compare-and-swap.
//
// Confidence values live in [0, 1] and are stored as 16.16 fixed point, so
// a cell is one aligned 32-bit word: begin-time prediction costs exactly
// one atomic load per running transaction, mirroring the single table
// lookup per CPU-table entry of the hardware scan (Example 1).
//
// Aliasing (the fold of static IDs into a bounded table, Config.AliasBuckets)
// is honored the same way as Runtime's sequential table.
type SharedConf struct {
	dim   int
	cells []atomic.Uint32

	// incs/decs count clamped updates for the metrics snapshot.
	incs, decs atomic.Int64
}

// confFixedOne is 1.0 in the table's 16.16 fixed-point encoding.
const confFixedOne = 1 << 16

// NewSharedConf allocates a concurrent confidence table for numStatic
// static transactions, folded into aliasBuckets cells per axis when
// 0 < aliasBuckets < numStatic.
func NewSharedConf(numStatic, aliasBuckets int) *SharedConf {
	if numStatic <= 0 {
		panic("core: SharedConf needs a positive static-transaction count")
	}
	dim := numStatic
	if aliasBuckets > 0 && aliasBuckets < numStatic {
		dim = aliasBuckets
	}
	return &SharedConf{
		dim:   dim,
		cells: make([]atomic.Uint32, dim*dim),
	}
}

// Dim returns the per-axis size of the table after aliasing.
func (c *SharedConf) Dim() int { return c.dim }

// Fold returns the cell index a static ID aliases to, letting callers
// detect when two IDs share a cell (e.g. to avoid double-pumping a
// symmetric update).
//
//bfgts:allocfree
func (c *SharedConf) Fold(stx int) int { return c.idx(stx) }

// idx folds a static ID per the aliasing configuration.
//
//bfgts:allocfree
func (c *SharedConf) idx(stx int) int {
	if stx >= c.dim {
		return stx % c.dim
	}
	return stx
}

// Load returns the confidence that static transactions a and b conflict.
// One atomic load — the begin-time scan's per-entry cost.
//
//bfgts:allocfree
func (c *SharedConf) Load(a, b int) float64 {
	return float64(c.cells[c.idx(a)*c.dim+c.idx(b)].Load()) / confFixedOne
}

// Add folds delta into the (a, b) cell, clamped to [0, 1], retrying the
// compare-and-swap under contention. Lost-update-free: concurrent
// increments from different aborting workers all land.
//
//bfgts:allocfree
func (c *SharedConf) Add(a, b int, delta float64) {
	cell := &c.cells[c.idx(a)*c.dim+c.idx(b)]
	d := int64(delta * confFixedOne)
	for {
		old := cell.Load()
		v := int64(old) + d
		if v < 0 {
			v = 0
		} else if v > confFixedOne {
			v = confFixedOne
		}
		if cell.CompareAndSwap(old, uint32(v)) {
			break
		}
	}
	if delta >= 0 {
		c.incs.Add(1)
	} else {
		c.decs.Add(1)
	}
}

// SuspectsInto appends to buf the folded static IDs whose confidence
// against stx clears threshold, in ascending order — the begin-time
// suspect set the Bloofi directory is probed with. One atomic load per
// cell, same row walk a begin-time scan performs per entry, done once.
// The strict fixed-point comparison matches Load(...) > threshold cell
// for cell. Callers pass a reused buffer with capacity >= Dim() so the
// scan never allocates.
//
//bfgts:allocfree
func (c *SharedConf) SuspectsInto(stx int, threshold float64, buf []uint64) []uint64 {
	base := c.idx(stx) * c.dim
	limit := uint32(threshold * confFixedOne)
	for k := 0; k < c.dim; k++ {
		if c.cells[base+k].Load() > limit {
			buf = append(buf, uint64(k))
		}
	}
	return buf
}

// Mean returns the mean confidence across the table — the phase-dynamics
// signal (high mean = serialized phase, low mean = optimistic phase).
func (c *SharedConf) Mean() float64 {
	if len(c.cells) == 0 {
		return 0
	}
	var sum float64
	for i := range c.cells {
		sum += float64(c.cells[i].Load())
	}
	return sum / confFixedOne / float64(len(c.cells))
}

// Updates reports the clamped increment and decrement counts applied so
// far, for metrics snapshots.
func (c *SharedConf) Updates() (incs, decs int64) {
	return c.incs.Load(), c.decs.Load()
}
