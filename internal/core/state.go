package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// State is a portable snapshot of a BFGTS runtime's learned scheduling
// knowledge: the confidence table plus per-dTxID statistics (similarity
// and average size). Bloom-filter contents are deliberately excluded —
// they describe the *last* execution, which is stale by definition across
// runs — so a warm-started runtime re-seeds signatures on first commit but
// predicts from day one.
//
// Persisting state lets a deployment skip the learning phase ("warm
// start"); the abl-warmstart experiment quantifies what that is worth.
type State struct {
	NumStatic  int       `json:"num_static"`
	NumThreads int       `json:"num_threads"`
	Conf       []float64 `json:"conf"`
	Sims       []float64 `json:"sims"`
	AvgSizes   []float64 `json:"avg_sizes"`
}

// ExportState snapshots the runtime's learned knowledge.
func (r *Runtime) ExportState() *State {
	s := &State{
		NumStatic:  r.cfg.NumStatic,
		NumThreads: r.cfg.NumThreads,
		Conf:       append([]float64(nil), r.conf...),
		Sims:       make([]float64, len(r.stats)),
		AvgSizes:   make([]float64, len(r.stats)),
	}
	for i := range r.stats {
		s.Sims[i] = r.stats[i].sim
		s.AvgSizes[i] = r.stats[i].avgSize
	}
	return s
}

// ImportState overwrites the runtime's learned knowledge from a snapshot.
// The snapshot's shape must match the runtime's configuration.
func (r *Runtime) ImportState(s *State) error {
	if s.NumStatic != r.cfg.NumStatic || s.NumThreads != r.cfg.NumThreads {
		return fmt.Errorf("core: state shape (%d static, %d threads) does not match runtime (%d, %d)",
			s.NumStatic, s.NumThreads, r.cfg.NumStatic, r.cfg.NumThreads)
	}
	if len(s.Conf) != len(r.conf) || len(s.Sims) != len(r.stats) || len(s.AvgSizes) != len(r.stats) {
		return fmt.Errorf("core: state arrays do not match runtime dimensions")
	}
	copy(r.conf, s.Conf)
	for i := range r.stats {
		r.stats[i].sim = clampUnit(s.Sims[i])
		if s.AvgSizes[i] >= 0 {
			r.stats[i].avgSize = s.AvgSizes[i]
		}
		if r.stats[i].avgSize > 0 {
			// A warm-started slot has meaningful history even though its
			// signature is gone; the first commit will re-seed it.
			r.stats[i].commits = 1
		}
	}
	return nil
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// WriteJSON serializes the state.
func (s *State) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadState deserializes a state snapshot.
func ReadState(r io.Reader) (*State, error) {
	var s State
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
