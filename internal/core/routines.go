package core

import (
	"repro/internal/bloofi"
	"repro/internal/bloom"
)

// This file implements the BFGTS scheduling subroutines of Section 4.2.2,
// mirroring the paper's pseudo-code:
//
//	Example 1 — the begin-time prediction scan (software flavor here; the
//	            hardware-accelerated flavor lives in internal/hwaccel)
//	Example 2 — suspendTx: a predicted conflict serializes the transaction
//	Example 3 — txConflict: an abort strengthens the confidence of future
//	            conflict, weighted by similarity
//	Example 4 — commitTx / updateBloom / calcSim: commit-time bookkeeping
//
// Each routine returns the modeled cycle cost alongside its result.

// Prediction is the outcome of the begin-time scan.
type Prediction struct {
	// Conflict predicts the transaction would conflict with WaitDTx if it
	// started now; the caller should serialize behind WaitDTx.
	Conflict bool
	WaitDTx  int
	// Cycles is the cost of forming the prediction.
	Cycles int64
}

// PredictSW is Example 1 executed in software (BFGTS-SW): scan the CPU
// table, look up the confidence between the beginning transaction's static
// ID and each running transaction's static ID, and serialize if any exceeds
// the threshold. cpuTable holds the dTxID running on each CPU, or NoTx;
// selfCPU is skipped.
func (r *Runtime) PredictSW(stx int, cpuTable []int, selfCPU int) Prediction {
	p := Prediction{WaitDTx: NoTx}
	for cpu, dtx := range cpuTable {
		if cpu == selfCPU || dtx == NoTx {
			continue
		}
		_, otherStx := r.cfg.SplitDTx(dtx)
		if r.Conf(stx, otherStx) > r.cfg.ConfThreshold {
			p.Conflict = true
			p.WaitDTx = dtx
			break
		}
	}
	p.Cycles = r.cost.flat(r.cost.Call + int64(len(cpuTable))*r.cost.ScanEntry)
	return p
}

// PredictDir is Example 1 answered through a Bloofi directory over the CPU
// table instead of a linear walk. The probe's tree must hold, for every
// occupied CPU slot, the folded static ID (FoldStx) of the transaction
// running there. The suspect set is computed exactly from the confidence
// table, the directory surfaces the occupied slots holding a suspect key
// in ascending slot order, and each candidate is re-checked against the
// authoritative confidence cell — so the outcome (and the first match
// chosen) is identical to PredictSW's scan, while the host-side work is
// O(log n) in sparse-conflict regimes.
//
// The modeled cycle cost is deliberately the same flat formula as
// PredictSW: the paper's software scan walks the whole CPU table, and the
// directory is a host-side indexing strategy, not a change to the modeled
// machine.
//
//bfgts:allocfree
func (r *Runtime) PredictDir(stx int, cpuTable []int, selfCPU int, probe *bloofi.Probe) Prediction {
	p := Prediction{WaitDTx: NoTx}
	probe.Reset(r.SuspectStatics(stx))
	for {
		cpu, ok := probe.Next()
		if !ok {
			break
		}
		if cpu == selfCPU {
			continue
		}
		dtx := cpuTable[cpu]
		if dtx == NoTx {
			continue
		}
		_, otherStx := r.cfg.SplitDTx(dtx)
		if r.Conf(stx, otherStx) > r.cfg.ConfThreshold {
			p.Conflict = true
			p.WaitDTx = dtx
			break
		}
	}
	p.Cycles = r.cost.flat(r.cost.Call + int64(len(cpuTable))*r.cost.ScanEntry)
	return p
}

// SuspendDecision tells the runner how to serialize a predicted conflict.
type SuspendDecision struct {
	// Yield reports that the transaction being waited on is historically
	// large, so the thread should pthread_yield rather than spin-stall
	// (Example 2's avgTxSize >= SMALL_TX_SIZE branch).
	Yield  bool
	Cycles int64
}

// SuspendTx is Example 2: record the serialization, decay the confidence
// between the two static IDs (weighted by 1−similarity so dissimilar pairs
// return to optimistic scheduling quickly), and decide between yielding and
// spin-stalling based on the waited-on transaction's average size.
func (r *Runtime) SuspendTx(dtx, dtxSusp int) SuspendDecision {
	self, susp := &r.stats[r.dtxSlot(dtx)], &r.stats[r.dtxSlot(dtxSusp)]
	sim := 0.5 * (self.sim + susp.sim)
	decay := r.cfg.DecayVal * (1 - sim)
	_, stx := r.cfg.SplitDTx(dtx)
	_, stxSusp := r.cfg.SplitDTx(dtxSusp)
	r.met.decWeight.Observe(1 - sim)
	r.addConf(stx, stxSusp, -decay)
	self.waitingOn = dtxSusp
	return SuspendDecision{
		Yield:  susp.avgSize >= r.cfg.SmallTxLines,
		Cycles: r.cost.flat(r.cost.Call + r.cost.ConfUpdate + 4*r.cost.WordOp),
	}
}

// TxConflict is Example 3, called when a transaction aborts after a real
// conflict: strengthen the confidence of future conflict between the two
// static IDs in both directions, weighted by the pair's average similarity
// so persistent (high-similarity) conflicts saturate quickly.
func (r *Runtime) TxConflict(dtx, dtxConf int) (cycles int64) {
	a, b := &r.stats[r.dtxSlot(dtx)], &r.stats[r.dtxSlot(dtxConf)]
	sim := 0.5 * (a.sim + b.sim)
	inc := r.cfg.IncVal * sim
	if inc < r.cfg.IncVal*0.30 {
		// Even fully dissimilar transactions did conflict; learn slowly
		// rather than not at all, or dense transient contention (the
		// Delaunay pattern) never registers.
		inc = r.cfg.IncVal * 0.30
	}
	_, stx := r.cfg.SplitDTx(dtx)
	_, stxConf := r.cfg.SplitDTx(dtxConf)
	r.met.incWeight.Observe(sim)
	r.addConf(stx, stxConf, inc)
	if r.cfg.confIdx(stx) != r.cfg.confIdx(stxConf) {
		// Self-conflicting classes share one table cell; incrementing it
		// twice would double-pump their confidence.
		r.addConf(stxConf, stx, inc)
	}
	return r.cost.flat(r.cost.Call + 2*r.cost.ConfUpdate + 4*r.cost.WordOp)
}

// CommitResult reports what commit-time bookkeeping cost and computed.
type CommitResult struct {
	Cycles int64
	// SimUpdated reports whether the similarity calculation ran (it is
	// batched for small transactions, Section 5.3.2).
	SimUpdated bool
	// Similarity is the post-update similarity EWMA of the transaction.
	Similarity float64
}

// CommitTx is Example 4: update the average transaction size, fold the
// just-committed read/write set into the Bloom-filter table and refresh the
// similarity EWMA (possibly batched for small transactions), and — if this
// execution had serialized behind another transaction — validate that
// prediction by intersecting signatures, strengthening the confidence if
// the sets truly overlapped and decaying it otherwise.
//
// lines must list the distinct cache lines of the read/write set and writes
// the written subset; size is the distinct line count. The slices are only
// read during the call (the runner passes reusable scratch buffers), and
// the displaced previous signatures are recycled, so the steady-state
// commit path performs no allocation.
func (r *Runtime) CommitTx(dtx int, lines, writes []uint64, size int) CommitResult {
	slot := r.dtxSlot(dtx)
	st := &r.stats[slot]
	cost := r.cost.Call + 2*r.cost.WordOp // updateAvgSize

	// updateAvgSize: EWMA with the same 0.5 weighting the paper uses for
	// similarity.
	if st.commits == 0 {
		st.avgSize = float64(size)
	} else {
		st.avgSize = 0.5 * (st.avgSize + float64(size))
	}
	st.commits++
	st.sinceSim++

	// Build the new signature (the hardware exposes the transaction's
	// signature register; reading it out is cheap).
	small := st.avgSize <= r.cfg.SmallTxLines
	runSim := !small || st.sinceSim >= r.cfg.SimInterval

	res := CommitResult{}
	if runSim {
		sig := r.getSignature()
		for _, a := range lines {
			sig.Add(a)
		}
		wsig := r.getSignature()
		for _, a := range writes {
			wsig.Add(a)
		}
		if r.met.fill != nil {
			if f, ok := sig.(*bloom.Filter); ok {
				r.met.fill.Observe(f.FillRatio())
			}
		}
		if st.hasHistory {
			prev := r.sigs[slot]
			newSim := sig.Similarity(prev, st.avgSize)
			st.sim = 0.5 * (st.sim + newSim)
			r.met.simUpdates.Inc()
			r.met.similarity.Observe(st.sim)
			pops, logs := sig.SimilarityOps()
			// Three popcount passes + union construction + the ln calls.
			cost += int64(pops)*r.cost.Popcnt + int64(logs)*r.cost.Fyl2x +
				int64(3*sizeWords(sig))*r.cost.WordOp
		} else {
			// First execution: nothing to compare against; seed history
			// and keep the neutral similarity prior.
			st.hasHistory = true
		}
		// The displaced previous signatures have no remaining readers
		// (validation below always consults the tables, never a stashed
		// pointer) — recycle them.
		r.putSignature(r.sigs[slot])
		r.putSignature(r.wsigs[slot])
		r.sigs[slot] = sig
		r.wsigs[slot] = wsig
		st.sinceSim = 0
		res.SimUpdated = true
		// Signature construction: one hash+set per line.
		cost += int64(size) * 2 * r.cost.WordOp
	}

	// Prediction validation against the transaction we serialized behind.
	if st.waitingOn != NoTx {
		waited := st.waitingOn
		st.waitingOn = NoTx
		wslot := r.dtxSlot(waited)
		sim := 0.5 * (st.sim + r.stats[wslot].sim)
		_, stx := r.cfg.SplitDTx(dtx)
		_, wstx := r.cfg.SplitDTx(waited)
		if r.validationOverlap(slot, wslot) {
			inc := r.cfg.IncVal * sim
			if inc < r.cfg.IncVal*0.30 {
				inc = r.cfg.IncVal * 0.30 // same cold-start floor as TxConflict
			}
			r.met.validHits.Inc()
			r.met.incWeight.Observe(sim)
			r.addConf(stx, wstx, inc)
		} else {
			r.met.validMiss.Inc()
			r.met.decWeight.Observe(1 - sim)
			r.addConf(stx, wstx, -r.cfg.DecayVal*(1-sim))
		}
		cost += r.cost.ConfUpdate + int64(sizeWords(r.sigs[slot]))*r.cost.WordOp
	}

	res.Cycles = r.cost.flat(cost)
	res.Similarity = st.sim
	return res
}

// CommitTxLight is the low-pressure commit path of BFGTS-HW/Backoff
// (Section 4.3): when conflict pressure is below the threshold the Bloom
// filter calculations are skipped entirely; only the average size is
// maintained and any recorded serialization is cleared without validation.
func (r *Runtime) CommitTxLight(dtx, size int) (cycles int64) {
	st := &r.stats[r.dtxSlot(dtx)]
	if st.commits == 0 {
		st.avgSize = float64(size)
	} else {
		st.avgSize = 0.5 * (st.avgSize + float64(size))
	}
	st.commits++
	st.waitingOn = NoTx
	return r.cost.flat(r.cost.Call + 2*r.cost.WordOp)
}

// sizeWords returns the word count of a Bloom signature for cost pricing,
// and 0 for exact sets (used only under NoOverhead where costs are flat).
func sizeWords(s any) int {
	type worder interface{ Words() int }
	if w, ok := s.(worder); ok {
		return w.Words()
	}
	return 0
}

// validationOverlap implements commitTx's "intersection is not null" test
// between the committing transaction (slot) and the one it serialized
// behind (wslot): the sets truly conflict only if one side's writes meet
// the other side's read/write set.
func (r *Runtime) validationOverlap(slot, wslot int) bool {
	rw1, w1 := r.sigs[slot], r.wsigs[slot]
	rw2, w2 := r.sigs[wslot], r.wsigs[wslot]
	if rw1 == nil || rw2 == nil {
		return false
	}
	if w2 != nil && rw1.OverlapSignificant(w2) {
		return true
	}
	return w1 != nil && rw2.OverlapSignificant(w1)
}
