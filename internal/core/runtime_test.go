package core

import (
	"math"
	"testing"
	"testing/quick"
)

func testRuntime() *Runtime {
	cfg := DefaultConfig(4, 3)
	cfg.SimInterval = 1 // update similarity on every commit unless a test overrides
	cfg.SmallTxLines = 0
	return NewRuntime(cfg, DefaultCosts())
}

func TestDTxRoundTrip(t *testing.T) {
	cfg := DefaultConfig(8, 5)
	for th := 0; th < 8; th++ {
		for s := 0; s < 5; s++ {
			d := cfg.DTx(th, s)
			gt, gs := cfg.SplitDTx(d)
			if gt != th || gs != s {
				t.Fatalf("SplitDTx(DTx(%d,%d)) = (%d,%d)", th, s, gt, gs)
			}
		}
	}
}

func TestConfidenceStartsZero(t *testing.T) {
	r := testRuntime()
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if r.Conf(a, b) != 0 {
				t.Fatalf("initial Conf(%d,%d) = %v", a, b, r.Conf(a, b))
			}
		}
	}
}

func TestTxConflictRaisesConfidenceSymmetrically(t *testing.T) {
	r := testRuntime()
	d0, d1 := r.Config().DTx(0, 0), r.Config().DTx(1, 1)
	cyc := r.TxConflict(d0, d1)
	if cyc <= 0 {
		t.Fatal("TxConflict reported non-positive cost")
	}
	if r.Conf(0, 1) == 0 || r.Conf(0, 1) != r.Conf(1, 0) {
		t.Fatalf("confidence after conflict: (0,1)=%v (1,0)=%v", r.Conf(0, 1), r.Conf(1, 0))
	}
}

func TestConfidenceClamped(t *testing.T) {
	r := testRuntime()
	d0, d1 := r.Config().DTx(0, 0), r.Config().DTx(1, 1)
	for i := 0; i < 100; i++ {
		r.TxConflict(d0, d1)
	}
	if r.Conf(0, 1) > 1 {
		t.Fatalf("confidence exceeded 1: %v", r.Conf(0, 1))
	}
	for i := 0; i < 1000; i++ {
		r.SuspendTx(d0, d1)
	}
	if r.Conf(0, 1) < 0 {
		t.Fatalf("confidence went negative: %v", r.Conf(0, 1))
	}
}

func TestSuspendDecaysConfidenceAndRecordsWait(t *testing.T) {
	r := testRuntime()
	d0, d1 := r.Config().DTx(0, 0), r.Config().DTx(1, 1)
	r.TxConflict(d0, d1)
	before := r.Conf(0, 1)
	dec := r.SuspendTx(d0, d1)
	if r.Conf(0, 1) >= before {
		t.Fatalf("suspend did not decay confidence: %v -> %v", before, r.Conf(0, 1))
	}
	if r.WaitingOn(d0) != d1 {
		t.Fatalf("WaitingOn = %d, want %d", r.WaitingOn(d0), d1)
	}
	if dec.Cycles <= 0 {
		t.Fatal("suspend cost non-positive")
	}
}

func TestSuspendYieldDependsOnWaitedSize(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.SmallTxLines = 10
	cfg.SimInterval = 1
	r := NewRuntime(cfg, DefaultCosts())
	big, small := cfg.DTx(1, 0), cfg.DTx(2, 1)
	// Give `big` a large average size and `small` a tiny one via commits.
	commitWithLines(r, big, 40)
	commitWithLines(r, small, 2)

	if dec := r.SuspendTx(cfg.DTx(0, 0), big); !dec.Yield {
		t.Fatal("waiting on a large transaction should yield")
	}
	if dec := r.SuspendTx(cfg.DTx(0, 0), small); dec.Yield {
		t.Fatal("waiting on a small transaction should spin-stall")
	}
}

// testLine fabricates a cache-line address in a per-dtx region.
func testLine(dtx, i int) uint64 {
	return uint64(dtx)*0x100000 + uint64(i)*64
}

func commitWithLines(r *Runtime, dtx, n int) CommitResult {
	lines := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		lines = append(lines, testLine(dtx, i))
	}
	// Tests treat half the footprint as written.
	return r.CommitTx(dtx, lines, lines[:(n+1)/2], n)
}

func TestCommitUpdatesAvgSizeEWMA(t *testing.T) {
	r := testRuntime()
	d := r.Config().DTx(0, 0)
	commitWithLines(r, d, 10)
	if r.AvgSize(d) != 10 {
		t.Fatalf("first commit avg = %v, want 10", r.AvgSize(d))
	}
	commitWithLines(r, d, 20)
	if r.AvgSize(d) != 15 {
		t.Fatalf("second commit avg = %v, want 15 (0.5 EWMA)", r.AvgSize(d))
	}
}

func TestSimilarityHighForIdenticalSets(t *testing.T) {
	r := testRuntime()
	d := r.Config().DTx(0, 0)
	for i := 0; i < 6; i++ {
		commitWithLines(r, d, 30) // identical address list each time
	}
	if sim := r.Similarity(d); sim < 0.5 {
		t.Fatalf("similarity after repeated identical sets = %v, want high", sim)
	}
}

func TestSimilarityLowForDisjointSets(t *testing.T) {
	r := testRuntime()
	d := r.Config().DTx(0, 0)
	base := uint64(0)
	for i := 0; i < 6; i++ {
		lines := make([]uint64, 0, 30)
		for a := base; a < base+30; a++ {
			lines = append(lines, a*977) // spread lines; disjoint across commits
		}
		r.CommitTx(d, lines, lines, 30)
		base += 30
	}
	if sim := r.Similarity(d); sim > 0.25 {
		t.Fatalf("similarity for disjoint sets = %v, want near 0", sim)
	}
}

func TestSmallTxSimilarityBatching(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.SmallTxLines = 10
	cfg.SimInterval = 5
	r := NewRuntime(cfg, DefaultCosts())
	d := cfg.DTx(0, 0)
	updated := 0
	for i := 0; i < 20; i++ {
		if commitWithLines(r, d, 3).SimUpdated {
			updated++
		}
	}
	if updated > 5 {
		t.Fatalf("small tx similarity updated %d/20 times, want <= 5 with interval 5", updated)
	}
	if updated == 0 {
		t.Fatal("similarity never updated despite interval passing")
	}
}

func TestLargeTxSimilarityEveryCommit(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.SmallTxLines = 10
	cfg.SimInterval = 20
	r := NewRuntime(cfg, DefaultCosts())
	d := cfg.DTx(0, 0)
	updated := 0
	for i := 0; i < 10; i++ {
		if commitWithLines(r, d, 50).SimUpdated {
			updated++
		}
	}
	if updated != 10 {
		t.Fatalf("large tx similarity updated %d/10 times, want every commit", updated)
	}
}

func TestCommitValidatesSerializationPrediction(t *testing.T) {
	// Perfect signatures: this test checks the validation logic exactly;
	// Bloom estimator noise on small sets is covered in package bloom.
	pcfg := DefaultConfig(4, 3)
	pcfg.SimInterval = 1
	pcfg.SmallTxLines = 0
	pcfg.Perfect = true
	r := NewRuntime(pcfg, DefaultCosts())
	cfg := r.Config()
	d0, d1 := cfg.DTx(0, 0), cfg.DTx(1, 1)
	// Seed d1's signature history.
	commitWithLines(r, d1, 20)
	// d0 serialized behind d1; raise initial confidence to observe decay/growth.
	r.TxConflict(d0, d1)
	r.SuspendTx(d0, d1)
	before := r.Conf(0, 1)
	// d0 commits with the SAME lines d1 used (and writes half of them):
	// intersection non-null, confidence must rise.
	sameLines := make([]uint64, 0, 20)
	for i := 0; i < 20; i++ {
		sameLines = append(sameLines, testLine(d1, i))
	}
	r.CommitTx(d0, sameLines, sameLines[:10], 20)
	if r.Conf(0, 1) <= before {
		t.Fatalf("overlapping serialized commit did not raise confidence (%v -> %v)",
			before, r.Conf(0, 1))
	}
	if r.WaitingOn(d0) != NoTx {
		t.Fatal("waitingOn not cleared by commit")
	}

	// Now the disjoint case must decay confidence. Seed it well above zero
	// first so the decay is observable despite the clamp at 0.
	for i := 0; i < 5; i++ {
		r.TxConflict(d0, d1)
	}
	r.SuspendTx(d0, d1)
	before = r.Conf(0, 1)
	if before <= 0 {
		t.Fatal("setup failed to raise confidence above zero")
	}
	commitWithLines(r, d0, 20) // d0's own lines, disjoint from d1's
	if r.Conf(0, 1) >= before {
		t.Fatalf("disjoint serialized commit did not decay confidence (%v -> %v)",
			before, r.Conf(0, 1))
	}
}

func TestPredictSW(t *testing.T) {
	r := testRuntime()
	cfg := r.Config()
	d1 := cfg.DTx(1, 1)
	// No confidence: no conflict predicted.
	table := []int{NoTx, d1, NoTx, NoTx}
	p := r.PredictSW(0, table, 0)
	if p.Conflict {
		t.Fatal("predicted conflict with zero confidence")
	}
	if p.Cycles <= 0 {
		t.Fatal("prediction cost non-positive")
	}
	// Saturate confidence between stx 0 and stx 1.
	for i := 0; i < 20; i++ {
		r.TxConflict(cfg.DTx(0, 0), d1)
	}
	p = r.PredictSW(0, table, 0)
	if !p.Conflict || p.WaitDTx != d1 {
		t.Fatalf("prediction = %+v, want conflict with %d", p, d1)
	}
	// The predictor must skip its own CPU slot.
	p = r.PredictSW(0, []int{d1, NoTx, NoTx, NoTx}, 0)
	if p.Conflict {
		t.Fatal("predictor considered its own CPU slot")
	}
}

func TestNoOverheadCostsAreOneCycle(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	cfg.Perfect = true
	r := NewRuntime(cfg, NoOverheadCosts())
	d0, d1 := cfg.DTx(0, 0), cfg.DTx(1, 1)
	if c := r.TxConflict(d0, d1); c != 1 {
		t.Fatalf("NoOverhead TxConflict cost = %d, want 1", c)
	}
	if dec := r.SuspendTx(d0, d1); dec.Cycles != 1 {
		t.Fatalf("NoOverhead Suspend cost = %d, want 1", dec.Cycles)
	}
	if res := commitWithLines(r, d0, 30); res.Cycles != 1 {
		t.Fatalf("NoOverhead Commit cost = %d, want 1", res.Cycles)
	}
	if p := r.PredictSW(0, []int{NoTx}, 1); p.Cycles != 1 {
		t.Fatalf("NoOverhead Predict cost = %d, want 1", p.Cycles)
	}
}

func TestPerfectSignaturesExactSimilarity(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Perfect = true
	cfg.SimInterval = 1
	cfg.SmallTxLines = 0
	r := NewRuntime(cfg, NoOverheadCosts())
	d := cfg.DTx(0, 0)
	commitWithLines(r, d, 10)
	commitWithLines(r, d, 10) // identical set: exact similarity 1, EWMA from the 0.5 prior
	if got := r.Similarity(d); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("similarity = %v, want exactly 0.75 (EWMA of 0.5 prior and 1)", got)
	}
}

func TestCommitCostGrowsWithBloomSize(t *testing.T) {
	costAt := func(bits int) int64 {
		cfg := DefaultConfig(2, 1)
		cfg.BloomBits = bits
		cfg.SimInterval = 1
		cfg.SmallTxLines = 0
		r := NewRuntime(cfg, DefaultCosts())
		d := cfg.DTx(0, 0)
		commitWithLines(r, d, 30)
		return commitWithLines(r, d, 30).Cycles
	}
	c512, c8192 := costAt(512), costAt(8192)
	if c8192 <= c512 {
		t.Fatalf("8192-bit commit (%d cyc) not more expensive than 512-bit (%d cyc)", c8192, c512)
	}
	// 8192 bits = 128 words: 3 popcount passes at 2 cycles each dominate.
	if c8192-c512 < 300 {
		t.Fatalf("bloom size cost delta = %d cycles, implausibly small", c8192-c512)
	}
}

func TestAliasingFoldsIndices(t *testing.T) {
	cfg := DefaultConfig(2, 8)
	cfg.AliasBuckets = 4
	r := NewRuntime(cfg, DefaultCosts())
	d0, d5 := cfg.DTx(0, 1), cfg.DTx(1, 5) // 5 aliases to 1
	r.TxConflict(d0, d5)
	if r.Conf(1, 5) != r.Conf(1, 1) {
		t.Fatalf("aliased confidence differs: Conf(1,5)=%v Conf(1,1)=%v", r.Conf(1, 5), r.Conf(1, 1))
	}
	if r.ConfidenceTableBytes() != 16 {
		t.Fatalf("aliased table = %d bytes, want 16", r.ConfidenceTableBytes())
	}
}

func TestConfidenceTableBytes(t *testing.T) {
	r := testRuntime() // M = 3
	if r.ConfidenceTableBytes() != 9 {
		t.Fatalf("table bytes = %d, want 9", r.ConfidenceTableBytes())
	}
}

// Property: confidence always stays within [0, 1] under arbitrary
// interleavings of conflicts, suspends and commits.
func TestPropertyConfidenceBounded(t *testing.T) {
	prop := func(ops []uint8) bool {
		cfg := DefaultConfig(3, 3)
		cfg.SimInterval = 1
		r := NewRuntime(cfg, DefaultCosts())
		for i, op := range ops {
			a := cfg.DTx(int(op)%3, int(op/3)%3)
			b := cfg.DTx(int(op/9)%3, int(op/27)%3)
			switch i % 3 {
			case 0:
				r.TxConflict(a, b)
			case 1:
				r.SuspendTx(a, b)
			case 2:
				commitWithLines(r, a, int(op)%40+1)
			}
		}
		for x := 0; x < 3; x++ {
			for y := 0; y < 3; y++ {
				if c := r.Conf(x, y); c < 0 || c > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
