package core

import (
	"bytes"
	"testing"
)

func trainedRuntime() *Runtime {
	cfg := DefaultConfig(4, 3)
	cfg.SimInterval = 1
	cfg.SmallTxLines = 0
	r := NewRuntime(cfg, DefaultCosts())
	for i := 0; i < 10; i++ {
		r.TxConflict(cfg.DTx(0, 0), cfg.DTx(1, 1))
		commitWithLines(r, cfg.DTx(0, 0), 12)
		commitWithLines(r, cfg.DTx(2, 2), 30)
	}
	return r
}

func TestStateRoundTrip(t *testing.T) {
	src := trainedRuntime()
	state := src.ExportState()

	var buf bytes.Buffer
	if err := state.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(4, 3)
	dst := NewRuntime(cfg, DefaultCosts())
	if err := dst.ImportState(loaded); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if dst.Conf(a, b) != src.Conf(a, b) {
				t.Fatalf("Conf(%d,%d) = %v, want %v", a, b, dst.Conf(a, b), src.Conf(a, b))
			}
		}
	}
	d := cfg.DTx(2, 2)
	if dst.Similarity(d) != src.Similarity(d) || dst.AvgSize(d) != src.AvgSize(d) {
		t.Fatal("statistics not restored")
	}
}

func TestStateExportIsSnapshot(t *testing.T) {
	r := trainedRuntime()
	s := r.ExportState()
	before := s.Conf[1] // some trained cell
	r.TxConflict(r.Config().DTx(0, 0), r.Config().DTx(1, 1))
	if s.Conf[1] != before {
		t.Fatal("exported state aliases live runtime")
	}
}

func TestImportStateShapeMismatch(t *testing.T) {
	src := NewRuntime(DefaultConfig(4, 3), DefaultCosts())
	dst := NewRuntime(DefaultConfig(4, 5), DefaultCosts())
	if err := dst.ImportState(src.ExportState()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	dst2 := NewRuntime(DefaultConfig(8, 3), DefaultCosts())
	if err := dst2.ImportState(src.ExportState()); err == nil {
		t.Fatal("thread-count mismatch accepted")
	}
}

func TestImportStateClampsSims(t *testing.T) {
	r := NewRuntime(DefaultConfig(2, 1), DefaultCosts())
	s := r.ExportState()
	s.Sims[0] = 7.5
	s.AvgSizes[0] = 20
	if err := r.ImportState(s); err != nil {
		t.Fatal(err)
	}
	if got := r.Similarity(r.Config().DTx(0, 0)); got != 1 {
		t.Fatalf("similarity = %v, want clamped to 1", got)
	}
}

func TestReadStateRejectsGarbage(t *testing.T) {
	if _, err := ReadState(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("garbage state accepted")
	}
}
