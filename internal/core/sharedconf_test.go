package core

import (
	"math"
	"sync"
	"testing"
)

func TestSharedConfClampAndAliasing(t *testing.T) {
	c := NewSharedConf(8, 4)
	if c.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4 (aliased)", c.Dim())
	}
	c.Add(1, 2, 0.25)
	if got := c.Load(1, 2); math.Abs(got-0.25) > 1e-4 {
		t.Fatalf("Load(1,2) = %v, want 0.25", got)
	}
	// Aliased IDs land in the same cell: 5 % 4 == 1, 6 % 4 == 2.
	if got := c.Load(5, 6); math.Abs(got-0.25) > 1e-4 {
		t.Fatalf("aliased Load(5,6) = %v, want 0.25", got)
	}
	// Clamp high.
	for i := 0; i < 20; i++ {
		c.Add(1, 2, 0.3)
	}
	if got := c.Load(1, 2); got != 1 {
		t.Fatalf("clamped Load = %v, want 1", got)
	}
	// Clamp low.
	for i := 0; i < 20; i++ {
		c.Add(1, 2, -0.4)
	}
	if got := c.Load(1, 2); got != 0 {
		t.Fatalf("clamped Load = %v, want 0", got)
	}
	incs, decs := c.Updates()
	if incs != 21 || decs != 20 {
		t.Fatalf("Updates = (%d, %d), want (21, 20)", incs, decs)
	}
}

// TestSharedConfConcurrentAdds proves the CAS loop loses no updates: N
// workers each add 1/(2N) to one unclamped cell; the result must be
// exactly the fixed-point sum.
func TestSharedConfConcurrentAdds(t *testing.T) {
	const workers = 8
	const perWorker = 1000
	// Each increment is one fixed-point ulp so the expected total is exact.
	ulp := 1.0 / (1 << 16)
	c := NewSharedConf(2, 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(0, 1, ulp)
			}
		}()
	}
	wg.Wait()
	want := float64(workers*perWorker) / (1 << 16)
	if got := c.Load(0, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Load = %v, want %v (lost updates)", got, want)
	}
	if got := c.Mean(); math.Abs(got-want/4) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", got, want/4)
	}
}
