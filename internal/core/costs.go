// Package core implements the BFGTS runtime described in Section 4 of the
// paper: the per-sTxID confidence tables, the per-dTxID transaction
// statistics (average size, similarity, waiting-on), the Bloom-filter table
// of most recent read/write sets, and the three scheduling subroutines —
// suspendTx (Example 2), txConflict (Example 3) and commitTx/updateBloom/
// calcSim (Example 4).
//
// Every routine returns the number of cycles it would cost on the paper's
// hardware (Table 2: 2-cycle popcnt, 13–15-cycle fyl2x, 1-IPC cores), so
// the simulator can charge scheduling overhead faithfully. The
// BFGTS-NoOverhead configuration reports one cycle for everything and uses
// perfect (exact-set) signatures.
package core

// CostModel holds the instruction and routine latencies used to price the
// software runtime. Cycles at 2 GHz.
type CostModel struct {
	Popcnt int64 // popcnt instruction (Table 2: 2 cycles)
	Fyl2x  int64 // floating-point log instruction (Table 2: 15 cycles)
	WordOp int64 // one 64-bit ALU/load op on cached data
	Call   int64 // function-call + bookkeeping overhead of a runtime routine
	// ScanEntry is the software cost of one CPU-table entry during the
	// begin-time scan: load the remote dTxID, shift to an sTxID, index the
	// confidence table (frequently bounced between cores, so part of the
	// cost is coherence), compare against the threshold.
	ScanEntry int64
	// ConfUpdate is the cost of one read-modify-write of a confidence
	// entry, including the coherence traffic it triggers.
	ConfUpdate int64
	// NoOverhead, when set, makes every routine report 1 cycle: the
	// BFGTS-NoOverhead limit study.
	NoOverhead bool
}

// DefaultCosts returns the cost model matching the paper's Table 2 setup.
func DefaultCosts() CostModel {
	return CostModel{
		Popcnt:     2,
		Fyl2x:      15,
		WordOp:     1,
		Call:       40,
		ScanEntry:  18,
		ConfUpdate: 25,
	}
}

// NoOverheadCosts returns the cost model for BFGTS-NoOverhead.
func NoOverheadCosts() CostModel {
	return CostModel{NoOverhead: true, Popcnt: 1, Fyl2x: 1, WordOp: 1, Call: 1, ScanEntry: 1, ConfUpdate: 1}
}

// flat returns c, or 1 cycle under NoOverhead.
func (cm CostModel) flat(c int64) int64 {
	if cm.NoOverhead {
		return 1
	}
	return c
}
