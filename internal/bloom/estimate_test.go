package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEstimateCardinalityEmpty(t *testing.T) {
	f := NewFilter(512, 4)
	if got := f.EstimateCardinality(); got != 0 {
		t.Fatalf("empty filter cardinality estimate = %v, want 0", got)
	}
}

func TestEstimateCardinalitySaturated(t *testing.T) {
	f := NewFilter(64, 1)
	for i := uint64(0); i < 10000; i++ {
		f.Add(i)
	}
	if f.PopCount() != 64 {
		t.Skip("filter did not saturate; hash layout changed")
	}
	if got := f.EstimateCardinality(); got != 64 {
		t.Fatalf("saturated estimate = %v, want cap at m = 64", got)
	}
}

// Eq. 2 accuracy: for distinct random keys well under capacity, the
// estimate should track the true count within a modest relative error.
func TestEstimateCardinalityAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct {
		mBits, k, n int
		tolerance   float64
	}{
		{2048, 4, 50, 0.15},
		{2048, 4, 150, 0.15},
		{8192, 4, 400, 0.15},
		{512, 4, 30, 0.25},
	} {
		f := NewFilter(tc.mBits, tc.k)
		seen := make(map[uint64]bool, tc.n)
		for len(seen) < tc.n {
			k := rng.Uint64()
			if !seen[k] {
				seen[k] = true
				f.Add(k)
			}
		}
		est := f.EstimateCardinality()
		relErr := math.Abs(est-float64(tc.n)) / float64(tc.n)
		if relErr > tc.tolerance {
			t.Errorf("m=%d n=%d: estimate %.1f, true %d (rel err %.3f > %.2f)",
				tc.mBits, tc.n, est, tc.n, relErr, tc.tolerance)
		}
	}
}

// Eq. 3 accuracy: intersection estimates of sets with a known overlap.
func TestEstimateIntersectionAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, overlap := range []int{0, 20, 50, 100} {
		a, b := NewFilter(4096, 4), NewFilter(4096, 4)
		// 100 keys each, `overlap` of them shared.
		shared := make([]uint64, overlap)
		for i := range shared {
			shared[i] = rng.Uint64()
			a.Add(shared[i])
			b.Add(shared[i])
		}
		for i := 0; i < 100-overlap; i++ {
			a.Add(rng.Uint64())
			b.Add(rng.Uint64())
		}
		est := a.EstimateIntersection(b)
		if math.Abs(est-float64(overlap)) > 12+0.15*float64(overlap) {
			t.Errorf("overlap %d: estimated %.1f", overlap, est)
		}
	}
}

func TestEstimateIntersectionNeverNegative(t *testing.T) {
	prop := func(ka, kb []uint64) bool {
		a, b := NewFilter(512, 4), NewFilter(512, 4)
		for _, k := range ka {
			a.Add(k)
		}
		for _, k := range kb {
			b.Add(k)
		}
		return a.EstimateIntersection(b) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Similarity of a set with itself should be ~1 when avg set size equals the
// set size; similarity of disjoint sets should be ~0.
func TestSimilarityExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := NewFilter(2048, 4)
	for i := 0; i < 80; i++ {
		f.Add(rng.Uint64())
	}
	self := f.Similarity(f.Clone(), 80)
	if self < 0.8 {
		t.Errorf("self-similarity = %.3f, want near 1", self)
	}

	g := NewFilter(2048, 4)
	for i := 0; i < 80; i++ {
		g.Add(rng.Uint64())
	}
	cross := f.Similarity(g, 80)
	if cross > 0.2 {
		t.Errorf("disjoint similarity = %.3f, want near 0", cross)
	}
}

func TestSimilarityClampedToUnitInterval(t *testing.T) {
	prop := func(ka, kb []uint64, avg float64) bool {
		a, b := NewFilter(512, 4), NewFilter(512, 4)
		for _, k := range ka {
			a.Add(k)
		}
		for _, k := range kb {
			b.Add(k)
		}
		s := a.Similarity(b, avg)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityZeroAvgSize(t *testing.T) {
	a := NewFilter(512, 4)
	a.Add(1)
	if got := a.Similarity(a.Clone(), 0); got != 0 {
		t.Fatalf("similarity with avg size 0 = %v, want 0", got)
	}
	if got := a.Similarity(a.Clone(), -3); got != 0 {
		t.Fatalf("similarity with negative avg size = %v, want 0", got)
	}
}

func TestSimilarityOps(t *testing.T) {
	f := NewFilter(2048, 4)
	pops, logs := f.SimilarityOps()
	if pops != 3*32 || logs != 3 {
		t.Fatalf("SimilarityOps = (%d, %d), want (96, 3)", pops, logs)
	}
}

func TestExactSetSimilarityGroundTruth(t *testing.T) {
	a, b := NewExactSet(), NewExactSet()
	for i := uint64(0); i < 10; i++ {
		a.Add(i)
	}
	for i := uint64(5); i < 15; i++ {
		b.Add(i)
	}
	if got := a.IntersectionLen(b); got != 5 {
		t.Fatalf("IntersectionLen = %d, want 5", got)
	}
	if got := a.Similarity(b, 10); got != 0.5 {
		t.Fatalf("exact similarity = %v, want 0.5", got)
	}
	if !a.IntersectsNonNull(b) {
		t.Fatal("overlapping exact sets reported disjoint")
	}
	c := NewExactSet()
	c.Add(100)
	if a.IntersectsNonNull(c) {
		t.Fatal("disjoint exact sets reported overlapping")
	}
}

func TestExactSetSnapshotIndependent(t *testing.T) {
	a := NewExactSet()
	a.Add(1)
	s := a.Snapshot().(*ExactSet)
	a.Add(2)
	if s.Len() != 1 {
		t.Fatalf("snapshot length changed to %d after mutating original", s.Len())
	}
}

func TestMixedSignatureTypesPanic(t *testing.T) {
	f := NewFilter(512, 4)
	e := NewExactSet()
	defer func() {
		if recover() == nil {
			t.Fatal("mixing Filter and ExactSet did not panic")
		}
	}()
	f.IntersectsNonNull(e)
}

// Bloom-filter similarity should approximate exact similarity on realistic
// read/write-set sizes. This is the property that makes Eq. 4 usable as a
// stand-in for Eq. 1.
func TestBloomSimilarityTracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		overlapN := rng.Intn(n + 1)
		bf1, bf2 := NewFilter(2048, 4), NewFilter(2048, 4)
		ex1, ex2 := NewExactSet(), NewExactSet()
		for i := 0; i < overlapN; i++ {
			k := rng.Uint64()
			bf1.Add(k)
			bf2.Add(k)
			ex1.Add(k)
			ex2.Add(k)
		}
		for i := 0; i < n-overlapN; i++ {
			k1, k2 := rng.Uint64(), rng.Uint64()
			bf1.Add(k1)
			ex1.Add(k1)
			bf2.Add(k2)
			ex2.Add(k2)
		}
		avg := float64(n)
		got := bf1.Similarity(bf2, avg)
		want := ex1.Similarity(ex2, avg)
		if math.Abs(got-want) > 0.2 {
			t.Errorf("trial %d (n=%d overlap=%d): bloom sim %.3f vs exact %.3f",
				trial, n, overlapN, got, want)
		}
	}
}
