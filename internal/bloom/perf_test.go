package bloom

import "testing"

// TestEq3EstimateAllocFree pins the allocation contract of the estimator
// entry points the simulator calls per commit: Eq. 2 over the incremental
// popcount, Eq. 3 with the streamed union popcount, and the exact-error
// probe with caller-provided scratch filters. None may touch the allocator.
func TestEq3EstimateAllocFree(t *testing.T) {
	a, b := NewExactSet(), NewExactSet()
	for i := uint64(0); i < 40; i++ {
		a.Add(i * 64)
	}
	for i := uint64(20); i < 60; i++ {
		b.Add(i * 64)
	}
	fa := NewFilter(2048, DefaultHashes)
	fb := NewFilter(2048, DefaultHashes)
	sink := 0.0
	allocs := testing.AllocsPerRun(500, func() {
		sink += fa.EstimateCardinality()
		sink += fa.EstimateIntersection(fb)
		sink += EstimateIntersectionErrorInto(a, b, fa, fb)
	})
	if allocs != 0 {
		t.Fatalf("Eq. 3 estimation costs %v allocs/op, want 0", allocs)
	}
	_ = sink
}

// BenchmarkEq3Estimate measures one similarity probe at the paper's filter
// geometry (2048 bits, 4 hashes): two filled signatures, one Eq. 3
// intersection estimate. Pairs with TestEq3EstimateAllocFree.
func BenchmarkEq3Estimate(b *testing.B) {
	fa := NewFilter(2048, DefaultHashes)
	fb := NewFilter(2048, DefaultHashes)
	for i := uint64(0); i < 40; i++ {
		fa.Add(i * 64)
		fb.Add((i + 20) * 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += fa.EstimateIntersection(fb)
	}
	_ = sink
}
