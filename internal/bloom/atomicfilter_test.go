package bloom

import (
	"sync"
	"testing"
)

// TestAtomicFilterMatchesFilter pins the atomic filter's estimators to the
// plain filter's: same geometry, same keys, same popcounts and Eq. 2/3
// values, so the STM's concurrent signatures predict exactly like the
// simulator's sequential ones.
func TestAtomicFilterMatchesFilter(t *testing.T) {
	const mBits, k = 1024, 4
	af, bf := NewAtomicFilter(mBits, k), NewFilter(mBits, k)
	af2, bf2 := NewAtomicFilter(mBits, k), NewFilter(mBits, k)
	for i := uint64(0); i < 60; i++ {
		af.Add(i * 64)
		bf.Add(i * 64)
	}
	for i := uint64(30); i < 90; i++ {
		af2.Add(i * 64)
		bf2.Add(i * 64)
	}
	if af.PopCount() != bf.PopCount() || af2.PopCount() != bf2.PopCount() {
		t.Fatalf("popcounts diverge: atomic %d/%d vs plain %d/%d",
			af.PopCount(), af2.PopCount(), bf.PopCount(), bf2.PopCount())
	}
	if got, want := af.EstimateCardinality(), bf.EstimateCardinality(); got != want {
		t.Fatalf("EstimateCardinality = %v, want %v", got, want)
	}
	if got, want := af.EstimateIntersection(af2), bf.EstimateIntersection(bf2); got != want {
		t.Fatalf("EstimateIntersection = %v, want %v", got, want)
	}
	if got, want := af.OverlapSignificant(af2), bf.OverlapSignificant(bf2); got != want {
		t.Fatalf("OverlapSignificant = %v, want %v", got, want)
	}
	if got, want := af.Similarity(af2, 60), bf.Similarity(bf2, 60); got != want {
		t.Fatalf("Similarity = %v, want %v", got, want)
	}
	for i := uint64(0); i < 60; i++ {
		if !af.Test(i * 64) {
			t.Fatalf("key %d lost", i*64)
		}
	}
}

func TestAtomicFilterReset(t *testing.T) {
	f := NewAtomicFilter(256, 2)
	f.Add(7)
	f.Add(99)
	if f.PopCount() == 0 {
		t.Fatal("Add set no bits")
	}
	f.Reset()
	if f.PopCount() != 0 {
		t.Fatalf("PopCount after Reset = %d", f.PopCount())
	}
	if f.Test(7) {
		t.Fatal("Reset did not clear key 7")
	}
}

// TestAtomicFilterConcurrent exercises the concurrency contract under the
// race detector: many writers Add while readers probe and estimate. The
// assertions are deliberately weak (the whole point of the type is that
// torn intermediate states are tolerated); the value of the test is that
// -race proves every access is atomic.
func TestAtomicFilterConcurrent(t *testing.T) {
	f := NewAtomicFilter(2048, 4)
	other := NewAtomicFilter(2048, 4)
	for i := uint64(0); i < 40; i++ {
		other.Add(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 200; i++ {
				f.Add(uint64(w)<<32 | i)
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = f.Test(uint64(i))
				_ = f.EstimateIntersection(other)
				_ = f.OverlapSignificant(other)
			}
		}()
	}
	wg.Wait()
	// After the dust settles, the maintained popcount must equal the
	// ground-truth bit count.
	n := 0
	for i := range f.words {
		w := f.words[i].Load()
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	if f.PopCount() != n {
		t.Fatalf("maintained popcount %d != actual set bits %d", f.PopCount(), n)
	}
}
