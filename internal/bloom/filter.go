package bloom

import (
	"fmt"
	"math"
	"math/bits"
)

// Filter is a fixed-size Bloom filter over 64-bit keys (cache-line
// addresses in this codebase). The paper evaluates sizes from 512 to 8192
// bits with a small number of hash functions; both are configurable here.
//
// The filter keeps an incremental population count (updated by Add) and the
// precomputed Eq. 2 denominator k·ln(1−1/m) for its geometry, so
// PopCount/EstimateCardinality are O(1) and the Eq. 3 estimator never
// recomputes the logarithm of a constant.
type Filter struct {
	words []uint64
	m     uint64 // size in bits; power of two
	k     uint64 // number of hash functions
	pop   int    // set-bit count, maintained incrementally
	den   float64
}

// DefaultHashes is the number of hash functions used throughout the
// reproduction when the caller does not override it. The paper does not
// report k explicitly; 4 is the conventional choice for signature filters
// of this size (Sanchez et al.) and keeps false-positive rates in the
// regime where the cardinality estimator is accurate.
const DefaultHashes = 4

// NewFilter returns an empty filter of mBits bits using k hash functions.
// mBits must be a power of two and at least 64; k must be at least 1.
func NewFilter(mBits, k int) *Filter {
	if mBits < 64 || mBits&(mBits-1) != 0 {
		panic(fmt.Sprintf("bloom: filter size %d is not a power of two >= 64", mBits))
	}
	if k < 1 {
		panic("bloom: need at least one hash function")
	}
	return &Filter{
		words: make([]uint64, mBits/64),
		m:     uint64(mBits),
		k:     uint64(k),
		den:   float64(k) * math.Log1p(-1/float64(mBits)),
	}
}

// Bits returns the filter size in bits (the paper's m).
func (f *Filter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions (the paper's k).
func (f *Filter) Hashes() int { return int(f.k) }

// Words returns the number of 64-bit words backing the filter. The
// hardware cost model charges one popcnt per word when counting bits.
func (f *Filter) Words() int { return len(f.words) }

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	h1, h2 := hashPair(key)
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) & (f.m - 1)
		mask := uint64(1) << (bit & 63)
		if w := f.words[bit>>6]; w&mask == 0 {
			f.words[bit>>6] = w | mask
			f.pop++
		}
	}
}

// Test reports whether a key may be present. False positives are possible,
// false negatives are not.
func (f *Filter) Test(key uint64) bool {
	h1, h2 := hashPair(key)
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) & (f.m - 1)
		if f.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits (the paper's t). It is O(1): Add
// maintains the count incrementally.
func (f *Filter) PopCount() int { return f.pop }

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.pop = 0
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	c := &Filter{words: make([]uint64, len(f.words)), m: f.m, k: f.k, pop: f.pop, den: f.den}
	copy(c.words, f.words)
	return c
}

// CopyFrom overwrites this filter's bits with those of src. The two filters
// must have identical geometry.
func (f *Filter) CopyFrom(src *Filter) {
	f.mustMatch(src)
	copy(f.words, src.words)
	f.pop = src.pop
}

// Union ORs other into a freshly allocated filter, leaving both inputs
// untouched. Filters must have identical geometry.
//
// This allocates a full filter (m/8 bytes) per call. Hot paths that only
// need the union's cardinality should use EstimateIntersection /
// UnionPopCount, which stream OnesCount64(a|b) over the words without
// materializing anything.
func (f *Filter) Union(other *Filter) *Filter {
	f.mustMatch(other)
	u := &Filter{words: make([]uint64, len(f.words)), m: f.m, k: f.k, den: f.den}
	for i, w := range other.words {
		uw := f.words[i] | w
		u.words[i] = uw
		u.pop += bits.OnesCount64(uw)
	}
	return u
}

// UnionWith ORs other's bits into this filter in place, recomputing the
// population count in the same pass — the Bloofi node-repair primitive,
// allocation-free by construction. Filters must have identical geometry.
//
//bfgts:allocfree
func (f *Filter) UnionWith(other *Filter) {
	f.mustMatch(other)
	pop := 0
	for i, w := range other.words {
		uw := f.words[i] | w
		f.words[i] = uw
		pop += bits.OnesCount64(uw)
	}
	f.pop = pop
}

// UnionPopCount returns the number of set bits in the bitwise union of the
// two filters without materializing it — one OnesCount64 per word.
func (f *Filter) UnionPopCount(other *Filter) int {
	f.mustMatch(other)
	n := 0
	for i, w := range other.words {
		n += bits.OnesCount64(f.words[i] | w)
	}
	return n
}

// Intersect ANDs other into a freshly allocated filter. Note that a bitwise
// AND of two Bloom filters over-approximates the true intersection; BFGTS
// uses it only as the null test in commitTx (Example 4) and relies on the
// estimator in estimate.go for cardinalities. Like Union, this allocates;
// use intersectsFilter/IntersectsNonNull for an allocation-free null test.
func (f *Filter) Intersect(other *Filter) *Filter {
	f.mustMatch(other)
	u := &Filter{words: make([]uint64, len(f.words)), m: f.m, k: f.k, den: f.den}
	for i, w := range other.words {
		uw := f.words[i] & w
		u.words[i] = uw
		u.pop += bits.OnesCount64(uw)
	}
	return u
}

// intersectsFilter reports whether the bitwise intersection with other has
// any set bit, without allocating.
func (f *Filter) intersectsFilter(other *Filter) bool {
	f.mustMatch(other)
	for i, w := range other.words {
		if f.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// FillRatio returns t/m, the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	return float64(f.pop) / float64(f.m)
}

func (f *Filter) mustMatch(other *Filter) {
	if f.m != other.m || f.k != other.k {
		panic(fmt.Sprintf("bloom: geometry mismatch (%d/%d bits, %d/%d hashes)",
			f.m, other.m, f.k, other.k))
	}
}
