package bloom

import (
	"fmt"
	"math/bits"
)

// Filter is a fixed-size Bloom filter over 64-bit keys (cache-line
// addresses in this codebase). The paper evaluates sizes from 512 to 8192
// bits with a small number of hash functions; both are configurable here.
type Filter struct {
	words []uint64
	m     uint64 // size in bits; power of two
	k     uint64 // number of hash functions
}

// DefaultHashes is the number of hash functions used throughout the
// reproduction when the caller does not override it. The paper does not
// report k explicitly; 4 is the conventional choice for signature filters
// of this size (Sanchez et al.) and keeps false-positive rates in the
// regime where the cardinality estimator is accurate.
const DefaultHashes = 4

// NewFilter returns an empty filter of mBits bits using k hash functions.
// mBits must be a power of two and at least 64; k must be at least 1.
func NewFilter(mBits, k int) *Filter {
	if mBits < 64 || mBits&(mBits-1) != 0 {
		panic(fmt.Sprintf("bloom: filter size %d is not a power of two >= 64", mBits))
	}
	if k < 1 {
		panic("bloom: need at least one hash function")
	}
	return &Filter{
		words: make([]uint64, mBits/64),
		m:     uint64(mBits),
		k:     uint64(k),
	}
}

// Bits returns the filter size in bits (the paper's m).
func (f *Filter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions (the paper's k).
func (f *Filter) Hashes() int { return int(f.k) }

// Words returns the number of 64-bit words backing the filter. The
// hardware cost model charges one popcnt per word when counting bits.
func (f *Filter) Words() int { return len(f.words) }

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	h1, h2 := hashPair(key)
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) & (f.m - 1)
		f.words[bit>>6] |= 1 << (bit & 63)
	}
}

// Test reports whether a key may be present. False positives are possible,
// false negatives are not.
func (f *Filter) Test(key uint64) bool {
	h1, h2 := hashPair(key)
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) & (f.m - 1)
		if f.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits (the paper's t).
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	c := &Filter{words: make([]uint64, len(f.words)), m: f.m, k: f.k}
	copy(c.words, f.words)
	return c
}

// CopyFrom overwrites this filter's bits with those of src. The two filters
// must have identical geometry.
func (f *Filter) CopyFrom(src *Filter) {
	f.mustMatch(src)
	copy(f.words, src.words)
}

// Union ORs other into a freshly allocated filter, leaving both inputs
// untouched. Filters must have identical geometry.
func (f *Filter) Union(other *Filter) *Filter {
	f.mustMatch(other)
	u := f.Clone()
	for i, w := range other.words {
		u.words[i] |= w
	}
	return u
}

// Intersect ANDs other into a freshly allocated filter. Note that a bitwise
// AND of two Bloom filters over-approximates the true intersection; BFGTS
// uses it only as the null test in commitTx (Example 4) and relies on the
// estimator in estimate.go for cardinalities.
func (f *Filter) Intersect(other *Filter) *Filter {
	f.mustMatch(other)
	u := f.Clone()
	for i, w := range other.words {
		u.words[i] &= w
	}
	return u
}

// intersectsFilter reports whether the bitwise intersection with other has
// any set bit, without allocating.
func (f *Filter) intersectsFilter(other *Filter) bool {
	f.mustMatch(other)
	for i, w := range other.words {
		if f.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// FillRatio returns t/m, the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	return float64(f.PopCount()) / float64(f.m)
}

func (f *Filter) mustMatch(other *Filter) {
	if f.m != other.m || f.k != other.k {
		panic(fmt.Sprintf("bloom: geometry mismatch (%d/%d bits, %d/%d hashes)",
			f.m, other.m, f.k, other.k))
	}
}
