// Package bloom implements the Bloom filter machinery BFGTS uses to
// characterize transaction read/write sets: insertion and membership via
// double hashing, bitwise union/intersection, and the set-cardinality
// estimators from Michael et al. that the paper adopts (Equations 2 and 3)
// to derive the "Similarity" metric (Equation 4).
//
// Conflict detection in the simulated HTM uses exact ("perfect") signatures,
// matching the paper's methodology; Bloom filters appear only in the BFGTS
// commit-time bookkeeping. Both are exposed behind the Signature interface
// so the BFGTS-NoOverhead configuration can swap in exact sets.
package bloom

// mix64 is the splitmix64 finalizer. It turns a line address (or any 64-bit
// key) into a well-distributed hash from which the double-hashing pair is
// drawn.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPair derives the two independent hash values used by the Kirsch-
// Mitzenmacher double-hashing scheme: index_i = h1 + i*h2 (mod m). h2 is
// forced odd so that, for power-of-two m, the probe sequence cycles through
// all bit positions.
func hashPair(key uint64) (h1, h2 uint64) {
	h1 = mix64(key)
	h2 = mix64(key^0xa5a5a5a5a5a5a5a5) | 1
	return h1, h2
}
