package bloom

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// AtomicFilter is a Bloom filter whose words are accessed with atomic
// word-level operations, for signatures that live on a concurrency
// boundary: one goroutine rebuilds the signature at commit time while
// other goroutines probe it for begin-time prediction or commit-time
// validation, with no lock on either side.
//
// This is the software rendering of the paper's snooped per-CPU signature
// registers: readers may observe a signature mid-rebuild (a torn mix of
// old and new words). That is acceptable by construction — every consumer
// is a heuristic (similarity, overlap significance) whose wrong answer
// costs a suboptimal scheduling decision, never a correctness violation —
// and because every access is a word-sized atomic, torn reads are still
// data-race-free under the Go memory model.
//
// Unlike *Filter, the population count is maintained with atomic
// increments by Add and re-derived by Reset, so concurrent probes see a
// count consistent enough for the Eq. 2/3 estimators.
type AtomicFilter struct {
	words []atomic.Uint64
	m     uint64 // size in bits; power of two
	k     uint64 // number of hash functions
	pop   atomic.Int64
	den   float64 // precomputed Eq. 2 denominator k·ln(1−1/m)
}

// NewAtomicFilter returns an empty atomic filter of mBits bits using k
// hash functions. mBits must be a power of two and at least 64; k must be
// at least 1.
func NewAtomicFilter(mBits, k int) *AtomicFilter {
	if mBits < 64 || mBits&(mBits-1) != 0 {
		panic(fmt.Sprintf("bloom: filter size %d is not a power of two >= 64", mBits))
	}
	if k < 1 {
		panic("bloom: need at least one hash function")
	}
	return &AtomicFilter{
		words: make([]atomic.Uint64, mBits/64),
		m:     uint64(mBits),
		k:     uint64(k),
		den:   float64(k) * math.Log1p(-1/float64(mBits)),
	}
}

// Bits returns the filter size in bits (the paper's m).
func (f *AtomicFilter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions (the paper's k).
func (f *AtomicFilter) Hashes() int { return int(f.k) }

// Words returns the number of 64-bit words backing the filter.
func (f *AtomicFilter) Words() int { return len(f.words) }

// Add inserts a key with one atomic read-modify-write per hash,
// maintaining the population count from the observed pre-image.
//
// The RMW is a hand-rolled compare-and-swap rather than the natural
// atomic.Uint64.Or: go1.24.0's amd64 lowering of the Or-with-result
// intrinsic clobbers the register holding the receiver, so a following
// field access (f.pop here) dereferences the OR'd value and faults. The
// CAS loop also lets Add skip the write entirely when the bits are
// already set — the common case for a filter under repeated keys.
//
//bfgts:allocfree
func (f *AtomicFilter) Add(key uint64) {
	h1, h2 := hashPair(key)
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) & (f.m - 1)
		mask := uint64(1) << (bit & 63)
		w := &f.words[bit>>6]
		for {
			old := w.Load()
			if old&mask != 0 {
				break
			}
			if w.CompareAndSwap(old, old|mask) {
				f.pop.Add(1)
				break
			}
		}
	}
}

// Test reports whether a key may be present. False positives are possible,
// false negatives are not (for keys whose Add fully completed).
//
//bfgts:allocfree
func (f *AtomicFilter) Test(key uint64) bool {
	h1, h2 := hashPair(key)
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) & (f.m - 1)
		if f.words[bit>>6].Load()&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter word by word. Concurrent probes may observe the
// partially cleared state; see the type comment for why that is safe.
//
//bfgts:allocfree
func (f *AtomicFilter) Reset() {
	for i := range f.words {
		f.words[i].Store(0)
	}
	f.pop.Store(0)
}

// PopCount returns the number of set bits as maintained by Add.
//
//bfgts:allocfree
func (f *AtomicFilter) PopCount() int { return int(f.pop.Load()) }

// OrFrom ORs src's current bits into this filter word by word and
// refreshes the population count — the Bloofi repair primitive for
// directory nodes rebuilt under their owner's per-node lock. Concurrent
// probes may observe the partially accumulated state (see the type
// comment); src may be concurrently mutated, in which case a torn
// snapshot of it is folded in, which the same argument makes benign.
//
//bfgts:allocfree
func (f *AtomicFilter) OrFrom(src *AtomicFilter) {
	f.mustMatch(src)
	pop := 0
	for i := range f.words {
		w := f.words[i].Load() | src.words[i].Load()
		f.words[i].Store(w)
		pop += bits.OnesCount64(w)
	}
	f.pop.Store(int64(pop))
}

// UnionPopCount streams the popcount of the bitwise OR of the two filters
// without materializing it.
//
//bfgts:allocfree
func (f *AtomicFilter) UnionPopCount(o *AtomicFilter) int {
	f.mustMatch(o)
	n := 0
	for i := range f.words {
		n += bits.OnesCount64(f.words[i].Load() | o.words[i].Load())
	}
	return n
}

// EstimateCardinality implements Equation 2 for this filter.
//
//bfgts:allocfree
func (f *AtomicFilter) EstimateCardinality() float64 {
	return f.cardinality(f.PopCount())
}

// cardinality is Equation 2 using the filter's precomputed denominator.
//
//bfgts:allocfree
func (f *AtomicFilter) cardinality(t int) float64 {
	if t <= 0 {
		return 0
	}
	if t >= int(f.m) {
		return float64(f.m)
	}
	return math.Log1p(-float64(t)/float64(f.m)) / f.den
}

// EstimateIntersection implements Equation 3 between two atomic filters,
// clamped at zero like (*Filter).EstimateIntersection.
//
//bfgts:allocfree
func (f *AtomicFilter) EstimateIntersection(o *AtomicFilter) float64 {
	f.mustMatch(o)
	est := f.cardinality(f.PopCount()) + f.cardinality(o.PopCount()) -
		f.cardinality(f.UnionPopCount(o))
	if est < 0 {
		return 0
	}
	return est
}

// OverlapSignificant is the usable form of the paper's null-intersection
// test: the Eq. 3 estimate must clear the bias and noise floor a disjoint
// pair of these popcounts would produce. The decision rule is identical to
// (*Filter).OverlapSignificant.
//
//bfgts:allocfree
func (f *AtomicFilter) OverlapSignificant(o *AtomicFilter) bool {
	f.mustMatch(o)
	m := float64(f.m)
	k := float64(f.k)
	t1 := float64(f.PopCount())
	t2 := float64(o.PopCount())
	if t1 == 0 || t2 == 0 {
		return false
	}
	est := f.EstimateIntersection(o)

	tUnionDisjoint := t1 + t2 - t1*t2/m
	bias := f.cardinality(int(t1)) +
		f.cardinality(int(t2)) -
		f.cardinality(int(tUnionDisjoint+0.5))
	if bias < 0 {
		bias = 0
	}
	fill := tUnionDisjoint / m
	if fill > 0.99 {
		fill = 0.99
	}
	sd := math.Sqrt(t1*t2/m) / (k * (1 - fill))
	return est >= bias+0.5+0.5*sd
}

// Similarity is Equation 4 against a previous execution's signature,
// normalized by the historical average read/write-set size.
//
//bfgts:allocfree
func (f *AtomicFilter) Similarity(prev *AtomicFilter, avgSetSize float64) float64 {
	if avgSetSize <= 0 {
		return 0
	}
	return clamp01(f.EstimateIntersection(prev) / avgSetSize)
}

func (f *AtomicFilter) mustMatch(o *AtomicFilter) {
	if f.m != o.m || f.k != o.k {
		panic(fmt.Sprintf("bloom: mismatched atomic filter geometry (%d/%d bits, %d/%d hashes)",
			f.m, o.m, f.k, o.k))
	}
}
