package bloom

import "math"

// This file implements the set-cardinality arithmetic the paper borrows
// from Michael et al. ("Improving distributed join efficiency with extended
// bloom filter operations"):
//
//	Eq. 2:  S⁻¹(t) = ln(1 − t/m) / (k · ln(1 − 1/m))
//	Eq. 3:  |S₁∩S₂| ≈ S⁻¹(t₁) + S⁻¹(t₂) − S⁻¹(t_{1∪2})
//	Eq. 4:  Similarity = |RWSet_{t−1} ∩ RWSet_t| / AvgRWSetSize
//
// calcSim in the paper's Example 4 is the literal composition of these.
//
// None of the estimator entry points allocate: the union term streams
// popcounts over the two word arrays instead of materializing a third
// filter, PopCount is maintained incrementally by Add, and the constant
// Eq. 2 denominator k·ln(1−1/m) is computed once per filter geometry
// (matching the paper's SimilarityOps note that it is precomputed).

// EstimateCardinality implements Equation 2 for this filter: an estimate of
// how many distinct keys were inserted, derived from the fill ratio. When
// the filter is saturated (every bit set) the estimate diverges; we return
// the asymptote capped at m, which is the largest set a filter of m bits
// can meaningfully witness.
//
//bfgts:allocfree
func (f *Filter) EstimateCardinality() float64 {
	return f.cardinality(f.pop)
}

// cardinality is Equation 2 using the filter's precomputed denominator.
//
//bfgts:allocfree
func (f *Filter) cardinality(t int) float64 {
	if t <= 0 {
		return 0
	}
	if t >= int(f.m) {
		return float64(f.m)
	}
	return math.Log1p(-float64(t)/float64(f.m)) / f.den
}

// cardinalityFromPopCount is Equation 2 as a pure function of (t, m, k),
// for callers without a filter in hand. Filter methods use the precomputed
// denominator instead of paying the Log1p on every call.
func cardinalityFromPopCount(t, m, k int) float64 {
	if t <= 0 {
		return 0
	}
	if t >= m {
		return float64(m)
	}
	num := math.Log1p(-float64(t) / float64(m))
	den := float64(k) * math.Log1p(-1/float64(m))
	return num / den
}

// EstimateIntersection implements Equation 3: the estimated cardinality of
// the intersection of the sets encoded by f and other. The union popcount
// is streamed word-by-word, so no filter is materialized.
//
// The estimate can be slightly negative when the true intersection is empty
// (the three estimates carry independent noise); it is clamped at zero
// because a set cannot have negative size.
//
//bfgts:allocfree
func (f *Filter) EstimateIntersection(other *Filter) float64 {
	f.mustMatch(other)
	est := f.cardinality(f.pop) + f.cardinality(other.pop) - f.cardinality(f.UnionPopCount(other))
	if est < 0 {
		return 0
	}
	return est
}

// SimilarityOps reports how many population counts and logarithm
// evaluations one similarity calculation costs for a filter of this
// geometry. The hardware cost model multiplies these by the popcnt and
// fyl2x instruction latencies from Table 2. A similarity calculation pop-
// counts three filters (new, old, union) one 64-bit word at a time and
// evaluates ln(1−t/m) once per filter; the constant denominator k·ln(1−1/m)
// is precomputed.
func (f *Filter) SimilarityOps() (popcnts, logs int) {
	return 3 * len(f.words), 3
}

// EstimateIntersectionError inserts the two exact sets into fresh Bloom
// filters of the given geometry and returns the Eq. 3 estimator's signed
// error against the true intersection cardinality (estimate − exact). The
// simulator's profiler records this per commit pair, making the
// estimated-vs-exact accuracy the paper's Figure 6 relies on a measurable
// quantity rather than an assumption.
func EstimateIntersectionError(a, b *ExactSet, mBits, k int) float64 {
	return EstimateIntersectionErrorInto(a, b, NewFilter(mBits, k), NewFilter(mBits, k))
}

// EstimateIntersectionErrorInto is EstimateIntersectionError with
// caller-provided scratch filters (reset before use), so per-commit
// profiling does not allocate two filters every call. Both filters must
// share a geometry.
//
//bfgts:allocfree
func EstimateIntersectionErrorInto(a, b *ExactSet, fa, fb *Filter) float64 {
	fa.Reset()
	for key := range a.keys {
		fa.Add(key)
	}
	fb.Reset()
	for key := range b.keys {
		fb.Add(key)
	}
	return fa.EstimateIntersection(fb) - float64(a.IntersectionLen(b))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
