package bloom

import "math"

// Signature abstracts a read/write-set summary. Two implementations exist:
//
//   - *Filter: the Bloom filter used by the deployable BFGTS variants,
//     whose similarity is the Eq. 2/3/4 estimate.
//   - *ExactSet: a perfect signature with exact intersection cardinality,
//     used by BFGTS-NoOverhead ("perfect read/write set signatures") and by
//     the Table 1 profiler, which reports ground-truth similarity.
//
// Signatures of different dynamic types must never be mixed; doing so is a
// programming error and panics.
type Signature interface {
	// Add records one cache-line address in the set.
	Add(key uint64)
	// Reset empties the signature for reuse.
	Reset()
	// Snapshot returns an independent copy with the same geometry.
	Snapshot() Signature
	// IntersectsNonNull reports whether this signature's intersection with
	// other is non-empty (possibly over-approximate for Bloom filters).
	IntersectsNonNull(other Signature) bool
	// EstimatedOverlap returns the (estimated, for Bloom filters; exact,
	// for exact sets) cardinality of the intersection with other. BFGTS
	// commit validation treats an overlap under one element as a null
	// intersection: the raw bitwise-AND test of two filters is almost
	// never empty at realistic fill ratios, so the Eq. 3 estimator is what
	// makes the paper's "if the intersection is not null" test meaningful.
	EstimatedOverlap(other Signature) float64
	// OverlapSignificant reports whether the intersection with other is
	// distinguishable from estimator noise — the usable form of the
	// paper's null-intersection test. For exact sets it is exact; for
	// Bloom filters the Eq. 3 estimate must clear a noise floor that
	// shrinks as the filter grows, which is precisely why larger filters
	// make better predictions in the paper's Figure 6 sweep.
	OverlapSignificant(other Signature) bool
	// Similarity is Equation 4 against a previous execution's signature.
	Similarity(prev Signature, avgSetSize float64) float64
	// SimilarityOps reports the (popcnt, log) instruction counts one
	// similarity evaluation costs, for the cycle-cost model.
	SimilarityOps() (popcnts, logs int)
}

// Snapshot implements Signature for *Filter.
func (f *Filter) Snapshot() Signature { return f.Clone() }

// IntersectsNonNull implements Signature for *Filter.
func (f *Filter) IntersectsNonNull(other Signature) bool {
	return f.intersectsFilter(mustFilter(other))
}

// EstimatedOverlap implements Signature for *Filter via Equation 3.
func (f *Filter) EstimatedOverlap(other Signature) float64 {
	return f.EstimateIntersection(mustFilter(other))
}

// OverlapSignificant implements Signature for *Filter. The Eq. 3 estimate
// is noisy: even for disjoint sets, random bit collisions leave a residual
// estimate with a bias and a variance that both shrink as the filter
// grows. The decision rule computes, from the two observed popcounts, the
// estimate a disjoint pair would be expected to produce (t∪ ≈ t₁+t₂−t₁t₂/m)
// and its standard deviation, and calls the overlap real only when the
// actual estimate clears that expectation by half an element plus half a
// standard deviation. Small filters therefore cannot resolve small true
// overlaps — the prediction-accuracy mechanism behind Figure 6.
func (f *Filter) OverlapSignificant(other Signature) bool {
	o := mustFilter(other)
	m := float64(f.m)
	k := float64(f.k)
	t1 := float64(f.PopCount())
	t2 := float64(o.PopCount())
	if t1 == 0 || t2 == 0 {
		return false
	}
	est := f.EstimateIntersection(o)

	tUnionDisjoint := t1 + t2 - t1*t2/m
	bias := f.cardinality(int(t1)) +
		f.cardinality(int(t2)) -
		f.cardinality(int(tUnionDisjoint+0.5))
	if bias < 0 {
		bias = 0
	}
	// Std dev of the shared-bit count for disjoint sets is ~sqrt(t₁t₂/m);
	// each shared bit moves the estimate by ~1/(k·(1−t∪/m)) elements.
	fill := tUnionDisjoint / m
	if fill > 0.99 {
		fill = 0.99
	}
	sd := math.Sqrt(t1*t2/m) / (k * (1 - fill))
	return est >= bias+0.5+0.5*sd
}

// Similarity implements Signature for *Filter: Equation 4, the estimated
// overlap between the current read/write set (f) and the previous one,
// normalized by the historical average read/write-set size and clamped to
// [0, 1].
func (f *Filter) Similarity(prev Signature, avgSetSize float64) float64 {
	if avgSetSize <= 0 {
		return 0
	}
	return clamp01(f.EstimateIntersection(mustFilter(prev)) / avgSetSize)
}

func mustFilter(sig Signature) *Filter {
	o, ok := sig.(*Filter)
	if !ok {
		panic("bloom: mixed signature types (Filter vs non-Filter)")
	}
	return o
}

// ExactSet is a perfect signature: the literal set of line addresses.
type ExactSet struct {
	keys map[uint64]struct{}
}

// NewExactSet returns an empty perfect signature.
func NewExactSet() *ExactSet {
	return &ExactSet{keys: make(map[uint64]struct{})}
}

// Add implements Signature.
func (s *ExactSet) Add(key uint64) { s.keys[key] = struct{}{} }

// Reset implements Signature.
func (s *ExactSet) Reset() { clear(s.keys) }

// Len returns the exact set cardinality.
func (s *ExactSet) Len() int { return len(s.keys) }

// Snapshot implements Signature.
func (s *ExactSet) Snapshot() Signature {
	c := NewExactSet()
	for k := range s.keys {
		c.keys[k] = struct{}{}
	}
	return c
}

// IntersectsNonNull implements Signature.
func (s *ExactSet) IntersectsNonNull(other Signature) bool {
	o := mustExact(other)
	small, large := s.keys, o.keys
	if len(large) < len(small) {
		small, large = large, small
	}
	for k := range small {
		if _, ok := large[k]; ok {
			return true
		}
	}
	return false
}

// EstimatedOverlap implements Signature; for exact sets it is exact.
func (s *ExactSet) EstimatedOverlap(other Signature) float64 {
	return float64(s.IntersectionLen(mustExact(other)))
}

// OverlapSignificant implements Signature: exact sets have no noise, so
// any shared element is significant.
func (s *ExactSet) OverlapSignificant(other Signature) bool {
	return s.IntersectionLen(mustExact(other)) >= 1
}

// IntersectionLen returns the exact intersection cardinality.
func (s *ExactSet) IntersectionLen(other *ExactSet) int {
	small, large := s.keys, other.keys
	if len(large) < len(small) {
		small, large = large, small
	}
	n := 0
	for k := range small {
		if _, ok := large[k]; ok {
			n++
		}
	}
	return n
}

// Similarity implements Signature with the exact Eq. 1 value (the paper's
// definition of similarity, which Eq. 4 estimates).
func (s *ExactSet) Similarity(prev Signature, avgSetSize float64) float64 {
	if avgSetSize <= 0 {
		return 0
	}
	p := mustExact(prev)
	return clamp01(float64(s.IntersectionLen(p)) / avgSetSize)
}

// SimilarityOps implements Signature. The NoOverhead configuration models
// all bookkeeping as free, and exact sets exist only for that configuration
// and offline profiling, so the op counts are zero.
func (s *ExactSet) SimilarityOps() (popcnts, logs int) { return 0, 0 }

func mustExact(sig Signature) *ExactSet {
	o, ok := sig.(*ExactSet)
	if !ok {
		panic("bloom: mixed signature types (ExactSet vs non-ExactSet)")
	}
	return o
}
