package bloom

import (
	"math/rand"
	"testing"
)

// The noise-floor test must call disjoint sets disjoint and substantially
// overlapping sets overlapping, across the paper's filter-size sweep.
func TestOverlapSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, bits := range []int{512, 1024, 2048, 4096, 8192} {
		disjointWrong, overlapWrong := 0, 0
		const trials = 50
		for trial := 0; trial < trials; trial++ {
			a, b := NewFilter(bits, 4), NewFilter(bits, 4)
			// Disjoint 20-element sets.
			for i := 0; i < 20; i++ {
				a.Add(rng.Uint64())
				b.Add(rng.Uint64())
			}
			if a.OverlapSignificant(b) {
				disjointWrong++
			}
			// Half-overlapping 20-element sets.
			c, d := NewFilter(bits, 4), NewFilter(bits, 4)
			for i := 0; i < 10; i++ {
				k := rng.Uint64()
				c.Add(k)
				d.Add(k)
			}
			for i := 0; i < 10; i++ {
				c.Add(rng.Uint64())
				d.Add(rng.Uint64())
			}
			if !c.OverlapSignificant(d) {
				overlapWrong++
			}
		}
		if disjointWrong > trials/5 {
			t.Errorf("%d bits: %d/%d disjoint pairs called overlapping", bits, disjointWrong, trials)
		}
		if overlapWrong > trials/5 {
			t.Errorf("%d bits: %d/%d half-overlapping pairs called disjoint", bits, overlapWrong, trials)
		}
	}
}

// Exact sets must detect a single shared element — the case Bloom noise
// hides on small filters.
func TestExactOverlapSignificantSingleElement(t *testing.T) {
	a, b := NewExactSet(), NewExactSet()
	for i := uint64(0); i < 20; i++ {
		a.Add(i)
		b.Add(i + 100)
	}
	if a.OverlapSignificant(b) {
		t.Fatal("disjoint exact sets called overlapping")
	}
	b.Add(5)
	if !a.OverlapSignificant(b) {
		t.Fatal("one-element exact overlap not detected")
	}
	if got := a.EstimatedOverlap(b); got != 1 {
		t.Fatalf("EstimatedOverlap = %v, want exactly 1", got)
	}
}

// Bigger filters should detect smaller true overlaps — the mechanism
// behind the paper's Figure 6 prediction-accuracy story.
func TestLargerFiltersResolveSmallerOverlaps(t *testing.T) {
	detections := func(bits int) int {
		rng := rand.New(rand.NewSource(7))
		hits := 0
		for trial := 0; trial < 100; trial++ {
			a, b := NewFilter(bits, 4), NewFilter(bits, 4)
			shared := rng.Uint64()
			a.Add(shared)
			b.Add(shared)
			for i := 0; i < 39; i++ { // 40-line transactions sharing 1 line
				a.Add(rng.Uint64())
				b.Add(rng.Uint64())
			}
			if a.OverlapSignificant(b) {
				hits++
			}
		}
		return hits
	}
	small, large := detections(512), detections(8192)
	if large <= small {
		t.Fatalf("1-line overlap detected %d/100 at 8192b vs %d/100 at 512b; want more at 8192b",
			large, small)
	}
}
