package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFilterGeometry(t *testing.T) {
	f := NewFilter(2048, 4)
	if f.Bits() != 2048 || f.Hashes() != 4 || f.Words() != 32 {
		t.Fatalf("geometry = (%d bits, %d hashes, %d words), want (2048, 4, 32)",
			f.Bits(), f.Hashes(), f.Words())
	}
}

func TestNewFilterRejectsBadSizes(t *testing.T) {
	for _, bad := range []int{0, 63, 100, 1000, -512} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFilter(%d, 4) did not panic", bad)
				}
			}()
			NewFilter(bad, 4)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewFilter(512, 0) did not panic")
			}
		}()
		NewFilter(512, 0)
	}()
}

func TestNoFalseNegatives(t *testing.T) {
	f := NewFilter(1024, 4)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Fatalf("key %#x inserted but Test reports absent", k)
		}
	}
}

func TestEmptyFilterTestsNegative(t *testing.T) {
	f := NewFilter(512, 4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if f.Test(rng.Uint64()) {
			t.Fatal("empty filter reported a member")
		}
	}
	if f.PopCount() != 0 {
		t.Fatalf("empty filter popcount = %d", f.PopCount())
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// 100 keys in 2048 bits with k=4: theoretical FP rate well under 2%.
	f := NewFilter(2048, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		f.Add(rng.Uint64())
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Test(rng.Uint64()) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.02 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestResetClears(t *testing.T) {
	f := NewFilter(512, 4)
	f.Add(42)
	f.Reset()
	if f.PopCount() != 0 || f.Test(42) {
		t.Fatal("Reset did not clear the filter")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	f := NewFilter(512, 4)
	f.Add(1)
	c := f.Clone()
	c.Add(2)
	if f.Test(2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(1) {
		t.Fatal("clone lost original contents")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := NewFilter(512, 4), NewFilter(512, 4)
	a.Add(7)
	b.CopyFrom(a)
	if !b.Test(7) {
		t.Fatal("CopyFrom did not transfer bits")
	}
	b.Add(8)
	if a.Test(8) {
		t.Fatal("CopyFrom left filters aliased")
	}
}

func TestUnionContainsBoth(t *testing.T) {
	a, b := NewFilter(1024, 4), NewFilter(1024, 4)
	a.Add(10)
	b.Add(20)
	u := a.Union(b)
	if !u.Test(10) || !u.Test(20) {
		t.Fatal("union missing a member of an input")
	}
	if a.Test(20) || b.Test(10) {
		t.Fatal("Union mutated its inputs")
	}
}

func TestIntersectNullWhenDisjointBits(t *testing.T) {
	a, b := NewFilter(8192, 2), NewFilter(8192, 2)
	a.Add(1)
	b.Add(2)
	// With 8192 bits and 2 hashes, keys 1 and 2 land on disjoint bits with
	// overwhelming probability; verify against the concrete layout.
	inter := a.Intersect(b)
	if got, want := inter.PopCount(), 0; a.intersectsFilter(b) && got == want {
		t.Fatal("IntersectsNonNull true but intersection empty")
	}
	if !a.intersectsFilter(b) && inter.PopCount() != 0 {
		t.Fatal("IntersectsNonNull false but intersection non-empty")
	}
}

func TestIntersectsNonNullMatchesIntersectPopCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a, b := NewFilter(512, 4), NewFilter(512, 4)
		for i := 0; i < rng.Intn(30); i++ {
			a.Add(rng.Uint64())
		}
		for i := 0; i < rng.Intn(30); i++ {
			b.Add(rng.Uint64())
		}
		if a.IntersectsNonNull(b) != (a.Intersect(b).PopCount() > 0) {
			t.Fatal("IntersectsNonNull disagrees with Intersect().PopCount()")
		}
	}
}

func TestGeometryMismatchPanics(t *testing.T) {
	a, b := NewFilter(512, 4), NewFilter(1024, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("geometry mismatch did not panic")
		}
	}()
	a.Union(b)
}

// Property: Test never yields a false negative for any inserted key set.
func TestPropertyNoFalseNegatives(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := NewFilter(1024, 4)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: union popcount >= max of the individual popcounts, and
// intersection popcount <= min.
func TestPropertyUnionIntersectBounds(t *testing.T) {
	prop := func(ka, kb []uint64) bool {
		a, b := NewFilter(512, 4), NewFilter(512, 4)
		for _, k := range ka {
			a.Add(k)
		}
		for _, k := range kb {
			b.Add(k)
		}
		u, i := a.Union(b), a.Intersect(b)
		maxPop := a.PopCount()
		if b.PopCount() > maxPop {
			maxPop = b.PopCount()
		}
		minPop := a.PopCount()
		if b.PopCount() < minPop {
			minPop = b.PopCount()
		}
		return u.PopCount() >= maxPop && i.PopCount() <= minPop
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
