// Package trace records per-transaction event streams from simulations:
// begins, predicted-conflict suspensions, NACK stalls, aborts and commits,
// each stamped with its simulated cycle time. Traces make scheduler
// dynamics inspectable — e.g. watching BFGTS's confidence oscillate
// between serialized and optimistic phases on a transient-conflict
// workload — and are the substrate for offline analysis.
//
// The recorder is bounded: beyond Cap events it counts drops instead of
// growing, so tracing long runs cannot exhaust memory.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/decision"
)

// Kind labels a transaction lifecycle event.
type Kind uint8

// Event kinds.
const (
	// KBegin: a begin attempt started executing (post-scheduling).
	KBegin Kind = iota
	// KSuspend: the scheduler serialized the begin behind Other.
	KSuspend
	// KStall: a transactional access was NACKed by Other.
	KStall
	// KAbort: the attempt rolled back after conflicting with Other.
	KAbort
	// KCommit: the execution committed; Extra is its latency in cycles.
	KCommit
	numKinds
)

// String returns the event label used in trace output. Out-of-range
// kinds render as "invalid(N)" so a corrupted stream is visible in the
// output instead of collapsing to an anonymous "?".
func (k Kind) String() string {
	switch k {
	case KBegin:
		return "begin"
	case KSuspend:
		return "suspend"
	case KStall:
		return "stall"
	case KAbort:
		return "abort"
	case KCommit:
		return "commit"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// HasOther reports whether events of this kind carry a counterparty in
// Other/OtherStx (suspend/stall/abort). Begin and commit events have no
// counterparty; Add normalizes their Other fields to -1.
func (k Kind) HasOther() bool {
	return k == KSuspend || k == KStall || k == KAbort
}

// Event is one trace record.
type Event struct {
	Time    int64 // simulated cycle
	Kind    Kind
	Tid     int // thread
	Stx     int // static transaction
	Attempt int // attempt number within the execution (1-based)
	Other   int // dTxID of the counterparty (suspend/stall/abort), -1 otherwise
	// OtherStx is the counterparty's static transaction ID, recorded
	// explicitly rather than decoded from Other so analysis never depends
	// on the runner's dTxID packing. -1 when there is no counterparty.
	OtherStx int
	Extra    int64 // kind-specific payload (commit latency)
}

// Recorder accumulates events up to a cap.
type Recorder struct {
	Cap     int // maximum retained events; <=0 means DefaultCap
	events  []Event
	dropped int64
	invalid int64
	counts  [numKinds]int64
}

// DefaultCap bounds recorders that do not set Cap.
const DefaultCap = 1 << 20

// Add records an event (or counts a drop past the cap). Events whose
// kind has no counterparty get Other/OtherStx normalized to -1, so a
// stale counterparty left in a reused Event struct cannot leak into the
// stream; out-of-range kinds are retained (the stream stays honest) but
// tallied in Invalid.
func (r *Recorder) Add(e Event) {
	cap := r.Cap
	if cap <= 0 {
		cap = DefaultCap
	}
	if len(r.events) >= cap {
		r.dropped++
		return
	}
	if !e.Kind.HasOther() {
		e.Other, e.OtherStx = -1, -1
	}
	r.events = append(r.events, e)
	if e.Kind < numKinds {
		r.counts[e.Kind]++
	} else {
		r.invalid++
	}
}

// Events returns the retained events in record order.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events exceeded the cap.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Invalid returns how many retained events carried an out-of-range kind.
func (r *Recorder) Invalid() int64 { return r.invalid }

// Counts tallies retained events per kind. The tallies are maintained
// incrementally by Add, so this is O(kinds), not O(events).
func (r *Recorder) Counts() map[Kind]int64 {
	m := make(map[Kind]int64, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		if r.counts[k] > 0 {
			m[k] = r.counts[k]
		}
	}
	return m
}

// WriteJSONL streams the trace as one JSON object per line. The encoding
// is hand-rolled (fields are ints and known strings) to keep large traces
// cheap.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.events {
		_, err := fmt.Fprintf(bw,
			`{"t":%d,"kind":%q,"tid":%d,"stx":%d,"attempt":%d,"other":%d,"other_stx":%d,"extra":%d}`+"\n",
			e.Time, e.Kind.String(), e.Tid, e.Stx, e.Attempt, e.Other, e.OtherStx, e.Extra)
		if err != nil {
			return err
		}
	}
	if r.dropped > 0 {
		if _, err := fmt.Fprintf(bw, `{"dropped":%d}`+"\n", r.dropped); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Summary describes a trace at a glance.
func (r *Recorder) Summary() string {
	c := r.Counts()
	return fmt.Sprintf("events=%d begin=%d suspend=%d stall=%d abort=%d commit=%d dropped=%d",
		len(r.events), c[KBegin], c[KSuspend], c[KStall], c[KAbort], c[KCommit], r.dropped)
}

// WriteChrome lays the trace out as Chrome trace_event JSON (the format
// internal/decision's exporter produces), openable directly in Perfetto:
// one process named `name`, one track per thread, commits as spans
// covering their latency (Extra) and every other event as an instant
// annotated with its counterparty.
func (r *Recorder) WriteChrome(w io.Writer, name string) error {
	var c decision.ChromeTrace
	c.AddProcess(0, name)
	seen := make(map[int]bool)
	for i := range r.events {
		if tid := r.events[i].Tid; !seen[tid] {
			seen[tid] = true
			c.AddThread(0, tid, "thread")
		}
	}
	for i := range r.events {
		e := &r.events[i]
		args := map[string]any{"stx": e.Stx, "attempt": e.Attempt}
		if e.Kind.HasOther() {
			args["other"] = e.Other
			args["other_stx"] = e.OtherStx
		}
		if e.Kind == KCommit && e.Extra > 0 {
			// Extra is the commit latency: draw the whole execution.
			c.AddSpan(0, e.Tid, e.Kind.String(), e.Time-e.Extra, e.Extra, args)
			continue
		}
		c.AddInstant(0, e.Tid, e.Kind.String(), e.Time, args)
	}
	_, err := c.WriteTo(w)
	return err
}

// ConflictChains extracts, per (stx, other-stx) pair, how many times a
// suspension or stall chained the pair — the raw material of the paper's
// conflict graph, recoverable from a trace alone.
func (r *Recorder) ConflictChains(numStatic int) [][]int64 {
	m := make([][]int64, numStatic)
	for i := range m {
		m[i] = make([]int64, numStatic)
	}
	for _, e := range r.events {
		if (e.Kind == KSuspend || e.Kind == KStall || e.Kind == KAbort) && e.OtherStx >= 0 {
			if e.Stx < numStatic && e.OtherStx < numStatic {
				m[e.Stx][e.OtherStx]++
			}
		}
	}
	return m
}
