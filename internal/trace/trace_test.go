package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Add(Event{Time: 1, Kind: KBegin, Tid: 3, Stx: 0, Attempt: 1, Other: -1})
	r.Add(Event{Time: 5, Kind: KCommit, Tid: 3, Stx: 0, Attempt: 1, Other: -1, Extra: 4})
	if len(r.Events()) != 2 || r.Dropped() != 0 {
		t.Fatalf("events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
	c := r.Counts()
	if c[KBegin] != 1 || c[KCommit] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestRecorderCapAndDrops(t *testing.T) {
	r := Recorder{Cap: 3}
	for i := 0; i < 10; i++ {
		r.Add(Event{Time: int64(i), Kind: KBegin})
	}
	if len(r.Events()) != 3 || r.Dropped() != 7 {
		t.Fatalf("cap not enforced: events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := Recorder{Cap: 2}
	r.Add(Event{Time: 10, Kind: KStall, Tid: 1, Stx: 2, Attempt: 1, Other: 7})
	r.Add(Event{Time: 11, Kind: KAbort, Tid: 1, Stx: 2, Attempt: 1, Other: 7})
	r.Add(Event{Time: 12, Kind: KCommit}) // dropped
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // two events + dropped marker
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `"kind":"stall"`) || !strings.Contains(lines[0], `"other":7`) {
		t.Fatalf("bad first line: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"dropped":1`) {
		t.Fatalf("missing drop marker: %s", lines[2])
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KBegin: "begin", KSuspend: "suspend", KStall: "stall",
		KAbort: "abort", KCommit: "commit", Kind(200): "invalid(200)",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestRecorderCapBoundary pins the drop accounting at the exact edge:
// filling to Cap drops nothing, one more drops exactly one.
func TestRecorderCapBoundary(t *testing.T) {
	const cap = 5
	r := Recorder{Cap: cap}
	for i := 0; i < cap; i++ {
		r.Add(Event{Time: int64(i), Kind: KBegin})
	}
	if len(r.Events()) != cap || r.Dropped() != 0 {
		t.Fatalf("at Cap: events=%d dropped=%d, want %d/0", len(r.Events()), r.Dropped(), cap)
	}
	r.Add(Event{Time: cap, Kind: KCommit})
	if len(r.Events()) != cap || r.Dropped() != 1 {
		t.Fatalf("at Cap+1: events=%d dropped=%d, want %d/1", len(r.Events()), r.Dropped(), cap)
	}
	// The dropped event must not leak into the kind counters either.
	if c := r.Counts(); c[KCommit] != 0 || c[KBegin] != cap {
		t.Fatalf("counts after boundary drop = %v", c)
	}
}

// TestOtherNormalized: kinds without a counterparty cannot carry one —
// stale Other fields from a reused Event struct are scrubbed to -1.
func TestOtherNormalized(t *testing.T) {
	var r Recorder
	r.Add(Event{Kind: KBegin, Other: 7, OtherStx: 3})   // stale counterparty
	r.Add(Event{Kind: KCommit, Other: 9, OtherStx: 1})  // stale counterparty
	r.Add(Event{Kind: KSuspend, Other: 7, OtherStx: 3}) // real counterparty
	evs := r.Events()
	if evs[0].Other != -1 || evs[0].OtherStx != -1 {
		t.Fatalf("begin kept counterparty: %+v", evs[0])
	}
	if evs[1].Other != -1 || evs[1].OtherStx != -1 {
		t.Fatalf("commit kept counterparty: %+v", evs[1])
	}
	if evs[2].Other != 7 || evs[2].OtherStx != 3 {
		t.Fatalf("suspend lost counterparty: %+v", evs[2])
	}
}

// TestInvalidKindCounted: out-of-range kinds are retained but tallied.
func TestInvalidKindCounted(t *testing.T) {
	var r Recorder
	r.Add(Event{Kind: KBegin})
	r.Add(Event{Kind: Kind(200)})
	if r.Invalid() != 1 {
		t.Fatalf("Invalid() = %d, want 1", r.Invalid())
	}
	if len(r.Events()) != 2 {
		t.Fatalf("invalid event not retained: %d events", len(r.Events()))
	}
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"kind":"invalid(200)"`) {
		t.Fatalf("invalid kind not surfaced in output:\n%s", sb.String())
	}
}

// TestWriteChrome checks the Chrome adapter: metadata for the process
// and each thread, a commit span covering its latency, instants for the
// rest, and deterministic bytes across two writes.
func TestWriteChrome(t *testing.T) {
	var r Recorder
	r.Add(Event{Time: 100, Kind: KBegin, Tid: 0, Stx: 1, Attempt: 1})
	r.Add(Event{Time: 150, Kind: KSuspend, Tid: 1, Stx: 0, Attempt: 1, Other: 5, OtherStx: 1})
	r.Add(Event{Time: 400, Kind: KCommit, Tid: 0, Stx: 1, Attempt: 1, Extra: 300})
	var a, b bytes.Buffer
	if err := r.WriteChrome(&a, "bench/mgr"); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChrome(&b, "bench/mgr"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteChrome output is not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		`"traceEvents"`, `"process_name"`, `"thread_name"`,
		`"ph":"X"`, `"ph":"i"`, `"name":"commit"`, `"name":"suspend"`,
		`"other_stx":1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome output missing %s:\n%s", want, out)
		}
	}
}

func TestConflictChains(t *testing.T) {
	var r Recorder
	// stx 0 stalls behind dTx of (thread 3, stx 1) with 2 statics.
	r.Add(Event{Kind: KStall, Stx: 0, Other: 3*2 + 1, OtherStx: 1})
	r.Add(Event{Kind: KAbort, Stx: 0, Other: 3*2 + 1, OtherStx: 1})
	r.Add(Event{Kind: KCommit, Stx: 0, Other: -1, OtherStx: -1})
	m := r.ConflictChains(2)
	if m[0][1] != 2 {
		t.Fatalf("chains[0][1] = %d, want 2", m[0][1])
	}
	if m[0][0] != 0 || m[1][0] != 0 {
		t.Fatalf("spurious chains: %v", m)
	}
}

func TestSummary(t *testing.T) {
	var r Recorder
	r.Add(Event{Kind: KBegin})
	r.Add(Event{Kind: KCommit})
	s := r.Summary()
	if !strings.Contains(s, "begin=1") || !strings.Contains(s, "commit=1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestWriteJSONLEmpty(t *testing.T) {
	var r Recorder
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty recorder wrote %q, want nothing", buf.String())
	}
}

func TestWriteJSONLDroppedLine(t *testing.T) {
	r := Recorder{Cap: 1}
	r.Add(Event{Kind: KBegin, Other: -1, OtherStx: -1})
	r.Add(Event{Kind: KCommit, Other: -1, OtherStx: -1}) // over cap: dropped
	r.Add(Event{Kind: KCommit, Other: -1, OtherStx: -1}) // over cap: dropped
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (one event + dropped marker):\n%s", len(lines), buf.String())
	}
	if lines[1] != `{"dropped":2}` {
		t.Fatalf("dropped marker = %q", lines[1])
	}
	// Dropped events must not pollute the per-kind counters.
	if c := r.Counts(); c[KCommit] != 0 || c[KBegin] != 1 {
		t.Fatalf("counts after drops = %v", c)
	}
}

func TestCountsO1MatchesScan(t *testing.T) {
	var r Recorder
	kinds := []Kind{KBegin, KBegin, KSuspend, KStall, KAbort, KCommit, KCommit, KCommit}
	for _, k := range kinds {
		r.Add(Event{Kind: k})
	}
	got := r.Counts()
	want := map[Kind]int64{}
	for _, e := range r.Events() {
		want[e.Kind]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("Counts()[%v] = %d, want %d", k, got[k], n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Counts() has %d kinds, want %d", len(got), len(want))
	}
}
