package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Add(Event{Time: 1, Kind: KBegin, Tid: 3, Stx: 0, Attempt: 1, Other: -1})
	r.Add(Event{Time: 5, Kind: KCommit, Tid: 3, Stx: 0, Attempt: 1, Other: -1, Extra: 4})
	if len(r.Events()) != 2 || r.Dropped() != 0 {
		t.Fatalf("events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
	c := r.Counts()
	if c[KBegin] != 1 || c[KCommit] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestRecorderCapAndDrops(t *testing.T) {
	r := Recorder{Cap: 3}
	for i := 0; i < 10; i++ {
		r.Add(Event{Time: int64(i), Kind: KBegin})
	}
	if len(r.Events()) != 3 || r.Dropped() != 7 {
		t.Fatalf("cap not enforced: events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := Recorder{Cap: 2}
	r.Add(Event{Time: 10, Kind: KStall, Tid: 1, Stx: 2, Attempt: 1, Other: 7})
	r.Add(Event{Time: 11, Kind: KAbort, Tid: 1, Stx: 2, Attempt: 1, Other: 7})
	r.Add(Event{Time: 12, Kind: KCommit}) // dropped
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // two events + dropped marker
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `"kind":"stall"`) || !strings.Contains(lines[0], `"other":7`) {
		t.Fatalf("bad first line: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"dropped":1`) {
		t.Fatalf("missing drop marker: %s", lines[2])
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KBegin: "begin", KSuspend: "suspend", KStall: "stall",
		KAbort: "abort", KCommit: "commit", Kind(200): "?",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestConflictChains(t *testing.T) {
	var r Recorder
	// stx 0 stalls behind dTx of (thread 3, stx 1) with 2 statics.
	r.Add(Event{Kind: KStall, Stx: 0, Other: 3*2 + 1, OtherStx: 1})
	r.Add(Event{Kind: KAbort, Stx: 0, Other: 3*2 + 1, OtherStx: 1})
	r.Add(Event{Kind: KCommit, Stx: 0, Other: -1, OtherStx: -1})
	m := r.ConflictChains(2)
	if m[0][1] != 2 {
		t.Fatalf("chains[0][1] = %d, want 2", m[0][1])
	}
	if m[0][0] != 0 || m[1][0] != 0 {
		t.Fatalf("spurious chains: %v", m)
	}
}

func TestSummary(t *testing.T) {
	var r Recorder
	r.Add(Event{Kind: KBegin})
	r.Add(Event{Kind: KCommit})
	s := r.Summary()
	if !strings.Contains(s, "begin=1") || !strings.Contains(s, "commit=1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestWriteJSONLEmpty(t *testing.T) {
	var r Recorder
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty recorder wrote %q, want nothing", buf.String())
	}
}

func TestWriteJSONLDroppedLine(t *testing.T) {
	r := Recorder{Cap: 1}
	r.Add(Event{Kind: KBegin, Other: -1, OtherStx: -1})
	r.Add(Event{Kind: KCommit, Other: -1, OtherStx: -1}) // over cap: dropped
	r.Add(Event{Kind: KCommit, Other: -1, OtherStx: -1}) // over cap: dropped
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (one event + dropped marker):\n%s", len(lines), buf.String())
	}
	if lines[1] != `{"dropped":2}` {
		t.Fatalf("dropped marker = %q", lines[1])
	}
	// Dropped events must not pollute the per-kind counters.
	if c := r.Counts(); c[KCommit] != 0 || c[KBegin] != 1 {
		t.Fatalf("counts after drops = %v", c)
	}
}

func TestCountsO1MatchesScan(t *testing.T) {
	var r Recorder
	kinds := []Kind{KBegin, KBegin, KSuspend, KStall, KAbort, KCommit, KCommit, KCommit}
	for _, k := range kinds {
		r.Add(Event{Kind: k})
	}
	got := r.Counts()
	want := map[Kind]int64{}
	for _, e := range r.Events() {
		want[e.Kind]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("Counts()[%v] = %d, want %d", k, got[k], n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Counts() has %d kinds, want %d", len(got), len(want))
	}
}
