package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder statically audits every sync.Mutex / sync.RWMutex path and the
// STM commit path's canonical-order discipline.
//
// Mutex rules (applied per function, statements scanned in source order —
// an intentionally linear approximation that matches this repo's
// straight-line lock style):
//
//   - double lock: a second .Lock() (or write-Lock on an RWMutex) on a
//     lock already held in the same function is a guaranteed self-deadlock.
//   - missing unlock: a function whose Lock calls outnumber its Unlock
//     calls (deferred unlocks count) leaks the lock on some path. A
//     deliberate handoff carries //bfgts:lock-handoff <where> on or above
//     the Lock call.
//   - order cycles: whenever lock B is acquired while lock A is held, the
//     package-wide acquisition graph gains edge A->B. Locks are identified
//     by their declaration (a struct field or variable), so every instance
//     of Runner.mu is one node. Any cycle A->...->A is a potential
//     deadlock and every edge inside the cycle is reported.
//
// Canonical-order rule (the lock-free commit path): a function annotated
// //bfgts:lock-rank <slice> promises that the loop acquiring per-entry
// locks over <slice> (versioned-lock CompareAndSwap or Lock calls) only
// runs after <slice> was sorted into the canonical order. The analyzer
// requires a call to a sort-named function taking <slice> before each such
// loop — removing the sortWrites call from Tx.commit fails here before it
// deadlocks two real workers.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "double-lock/missing-unlock on mutex paths, package-wide lock-order cycles, and //bfgts:lock-rank sort-before-acquire",
	Run:  runLockOrder,
}

// lockMethod classifies a method name on a mutex-typed receiver.
type lockMethod int

const (
	lmNone lockMethod = iota
	lmLock
	lmUnlock
	lmRLock
	lmRUnlock
)

func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockMethod, types.Object, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lmNone, nil, nil
	}
	var m lockMethod
	switch sel.Sel.Name {
	case "Lock":
		m = lmLock
	case "Unlock":
		m = lmUnlock
	case "RLock":
		m = lmRLock
	case "RUnlock":
		m = lmRUnlock
	default:
		return lmNone, nil, nil
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return lmNone, nil, nil
	}
	if !isPkgType(tv.Type, "sync", "Mutex") && !isPkgType(tv.Type, "sync", "RWMutex") {
		return lmNone, nil, nil
	}
	return m, lockObj(pass, sel.X), sel.X
}

// lockObj resolves a mutex expression to its declaration object: the
// struct field (one node per field across all instances) or the variable.
func lockObj(pass *Pass, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[x.Sel]
	case *ast.Ident:
		return pass.TypesInfo.Uses[x]
	case *ast.IndexExpr:
		return lockObj(pass, x.X)
	case *ast.ParenExpr:
		return lockObj(pass, x.X)
	case *ast.StarExpr:
		return lockObj(pass, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockObj(pass, x.X)
		}
	}
	return nil
}

// lockEdge is one "to acquired while from held" observation.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
}

func runLockOrder(pass *Pass) error {
	var edges []lockEdge
	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		edges = append(edges, lockScanFunc(pass, fd)...)
	})

	// Cycle detection: every edge whose endpoints reach each other is part
	// of a deadlock-capable cycle.
	adj := map[types.Object][]types.Object{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{}
		stack := []types.Object{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	for _, e := range edges {
		if reaches(e.to, e.from) {
			pass.Reportf(e.pos, "lock order cycle: %s acquired while %s is held, but the package also acquires them in the opposite order; pick one canonical order", e.from.Name(), e.to.Name())
		}
	}
	return nil
}

// lockScanFunc applies the per-function mutex rules and returns the
// function's acquisition edges. Statements are visited in source order;
// a held-set tracks write locks and read locks alike.
func lockScanFunc(pass *Pass, fd *ast.FuncDecl) []lockEdge {
	type lockCount struct {
		locks, unlocks   int
		rlocks, runlocks int
		firstLock        token.Pos
		firstRLock       token.Pos
	}
	counts := map[types.Object]*lockCount{}
	var order []types.Object // deterministic reporting order
	var held []types.Object
	var edges []lockEdge
	file := pass.enclosingFile(fd.Pos())

	get := func(obj types.Object) *lockCount {
		c := counts[obj]
		if c == nil {
			c = &lockCount{}
			counts[obj] = c
			order = append(order, obj)
		}
		return c
	}
	release := func(obj types.Object) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == obj {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			m, obj, _ := classifyLockCall(pass, n.Call)
			if obj == nil {
				return true // walk in: the defer may wrap a closure with lock calls
			}
			switch m {
			case lmUnlock:
				get(obj).unlocks++
				release(obj)
			case lmRUnlock:
				get(obj).runlocks++
				release(obj)
			case lmLock, lmRLock:
				// A deferred Lock is almost certainly a typo'd Unlock.
				pass.Reportf(n.Pos(), "deferred %s acquisition in %s; defer the Unlock, not the Lock", obj.Name(), fd.Name.Name)
			}
			return false // the call inside was handled
		case *ast.CallExpr:
			m, obj, _ := classifyLockCall(pass, n)
			if obj == nil {
				return true
			}
			c := get(obj)
			switch m {
			case lmLock:
				for _, h := range held {
					if h == obj {
						pass.Reportf(n.Pos(), "%s locked again in %s while already held: self-deadlock", obj.Name(), fd.Name.Name)
					} else {
						edges = append(edges, lockEdge{from: h, to: obj, pos: n.Pos()})
					}
				}
				held = append(held, obj)
				c.locks++
				if c.firstLock == token.NoPos {
					c.firstLock = n.Pos()
				}
			case lmRLock:
				for _, h := range held {
					if h != obj {
						edges = append(edges, lockEdge{from: h, to: obj, pos: n.Pos()})
					}
				}
				held = append(held, obj)
				c.rlocks++
				if c.firstRLock == token.NoPos {
					c.firstRLock = n.Pos()
				}
			case lmUnlock:
				c.unlocks++
				release(obj)
			case lmRUnlock:
				c.runlocks++
				release(obj)
			}
		}
		return true
	})

	for _, obj := range order {
		c := counts[obj]
		if c.locks > c.unlocks && !lockHandoffOK(pass, file, fd, c.firstLock) {
			pass.Reportf(c.firstLock, "%s has %d Lock call(s) but %d Unlock call(s) in %s; some path leaks the lock (or document with //bfgts:lock-handoff <where>)", obj.Name(), c.locks, c.unlocks, fd.Name.Name)
		}
		if c.rlocks > c.runlocks && !lockHandoffOK(pass, file, fd, c.firstRLock) {
			pass.Reportf(c.firstRLock, "%s has %d RLock call(s) but %d RUnlock call(s) in %s; some path leaks the read lock (or document with //bfgts:lock-handoff <where>)", obj.Name(), c.rlocks, c.runlocks, fd.Name.Name)
		}
	}

	checkLockRank(pass, fd)
	return edges
}

// lockHandoffOK reports whether a //bfgts:lock-handoff directive covers the
// acquisition at pos (on/above the line, or on the function's doc).
func lockHandoffOK(pass *Pass, file *ast.File, fd *ast.FuncDecl, pos token.Pos) bool {
	if pos == token.NoPos {
		return true
	}
	if _, ok := directiveArgs(fd.Doc, "lock-handoff"); ok {
		return true
	}
	return file != nil && lineDirective(pass.Fset, file, pos, "lock-handoff")
}

// checkLockRank enforces //bfgts:lock-rank <slice>: each loop over the
// named slice that acquires per-entry locks must be preceded by a
// canonical-order sort of that slice.
func checkLockRank(pass *Pass, fd *ast.FuncDecl) {
	args, ok := directiveArgs(fd.Doc, "lock-rank")
	if !ok {
		return
	}
	if len(args) != 1 {
		return // arity is the directives analyzer's finding
	}
	name := args[0]

	type sortCall struct{ pos token.Pos }
	var sorts []sortCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = fun.Name
		case *ast.SelectorExpr:
			callee = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				callee = id.Name + "." + callee // sort.Slice, slices.SortFunc
			}
		}
		if !strings.Contains(strings.ToLower(callee), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if exprContainsName(arg, name) {
				sorts = append(sorts, sortCall{pos: call.Pos()})
			}
		}
		return true
	})
	sort.Slice(sorts, func(i, j int) bool { return sorts[i].pos < sorts[j].pos })

	loops := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !exprContainsName(rng.X, name) || !loopAcquiresLocks(rng.Body) {
			return true
		}
		loops++
		sorted := false
		for _, s := range sorts {
			if s.pos < rng.Pos() {
				sorted = true
				break
			}
		}
		if !sorted {
			pass.Reportf(rng.Pos(), "lock-acquisition loop over %s in %s runs before any canonical-order sort of %s; acquiring in arbitrary order deadlocks against a concurrent committer", name, fd.Name.Name, name)
		}
		return true
	})
	if loops == 0 {
		pass.Reportf(fd.Pos(), "//bfgts:lock-rank %s on %s matches no lock-acquisition loop over %s; drop or fix the directive", name, fd.Name.Name, name)
	}
}

// loopAcquiresLocks reports whether a loop body takes per-entry locks:
// a CompareAndSwap (versioned-lock acquire) or a .Lock() call.
func loopAcquiresLocks(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "CompareAndSwap" || sel.Sel.Name == "Lock" || sel.Sel.Name == "TryLock" {
				found = true
			}
		}
		return true
	})
	return found
}
