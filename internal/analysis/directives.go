package analysis

import (
	"go/ast"
	"sort"
	"strconv"
	"strings"
)

// Directives validates the //bfgts: directive comments themselves, so a
// typo'd or misplaced annotation fails vet instead of silently disabling
// the check it was meant to configure:
//
//   - the directive name must be one of the known set;
//   - func-doc directives (allocfree, seqlock, seqlock-pub, spsc-producer,
//     spsc-consumer, lock-rank) must sit on a function declaration's doc
//     comment — on a type, var, or free-floating line they bind to
//     nothing;
//   - arities: seqlock/seqlock-pub/lock-rank take exactly one argument,
//     allocfree and the spsc roles take none, pin-handoff and lock-handoff
//     need at least a location, and ignore needs an analyzer name AND a
//     written justification (a bare "//bfgts:ignore determinism" is
//     rejected — suppressions must say why);
//   - "// bfgts:..." with a space after // is flagged as malformed: that
//     is exactly what gofmt rewrites a non-directive-shaped form into,
//     leaving an annotation that looks alive but binds to nothing.
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "every //bfgts: comment must name a known directive, sit in a legal position, and carry its required arguments",
	Run:  runDirectives,
}

// directiveSpec describes one known directive's placement and arity.
type directiveSpec struct {
	docOnly  bool // must be a FuncDecl doc comment
	minArgs  int
	maxArgs  int // -1: unbounded
	argsHint string
}

var knownDirectives = map[string]directiveSpec{
	"allocfree":     {docOnly: true, minArgs: 0, maxArgs: 0},
	"seqlock":       {docOnly: true, minArgs: 1, maxArgs: 1, argsHint: "<epochField>"},
	"seqlock-pub":   {docOnly: true, minArgs: 1, maxArgs: 1, argsHint: "<idxField>"},
	"spsc-producer": {docOnly: true, minArgs: 0, maxArgs: 0},
	"spsc-consumer": {docOnly: true, minArgs: 0, maxArgs: 0},
	"lock-rank":     {docOnly: true, minArgs: 1, maxArgs: 1, argsHint: "<slice>"},
	"pin-handoff":   {minArgs: 1, maxArgs: -1, argsHint: "<where>"},
	"lock-handoff":  {minArgs: 1, maxArgs: -1, argsHint: "<where>"},
	"ignore":        {minArgs: 2, maxArgs: -1, argsHint: "<analyzer> <justification>"},
}

func runDirectives(pass *Pass) error {
	for _, f := range pass.Files {
		// Comment groups serving as FuncDecl docs.
		funcDocs := map[*ast.CommentGroup]bool{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := commentText(c)
				rest, ok := strings.CutPrefix(text, "//bfgts:")
				if !ok {
					// "// bfgts:" is what gofmt turns a malformed
					// directive into (directive comments must have no
					// space after //) — the annotation looks alive but
					// binds to nothing.
					if after, spaced := strings.CutPrefix(text, "//"); spaced {
						if strings.HasPrefix(strings.TrimLeft(after, " \t"), "bfgts:") {
							pass.Reportf(c.Pos(), "malformed //bfgts: directive: no space allowed after // (gofmt mangles non-directive forms into this)")
						}
					}
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					pass.Reportf(c.Pos(), "empty //bfgts: directive")
					continue
				}
				name, args := fields[0], fields[1:]
				spec, known := knownDirectives[name]
				if !known {
					pass.Reportf(c.Pos(), "unknown directive //bfgts:%s; known: %s", name, knownDirectiveNames())
					continue
				}
				if spec.docOnly && !funcDocs[cg] {
					pass.Reportf(c.Pos(), "//bfgts:%s must be on a function declaration's doc comment; here it binds to nothing", name)
					continue
				}
				if len(args) < spec.minArgs || (spec.maxArgs >= 0 && len(args) > spec.maxArgs) {
					want := describeArity(spec)
					pass.Reportf(c.Pos(), "//bfgts:%s takes %s, got %d: //bfgts:%s %s", name, want, len(args), name, spec.argsHint)
				}
			}
		}
	}
	return nil
}

func describeArity(spec directiveSpec) string {
	switch {
	case spec.minArgs == spec.maxArgs && spec.minArgs == 0:
		return "no arguments"
	case spec.minArgs == spec.maxArgs:
		return pluralArgs(spec.minArgs)
	case spec.maxArgs < 0:
		return "at least " + pluralArgs(spec.minArgs)
	default:
		return pluralArgs(spec.minArgs) + " to " + pluralArgs(spec.maxArgs)
	}
}

func pluralArgs(n int) string {
	if n == 1 {
		return "1 argument"
	}
	return strconv.Itoa(n) + " arguments"
}

// knownDirectiveNames renders the sorted known-directive list for the
// unknown-directive message.
func knownDirectiveNames() string {
	names := make([]string, 0, len(knownDirectives))
	for name := range knownDirectives {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
