package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDirectives(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.Directives, "directives")
}
