package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSeqlock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.Seqlock, "seqlock")
}
