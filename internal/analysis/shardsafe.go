package analysis

import (
	"go/ast"
	"go/types"
)

// ShardSafe audits every type carrying the ShardSafe marker method (the
// sched.ShardSafe interface's sole member). A marked manager is
// instantiated once per PDES lane and its methods run concurrently with
// the other lanes' copies, so:
//
//   - its methods must not write package-level variables — a shared
//     counter or cache forks the lanes' decision streams apart from the
//     sequential reference (and races);
//   - its methods must not touch the shared Env's Rand field — draw order
//     depends on cross-lane interleaving, which is exactly the
//     nondeterminism the marker promises away. Per-thread state (a slice
//     indexed by the caller's thread id, like PerThreadBackoff.jitter) is
//     the sanctioned replacement.
//
// The marker is detected structurally (a ShardSafe() method declaration)
// rather than by interface assertion, so fixtures and future packages
// need no sched import for the rule to bite.
var ShardSafe = &Analyzer{
	Name: "shardsafe",
	Doc:  "types with the ShardSafe marker must not write package-level state or use the shared Env.Rand from their methods",
	Run:  runShardSafe,
}

func runShardSafe(pass *Pass) error {
	// Named types declaring a ShardSafe() method.
	marked := map[*types.Named]bool{}
	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Recv == nil || fd.Name.Name != "ShardSafe" {
			return
		}
		if len(fd.Recv.List) == 1 {
			if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok {
				if n := namedType(tv.Type); n != nil {
					marked[n] = true
				}
			}
		}
	})
	if len(marked) == 0 {
		return nil
	}

	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Recv == nil || len(fd.Recv.List) != 1 {
			return
		}
		tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
		if !ok {
			return
		}
		n := namedType(tv.Type)
		if n == nil || !marked[n] {
			return
		}
		checkShardSafeMethod(pass, fd, n)
	})
	return nil
}

func checkShardSafeMethod(pass *Pass, fd *ast.FuncDecl, recv *types.Named) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if obj := pkgLevelTarget(pass, lhs); obj != nil {
					pass.Reportf(lhs.Pos(), "ShardSafe type %s writes package-level %s in %s; lanes run this concurrently — keep state per-instance or per-thread", recv.Obj().Name(), obj.Name(), fd.Name.Name)
				}
			}
		case *ast.IncDecStmt:
			if obj := pkgLevelTarget(pass, node.X); obj != nil {
				pass.Reportf(node.Pos(), "ShardSafe type %s writes package-level %s in %s; lanes run this concurrently — keep state per-instance or per-thread", recv.Obj().Name(), obj.Name(), fd.Name.Name)
			}
		case *ast.SelectorExpr:
			// env.Rand (or anything .Rand on an Env-typed value): the shared
			// stream whose draw order the marker forbids depending on.
			if node.Sel.Name != "Rand" {
				return true
			}
			if xt, ok := info.Types[node.X]; ok {
				if n := namedType(xt.Type); n != nil && n.Obj() != nil && n.Obj().Name() == "Env" {
					pass.Reportf(node.Pos(), "ShardSafe type %s reads the shared Env.Rand in %s; draw order depends on lane interleaving — use per-thread state instead", recv.Obj().Name(), fd.Name.Name)
				}
			}
		}
		return true
	})
}

// pkgLevelTarget resolves an assignment target to a package-level variable
// object, walking through index/star/paren wrappers. Blank and local
// targets return nil; so do field selectors (per-instance state is fine).
func pkgLevelTarget(pass *Pass, lhs ast.Expr) types.Object {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// otherpkg.Global = ...: the selector itself names the var.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
						return v
					}
					return nil
				}
			}
			// A selector whose root resolves to a package-level var is still
			// a package-level write (pkgState.field = ...).
			lhs = x.X
		default:
			return nil
		}
	}
}
