// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against `// want` expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract closely enough that
// fixtures would port over unchanged:
//
//	func bad() { time.Now() } // want `time\.Now`
//
// A want comment holds one or more quoted regular expressions (double- or
// back-quoted); every diagnostic reported on that line must match one of
// them, every expectation must be matched by some diagnostic, and lines
// without a want comment must produce no diagnostics.
//
// Fixtures live under <dir>/src/<pkg>/ and may import only the standard
// library (they are type-checked with the stdlib source importer, since
// this module vendors no x/tools loader).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes the fixture package at dir/src/pkg with a and reports any
// mismatch between diagnostics and // want expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", pkg)
	names, err := filepath.Glob(filepath.Join(pkgDir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s: %v", pkgDir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := cfg.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", pkg, err)
	}

	diags, err := analysis.Run(a, fset, files, tpkg, info)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	matched := map[*want]bool{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := posKey{pos.Filename, pos.Line}
		ok := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

// collectWants parses every `// want "re" ...` comment into expectations
// keyed by (file, line).
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				// An expectation may trail a directive comment on the same
				// line ("//bfgts:bogus // want `...`"): diagnostics reported
				// at the directive's own position need a same-line want.
				if i := strings.Index(text, "// want "); i > 0 {
					text = text[i+2:]
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := posKey{pos.Filename, pos.Line}
				patterns, err := splitQuoted(rest)
				if err != nil || len(patterns) == 0 {
					t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts consecutive Go-quoted strings ("..." or `...`).
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		// Find the index of the closing quote, honoring backslash
		// escapes inside double quotes.
		end := -1
		switch s[0] {
		case '"':
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
		case '`':
			if i := strings.Index(s[1:], "`"); i >= 0 {
				end = i + 1
			}
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		quoted := s[:end+1]
		unq, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("unquote %q: %v", quoted, err)
		}
		out = append(out, unq)
		s = s[end+1:]
	}
}

// TestData returns the absolute path of the caller-relative testdata
// directory, matching the x/tools helper of the same name.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("no testdata directory: %v", err)
	}
	return dir
}
