package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.LockOrder, "lockorder")
}
