package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the byte-identical-output contract statically: the
// pinned packages (internal/sim, internal/tm, internal/sched,
// internal/harness — see pinnedPackages in vet.go) may not read the wall
// clock, draw from the process-global math/rand source, or let unordered
// map-range iteration feed appends or rendered output.
//
// The map-range rule flags a `for ... range m` over a map whose body
//
//   - appends to a slice declared outside the loop, or
//   - calls an output routine (the fmt print family, or any Write*/Print*
//     method),
//
// because either launders the map's randomized iteration order into
// observable results. The one sanctioned shape is collect-then-sort: a body
// whose only appends push the range key/value variables themselves into a
// slice that is later passed to a sort call (sort.Strings, sort.Slice,
// slices.Sort, or any function whose name contains "sort") in the same
// function. Order-independent bodies — map writes, commutative accumulation,
// deletes — are not flagged.
//
// Seeded rand.New(rand.NewSource(seed)) is always allowed; only the
// top-level convenience functions that consult the shared global source
// (rand.Intn, rand.Float64, rand.Shuffle, ...) are banned.
var Determinism = &Analyzer{
	Name:       "determinism",
	Doc:        "forbid wall-clock time, global math/rand, and map-range iteration feeding output or appends in byte-identical packages",
	PinnedOnly: true,
	Run:        runDeterminism,
}

// bannedTime are the time-package functions that read the wall clock.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// bannedGlobalRand are the math/rand and math/rand/v2 top-level functions
// that draw from the shared global source. Constructors (New, NewSource,
// NewPCG, NewChaCha8, NewZipf) are deterministic given a seed and allowed.
var bannedGlobalRand = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "N": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDeterminism(pass *Pass) error {
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkDetSelector(pass, n)
		case *ast.RangeStmt:
			checkDetMapRange(pass, n, stack)
		}
		return true
	})
	return nil
}

// checkDetSelector flags pkg.Fn selectors into time's wall-clock readers
// and math/rand's global-source functions.
func checkDetSelector(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if bannedTime[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; byte-identical packages must take time from the simulated engine", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if bannedGlobalRand[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "global math/rand.%s draws from the process-wide source; use a seeded rand.New(rand.NewSource(...))", sel.Sel.Name)
		}
	}
}

// checkDetMapRange applies the map-range rule described on Determinism.
func checkDetMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	keyObj := rangeVarObj(pass, rng.Key)
	valObj := rangeVarObj(pass, rng.Value)

	type appendSite struct {
		call       *ast.CallExpr
		target     *ast.Ident // nil when the target is not a plain identifier
		sortableOK bool       // appends only the range key/value variables
	}
	var appends []appendSite
	var outputPos token.Pos
	var outputWhat string

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, isOut := outputCallName(pass, call); isOut && outputPos == token.NoPos {
			outputPos = call.Pos()
			outputWhat = name
		}
		if !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
			return true
		}
		site := appendSite{call: call}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			// Only an append target declared outside the loop leaks
			// iteration order; a loop-local scratch dies each iteration.
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()) {
				return true
			}
			site.target = id
		} else {
			// Selector/index targets (s.free, bufs[i]) always outlive the
			// loop and have no collect-then-sort form.
			appends = append(appends, site)
			return true
		}
		site.sortableOK = true
		for _, arg := range call.Args[1:] {
			id, ok := arg.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] == nil ||
				(pass.TypesInfo.Uses[id] != keyObj && pass.TypesInfo.Uses[id] != valObj) {
				site.sortableOK = false
				break
			}
		}
		appends = append(appends, site)
		return true
	})

	if outputPos != token.NoPos {
		pass.Reportf(rng.Pos(), "map iteration order feeds %s output; iterate sorted keys instead", outputWhat)
		return
	}
	if len(appends) == 0 {
		return
	}
	// Collect-then-sort exemption: every append pushes only the range
	// variables, and every target is sorted after the loop.
	exempt := true
	fn := enclosingFuncBody(stack)
	for _, site := range appends {
		if !site.sortableOK || site.target == nil || fn == nil ||
			!sortedAfter(pass, fn, rng.End(), site.target) {
			exempt = false
			break
		}
	}
	if exempt {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order feeds an append outside the loop; sort the keys first (or append only keys and sort the slice after the loop)")
}

// rangeVarObj resolves a range clause variable (k or v) to its object.
func rangeVarObj(pass *Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outputCallName reports whether call renders output: the fmt print family
// or any method whose name starts with Write or Print.
func outputCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			if strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint") {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	if strings.HasPrefix(sel.Sel.Name, "Write") || strings.HasPrefix(sel.Sel.Name, "Print") {
		return "." + sel.Sel.Name, true
	}
	return "", false
}

// enclosingFuncBody returns the body of the innermost enclosing function
// (declaration or literal) on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedAfter reports whether, after position pos, the identifier's object
// appears as an argument to a call whose callee name contains "sort".
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, target *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					name = pn.Imported().Name() + name
				}
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
