package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// gateEntryPoints maps each package with a Test*AllocFree runtime gate to
// the hot-path functions that gate drives. Every one of them must carry the
// //bfgts:allocfree directive, so the static analyzer and the runtime
// testing.AllocsPerRun gates pin the same set of functions: the analyzer
// explains *why* a gate regressed, and the gate catches allocation sources
// (map growth, runtime-internal paths) the analyzer cannot see.
var gateEntryPoints = map[string][]string{
	"tm": { // TestTxLifecycleAllocFree / TestShardHotPathAllocFree (via processDrained)
		"Begin", "Access", "Commit", "Abort", "release", "Unpin",
		"add", "has", "each", "appendTo", "intersects", "reset",
		"LineWriteHeld",
	},
	"sim": { // TestEngineDispatchAllocFree / TestShardHotPathAllocFree
		"At", "After", "AfterArg", "AtHandle", "AfterHandle",
		"AtArgHandle", "AfterArgHandle", "Step", "push", "pop",
		"PeekKey", "Publish", "MinOther", "probeShared", "drainInbound",
		"processDrained", "waitHorizon", "inboundEmpty",
	},
	"bloom": { // TestEq3EstimateAllocFree
		"EstimateCardinality", "EstimateIntersection",
		"EstimateIntersectionErrorInto",
	},
	"bloofi": { // TestBloofiTreeAllocFree / TestAtomicTreeAllocFree
		"Insert", "Remove", "Set", "Clear", "Len", "Occupied",
		"OccupiedBefore", "alloc", "release", "repair", "lock", "unlock",
		"Reset", "Next", "Nodes", "Candidates", "matchesAny", "hasKey",
	},
	"stm": { // TestReadOnlyPathAllocFree / TestAbortRetryPathAllocFree / TestCommitPathAllocs / TestPredictPathAllocFree
		"read", "write", "commit", "reset", "commitFail", "writeSetHas",
		"readVersionOf", "lookupRead", "lookupWrite", "appendRead",
		"appendWrite", "sortWrites", "commitBookkeeping",
		"OnBegin", "OnAbort", "OnCommit", "predict", "suspend", "stallOn",
		"republish", "validate", "backoff", "jitter", "enemyDTx",
		"decShard", "decNow",
		"predictDir", "predictLinear", "onRunning", "setRunning",
	},
	"decision": { // TestDecisionHotPathAllocFree / TestDecisionRecordingAllocFreeLive
		"Add", "SetWait", "Resolve", "SetEnemy", "Shard",
	},
}

// TestAllocFreeMarkersMatchRuntimeGates fails when a runtime-gated hot-path
// function loses its //bfgts:allocfree annotation (or is renamed without
// updating this table), keeping static and runtime enforcement in lockstep.
func TestAllocFreeMarkersMatchRuntimeGates(t *testing.T) {
	for pkg, fns := range gateEntryPoints {
		annotated := annotatedFuncs(t, filepath.Join("..", pkg))
		for _, fn := range fns {
			if !annotated[fn] {
				t.Errorf("internal/%s: %s is exercised by a Test*AllocFree gate but has no //bfgts:%s directive",
					pkg, fn, analysis.AllocFreeDirective)
			}
		}
	}
}

// annotatedFuncs parses a package directory's non-test sources and returns
// the names of functions whose doc comment carries //bfgts:allocfree.
func annotatedFuncs(t *testing.T, dir string) map[string]bool {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no sources in %s: %v", dir, err)
	}
	out := map[string]bool{}
	fset := token.NewFileSet()
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if rest, ok := strings.CutPrefix(c.Text, "//bfgts:"); ok {
					if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == analysis.AllocFreeDirective {
						out[fd.Name.Name] = true
					}
				}
			}
		}
	}
	return out
}
