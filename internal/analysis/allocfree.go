package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree turns the PR 3 zero-allocs/op benchmark contract into a
// compile-time one: a function whose doc comment carries //bfgts:allocfree
// may not contain, anywhere in its body (including nested function
// literals):
//
//   - make or new,
//   - a composite literal that escapes to the heap: any &T{...}, and any
//     slice or map literal (value struct/array literals returned or passed
//     by value stay on the stack and are allowed),
//   - an append to a fresh function-local slice (one declared inside the
//     function with no backing storage: `var xs []T` or `xs := []T{}`);
//     self-appends to pooled storage — fields, parameters, captured
//     variables, or locals initialized from existing storage — are allowed
//     because steady state reuses the retained capacity, and that is
//     exactly what the paired Test*AllocFree runtime gates pin,
//   - an append whose result lands somewhere other than its own first
//     argument or a return statement (growth into a second slice always
//     copies),
//   - interface boxing: a concrete non-pointer-shaped value converted,
//     assigned, passed, or returned as an interface,
//   - a variable-capturing closure that escapes: assigned, stored,
//     returned, or passed outside the package. A capturing closure passed
//     directly to a same-package function (the lineSet.each iterator
//     pattern) is allowed — the callee is under this analyzer's
//     jurisdiction too and does not retain its argument.
//
// The check is intra-procedural: calls to unannotated helpers are not
// followed. Annotate the callee to extend coverage. Intended slow paths
// (pool misses) are suppressed per line with
// `//bfgts:ignore allocfree <reason>`, and arguments to panic are exempt —
// an allocation while crashing is not a steady-state cost.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "forbid heap allocation in functions annotated //bfgts:allocfree",
	Run:  runAllocFree,
}

// AllocFreeDirective is the doc-comment marker, exported so tests can
// cross-check the annotated set against the runtime allocation gates.
const AllocFreeDirective = "allocfree"

func runAllocFree(pass *Pass) error {
	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		if !hasDirective(fd.Doc, AllocFreeDirective) {
			return
		}
		checkAllocFreeBody(pass, fd)
	})
	return nil
}

func checkAllocFreeBody(pass *Pass, fd *ast.FuncDecl) {
	localInits := collectLocalSliceInits(pass, fd.Body)

	var walk func(n ast.Node, stack []ast.Node) bool
	walk = func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass, n) {
				// Crash paths may allocate; skip the whole argument tree.
				return false
			}
			checkAllocCall(pass, n, stack, localInits)
			checkBoxingCall(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap in //bfgts:allocfree function %s", fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates in //bfgts:allocfree function %s", typeKindName(tv.Type), fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			checkClosure(pass, n, stack, fd)
		case *ast.AssignStmt:
			checkBoxingAssign(pass, n)
		case *ast.ValueSpec:
			checkBoxingValueSpec(pass, n)
		case *ast.ReturnStmt:
			checkBoxingReturn(pass, n, fd, stack)
		}
		return true
	}

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !walk(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// checkAllocCall flags make, new, and non-self or fresh-local appends.
func checkAllocCall(pass *Pass, call *ast.CallExpr, stack []ast.Node, localInits map[types.Object]ast.Expr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok {
		return
	}
	switch b.Name() {
	case "make":
		pass.Reportf(call.Pos(), "make allocates in //bfgts:allocfree function; hoist to construction time or pool the storage")
	case "new":
		pass.Reportf(call.Pos(), "new allocates in //bfgts:allocfree function; hoist to construction time or pool the storage")
	case "append":
		checkAppend(pass, call, stack, localInits)
	}
}

// checkAppend applies the pooled-self-append rule.
func checkAppend(pass *Pass, call *ast.CallExpr, stack []ast.Node, localInits map[types.Object]ast.Expr) {
	if len(call.Args) == 0 {
		return
	}
	if !isSelfAppend(pass, call, stack) {
		pass.Reportf(call.Pos(), "append result does not flow back into its own slice; growth into a second slice copies and allocates")
		return
	}
	// Self-append: allowed unless the target is a fresh function-local
	// slice, which starts with no capacity and allocates every call.
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields, index expressions: pooled storage by convention
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	init, isLocal := localInits[obj]
	if !isLocal {
		return // parameter or captured variable: caller-owned storage
	}
	if init == nil || isEmptySliceExpr(pass, init) {
		pass.Reportf(call.Pos(), "append to fresh local slice %s allocates every call; reuse pooled storage or take a caller-provided buffer", id.Name)
	}
}

// isSelfAppend reports whether the append's value flows back into its
// first argument (x = append(x, ...)) or straight out via return.
func isSelfAppend(pass *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs == ast.Expr(call) && i < len(parent.Lhs) {
				return types.ExprString(parent.Lhs[i]) == types.ExprString(call.Args[0])
			}
		}
	}
	return false
}

// collectLocalSliceInits maps every slice-typed object declared directly in
// the function body to its initializer expression (nil when declared
// without one).
func collectLocalSliceInits(pass *Pass, body *ast.BlockStmt) map[types.Object]ast.Expr {
	inits := map[types.Object]ast.Expr{}
	record := func(id *ast.Ident, init ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil || obj.Type() == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); ok {
			inits[obj] = init
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					var init ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						init = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						init = n.Rhs[0]
					}
					record(id, init)
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var init ast.Expr
				if i < len(n.Values) {
					init = n.Values[i]
				}
				record(id, init)
			}
		}
		return true
	})
	return inits
}

// isEmptySliceExpr reports whether expr denotes storage-free slice state:
// nil or an empty composite literal. Anything else (a slice of existing
// storage, a call returning pooled memory) counts as backed.
func isEmptySliceExpr(pass *Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	}
	return false
}

// checkClosure flags capturing function literals except those passed
// directly as an argument to a same-package function or method.
func checkClosure(pass *Pass, lit *ast.FuncLit, stack []ast.Node, fd *ast.FuncDecl) {
	if !capturesVariables(pass, lit) {
		return
	}
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if arg == ast.Expr(lit) && samePackageCallee(pass, call) {
					return
				}
			}
		}
	}
	pass.Reportf(lit.Pos(), "capturing closure escapes in //bfgts:allocfree function %s; register a long-lived continuation instead (see sim.Engine.Register)", fd.Name.Name)
}

// capturesVariables reports whether the literal references any object
// declared outside it.
func capturesVariables(pass *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				// Package-level variables live in static storage and do
				// not force a heap closure by themselves.
				if obj.Parent() != pass.Pkg.Scope() {
					captures = true
				}
			}
		}
		return true
	})
	return captures
}

// samePackageCallee reports whether the call's target is a function or
// method defined in the package under analysis.
func samePackageCallee(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && obj.Pkg() == pass.Pkg
}

// isPanicCall reports whether call is the panic builtin.
func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// --- interface boxing ---

// boxes reports whether assigning src to a dst of interface type stores a
// value that must be heap-boxed. Pointer-shaped values (pointers, channels,
// maps, funcs, unsafe.Pointer) ride in the interface word directly.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil || !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if src.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func (p *Pass) exprType(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (p *Pass) reportBoxing(pos token.Pos, src types.Type) {
	p.Reportf(pos, "%s boxed into interface allocates in //bfgts:allocfree function", src)
}

// checkBoxingCall flags concrete arguments to interface parameters and
// conversions to interface types.
func checkBoxingCall(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion: interface(T) boxes.
		if len(call.Args) == 1 {
			if src := pass.exprType(call.Args[0]); boxes(tv.Type, src) {
				pass.reportBoxing(call.Pos(), src)
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // xs... passes the slice through unboxed
			}
			dst = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			dst = params.At(i).Type()
		}
		if src := pass.exprType(arg); boxes(dst, src) {
			pass.reportBoxing(arg.Pos(), src)
		}
	}
}

func checkBoxingAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		var dst types.Type
		if assign.Tok == token.DEFINE {
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					dst = obj.Type()
				}
			}
		} else {
			dst = pass.exprType(assign.Lhs[i])
		}
		if src := pass.exprType(assign.Rhs[i]); boxes(dst, src) {
			pass.reportBoxing(assign.Rhs[i].Pos(), src)
		}
	}
}

func checkBoxingValueSpec(pass *Pass, spec *ast.ValueSpec) {
	for i, id := range spec.Names {
		if i >= len(spec.Values) {
			break
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			continue
		}
		if src := pass.exprType(spec.Values[i]); boxes(obj.Type(), src) {
			pass.reportBoxing(spec.Values[i].Pos(), src)
		}
	}
}

func checkBoxingReturn(pass *Pass, ret *ast.ReturnStmt, fd *ast.FuncDecl, stack []ast.Node) {
	// A return inside a nested function literal reports against the
	// literal's own signature, not the annotated declaration's.
	var sig *types.Signature
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			t := pass.exprType(lit)
			if t == nil {
				return
			}
			sig, _ = t.(*types.Signature)
			break
		}
	}
	if sig == nil {
		obj := pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			return
		}
		sig, _ = obj.Type().(*types.Signature)
	}
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		if src := pass.exprType(res); boxes(sig.Results().At(i).Type(), src) {
			pass.reportBoxing(res.Pos(), src)
		}
	}
}

// typeKindName names a type's underlying kind for diagnostics.
func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
