package analysis_test

import (
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestJSONDiagnosticRoundTrip pins the -json wire format: every finding
// encodes to one line that decodes back to the identical struct, including
// messages holding quotes, backticks, and path separators.
func TestJSONDiagnosticRoundTrip(t *testing.T) {
	cases := []analysis.JSONDiagnostic{
		{File: "internal/stm/stm.go", Line: 212, Col: 9, Analyzer: "seqlock", Message: "seqlock reader read loads epoch field version 1 time(s)"},
		{File: "a b/weird path.go", Line: 1, Col: 1, Analyzer: "directives", Message: "unknown directive //bfgts:nope; known: \"quoted\", `backticked`"},
		{File: "", Line: 0, Col: 0, Analyzer: "", Message: ""},
	}
	for _, d := range cases {
		line := d.Encode()
		if strings.ContainsAny(line, "\n") {
			t.Errorf("Encode(%+v) is not a single line: %q", d, line)
		}
		got, err := analysis.ParseJSONDiagnostic(line)
		if err != nil {
			t.Fatalf("ParseJSONDiagnostic(%q): %v", line, err)
		}
		if got != d {
			t.Errorf("round trip changed diagnostic:\n in: %+v\nout: %+v", d, got)
		}
	}
}

// TestFormatDiagnosticJSON pins that the vet driver's -json output path is
// exactly the Encode wire form (so consumers can parse either source).
func TestFormatDiagnosticJSON(t *testing.T) {
	pos := token.Position{Filename: "internal/sim/shard.go", Line: 42, Column: 7}
	diag := analysis.Diagnostic{Message: "ring is used as both producer and consumer", Analyzer: "spsc"}

	line := analysis.FormatDiagnostic(pos, diag, true)
	got, err := analysis.ParseJSONDiagnostic(line)
	if err != nil {
		t.Fatalf("ParseJSONDiagnostic(%q): %v", line, err)
	}
	want := analysis.JSONDiagnostic{File: "internal/sim/shard.go", Line: 42, Col: 7, Analyzer: "spsc", Message: diag.Message}
	if got != want {
		t.Errorf("FormatDiagnostic json mode:\n got %+v\nwant %+v", got, want)
	}

	text := analysis.FormatDiagnostic(pos, diag, false)
	if want := "internal/sim/shard.go:42:7: ring is used as both producer and consumer (bfgtsvet/spsc)"; text != want {
		t.Errorf("FormatDiagnostic text mode:\n got %q\nwant %q", text, want)
	}
	if _, err := analysis.ParseJSONDiagnostic(text); err == nil {
		t.Error("text-mode output unexpectedly parses as JSON")
	}
}
