// Package atomicfield is the analysistest fixture for the atomicfield
// analyzer. Fields and globals reached through sync/atomic free functions
// must never be accessed plainly; typed atomic cells must never be copied
// or overwritten.
package atomicfield

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
}

var inflight int64

func okAtomic(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	return atomic.LoadInt64(&c.hits)
}

func okUntouched(c *counters) int64 {
	return c.misses // never accessed atomically: plain reads are fine
}

func badPlainRead(c *counters) int64 {
	return c.hits // want `hits is accessed with atomic\.AddInt64 elsewhere`
}

func badPlainWrite(c *counters) {
	c.hits = 0 // want `hits is accessed with atomic\.AddInt64 elsewhere`
}

func okGlobalAtomic() {
	atomic.StoreInt64(&inflight, 1)
}

func badGlobalPlain() int64 {
	return inflight // want `inflight is accessed with atomic\.StoreInt64 elsewhere`
}

type slot struct {
	cur  atomic.Uint32
	pair [2]int
}

func okMethod(s *slot) int {
	return s.pair[s.cur.Load()]
}

func okFlip(s *slot) {
	cur := s.cur.Load()
	s.cur.Store(1 - cur)
}

func badCopy(s *slot) atomic.Uint32 {
	return s.cur // want `copies atomic\.Uint32 by value`
}

func badCopyAssign(s *slot) {
	c := s.cur // want `copies atomic\.Uint32 by value`
	c.Load()
}

func badOverwrite(s *slot) {
	s.cur = atomic.Uint32{} // want `plainly overwrites atomic\.Uint32; use its Store method`
}

func okDeclare() uint32 {
	var local atomic.Uint32 // a fresh cell declaration is not a copy
	local.Store(3)
	return local.Load()
}
