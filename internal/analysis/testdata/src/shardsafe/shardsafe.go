// Package shardsafe is the analysistest fixture for the shardsafe
// analyzer: types carrying the ShardSafe marker method must not write
// package-level state or draw from the shared Env.Rand.
package shardsafe

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// Env models the simulator environment shared across lanes.
type Env struct {
	Rand *rng
	Seed uint64
}

var sharedHits int

type goodMgr struct {
	jitter []uint64
}

func (m *goodMgr) ShardSafe() {}

func (m *goodMgr) wait(tid int) uint64 {
	m.jitter[tid] = m.jitter[tid]*2862933555777941757 + 3037000493
	return m.jitter[tid]
}

func (m *goodMgr) seed(env *Env) uint64 {
	return env.Seed // reading non-Rand Env fields is fine
}

type badMgr struct{}

func (m *badMgr) ShardSafe() {}

func (m *badMgr) bump() {
	sharedHits++ // want `ShardSafe type badMgr writes package-level sharedHits in bump`
}

func (m *badMgr) set(n int) {
	sharedHits = n // want `ShardSafe type badMgr writes package-level sharedHits in set`
}

func (m *badMgr) draw(env *Env) uint64 {
	return env.Rand.next() // want `ShardSafe type badMgr reads the shared Env\.Rand in draw`
}

type unmarked struct{}

func (u *unmarked) bump() {
	sharedHits++ // no marker: package state is its own business
}

func (u *unmarked) draw(env *Env) uint64 {
	return env.Rand.next()
}
