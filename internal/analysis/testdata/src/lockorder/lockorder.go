// Package lockorder is the analysistest fixture for the lockorder
// analyzer: double-lock, missing-unlock, package-wide order cycles, and
// the //bfgts:lock-rank sort-before-acquire discipline.
package lockorder

import (
	"sort"
	"sync"
)

type account struct {
	mu  sync.Mutex
	bal int
}

type registry struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func okBalanced(r *registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
}

func okEarlyReturn(r *registry) int {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return 0
	}
	r.mu.Unlock()
	return r.n
}

func badDouble(r *registry) {
	r.mu.Lock()
	r.mu.Lock() // want `mu locked again in badDouble while already held: self-deadlock`
	r.mu.Unlock()
	r.mu.Unlock()
}

func badLeak(r *registry) {
	r.mu.Lock() // want `mu has 1 Lock call\(s\) but 0 Unlock call\(s\) in badLeak`
	r.n++
}

//bfgts:lock-handoff released by the caller via put
func okHandoff(r *registry) {
	r.mu.Lock()
	r.n++
}

func badReadLeak(r *registry) int {
	r.rw.RLock() // want `rw has 1 RLock call\(s\) but 0 RUnlock call\(s\) in badReadLeak`
	return r.n
}

func okRead(r *registry) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.n
}

func badDeferTypo(r *registry) {
	defer r.mu.Lock() // want `deferred mu acquisition in badDeferTypo; defer the Unlock, not the Lock`
	r.n++
}

func okDeferredClosure(r *registry) {
	r.mu.Lock()
	defer func() {
		r.mu.Unlock()
	}()
	r.n++
}

func badOrderForward(r *registry, a *account) {
	r.mu.Lock()
	a.mu.Lock() // want `lock order cycle: mu acquired while mu is held`
	a.bal++
	a.mu.Unlock()
	r.mu.Unlock()
}

func badOrderReverse(r *registry, a *account) {
	a.mu.Lock()
	r.mu.Lock() // want `lock order cycle: mu acquired while mu is held`
	r.n++
	r.mu.Unlock()
	a.mu.Unlock()
}

type entry struct {
	mu  sync.Mutex
	key int
}

//bfgts:lock-rank writes
func okRanked(writes []*entry) {
	sort.Slice(writes, func(i, j int) bool { return writes[i].key < writes[j].key })
	for _, w := range writes {
		w.mu.Lock()
	}
	for _, w := range writes {
		w.mu.Unlock()
	}
}

//bfgts:lock-rank writes
func badUnranked(writes []*entry) {
	for _, w := range writes { // want `lock-acquisition loop over writes in badUnranked runs before any canonical-order sort`
		w.mu.Lock()
		w.key++
		w.mu.Unlock()
	}
}

//bfgts:lock-rank writes
func badDeadRank(n int) int { // want `//bfgts:lock-rank writes on badDeadRank matches no lock-acquisition loop`
	return n + 1
}
