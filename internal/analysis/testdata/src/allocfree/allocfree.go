// Package allocfree is the analysistest fixture for the allocfree
// analyzer. Each bad* function commits exactly one steady-state heap
// allocation of the kind the analyzer bans; each ok* function uses the
// sanctioned pooled/cached counterpart.
package allocfree

import "fmt"

type thing struct {
	id   int
	next *thing
}

type pool struct {
	free  []*thing
	stats [8]int
}

//bfgts:allocfree
func badAddrLit(id int) *thing {
	return &thing{id: id} // want `&composite literal escapes to the heap in //bfgts:allocfree function badAddrLit`
}

//bfgts:allocfree
func badMake(n int) []int {
	return make([]int, n) // want `make allocates in //bfgts:allocfree function`
}

//bfgts:allocfree
func badNew() *thing {
	return new(thing) // want `new allocates in //bfgts:allocfree function`
}

//bfgts:allocfree
func badLits() ([]int, map[string]int) {
	xs := []int{1, 2}     // want `slice literal allocates in //bfgts:allocfree function badLits`
	m := map[string]int{} // want `map literal allocates in //bfgts:allocfree function badLits`
	return xs, m
}

//bfgts:allocfree
func badFreshAppend(v int) []int {
	var xs []int
	xs = append(xs, v) // want `append to fresh local slice xs allocates every call`
	return xs
}

//bfgts:allocfree
func badSecondSlice(xs []int, v int) []int {
	ys := xs
	ys = append(xs, v) // want `append result does not flow back into its own slice`
	return ys
}

// okFieldAppend self-appends into pooled struct storage: steady state
// reuses the retained capacity, which is what the runtime gates pin.
//
//bfgts:allocfree
func okFieldAppend(p *pool, t *thing) {
	p.free = append(p.free, t)
}

// okParamAppend grows a caller-provided buffer.
//
//bfgts:allocfree
func okParamAppend(buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// okBackedLocal re-slices existing storage; the local has backing capacity.
//
//bfgts:allocfree
func okBackedLocal(p *pool, t *thing) {
	xs := p.free[:0]
	xs = append(xs, t)
	p.free = xs
}

// okPoolMiss is the sanctioned slow path: the refill allocation carries an
// explicit per-line suppression, mirroring tm.System.Begin.
//
//bfgts:allocfree
func okPoolMiss(p *pool) *thing {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	//bfgts:ignore allocfree pool miss refill is not steady state
	return &thing{}
}

var sink interface{}

//bfgts:allocfree
func badBoxAssign(v int) {
	sink = v // want `int boxed into interface allocates in //bfgts:allocfree function`
}

//bfgts:allocfree
func badBoxReturn(v int) interface{} {
	return v // want `int boxed into interface allocates in //bfgts:allocfree function`
}

func takeAny(v interface{}) { sink = v }

//bfgts:allocfree
func badBoxCall(n int) {
	takeAny(n) // want `int boxed into interface allocates in //bfgts:allocfree function`
}

// okBoxPointer: pointer-shaped values ride in the interface word without a
// heap box.
//
//bfgts:allocfree
func okBoxPointer(t *thing) {
	sink = t
}

func takeVariadic(vs ...interface{}) {
	for _, v := range vs {
		sink = v
	}
}

// okEllipsis passes an existing slice through a variadic parameter; no
// per-element boxing happens at the call site.
//
//bfgts:allocfree
func okEllipsis(args []interface{}) {
	takeVariadic(args...)
}

//bfgts:allocfree
func badClosure(n int) func() int {
	f := func() int { return n } // want `capturing closure escapes in //bfgts:allocfree function badClosure`
	return f
}

func each(p *pool, f func(*thing)) {
	for _, t := range p.free {
		f(t)
	}
}

// okIteratorClosure: a capturing closure passed directly to a same-package
// iterator (the lineSet.each pattern) does not escape.
//
//bfgts:allocfree
func okIteratorClosure(p *pool, total *int) {
	each(p, func(t *thing) { *total += t.id })
}

// okPureClosure captures nothing; it compiles to a static function value.
//
//bfgts:allocfree
func okPureClosure() func(int) int {
	return func(x int) int { return x * 2 }
}

// okPanic: crash paths may allocate; the panic argument tree is exempt.
//
//bfgts:allocfree
func okPanic(p *pool, idx int) int {
	if idx < 0 || idx >= len(p.stats) {
		panic(fmt.Sprintf("allocfree: stat index %d out of range", idx))
	}
	return p.stats[idx]
}

// unannotated functions are outside the contract entirely.
func unannotatedMake(n int) []*thing {
	return make([]*thing, 0, n)
}
