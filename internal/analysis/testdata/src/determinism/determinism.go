// Package determinism is the analysistest fixture for the determinism
// analyzer. The deliberate violations mirror the failure modes the pinned
// packages must never contain: wall-clock reads, global rand draws, and
// map iteration order leaking into appends or rendered output.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

// seededRand is the sanctioned form: deterministic given the seed.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order feeds an append`
		out = append(out, k+"!")
	}
	return out
}

func mapAppendField(s *struct{ free []int }, m map[int]int) {
	for _, v := range m { // want `map iteration order feeds an append`
		s.free = append(s.free, v)
	}
}

func mapPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds fmt\.Println output`
		fmt.Println(k, v)
	}
}

// collectThenSort is the sanctioned idiom: only the range variables are
// collected, and the slice is sorted before anyone can observe the order.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// localSort mirrors harness/multiseed.go, which sorts through a package
// helper rather than the sort package directly.
func sortStrings(xs []string) { sort.Strings(xs) }

func collectThenLocalSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// mapCopy is order-independent: map writes commute.
func mapCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// loopLocalScratch dies each iteration; no order escapes.
func loopLocalScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}

// suppressed demonstrates the driver-honored escape hatch for a finding
// that is order-independent for reasons the analyzer cannot see.
func suppressed(m map[string]*int) []*int {
	var out []*int
	//bfgts:ignore determinism recycled objects are interchangeable
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
