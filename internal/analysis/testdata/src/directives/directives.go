// Package directives is the analysistest fixture for the directives
// validator: unknown names, misplaced annotations, and bad arities. The
// `// want` expectations trail the offending directive comments (the
// harness strips them before directive parsing).
package directives

//bfgts:allocfree
func okAllocFree() int {
	return 1
}

//bfgts:seqlock version
func okSeqlockArgs() int {
	return 2
}

//bfgts:nosuchcheck // want `unknown directive //bfgts:nosuchcheck`
func badUnknown() int {
	return 3
}

// bfgts:allocfree // want `malformed //bfgts: directive: no space allowed after //`
func badSpaced() int {
	return 4
}

//bfgts:seqlock // want `//bfgts:seqlock takes 1 argument, got 0`
func badNoArg() int {
	return 5
}

//bfgts:lock-rank writes extra // want `//bfgts:lock-rank takes 1 argument, got 2`
func badTwoArgs() int {
	return 6
}

//bfgts:allocfree hot // want `//bfgts:allocfree takes no arguments, got 1`
func badAllocArgs() int {
	return 7
}

//bfgts:spsc-producer // want `//bfgts:spsc-producer must be on a function declaration's doc comment`
type misplacedOnType struct {
	n int
}

func okLineDirectives(m *misplacedOnType) int {
	//bfgts:ignore determinism fixture demonstrates a justified suppression
	//bfgts:pin-handoff released in flushLoop
	//bfgts:lock-handoff released by put
	return m.n
}

func badLineDirectives(m *misplacedOnType) int {
	//bfgts:ignore determinism // want `//bfgts:ignore takes at least 2 arguments, got 1`
	//bfgts:seqlock-pub cur // want `//bfgts:seqlock-pub must be on a function declaration's doc comment`
	return m.n
}
