// Package metricshoist is the analysistest fixture for the metricshoist
// analyzer. Registry/Counter mirror the internal/metrics nil-is-free API.
package metricshoist

type Counter struct{ v int64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

type Gauge struct{ v float64 }

type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.gauges[name]
}

// consumer caches instruments at construction time: the sanctioned shape.
type consumer struct {
	hits *Counter
}

func newConsumer(reg *Registry) *consumer {
	return &consumer{hits: reg.Counter("hits")}
}

func (c *consumer) work(n int) {
	for i := 0; i < n; i++ {
		c.hits.Inc()
	}
}

func lookupInLoop(reg *Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Counter("hits").Inc() // want `Registry\.Counter lookup inside a loop`
	}
}

func lookupInRange(reg *Registry, xs []int) {
	for range xs {
		_ = reg.Gauge("depth") // want `Registry\.Gauge lookup inside a loop`
	}
}

func lookupInNestedFunc(reg *Registry, xs []int) {
	for range xs {
		f := func() *Counter {
			return reg.Counter("deep") // want `Registry\.Counter lookup inside a loop`
		}
		f().Inc()
	}
}

//bfgts:allocfree
func lookupInHotPath(reg *Registry) {
	reg.Counter("hot").Inc() // want `Registry\.Counter lookup in //bfgts:allocfree function lookupInHotPath`
}

// condLookup is outside any loop and not annotated: allowed (begin-time
// code paths do this once per run).
func condLookup(reg *Registry, on bool) *Counter {
	if on {
		return reg.Counter("cond")
	}
	return nil
}
