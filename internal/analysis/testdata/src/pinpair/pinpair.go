// Package pinpair is the analysistest fixture for the pinpair analyzer.
// System/Tx mirror the internal/tm pooled-transaction API shape.
package pinpair

type Tx struct{ pins int }

type System struct{ free []*Tx }

func (s *System) Pin(tx *Tx)   { tx.pins++ }
func (s *System) Unpin(tx *Tx) { tx.pins-- }

func balanced(s *System, tx *Tx) {
	s.Pin(tx)
	s.Unpin(tx)
}

func deferred(s *System, tx *Tx) {
	defer s.Unpin(tx)
	s.Pin(tx)
}

func leaked(s *System, tx *Tx) {
	s.Pin(tx) // want `System\.Pin in leaked has no later or deferred Unpin`
}

func unpinBeforePin(s *System, tx *Tx) {
	s.Unpin(tx)
	s.Pin(tx) // want `System\.Pin in unpinBeforePin has no later or deferred Unpin`
}

// handoff documents that the balancing Unpin runs in classify, mirroring
// Runner.recordPredWait / Runner.classifyPredWaits in internal/sim.
func handoff(s *System, tx *Tx, held []*Tx) []*Tx {
	//bfgts:pin-handoff classify
	s.Pin(tx)
	return append(held, tx)
}

// classify is the receiving side of a handoff: Unpin alone is fine.
func classify(s *System, held []*Tx) {
	for _, tx := range held {
		s.Unpin(tx)
	}
}

func loopPinUnpin(s *System, txs []*Tx) {
	for _, tx := range txs {
		s.Pin(tx)
	}
	for _, tx := range txs {
		s.Unpin(tx)
	}
}

// otherPin is a different type's Pin; the analyzer only matches a type
// named System.
type board struct{}

func (board) Pin(x *Tx) {}

func unrelated(b board, tx *Tx) {
	b.Pin(tx)
}
