// Package spsc is the analysistest fixture for the spsc analyzer: each
// ring identity may be pushed from producer roles and popped from consumer
// roles, but never both from the same function's reach.
package spsc

import "sync/atomic"

type ring struct {
	head atomic.Uint64
	tail atomic.Uint64
	buf  [8]int
}

//bfgts:spsc-producer
func (r *ring) push(v int) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t%uint64(len(r.buf))] = v
	r.tail.Store(t + 1)
	return true
}

//bfgts:spsc-consumer
func (r *ring) pop() (int, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	v := r.buf[h%uint64(len(r.buf))]
	r.head.Store(h + 1)
	return v, true
}

//bfgts:spsc-producer
//bfgts:spsc-consumer
func (r *ring) badPeek() int { // want `badPeek is annotated both spsc-producer and spsc-consumer`
	return 0
}

type lane struct {
	out []ring
	in  []ring
}

func (l *lane) okSend(i, v int) {
	l.out[i].push(v)
}

func (l *lane) okRecv(i int) (int, bool) {
	return l.in[i].pop()
}

func (l *lane) okBothRings(i, v int) {
	l.out[i].push(v) // out and in are distinct identities: fine
	l.in[i].pop()
}

func (l *lane) badBothEnds(i, v int) {
	l.out[i].push(v)
	l.out[i].pop() // want `ring lane\.out\[\] is used as both producer and consumer from badBothEnds`
}

func (l *lane) drainOut(i int) {
	for {
		if _, ok := l.out[i].pop(); !ok {
			return
		}
	}
}

func (l *lane) badIndirect(i, v int) {
	l.out[i].push(v) // want `ring lane\.out\[\] is used as both producer and consumer from badIndirect`
	l.drainOut(i)
}

func (l *lane) badViaLocal(i, v int) {
	r := &l.in[i]
	r.push(v)
	r.pop() // want `ring lane\.in\[\] is used as both producer and consumer from badViaLocal`
}
