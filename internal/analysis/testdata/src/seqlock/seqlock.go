// Package seqlock is the analysistest fixture for the seqlock analyzer:
// //bfgts:seqlock retry readers and //bfgts:seqlock-pub published-index
// readers.
package seqlock

import "sync/atomic"

type cell struct {
	version atomic.Uint64
	val     atomic.Pointer[int]
	data    int
}

//bfgts:seqlock version
func okRead(c *cell) (int, bool) {
	v1 := c.version.Load()
	if v1&1 == 1 {
		return 0, false
	}
	p := c.val.Load()
	if c.version.Load() != v1 {
		return 0, false
	}
	return *p, true
}

//bfgts:seqlock version
func badSingleLoad(c *cell) int { // want `loads epoch field version 1 time\(s\)` `never compares version against a recorded value` `never tests version for odd`
	v1 := c.version.Load()
	_ = v1
	return c.data
}

//bfgts:seqlock version
func badEarlyDeref(c *cell) (int, bool) {
	v1 := c.version.Load()
	if v1&1 == 1 {
		return 0, false
	}
	p := c.val.Load()
	out := *p // want `dereferences p loaded at the start of the critical section without rechecking version in between`
	if c.version.Load() != v1 {
		return 0, false
	}
	return out, true
}

//bfgts:seqlock version
func badFailedDeref(c *cell) (int, bool) {
	v1 := c.version.Load()
	if v1&1 == 1 {
		return 0, false
	}
	p := c.val.Load()
	if c.version.Load() != v1 {
		return *p, false // want `dereferences p on the failed version-check path`
	}
	return *p, true
}

type node struct {
	cur  atomic.Uint32
	pair [2][]byte
}

//bfgts:seqlock-pub cur
func okProbe(n *node) []byte {
	return n.pair[n.cur.Load()]
}

//bfgts:seqlock-pub cur
func okRepublish(n *node) {
	cur := n.cur.Load()
	n.pair[1-cur] = n.pair[1-cur][:0]
	n.cur.Store(1 - cur)
}

//bfgts:seqlock-pub cur
func badDoubleLoad(n *node) int {
	a := len(n.pair[n.cur.Load()])
	b := len(n.pair[n.cur.Load()]) // want `published index n\.cur loaded 2 times in badDoubleLoad`
	return a + b
}

//bfgts:seqlock-pub cur
func badReset(n *node) {
	n.cur.Store(0) // want `published index cur stored without deriving from its loaded value in badReset`
}

//bfgts:seqlock-pub cur
func badDeadPub(n *node) int { // want `never loads or stores cur; drop or fix the directive`
	return len(n.pair[0])
}
