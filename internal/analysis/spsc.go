package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SPSC enforces single-ownership of each end of a single-producer /
// single-consumer ring. The ring type's push method carries
// //bfgts:spsc-producer and its pop method //bfgts:spsc-consumer; the
// analyzer then resolves every call to either method to a ring *identity*
// (the struct field or variable holding the ring, with indexes collapsed)
// and reports any function from which both roles are exercised on the same
// identity. The sharded simulator's out-rings are pushed by the owning
// lane and popped by the peer; a refactor that drains its own out-ring
// from the producer side would silently break the SPSC memory-ordering
// contract long before a race test catches it.
//
// The check is per-function and transitive within the package: a function
// that calls a same-package helper inherits the helper's roles, so hiding
// the opposite-role call one level down still trips the analyzer.
var SPSC = &Analyzer{
	Name: "spsc",
	Doc:  "//bfgts:spsc-producer and //bfgts:spsc-consumer methods must not both be reached for the same ring identity",
	Run:  runSPSC,
}

type spscRole int

const (
	spscProducer spscRole = 1 << iota
	spscConsumer
)

func (r spscRole) String() string {
	switch r {
	case spscProducer:
		return "producer"
	case spscConsumer:
		return "consumer"
	default:
		return "producer+consumer"
	}
}

// spscUse is one role exercised on one ring identity from one function.
type spscUse struct {
	role spscRole
	pos  ast.Node
}

func runSPSC(pass *Pass) error {
	// Step 1: find the annotated methods.
	roleOf := map[types.Object]spscRole{} // method decl object -> role
	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		var role spscRole
		if hasDirective(fd.Doc, "spsc-producer") {
			role |= spscProducer
		}
		if hasDirective(fd.Doc, "spsc-consumer") {
			role |= spscConsumer
		}
		if role == 0 {
			return
		}
		if role == spscProducer|spscConsumer {
			pass.Reportf(fd.Pos(), "%s is annotated both spsc-producer and spsc-consumer; a method serves exactly one end of the ring", fd.Name.Name)
			return
		}
		if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
			roleOf[obj] = role
		}
	})
	if len(roleOf) == 0 {
		return nil
	}

	// Step 2: per function, collect (identity -> roles) of direct annotated
	// calls, plus the set of same-package callees (for transitive roles
	// that are identity-less: a helper that pops its receiver's ring makes
	// every caller a consumer of whatever ring that helper owns — we track
	// that at the helper's identity, so transitivity only needs to merge
	// identity->role maps up the call graph).
	type funcInfo struct {
		uses    map[string]spscRole
		firstAt map[string]ast.Node // first direct annotated call per identity
		pairAt  map[string]ast.Node // direct call that completed both roles
		callees []types.Object
	}
	infos := map[types.Object]*funcInfo{}
	declOf := map[types.Object]*ast.FuncDecl{}
	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		obj := pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			return
		}
		declOf[obj] = fd
		fi := &funcInfo{uses: map[string]spscRole{}, firstAt: map[string]ast.Node{}, pairAt: map[string]ast.Node{}}
		infos[obj] = fi
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				callee := pass.TypesInfo.Uses[fun.Sel]
				if callee == nil {
					return true
				}
				if role, ok := roleOf[callee]; ok {
					id := ringIdentity(pass, fd, fun.X)
					prev := fi.uses[id]
					fi.uses[id] = prev | role
					if _, ok := fi.firstAt[id]; !ok {
						fi.firstAt[id] = call
					}
					if prev != 0 && prev&role == 0 {
						if _, ok := fi.pairAt[id]; !ok {
							fi.pairAt[id] = call
						}
					}
					return true
				}
				if samePkgFunc(pass, callee) {
					fi.callees = append(fi.callees, callee)
				}
			case *ast.Ident:
				callee := pass.TypesInfo.Uses[fun]
				if callee != nil && samePkgFunc(pass, callee) {
					fi.callees = append(fi.callees, callee)
				}
			}
			return true
		})
	})

	// Step 3: propagate identity->role maps along call edges to a fixed
	// point (the package call graphs here are tiny), then report any
	// identity holding both roles, at the function that completes the pair.
	changed := true
	for changed {
		changed = false
		for _, fi := range infos {
			for _, callee := range fi.callees {
				ci := infos[callee]
				if ci == nil {
					continue
				}
				for id, role := range ci.uses {
					if fi.uses[id]&role != role {
						fi.uses[id] |= role
						changed = true
					}
				}
			}
		}
	}
	for obj, fi := range infos {
		fd := declOf[obj]
		for id, role := range fi.uses {
			if role != spscProducer|spscConsumer {
				continue
			}
			// Report at the direct call that completed the pair, or the
			// function's first direct call when the opposite role arrived via
			// a callee. Pairs assembled purely from callees are skipped: the
			// callee pair (or a more direct caller) already reports them.
			at := fi.pairAt[id]
			if at == nil {
				at = fi.firstAt[id]
			}
			if at == nil {
				continue
			}
			pass.Reportf(at.Pos(), "ring %s is used as both producer and consumer from %s; each end of an SPSC ring must have exactly one owner", id, fd.Name.Name)
		}
	}
	return nil
}

// samePkgFunc reports whether obj is a function or method of the package
// under analysis.
func samePkgFunc(pass *Pass, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() == pass.Pkg
}

// ringIdentity names the ring a push/pop receiver denotes, stably across a
// function: struct field chains keep their path with indexes collapsed
// ("sh.out[i]" -> "sh.out[]"); a local variable is traced through simple
// assignments/range clauses back to the expression that produced it, so
// `r := sh.in[k]; r.pop()` and `sh.in[j].pop()` share the identity
// "sh.in[]". Untraceable receivers collapse to the opaque identity "?",
// which still pairs producer/consumer conservatively within a function.
func ringIdentity(pass *Pass, fd *ast.FuncDecl, recv ast.Expr) string {
	if id, ok := unwrapIdent(recv); ok {
		if src := traceLocal(pass, fd, id); src != "" {
			return canonRoot(pass, fd, src)
		}
	}
	if path := exprPath(recv); path != "" {
		return canonRoot(pass, fd, path)
	}
	return "?"
}

// canonRoot replaces the leading variable name of a path with the name of
// its (named) type when one resolves, so "sh.out[]" from one method and
// "s.out[]" from another share the identity "shard.out[]". Paths whose
// root type cannot be resolved keep the variable name.
func canonRoot(pass *Pass, fd *ast.FuncDecl, path string) string {
	root, rest, _ := strings.Cut(path, ".")
	base := strings.TrimSuffix(root, "[]")
	var typeName string
	ast.Inspect(fd, func(n ast.Node) bool {
		if typeName != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != base {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok {
			if n := namedType(v.Type()); n != nil && n.Obj() != nil {
				typeName = n.Obj().Name()
			}
		}
		return true
	})
	if typeName == "" {
		return path
	}
	out := typeName + strings.TrimPrefix(root, base)
	if rest != "" {
		out += "." + rest
	}
	return out
}

func unwrapIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// traceLocal resolves a local identifier to the path of the expression
// assigned to it ("r := sh.in[k]" -> "sh.in[]", "for _, r := range sh.out"
// -> "sh.out[]"). Returns "" when the identifier is not a traceable local
// (e.g. a method receiver or parameter — its own name is then identity
// enough within the function).
func traceLocal(pass *Pass, fd *ast.FuncDecl, id *ast.Ident) string {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return ""
	}
	result := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lobj := pass.TypesInfo.Defs[lid]
				if lobj == nil {
					lobj = pass.TypesInfo.Uses[lid]
				}
				if lobj != obj {
					continue
				}
				if path := exprPath(n.Rhs[i]); path != "" {
					result = path
				}
			}
		case *ast.RangeStmt:
			vid, ok := n.Value.(*ast.Ident)
			if !ok {
				return true
			}
			vobj := pass.TypesInfo.Defs[vid]
			if vobj == nil {
				vobj = pass.TypesInfo.Uses[vid]
			}
			if vobj != obj {
				return true
			}
			if path := exprPath(n.X); path != "" {
				result = path + "[]"
			}
		}
		return true
	})
	return result
}
