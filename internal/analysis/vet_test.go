package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestBfgtsvetCleanOnModule builds cmd/bfgtsvet and runs it as a go vet
// tool over the whole module, asserting the tree is finding-free. This is
// the same gate scripts/check.sh applies; a failure here means either a
// real invariant violation crept in or an analyzer regressed into a false
// positive on production code.
func TestBfgtsvetCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the vet tool and re-typechecks the module; skipped in -short")
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(modRoot, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", modRoot, err)
	}

	tool := filepath.Join(t.TempDir(), "bfgtsvet")
	build := exec.Command(goTool, "build", "-o", tool, "./cmd/bfgtsvet")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build bfgtsvet: %v\n%s", err, out)
	}

	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = modRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=bfgtsvet ./... reported findings: %v\n%s", err, out)
	}
}
