package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Seqlock pins the two optimistic-reader protocols the concurrent layers
// depend on, both declared on the reader's doc comment:
//
// //bfgts:seqlock <epochField> — a classic retry reader (the STM's TVar
// read path): the epoch/version cell named by <epochField> must be
//
//   - loaded at least twice (the before- and after- reads of the critical
//     section),
//   - compared for equality/inequality against a recorded value (the
//     recheck that detects a concurrent writer),
//   - tested for odd values somewhere in the function (an odd epoch means
//     a writer is mid-flight and the read must not be trusted), and
//   - any pointer loaded inside the critical section may only be
//     dereferenced after a recheck, and never on the failed branch of one
//     — a retained pointer after a failed check may point into a torn or
//     recycled cell.
//
// //bfgts:seqlock-pub <idxField> — a published double-buffer reader (the
// Bloofi AtomicTree's probe-vs-repair protocol, the STM's sigSlot pairs):
// the published index named by <idxField> must be loaded exactly once per
// receiver path (two loads can straddle a writer's flip and mix buffer
// generations), and a Store to it must flip the loaded value (1-cur),
// never reset to a constant.
var Seqlock = &Analyzer{
	Name: "seqlock",
	Doc:  "//bfgts:seqlock readers must recheck the epoch around the critical read; //bfgts:seqlock-pub readers must snapshot the published index exactly once",
	Run:  runSeqlock,
}

func runSeqlock(pass *Pass) error {
	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		if args, ok := directiveArgs(fd.Doc, "seqlock"); ok && len(args) == 1 {
			checkSeqlockRetry(pass, fd, args[0])
		}
		if args, ok := directiveArgs(fd.Doc, "seqlock-pub"); ok && len(args) == 1 {
			checkSeqlockPub(pass, fd, args[0])
		}
	})
	return nil
}

// epochLoadCall reports whether call is <recv>.<field>.Load(), returning
// the receiver path of <recv>.
func epochLoadCall(call *ast.CallExpr, field string) (recvPath string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Load" || len(call.Args) != 0 {
		return "", false
	}
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel || inner.Sel.Name != field {
		return "", false
	}
	return exprPath(inner.X), true
}

// exprHasEpochLoad reports whether the expression contains an
// <x>.<field>.Load() call or an identifier bound to one.
func exprHasEpochLoad(e ast.Expr, field string, epochVars map[types.Object]bool, info *types.Info) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := epochLoadCall(n, field); ok {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && epochVars[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

func checkSeqlockRetry(pass *Pass, fd *ast.FuncDecl, field string) {
	info := pass.TypesInfo

	// Collect epoch loads, the variables they are bound to, pointer loads
	// (vars assigned from a pointer-returning .Load()), rechecks and odd
	// tests, all in one ordered walk.
	var loadSites []token.Pos
	epochVars := map[types.Object]bool{}     // v1 := x.version.Load()
	ptrLoads := map[types.Object]token.Pos{} // val := x.val.Load() (pointer-typed)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := epochLoadCall(n, field); ok {
				loadSites = append(loadSites, n.Pos())
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, isEpoch := epochLoadCall(call, field); isEpoch {
					epochVars[obj] = true
					continue
				}
				// A .Load() whose result is pointer-typed: the retained
				// pointer the deref rule guards.
				if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Load" {
					if tv, ok := info.Types[rhs]; ok {
						if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
							ptrLoads[obj] = rhs.Pos()
						}
					}
				}
			}
		}
		return true
	})

	if len(loadSites) < 2 {
		pass.Reportf(fd.Pos(), "seqlock reader %s loads epoch field %s %d time(s); the protocol needs a load before and after the critical read", fd.Name.Name, field, len(loadSites))
	}

	// Rechecks: ==/!= comparisons with an epoch load (or epoch-bound var)
	// on either side. Odd tests: x&1 or x%2 where x derives from the epoch.
	var recheckSites []token.Pos
	oddTested := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ:
			if exprHasEpochLoad(be.X, field, epochVars, info) || exprHasEpochLoad(be.Y, field, epochVars, info) {
				recheckSites = append(recheckSites, be.Pos())
			}
		case token.AND, token.REM:
			if exprHasEpochLoad(be.X, field, epochVars, info) {
				oddTested = true
			}
		}
		return true
	})
	if len(recheckSites) == 0 {
		pass.Reportf(fd.Pos(), "seqlock reader %s never compares %s against a recorded value; a concurrent writer goes undetected", fd.Name.Name, field)
	}
	if !oddTested {
		pass.Reportf(fd.Pos(), "seqlock reader %s never tests %s for odd (writer-active) values", fd.Name.Name, field)
	}

	// Deref rule: a *p of a retained loaded pointer needs a recheck between
	// the load and the deref, and must not sit on the failed branch of a
	// recheck (the body of a != check, or the else of a == check).
	var walk func(n ast.Node, failZone bool)
	walk = func(n ast.Node, failZone bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init, failZone)
			}
			walk(n.Cond, failZone)
			bodyFail, elseFail := failZone, failZone
			if op, isRecheck := recheckCond(n.Cond, field, epochVars, info); isRecheck {
				if op == token.NEQ {
					bodyFail = true
				} else {
					elseFail = true
				}
			}
			walkBlock(n.Body, bodyFail, walk)
			if n.Else != nil {
				walk(n.Else, elseFail)
			}
			return
		case *ast.StarExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				obj := info.Uses[id]
				if obj != nil {
					if loadPos, tracked := ptrLoads[obj]; tracked {
						if failZone {
							pass.Reportf(n.Pos(), "seqlock reader %s dereferences %s on the failed %s-check path; a retained pointer is invalid once the recheck fails", fd.Name.Name, id.Name, field)
						} else if !anyBetween(recheckSites, loadPos, n.Pos()) {
							pass.Reportf(n.Pos(), "seqlock reader %s dereferences %s loaded at the start of the critical section without rechecking %s in between", fd.Name.Name, id.Name, field)
						}
					}
				}
			}
		}
		// Generic recursion.
		children(n, func(c ast.Node) { walk(c, failZone) })
	}
	walkBlock(fd.Body, false, walk)
	return
}

// recheckCond reports whether cond is (or contains at top level) an epoch
// recheck comparison, returning its operator.
func recheckCond(cond ast.Expr, field string, epochVars map[types.Object]bool, info *types.Info) (token.Token, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return token.ILLEGAL, false
	}
	if be.Op == token.EQL || be.Op == token.NEQ {
		if exprHasEpochLoad(be.X, field, epochVars, info) || exprHasEpochLoad(be.Y, field, epochVars, info) {
			return be.Op, true
		}
	}
	return token.ILLEGAL, false
}

// anyBetween reports whether any position in sorted-or-not sites falls in
// the open interval (lo, hi).
func anyBetween(sites []token.Pos, lo, hi token.Pos) bool {
	for _, p := range sites {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}

// walkBlock runs walk over each statement of a block with the given
// fail-zone flag.
func walkBlock(b *ast.BlockStmt, failZone bool, walk func(ast.Node, bool)) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		walk(st, failZone)
	}
}

// children invokes fn once per direct child node of n (via ast.Inspect's
// first level).
func children(n ast.Node, fn func(ast.Node)) {
	if n == nil {
		return
	}
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		fn(c)
		return false
	})
}

func checkSeqlockPub(pass *Pass, fd *ast.FuncDecl, field string) {
	info := pass.TypesInfo
	loadsByRecv := map[string][]token.Pos{}
	loadedVars := map[types.Object]bool{}
	var storeSites []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, ok := epochLoadCall(call, field); ok {
			loadsByRecv[recv] = append(loadsByRecv[recv], call.Pos())
			return true
		}
		// <recv>.<field>.Store(x)
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "Store" || len(call.Args) != 1 {
			return true
		}
		inner, isSel := sel.X.(*ast.SelectorExpr)
		if !isSel || inner.Sel.Name != field {
			return true
		}
		storeSites = append(storeSites, call)
		return true
	})
	// Bind vars assigned from a load (cur := slot.cur.Load()) so stores of
	// 1-cur are recognized as flips.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, isLoad := epochLoadCall(call, field); !isLoad {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					loadedVars[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					loadedVars[obj] = true
				}
			}
		}
		return true
	})

	if len(loadsByRecv) == 0 && len(storeSites) == 0 {
		pass.Reportf(fd.Pos(), "//bfgts:seqlock-pub %s on %s but the function never loads or stores %s; drop or fix the directive", field, fd.Name.Name, field)
		return
	}
	for recv, sites := range loadsByRecv {
		if len(sites) > 1 {
			// Report at the second load: the first snapshot was fine.
			pass.Reportf(sites[1], "published index %s.%s loaded %d times in %s; a concurrent flip between loads mixes buffer generations — load once and reuse the snapshot", recv, field, len(sites), fd.Name.Name)
		}
	}
	for _, call := range storeSites {
		arg := call.Args[0]
		if exprHasEpochLoad(arg, field, loadedVars, info) {
			continue // 1-cur / cur^1 style flip of the snapshot
		}
		pass.Reportf(call.Pos(), "published index %s stored without deriving from its loaded value in %s; a publish must flip the snapshot (1-cur), not reset the index", field, fd.Name.Name)
	}
}
