// Package analysis is bfgtsvet's stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, plus the analyzers that
// statically enforce this repo's load-bearing invariants:
//
//   - determinism: no wall-clock time, no global math/rand, no unordered
//     map-range iteration feeding output or appends, in the packages whose
//     results are pinned byte-identical at any -parallel level.
//   - allocfree: functions annotated //bfgts:allocfree must not contain
//     heap-escaping composite literals, make/new, appends to fresh local
//     slices, interface boxing, or escaping capturing closures.
//   - pinpair: every System.Pin(tx) must be balanced by a later (or
//     deferred) Unpin in the same function, or carry an explicit
//     //bfgts:pin-handoff directive naming where the Unpin lives.
//   - metricshoist: metrics Registry lookups (Counter/Gauge/...) are
//     construction-time only — banned inside loops and //bfgts:allocfree
//     bodies, per the nil-is-free cached-instrument design.
//   - atomicfield: a field reached through sync/atomic (typed atomics, or
//     free functions taking its address) must never be read or written
//     plainly elsewhere in the package.
//   - lockorder: double-lock and missing-unlock on sync.Mutex/RWMutex
//     paths, package-wide lock-acquisition-order cycles, and the
//     //bfgts:lock-rank canonical sort-before-acquire discipline of the
//     STM commit path.
//   - seqlock: //bfgts:seqlock readers must load the epoch before and
//     after the critical read, test for odd (writer-active) values, and
//     never dereference a retained pointer before the recheck;
//     //bfgts:seqlock-pub readers of a published double-buffer index must
//     load it exactly once per receiver and only flip (never reset) it.
//   - spsc: //bfgts:spsc-producer and //bfgts:spsc-consumer methods of a
//     ring type must never both be called on the same ring identity
//     anywhere in the package — single-ownership of each ring end.
//   - shardsafe: managers carrying the sched.ShardSafe marker must not
//     write package-level state or touch the cross-lane-shared Env.Rand
//     from their methods.
//   - directives: every //bfgts: comment must name a known directive,
//     sit in a legal position (function doc vs line), and carry its
//     required arguments (an ignore needs a written justification).
//
// The module cannot vendor x/tools, so the Analyzer/Pass/Diagnostic types
// here mirror the x/tools API shape closely enough that the analyzers and
// their tests would port over mechanically if the dependency ever lands.
//
// Directives (all are line comments, parsed from the files' comment lists):
//
//	//bfgts:allocfree                      on a function's doc comment
//	//bfgts:ignore <analyzer> <reason>     on or directly above an offending
//	                                       line; <analyzer> may be "all"
//	//bfgts:pin-handoff <where>            on or directly above a Pin call
//	//bfgts:seqlock <epochField>           on a seqlock reader's doc comment
//	//bfgts:seqlock-pub <idxField>         on a published-index reader's doc
//	//bfgts:spsc-producer                  on a ring type's push method
//	//bfgts:spsc-consumer                  on a ring type's pop method
//	//bfgts:lock-rank <slice>              on a function whose acquisition
//	                                       loop must follow a sort of <slice>
//	//bfgts:lock-handoff <where>           on or directly above a Lock whose
//	                                       Unlock lives elsewhere
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned within a Pass's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Analyzer is a single static check, run over one package at a time.
type Analyzer struct {
	Name string
	Doc  string
	// PinnedOnly marks analyzers that only apply to the packages whose
	// output is pinned byte-identical (the vet driver consults this; the
	// analyzer itself flags wherever it is run, which is what the
	// analysistest fixtures rely on).
	PinnedOnly bool
	Run        func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run executes one analyzer over a type-checked package and returns its
// findings, sorted by position, with //bfgts:ignore suppressions applied.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	ignores := collectIgnores(fset, files)
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !ignores.suppresses(fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, AllocFree, PinPair, MetricsHoist,
		AtomicField, LockOrder, Seqlock, SPSC, ShardSafe, Directives,
	}
}

// commentText returns a comment's text with any trailing analysistest
// `// want` expectation stripped, so fixtures can assert on diagnostics
// reported at a directive comment's own position.
func commentText(c *ast.Comment) string {
	text := c.Text
	if i := strings.Index(text, " // want "); i >= 0 {
		text = strings.TrimRight(text[:i], " \t")
	}
	return text
}

// ignoreSet records //bfgts:ignore directives by file and line.
type ignoreSet map[string]map[int][]string // filename -> line -> analyzer names

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(commentText(c), "//bfgts:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := set[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					set[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
			}
		}
	}
	return set
}

// suppresses reports whether an ignore directive on the diagnostic's line,
// or the line directly above it, names this analyzer (or "all").
func (s ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	m := s[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// hasDirective reports whether a function's doc comment carries the given
// //bfgts: directive (exact word, e.g. "allocfree").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(commentText(c), "//bfgts:")
		if !ok {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == directive {
			return true
		}
	}
	return false
}

// lineDirective reports whether a //bfgts:<directive> comment sits on the
// given line or the line directly above it in file f.
func lineDirective(fset *token.FileSet, f *ast.File, pos token.Pos, directive string) bool {
	want := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(commentText(c), "//bfgts:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 || fields[0] != directive {
				continue
			}
			if l := fset.Position(c.Pos()).Line; l == want || l == want-1 {
				return true
			}
		}
	}
	return false
}

// inspectStack walks each file, calling fn with every node and the stack of
// its ancestors (outermost first, not including the node itself). If fn
// returns false the node's children are skipped.
func inspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingFile returns the *ast.File of a Pass containing pos.
func (p *Pass) enclosingFile(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// pkgFuncs calls fn for every function declaration with a body.
func pkgFuncs(files []*ast.File, fn func(fd *ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// directiveArgs returns the arguments of a //bfgts:<directive> comment in a
// function's doc group, and whether the directive is present at all.
func directiveArgs(doc *ast.CommentGroup, directive string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(commentText(c), "//bfgts:")
		if !ok {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == directive {
			return fields[1:], true
		}
	}
	return nil, false
}

// exprPath renders an identifier/selector/index chain ("sh.out[i]" ->
// "sh.out[]", "v.version" -> "v.version") as a stable receiver-path key.
// Expressions outside that grammar render as "" (callers skip them).
func exprPath(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		if base := exprPath(e.X); base != "" {
			return base + "[]"
		}
	case *ast.StarExpr:
		return exprPath(e.X)
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprPath(e.X)
		}
	}
	return ""
}

// exprContainsName reports whether the rendered path of expr mentions name
// as one of its dot/bracket-separated components.
func exprContainsName(expr ast.Expr, name string) bool {
	path := exprPath(expr)
	for _, part := range strings.FieldsFunc(path, func(r rune) bool {
		return r == '.' || r == '[' || r == ']'
	}) {
		if part == name {
			return true
		}
	}
	return false
}

// namedType unwraps pointers and returns the named type of t, or nil.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgType reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}
