package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// This file implements the go vet action protocol, so cmd/bfgtsvet can be
// run as `go vet -vettool=$(bfgtsvet) ./...` with the go command doing
// package loading, export-data generation, caching and scheduling. The
// protocol (cmd/go/internal/work.vetConfig) is:
//
//   - `tool -V=full` prints "name version <id>"; the go command uses the id
//     as the cache key, so it must change whenever the tool's behavior
//     does. We hash the tool's own binary.
//   - `tool -flags` prints a JSON description of supported analyzer flags.
//   - `tool path/to/vet.cfg` analyzes one package described by the JSON
//     config, writes the (opaque to the go command) facts file named by
//     VetxOutput, prints findings to stderr, and exits nonzero on findings.
//
// Dependencies are vetted first with VetxOnly=true to produce facts; none
// of this suite's analyzers use cross-package facts, so that path just
// writes an empty file. This mirrors x/tools' unitchecker, which the
// module cannot depend on.

// vetConfig matches the JSON written by cmd/go/internal/work.buildVetConfig.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// pinnedPackages are the import-path suffixes whose simulation output is
// pinned byte-identical at any -parallel level (ROADMAP; enforced at
// runtime by TestParallelMatchesSerial). The determinism analyzer runs
// only on these.
var pinnedPackages = []string{
	"internal/sim",
	"internal/tm",
	"internal/sched",
	"internal/harness",
	"internal/bloofi",
	"internal/decision",
	"internal/workload",
}

// isPinnedImportPath matches a package (or its test variants) against
// pinnedPackages.
func isPinnedImportPath(path string) bool {
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	for _, p := range pinnedPackages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// jsonEnv is how -json survives the standalone mode's re-exec through the
// go command: the child tool invocations see the environment, not the
// original argv.
const jsonEnv = "BFGTSVET_JSON"

// VetMain is cmd/bfgtsvet's entry point. It never returns.
func VetMain() {
	args := os.Args[1:]
	jsonMode := os.Getenv(jsonEnv) == "1"
	kept := args[:0]
	for _, arg := range args {
		if arg == "-json" || arg == "--json" {
			jsonMode = true
			continue
		}
		kept = append(kept, arg)
	}
	args = kept
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// The id keys go vet's result cache (which replays stderr), so
			// the output mode must be part of it.
			id := selfID()
			if jsonMode {
				id += "-json"
			}
			fmt.Printf("bfgtsvet version %s\n", id)
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := RunVetConfig(args[0], os.Stderr, jsonMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfgtsvet: %v\n", err)
			os.Exit(2)
		}
		if diags > 0 {
			os.Exit(1)
		}
		os.Exit(0)
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: bfgtsvet [packages]  (or via go vet -vettool)")
		os.Exit(2)
	}
	// Standalone convenience mode: `bfgtsvet ./...` re-execs the go
	// command with this binary as the vet tool, so users get the same
	// loading, caching and parallelism as the scripts/check.sh gate.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfgtsvet: %v\n", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool", self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if jsonMode {
		cmd.Env = append(os.Environ(), jsonEnv+"=1")
	}
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "bfgtsvet: %v\n", err)
		os.Exit(2)
	}
	os.Exit(0)
}

// selfID returns a content hash of the running binary, so go vet's result
// cache is invalidated whenever the tool is rebuilt with different
// analyzers.
func selfID() string {
	path, err := os.Executable()
	if err != nil {
		return "v0-unknown"
	}
	f, err := os.Open(path)
	if err != nil {
		return "v0-unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "v0-unknown"
	}
	return fmt.Sprintf("v1-%x", h.Sum(nil)[:12])
}

// JSONDiagnostic is the machine-readable form of one finding, emitted one
// JSON object per line in -json mode for CI annotation tooling.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Encode renders the diagnostic as its single-line -json wire form.
func (d JSONDiagnostic) Encode() string {
	b, _ := json.Marshal(d)
	return string(b)
}

// ParseJSONDiagnostic decodes one -json output line.
func ParseJSONDiagnostic(line string) (JSONDiagnostic, error) {
	var d JSONDiagnostic
	if err := json.Unmarshal([]byte(line), &d); err != nil {
		return JSONDiagnostic{}, err
	}
	return d, nil
}

// FormatDiagnostic renders one finding for vet output: the classic
// "file:line:col: message (bfgtsvet/analyzer)" form, or the JSON wire form
// when jsonMode.
func FormatDiagnostic(pos token.Position, d Diagnostic, jsonMode bool) string {
	if jsonMode {
		return JSONDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}.Encode()
	}
	return fmt.Sprintf("%s: %s (bfgtsvet/%s)", pos, d.Message, d.Analyzer)
}

// RunVetConfig analyzes the single package described by a go vet config
// file, printing findings to w. It returns the number of findings.
func RunVetConfig(cfgPath string, w io.Writer, jsonMode bool) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The facts file must exist even when we have nothing to say: the go
	// command records it as the action's output for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("bfgtsvet\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	var typeErrs []error
	tcfg := types.Config{
		Importer: &vetImporter{cfg: &cfg, fset: fset},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, _ := tcfg.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, typeErrs[0])
	}

	pinned := isPinnedImportPath(cfg.ImportPath)
	count := 0
	for _, a := range All() {
		if a.PinnedOnly && !pinned {
			continue
		}
		diags, err := Run(a, fset, files, pkg, info)
		if err != nil {
			return count, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			// Test files may allocate, shuffle, and time things freely;
			// the invariants guard shipped simulation code.
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			fmt.Fprintln(w, FormatDiagnostic(pos, d, jsonMode))
			count++
		}
	}
	return count, nil
}

// vetImporter resolves imports through the export data files the go
// command already built, honoring the source-path -> canonical-path map
// (vendored std imports and the like).
type vetImporter struct {
	cfg  *vetConfig
	fset *token.FileSet
	gc   types.ImporterFrom
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	return v.ImportFrom(path, "", 0)
}

func (v *vetImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if v.gc == nil {
		lookup := func(p string) (io.ReadCloser, error) {
			file, ok := v.cfg.PackageFile[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		}
		v.gc = importer.ForCompiler(v.fset, "gc", lookup).(types.ImporterFrom)
	}
	return v.gc.ImportFrom(path, dir, mode)
}
