package analysis

import (
	"go/ast"
	"go/types"
)

// PinPair guards the pooled-Tx storage contract (internal/tm/tm.go): a
// released transaction's object is recycled by a later Begin unless pinned,
// so a Pin whose Unpin never runs leaks pool slots, and a Pin with no
// reachable Unpin at all is a use-after-release waiting to happen — the
// classifier would read line sets that a recycled Tx has overwritten. The
// race detector only catches the latter when a test happens to exercise the
// interleaving; this check fires on every function, exercised or not.
//
// Rule: in any function that calls System.Pin (a method named Pin with one
// argument on a type named System), each Pin call site must be followed —
// lexically later in the same function, or in a defer anywhere in it — by a
// System.Unpin call, or carry a `//bfgts:pin-handoff <where>` directive on
// or directly above the call, documenting which function performs the
// balancing Unpin.
//
// The check is lexical, not flow-sensitive: it will accept a Pin/Unpin pair
// on divergent branches. It exists to force every cross-function handoff to
// be written down, not to prove balance.
var PinPair = &Analyzer{
	Name: "pinpair",
	Doc:  "every System.Pin must have a later/deferred Unpin in the same function or a //bfgts:pin-handoff directive",
	Run:  runPinPair,
}

// PinHandoffDirective marks a Pin whose Unpin lives in another function.
const PinHandoffDirective = "pin-handoff"

func runPinPair(pass *Pass) error {
	for _, f := range pass.Files {
		file := f
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPinPairs(pass, file, fd)
		}
	}
	return nil
}

func checkPinPairs(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	var pins []*ast.CallExpr
	var unpins []*ast.CallExpr
	var deferredUnpin bool

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isPinSystemCall(pass, n.Call, "Unpin") {
				deferredUnpin = true
			}
			return true
		case *ast.CallExpr:
			if isPinSystemCall(pass, n, "Pin") {
				pins = append(pins, n)
			} else if isPinSystemCall(pass, n, "Unpin") {
				unpins = append(unpins, n)
			}
		}
		return true
	})

	for _, pin := range pins {
		if deferredUnpin {
			continue
		}
		balanced := false
		for _, up := range unpins {
			if up.Pos() > pin.Pos() {
				balanced = true
				break
			}
		}
		if balanced {
			continue
		}
		if lineDirective(pass.Fset, file, pin.Pos(), PinHandoffDirective) {
			continue
		}
		pass.Reportf(pin.Pos(), "System.Pin in %s has no later or deferred Unpin in this function; add one or document the handoff with //bfgts:pin-handoff <where>", fd.Name.Name)
	}
}

// isPinSystemCall reports whether call is recv.<method>(x) where recv's
// type is (a pointer to) a named type called System. Name-based matching
// keeps the analyzer testable against fixtures outside internal/tm; the
// repo has exactly one System type with a Pin/Unpin pair.
func isPinSystemCall(pass *Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method || len(call.Args) != 1 {
		return false
	}
	t := pass.exprType(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "System"
}
