package analysis

import (
	"go/ast"
	"go/types"
)

// MetricsHoist enforces the nil-is-free instrument design from
// internal/metrics: producers look instruments up once, at construction
// time, and record through cached struct fields on the hot path. A
// Registry lookup (Counter, Gauge, Histogram, Summary, Series) inside a
// loop re-hashes the instrument name every iteration, and inside a
// //bfgts:allocfree body it also allocates the instrument on first use —
// both must be hoisted to fields.
//
// Matching is by name: a method in the lookup set on a receiver whose
// named type is called Registry. The repo has exactly one such type.
var MetricsHoist = &Analyzer{
	Name: "metricshoist",
	Doc:  "metrics Registry lookups must be hoisted out of loops and //bfgts:allocfree bodies",
	Run:  runMetricsHoist,
}

// registryLookups are the instrument-constructing Registry methods.
var registryLookups = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Summary": true, "Series": true,
}

func runMetricsHoist(pass *Pass) error {
	pkgFuncs(pass.Files, func(fd *ast.FuncDecl) {
		allocFree := hasDirective(fd.Doc, AllocFreeDirective)
		var stack []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if method, ok := isRegistryLookup(pass, call); ok {
					inLoop := false
					for _, anc := range stack {
						switch anc.(type) {
						case *ast.ForStmt, *ast.RangeStmt:
							inLoop = true
						}
					}
					switch {
					case inLoop:
						pass.Reportf(call.Pos(), "Registry.%s lookup inside a loop; hoist the instrument to a struct field acquired at construction time", method)
					case allocFree:
						pass.Reportf(call.Pos(), "Registry.%s lookup in //bfgts:allocfree function %s; record through a cached instrument instead", method, fd.Name.Name)
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	})
	return nil
}

func isRegistryLookup(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryLookups[sel.Sel.Name] {
		return "", false
	}
	t := pass.exprType(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	return sel.Sel.Name, true
}
