package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces all-atomic-or-never access on fields and
// package-level variables that are reached through sync/atomic anywhere in
// the package. Mixed atomic/plain access is the classic lost-update and
// torn-read bug the race detector only catches when a stress test happens
// to interleave the two sides; this pins it at compile time across
// internal/stm, internal/bloofi and internal/sim's ShardBarrier.
//
// Two rules:
//
//   - A variable (struct field or package-level var) whose address is
//     passed to a sync/atomic free function (atomic.LoadInt64(&s.n), ...)
//     must not be read or written plainly anywhere else in the package.
//   - A value of a sync/atomic type (atomic.Int64, atomic.Pointer[T],
//     atomic.Value, ...) must never be copied: not assigned, passed,
//     returned, or ranged over by value. Typed atomics are only usable
//     through methods on a stable address; a copy silently forks the
//     cell. (Method-receiver uses and &-of expressions are not copies.)
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed through sync/atomic must never be read or written plainly; atomic values must not be copied",
	Run:  runAtomicField,
}

// atomicFreeFuncs are the sync/atomic package-level functions taking an
// address argument (everything except the type constructors and helpers).
func isAtomicFreeFunc(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	name := sel.Sel.Name
	for _, prefix := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return name, true
		}
	}
	return "", false
}

// isAtomicType reports whether t is one of sync/atomic's typed cells.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect the objects whose address feeds an atomic free
	// function, remembering the op name for the message, plus the set of
	// those sanctioned &x sites themselves.
	atomicObjs := map[types.Object]string{}
	sanctioned := map[ast.Expr]bool{} // the x inside an atomic &x argument
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, ok := isAtomicFreeFunc(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addrTargetObj(pass, un.X); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = op
					}
					sanctioned[un.X] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag plain uses of those objects and copies of typed atomics.
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkPlainAtomicUse(pass, n, pass.TypesInfo.Uses[n.Sel], atomicObjs, sanctioned, stack)
		case *ast.Ident:
			// Bare package-level vars; fields come through the selector
			// case above (skip the Sel ident so they are not checked twice).
			if len(stack) > 0 {
				if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
					return true
				}
			}
			if obj, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
				checkPlainAtomicUse(pass, n, obj, atomicObjs, sanctioned, stack)
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				checkAtomicCopy(pass, rhs)
			}
			for _, lhs := range n.Lhs {
				checkAtomicOverwrite(pass, lhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				checkAtomicCopy(pass, v)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkAtomicCopy(pass, res)
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				checkAtomicCopy(pass, arg)
			}
		case *ast.RangeStmt:
			checkAtomicCopy(pass, n.X)
		}
		return true
	})
	return nil
}

// addrTargetObj resolves the target of an &x atomic argument to a stable
// object: a struct field or a package-level variable. Locals are exempt —
// a local only the current goroutine can reach has no mixed-access hazard
// worth annotating (and flagging them would fire on init-before-publish
// idioms).
func addrTargetObj(pass *Pass, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[x.Sel]
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			// Package scope sits directly under Universe.
			return v
		}
	case *ast.IndexExpr:
		return addrTargetObj(pass, x.X)
	case *ast.ParenExpr:
		return addrTargetObj(pass, x.X)
	}
	return nil
}

// checkPlainAtomicUse flags a use of an atomically-accessed object outside
// a sanctioned &x-to-atomic position.
func checkPlainAtomicUse(pass *Pass, use ast.Expr, obj types.Object, atomicObjs map[types.Object]string, sanctioned map[ast.Expr]bool, stack []ast.Node) {
	if obj == nil {
		return
	}
	op, ok := atomicObjs[obj]
	if !ok {
		return
	}
	// Walk outward through index/paren wrappers: if any enclosing
	// expression is a sanctioned atomic &x target, this use is the atomic
	// access itself.
	if sanctioned[use] {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if e, ok := stack[i].(ast.Expr); ok && sanctioned[e] {
			return
		}
		if _, isStmt := stack[i].(ast.Stmt); isStmt {
			break
		}
	}
	pass.Reportf(use.Pos(), "%s is accessed with atomic.%s elsewhere in this package; plain reads/writes race with it — use sync/atomic here too", obj.Name(), op)
}

// checkAtomicCopy flags expressions that copy a typed atomic by value.
func checkAtomicCopy(pass *Pass, e ast.Expr) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return // calls, literals, &x, conversions: not a value copy of a cell
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	if isAtomicType(tv.Type) {
		pass.Reportf(e.Pos(), "copies %s by value; typed atomics are only meaningful through methods on one address", typeShort(tv.Type))
	}
}

// checkAtomicOverwrite flags plain assignment into an atomic-typed lvalue
// (n.cur = x), which bypasses the cell's Store.
func checkAtomicOverwrite(pass *Pass, lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	switch lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	// Skip declarations of new atomic variables (var x atomic.Int64 is
	// fine); only flag overwrites of existing cells through selectors and
	// indexes, where another goroutine may hold the address.
	if _, isIdent := lhs.(*ast.Ident); isIdent {
		return
	}
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok {
		return
	}
	if isAtomicType(tv.Type) {
		pass.Reportf(lhs.Pos(), "plainly overwrites %s; use its Store method", typeShort(tv.Type))
	}
}

// typeShort renders a type without its package path qualifier noise.
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
