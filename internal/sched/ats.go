package sched

import "repro/internal/metrics"

// ATS is Adaptive Transaction Scheduling (Yoo & Lee, SPAA 2008), the
// dynamically tuning software version the paper compares against. Each
// static transaction carries a conflict-pressure moving average; when a
// beginning transaction's pressure exceeds the threshold it must go
// through one central wait queue, executing serially with respect to every
// other high-pressure transaction. Low-pressure transactions bypass the
// queue entirely, so ATS costs almost nothing when contention is low — but
// it never learns *which* transactions conflict, so under dense contention
// it serializes everything onto one queue of sleeping threads, and kernel
// time explodes (the paper's Figure 5 Delaunay/Kmeans/Intruder bars).
type ATS struct {
	env      Env
	pressure *pressureMeter

	// Threshold is the conflict pressure above which transactions
	// serialize.
	Threshold float64

	// queue holds blocked thread IDs in arrival order; tokenOwner is the
	// thread currently allowed to run serially (-1 when none).
	queue      []int
	tokenOwner int

	// queueOpCost models the user-space critical section protecting the
	// queue (the futex costs are charged by the OS model on block/wake).
	queueOpCost int64

	// Decision-point instruments (nil = disabled, free).
	metBlocks   *metrics.Counter // begins parked on the central queue
	metSerial   *metrics.Counter // begins that took (or held) the token
	metQueueLen *metrics.Summary // queue depth observed at each block
	metAborts   *metrics.Counter
	gate        *crossingTracker
}

// NewATS returns the manager with the tuning used in the evaluation:
// history weight 0.7, serialization threshold 0.5.
func NewATS(env Env) *ATS {
	a := &ATS{
		env:         env,
		pressure:    newPressureMeter(env.NumStatic, 0.7),
		Threshold:   0.5,
		tokenOwner:  -1,
		queueOpCost: 60,
	}
	if reg := env.Metrics; reg != nil {
		a.metBlocks = reg.Counter("sched.ats.blocks")
		a.metSerial = reg.Counter("sched.ats.serial_begins")
		a.metQueueLen = reg.Summary("sched.ats.queue_depth")
		a.metAborts = reg.Counter("sched.aborts")
		a.gate = newCrossingTracker(env.NumStatic, a.Threshold,
			reg.Counter("sched.pressure.cross_up"),
			reg.Counter("sched.pressure.cross_down"))
	}
	return a
}

// Name implements Manager.
func (a *ATS) Name() string { return "ATS" }

// Pressure exposes the current conflict pressure of stx (for tests and
// diagnostics).
func (a *ATS) Pressure(stx int) float64 { return a.pressure.value(stx) }

// OnBegin implements Manager.
func (a *ATS) OnBegin(tid, stx int) BeginResult {
	if a.tokenOwner == tid {
		// Woken as the queue head (or retrying after an abort while
		// holding the token): run serially now.
		a.metSerial.Inc()
		return BeginResult{Action: Proceed, Overhead: a.queueOpCost}
	}
	if a.pressure.value(stx) <= a.Threshold {
		return BeginResult{Action: Proceed, Overhead: 8}
	}
	// High pressure: serialize through the central queue.
	if a.tokenOwner == -1 {
		a.tokenOwner = tid
		a.metSerial.Inc()
		return BeginResult{Action: Proceed, Overhead: a.queueOpCost}
	}
	a.queue = append(a.queue, tid)
	a.metBlocks.Inc()
	a.metQueueLen.Observe(float64(len(a.queue)))
	return BeginResult{
		Action:     Block,
		Overhead:   a.queueOpCost,
		Confidence: a.pressure.value(stx),
	}
}

// OnCPUSlot implements Manager: ATS keeps no CPU table.
func (a *ATS) OnCPUSlot(cpu, dtx int) {}

// OnAbort implements Manager: raise pressure and back off briefly. A
// token-holding transaction keeps the token across the retry, preserving
// its serial slot.
func (a *ATS) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	a.metAborts.Inc()
	a.pressure.onConflict(stx)
	a.pressure.onConflict(enemyStx)
	if a.gate != nil {
		a.gate.observe(stx, a.pressure.value(stx))
		a.gate.observe(enemyStx, a.pressure.value(enemyStx))
	}
	shift := attempts
	if shift > 8 {
		shift = 8
	}
	return AbortResult{
		Backoff:  a.env.Rand.Int63n(200<<shift) + 1,
		Overhead: 20,
	}
}

// OnCommit implements Manager.
func (a *ATS) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	a.pressure.onCommit(stx)
	if a.gate != nil {
		a.gate.observe(stx, a.pressure.value(stx))
	}
	return 15
}

// OnTxEnded implements Manager: a committed token holder hands the token
// to the next queued thread and wakes it.
func (a *ATS) OnTxEnded(tid, stx int, committed bool) {
	if !committed || a.tokenOwner != tid {
		return
	}
	if len(a.queue) == 0 {
		a.tokenOwner = -1
		return
	}
	next := a.queue[0]
	a.queue = a.queue[1:]
	a.tokenOwner = next
	a.env.Wake(next)
}

// QueueLen exposes the central queue depth (for tests and diagnostics).
func (a *ATS) QueueLen() int { return len(a.queue) }

// MeanPressure implements PressureReporter.
func (a *ATS) MeanPressure() float64 { return a.pressure.mean() }
