package sched

import (
	"repro/internal/bloofi"
	"repro/internal/core"
	"repro/internal/hwaccel"
	"repro/internal/metrics"
)

// BFGTSMode selects which of the paper's four BFGTS variants a manager
// instance implements.
type BFGTSMode int

// BFGTS variants (Section 5.1).
const (
	// BFGTSSW does everything in software, including the begin-time CPU
	// table scan.
	BFGTSSW BFGTSMode = iota
	// BFGTSHW uses the hardware accelerator (internal/hwaccel) for
	// begin-time predictions.
	BFGTSHW
	// BFGTSHWBackoff is the Section 4.3 hybrid: randomized backoff while
	// conflict pressure is low, full BFGTS-HW when it is high.
	BFGTSHWBackoff
	// BFGTSNoOverhead is the limit study: every scheduling operation
	// completes in one cycle and signatures are perfect.
	BFGTSNoOverhead
)

func (m BFGTSMode) String() string {
	switch m {
	case BFGTSSW:
		return "BFGTS-SW"
	case BFGTSHW:
		return "BFGTS-HW"
	case BFGTSHWBackoff:
		return "BFGTS-HW/Backoff"
	case BFGTSNoOverhead:
		return "BFGTS-NoOverhead"
	default:
		return "BFGTS-?"
	}
}

// BFGTS is the paper's contention manager: Bloom-filter-guided transaction
// scheduling over the internal/core runtime, with optional hardware
// prediction and the optional pressure-gated hybrid mode.
type BFGTS struct {
	env  Env
	mode BFGTSMode
	rt   *core.Runtime

	bank     *hwaccel.Bank // HW modes only
	cpuTable []int         // SW modes only

	// dir/probe are the Bloofi directory over the CPU table (SW modes,
	// unless Env.LinearScan): each occupied slot is indexed under the
	// folded static ID of the transaction running there, so the begin
	// scan descends only subtrees holding a suspect instead of walking
	// every entry. Results are byte-identical to the linear walk (see
	// core.PredictDir).
	dir   *bloofi.Tree
	probe *bloofi.Probe

	pressure *pressureMeter // hybrid mode only
	// PressureThreshold gates the hybrid: below it, behave like Backoff
	// (paper value 0.25 with heavy history bias).
	PressureThreshold float64

	// Decision-point instruments (nil = disabled, free).
	metPredictions *metrics.Counter // begin-time predictions made
	metSerSpin     *metrics.Counter // serializations: spin-stall kind
	metSerYield    *metrics.Counter // serializations: yield kind
	metLightBegin  *metrics.Counter // hybrid: begins that skipped prediction
	metLightCommit *metrics.Counter // hybrid: commits on the light path
	metAborts      *metrics.Counter
	gate           *crossingTracker // hybrid pressure-gate crossings

	// Directory-probe instruments (dir modes only).
	metProbeNodes *metrics.Histogram // tree nodes visited per begin probe
	metProbeCands *metrics.Histogram // candidate slots surfaced per probe
	metProbeRun   *metrics.Histogram // running-set size at probe time
}

// NewBFGTS builds a manager variant. cfg seeds the core runtime; its
// NumThreads/NumStatic are overridden from env. For BFGTSNoOverhead the
// signature and cost settings are forced to perfect/one-cycle.
func NewBFGTS(env Env, mode BFGTSMode, cfg core.Config) *BFGTS {
	cfg.NumThreads = env.NumThreads
	cfg.NumStatic = env.NumStatic
	costs := core.DefaultCosts()
	if mode == BFGTSNoOverhead {
		cfg.Perfect = true
		costs = core.NoOverheadCosts()
	}
	b := &BFGTS{
		env:               env,
		mode:              mode,
		rt:                core.NewRuntime(cfg, costs),
		PressureThreshold: 0.25,
	}
	switch mode {
	case BFGTSHW, BFGTSHWBackoff:
		b.bank = hwaccel.NewBank(b.rt, env.NumCPUs, hwaccel.DefaultCacheConfig())
	default:
		b.cpuTable = make([]int, env.NumCPUs)
		for i := range b.cpuTable {
			b.cpuTable[i] = core.NoTx
		}
		if !env.LinearScan {
			b.dir = bloofi.New(bloofi.Config{Capacity: env.NumCPUs})
			b.probe = bloofi.NewProbe(b.dir)
		}
	}
	if mode == BFGTSHWBackoff {
		// "Heavily biases past history, therefore the frequency of
		// switching between backoff and BFGTS-HW is slow."
		b.pressure = newPressureMeter(env.NumStatic, 0.95)
	}
	reg := env.Metrics
	b.rt.SetMetrics(reg)
	if b.bank != nil {
		b.bank.SetMetrics(reg)
	}
	b.metPredictions = reg.Counter("sched.predictions")
	b.metSerSpin = reg.Counter("sched.serialize.spin")
	b.metSerYield = reg.Counter("sched.serialize.yield")
	b.metAborts = reg.Counter("sched.aborts")
	if b.dir != nil {
		b.metProbeNodes = reg.Histogram("sched.bfgts.probe.nodes")
		b.metProbeCands = reg.Histogram("sched.bfgts.probe.candidates")
		b.metProbeRun = reg.Histogram("sched.bfgts.probe.running")
	}
	if b.pressure != nil && reg != nil {
		b.metLightBegin = reg.Counter("sched.hybrid.light_begins")
		b.metLightCommit = reg.Counter("sched.hybrid.light_commits")
		b.gate = newCrossingTracker(env.NumStatic, b.PressureThreshold,
			reg.Counter("sched.pressure.cross_up"),
			reg.Counter("sched.pressure.cross_down"))
	}
	return b
}

// Name implements Manager.
func (b *BFGTS) Name() string { return b.mode.String() }

// Runtime exposes the underlying BFGTS state for reporting (similarity,
// confidence-table footprint).
func (b *BFGTS) Runtime() *core.Runtime { return b.rt }

// Mode returns the variant this instance implements.
func (b *BFGTS) Mode() BFGTSMode { return b.mode }

func (b *BFGTS) predict(tid, stx int) core.Prediction {
	cpu := b.env.CPUOf(tid)
	if b.bank != nil {
		return b.bank.Unit(cpu).Predict(stx)
	}
	if b.dir != nil {
		pred := b.rt.PredictDir(stx, b.cpuTable, cpu, b.probe)
		b.metProbeNodes.Observe(int64(b.probe.Nodes()))
		b.metProbeCands.Observe(int64(b.probe.Candidates()))
		b.metProbeRun.Observe(int64(b.dir.Len()))
		return pred
	}
	return b.rt.PredictSW(stx, b.cpuTable, cpu)
}

// OnBegin implements Manager: in hybrid mode, low conflict pressure skips
// prediction entirely; otherwise predict (Example 1), and on a predicted
// conflict run suspendTx (Example 2) to decide between spin-stall and
// yield.
func (b *BFGTS) OnBegin(tid, stx int) BeginResult {
	if b.pressure != nil && b.pressure.value(stx) <= b.PressureThreshold {
		b.metLightBegin.Inc()
		return BeginResult{Action: Proceed, Overhead: 5}
	}
	b.metPredictions.Inc()
	pred := b.predict(tid, stx)
	if !pred.Conflict {
		return BeginResult{Action: Proceed, Overhead: pred.Cycles}
	}
	self := b.rt.Config().DTx(tid, stx)
	dec := b.rt.SuspendTx(self, pred.WaitDTx)
	action := SpinWait
	if dec.Yield {
		action = YieldRetry
		b.metSerYield.Inc()
	} else {
		b.metSerSpin.Inc()
	}
	_, enemyStx := b.rt.Config().SplitDTx(pred.WaitDTx)
	return BeginResult{
		Action:     action,
		WaitDTx:    pred.WaitDTx,
		Overhead:   pred.Cycles + dec.Cycles,
		Confidence: b.rt.Conf(stx, enemyStx),
		Similarity: 0.5 * (b.rt.Similarity(self) + b.rt.Similarity(pred.WaitDTx)),
	}
}

// OnCPUSlot implements Manager: in hardware modes this is the snoop
// broadcast; in software modes the runtime's shared CPU table is updated
// directly, and the Bloofi directory (when enabled) mirrors it — occupied
// slots are indexed under the folded static ID of their transaction.
func (b *BFGTS) OnCPUSlot(cpu, dtx int) {
	if b.bank != nil {
		if dtx == core.NoTx {
			b.bank.BroadcastEnd(cpu)
		} else {
			b.bank.BroadcastBegin(cpu, dtx)
		}
		return
	}
	b.cpuTable[cpu] = dtx
	if b.dir == nil {
		return
	}
	if dtx == core.NoTx {
		if b.dir.Occupied(cpu) {
			b.dir.Remove(cpu)
		}
		return
	}
	_, stx := b.rt.Config().SplitDTx(dtx)
	b.dir.Set(cpu, uint64(b.rt.Config().FoldStx(stx)))
}

// OnAbort implements Manager: txConflict (Example 3) plus a short
// randomized backoff (the underlying LogTM retry discipline).
func (b *BFGTS) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	b.metAborts.Inc()
	if b.pressure != nil {
		b.pressure.onConflict(stx)
		b.pressure.onConflict(enemyStx)
		if b.gate != nil {
			b.gate.observe(stx, b.pressure.value(stx))
			b.gate.observe(enemyStx, b.pressure.value(enemyStx))
		}
	}
	self := b.rt.Config().DTx(tid, stx)
	enemy := b.rt.Config().DTx(enemyTid, enemyStx)
	cost := b.rt.TxConflict(self, enemy)
	shift := attempts
	if shift > 8 {
		shift = 8
	}
	return AbortResult{
		Backoff:  b.env.Rand.Int63n(200<<shift) + 1,
		Overhead: cost,
	}
}

// OnCommit implements Manager: commitTx (Example 4). In hybrid mode with
// low pressure the Bloom-filter work is skipped (Section 4.3).
func (b *BFGTS) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	self := b.rt.Config().DTx(tid, stx)
	if b.pressure != nil {
		b.pressure.onCommit(stx)
		if b.gate != nil {
			b.gate.observe(stx, b.pressure.value(stx))
		}
		if b.pressure.value(stx) <= b.PressureThreshold {
			b.metLightCommit.Inc()
			return b.rt.CommitTxLight(self, size)
		}
	}
	return b.rt.CommitTx(self, lines, writes, size).Cycles
}

// OnTxEnded implements Manager.
func (b *BFGTS) OnTxEnded(tid, stx int, committed bool) {}

// MeanConfidence implements ConfidenceReporter: the mean of the learned
// confidence table, polled by the time-series sampler.
func (b *BFGTS) MeanConfidence() float64 { return b.rt.MeanConf() }

// MeanPressure implements PressureReporter for the hybrid variant; the
// other variants keep no pressure meter and report zero.
func (b *BFGTS) MeanPressure() float64 {
	if b.pressure == nil {
		return 0
	}
	return b.pressure.mean()
}
