package sched

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkBFGTSPredict measures the host cost of one begin-time
// prediction at simulated-machine scale, Bloofi directory against the
// linear CPU-table walk it replaces. The machine runs a low-overlap
// occupancy (every CPU busy, a handful of suspect statics), so the
// directory prunes most subtrees while the linear scan still touches
// every entry; modeled cycles are identical by construction, this is
// purely the simulator's own speed.
func BenchmarkBFGTSPredict(b *testing.B) {
	for _, cores := range []int{64, 256, 1024} {
		for _, linear := range []bool{false, true} {
			mode := "bloofi"
			if linear {
				mode = "linear"
			}
			b.Run(fmt.Sprintf("cores%d/%s", cores, mode), func(b *testing.B) {
				const nStatic = 8
				env, _ := testEnv(cores, cores, nStatic)
				env.LinearScan = linear
				m := NewBFGTS(env, BFGTSSW, core.DefaultConfig(cores, nStatic))
				// Learn confidence between static 0 and 1 so predictions
				// carry a real (small) suspect set.
				for i := 0; i < 40; i++ {
					m.OnAbort(0, 0, 1, 1, 1)
				}
				// Occupy every CPU; only every 16th runs a suspect static.
				cfg := m.Runtime().Config()
				for cpu := 1; cpu < cores; cpu++ {
					stx := 2 + cpu%(nStatic-2) // never 0/1: not suspect
					if cpu%16 == 0 {
						stx = 1
					}
					m.OnCPUSlot(cpu, cfg.DTx(cpu, stx))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.predict(0, 0)
				}
			})
		}
	}
}
