package sched

// pressureMeter is the conflict-pressure moving average of ATS (Yoo &
// Lee), kept per static transaction: it rises toward 1 on conflicts and
// falls toward 0 on commits, with a configurable history weight alpha —
// pressure' = alpha*pressure + (1-alpha)*event.
type pressureMeter struct {
	alpha  float64
	values []float64
}

func newPressureMeter(nStatic int, alpha float64) *pressureMeter {
	return &pressureMeter{alpha: alpha, values: make([]float64, nStatic)}
}

// onConflict folds a conflict event (1) into the average for stx.
func (p *pressureMeter) onConflict(stx int) {
	p.values[stx] = p.alpha*p.values[stx] + (1 - p.alpha)
}

// onCommit folds a clean commit event (0) into the average for stx.
func (p *pressureMeter) onCommit(stx int) {
	p.values[stx] = p.alpha * p.values[stx]
}

// value returns the current conflict pressure of stx.
func (p *pressureMeter) value(stx int) float64 { return p.values[stx] }
