package sched

import "repro/internal/metrics"

// pressureMeter is the conflict-pressure moving average of ATS (Yoo &
// Lee), kept per static transaction: it rises toward 1 on conflicts and
// falls toward 0 on commits, with a configurable history weight alpha —
// pressure' = alpha*pressure + (1-alpha)*event.
type pressureMeter struct {
	alpha  float64
	values []float64
}

func newPressureMeter(nStatic int, alpha float64) *pressureMeter {
	return &pressureMeter{alpha: alpha, values: make([]float64, nStatic)}
}

// onConflict folds a conflict event (1) into the average for stx.
func (p *pressureMeter) onConflict(stx int) {
	p.values[stx] = p.alpha*p.values[stx] + (1 - p.alpha)
}

// onCommit folds a clean commit event (0) into the average for stx.
func (p *pressureMeter) onCommit(stx int) {
	p.values[stx] = p.alpha * p.values[stx]
}

// value returns the current conflict pressure of stx.
func (p *pressureMeter) value(stx int) float64 { return p.values[stx] }

// mean returns the average conflict pressure across all static
// transactions (the sampler's phase signal).
func (p *pressureMeter) mean() float64 {
	if len(p.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range p.values {
		sum += v
	}
	return sum / float64(len(p.values))
}

// crossingTracker counts how often each static transaction's pressure
// crosses a gating threshold — the observable behind both ATS's serialize
// decision and the §4.3 hybrid's backoff/BFGTS switch. observe is called
// with the post-update pressure; a state flip in either direction counts
// as one crossing on the corresponding counter.
type crossingTracker struct {
	threshold float64
	high      []bool
	up, down  *metrics.Counter
}

func newCrossingTracker(nStatic int, threshold float64, up, down *metrics.Counter) *crossingTracker {
	return &crossingTracker{threshold: threshold, high: make([]bool, nStatic), up: up, down: down}
}

// observe folds in the current pressure of stx, counting a crossing if the
// gate state flipped since the last observation.
func (c *crossingTracker) observe(stx int, pressure float64) {
	h := pressure > c.threshold
	if h == c.high[stx] {
		return
	}
	c.high[stx] = h
	if h {
		c.up.Inc()
	} else {
		c.down.Inc()
	}
}
