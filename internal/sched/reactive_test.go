package sched

import "testing"

func TestReactiveManagersNeverGateBegins(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	for _, m := range []Manager{NewPolite(env), NewKarma(env), NewTimestampCM(env)} {
		for tid := 0; tid < 8; tid++ {
			if r := m.OnBegin(tid, tid%2); r.Action != Proceed {
				t.Errorf("%s gated a begin: %+v", m.Name(), r)
			}
		}
	}
}

func TestPoliteStallBudgetGrowsWithAttempts(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	p := NewPolite(env)
	b0 := p.StallBudget(StallInfo{Attempts: 0})
	b4 := p.StallBudget(StallInfo{Attempts: 4})
	bHuge := p.StallBudget(StallInfo{Attempts: 1000})
	if b4 <= b0 {
		t.Fatalf("patience did not grow: %d -> %d", b0, b4)
	}
	if bHuge > p.BaseStall<<p.MaxStallSh {
		t.Fatalf("patience exceeded cap: %d", bHuge)
	}
}

func TestKarmaPatienceFollowsWorkRatio(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	k := NewKarma(env)
	rich := k.StallBudget(StallInfo{ReqWork: 60, HolderWork: 3})
	poor := k.StallBudget(StallInfo{ReqWork: 2, HolderWork: 60})
	if rich <= poor {
		t.Fatalf("work-rich requester (%d) not more patient than work-poor (%d)", rich, poor)
	}
	if poor < 100 {
		t.Fatalf("budget below floor: %d", poor)
	}
	if rich > 16*k.BaseStall {
		t.Fatalf("budget above cap: %d", rich)
	}
}

func TestTimestampOlderIsPatient(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	ts := NewTimestampCM(env)
	old := ts.StallBudget(StallInfo{ReqSeq: 5, HolderSeq: 100})
	young := ts.StallBudget(StallInfo{ReqSeq: 100, HolderSeq: 5})
	if old != ts.OldPatience || young != ts.BaseStall {
		t.Fatalf("timestamp budgets = (%d, %d), want (%d, %d)", old, young, ts.OldPatience, ts.BaseStall)
	}
}

func TestReactiveAbortBackoffsBounded(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	for _, m := range []Manager{NewPolite(env), NewKarma(env), NewTimestampCM(env)} {
		for i := 0; i < 50; i++ {
			r := m.OnAbort(0, 0, 1, 1, 10000)
			if r.Backoff <= 0 || r.Backoff > 300<<10 {
				t.Fatalf("%s backoff out of bounds: %d", m.Name(), r.Backoff)
			}
		}
	}
}
