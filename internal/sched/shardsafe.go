package sched

// ShardSafe marks a contention manager as safe for fully-partitioned
// sharded simulation: all of its mutable state is keyed by thread, CPU or
// static transaction of a single shard's threads, and it never draws from
// the shared Env.Rand (whose draw order depends on the cross-shard
// interleaving). A manager without the marker still works at any shard
// count — the simulator falls back to the entangled shared-clock mode,
// which reproduces the shared Rand's draw order exactly.
type ShardSafe interface {
	// ShardSafe is a marker method; implementations are empty.
	ShardSafe()
}

// PerThreadBackoff is the Backoff baseline with the shared random stream
// replaced by per-thread splitmix64 jitter states seeded from the thread
// ID alone. Each thread's backoff draws then depend only on its own abort
// history — which is shard-local under the Sharder partition contract —
// so the manager carries the ShardSafe marker and partitioned lanes
// reproduce the sequential run's backoffs exactly. (It is intentionally
// NOT part of the baseline experiment set: its draw sequence differs from
// Backoff's, so swapping it in would shift every pinned report.)
type PerThreadBackoff struct {
	env Env

	// BaseCycles is the first backoff window; each consecutive abort of
	// the same execution doubles it up to MaxShift doublings.
	BaseCycles int64
	MaxShift   int

	jitter []uint64 // per-thread splitmix64 states
}

// NewPerThreadBackoff returns the shard-safe backoff baseline with the
// same windows as Backoff.
func NewPerThreadBackoff(env Env) *PerThreadBackoff {
	m := &PerThreadBackoff{
		env:        env,
		BaseCycles: 200,
		MaxShift:   9,
		jitter:     make([]uint64, env.NumThreads),
	}
	for tid := range m.jitter {
		// Seeded from the thread ID only: identical streams at any shard
		// count, with distinct odd increments keeping threads decorrelated.
		m.jitter[tid] = (uint64(tid)+1)*0xd1342543de82ef95 ^ 0x5bf0f7c9
	}
	return m
}

// ShardSafe implements the marker.
func (m *PerThreadBackoff) ShardSafe() {}

// Name implements Manager.
func (m *PerThreadBackoff) Name() string { return "Backoff-PT" }

// OnBegin implements Manager: always proceed, no overhead.
func (m *PerThreadBackoff) OnBegin(tid, stx int) BeginResult { return BeginResult{Action: Proceed} }

// OnCPUSlot implements Manager: no CPU table.
func (m *PerThreadBackoff) OnCPUSlot(cpu, dtx int) {}

// nextJitter advances thread tid's private splitmix64 stream.
func (m *PerThreadBackoff) nextJitter(tid int) uint64 {
	m.jitter[tid] += 0x9e3779b97f4a7c15
	z := m.jitter[tid]
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// OnAbort implements Manager: randomized exponential backoff, jittered
// from the aborting thread's own stream.
func (m *PerThreadBackoff) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	shift := attempts
	if shift > m.MaxShift {
		shift = m.MaxShift
	}
	window := m.BaseCycles << shift
	return AbortResult{
		Backoff:  int64(m.nextJitter(tid)%uint64(window)) + 1,
		Overhead: 10,
	}
}

// OnCommit implements Manager: no commit-time bookkeeping.
func (m *PerThreadBackoff) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	return 0
}

// OnTxEnded implements Manager.
func (m *PerThreadBackoff) OnTxEnded(tid, stx int, committed bool) {}
