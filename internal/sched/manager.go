// Package sched contains the contention managers evaluated in the paper,
// behind one plug-in interface:
//
//   - Backoff — the reactive baseline: randomized exponential backoff on
//     abort, nothing at begin time.
//   - ATS — Adaptive Transaction Scheduling (Yoo & Lee): per-transaction
//     conflict-pressure moving average; above a threshold, transactions
//     serialize on one central queue.
//   - PTS — Proactive Transaction Scheduling (Blake et al.): per-dTxID
//     conflict graph with confidence edges, begin-time software scan of
//     running transactions, commit-time validation by Bloom intersection.
//   - BFGTS-SW / BFGTS-HW / BFGTS-HW-Backoff / BFGTS-NoOverhead — the
//     paper's contributions, built on internal/core and internal/hwaccel.
//
// A manager receives event callbacks from the runner (internal/sim) and
// returns decisions plus the cycle cost of making them, which the runner
// charges as scheduling overhead.
package sched

import (
	"math/rand"

	"repro/internal/metrics"
)

// Action is the begin-time decision of a manager.
type Action int

// Begin-time actions.
const (
	// Proceed starts the transaction immediately.
	Proceed Action = iota
	// SpinWait busy-waits until WaitDTx is no longer active, then retries
	// the begin (Example 2's stallOnTx path for small transactions).
	SpinWait
	// YieldRetry yields the CPU (pthread_yield) and retries the begin when
	// rescheduled (Example 2's path for large transactions).
	YieldRetry
	// Block suspends the thread until the manager wakes it (ATS's central
	// wait queue).
	Block
)

// BeginResult is the outcome of OnBegin.
type BeginResult struct {
	Action   Action
	WaitDTx  int   // for SpinWait: the transaction to wait out
	Overhead int64 // cycles spent deciding (charged as scheduling time)

	// Confidence and Similarity are the predictor inputs behind the
	// decision, surfaced for the decision trace (internal/decision):
	// BFGTS fills the bloom-confidence and similarity values, ATS its
	// contention intensity, PTS its confidence count. Managers without a
	// notion of either leave them zero. They carry no cycle cost and do
	// not influence the runner.
	Confidence float64
	Similarity float64
}

// AbortResult is the outcome of OnAbort.
type AbortResult struct {
	// Backoff is how many cycles to wait before retrying the transaction.
	Backoff int64
	// Overhead is the bookkeeping cost (charged as scheduling time).
	Overhead int64
}

// Manager is a pluggable contention manager. All callbacks run at
// simulated instants; implementations must be deterministic given Env.Rand.
type Manager interface {
	// Name identifies the manager in results tables.
	Name() string

	// OnBegin is consulted every time a thread attempts to start (or
	// restart, after an abort or a serialization wait) transaction stx.
	OnBegin(tid, stx int) BeginResult

	// OnCPUSlot informs the manager that the transaction occupying a CPU
	// changed: dtx is the dynamic transaction now executing on cpu, or
	// core.NoTx when the CPU stopped running a transaction (commit, abort
	// rollback start, or its thread was descheduled). This is the snoop
	// traffic that maintains CPU tables.
	OnCPUSlot(cpu, dtx int)

	// OnAbort is called after transaction (tid, stx) rolled back from a
	// conflict with (enemyTid, enemyStx); attempts counts prior attempts
	// of this execution including the aborted one.
	OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult

	// OnCommit is called when (tid, stx) commits; lines lists the distinct
	// cache lines of its read/write set, writes the written subset, and
	// size is the distinct line count (which may differ from len(lines)
	// for callers that emit duplicates). The slices are scratch buffers
	// valid only for the duration of the call — managers must copy what
	// they keep. It returns the bookkeeping cost in cycles.
	OnCommit(tid, stx int, lines, writes []uint64, size int) int64

	// OnTxEnded is called when the dynamic transaction fully ends
	// (committed, or rolled back and about to retry).
	OnTxEnded(tid, stx int, committed bool)
}

// Env is the runner-provided environment managers operate in.
type Env struct {
	NumCPUs    int
	NumThreads int
	NumStatic  int
	// CPUOf maps a thread to its home CPU (threads are pinned).
	CPUOf func(tid int) int
	// Wake unblocks a thread the manager previously parked with Block.
	Wake func(tid int)
	// Rand is the deterministic random source for backoff jitter.
	Rand *rand.Rand
	// Metrics, when non-nil, receives the manager's decision-point
	// instrumentation. Managers must tolerate nil (the disabled default).
	Metrics *metrics.Registry
	// LinearScan disables the Bloofi signature directory, forcing the
	// managers that keep a software CPU table (PTS, BFGTS-SW and
	// BFGTS-NoOverhead) back to the literal linear begin-time walk. The
	// directory is a host-side indexing strategy with byte-identical
	// results, so this exists for the differential tests and as an
	// escape hatch, not as a modeled-machine knob.
	LinearScan bool
}

// ConfidenceReporter is an optional Manager extension exposing the mean
// conflict confidence of the learned table — the signal whose oscillation
// between serialized and optimistic phases the paper describes in §4.3.
// The time-series sampler (internal/sim) polls it when present.
type ConfidenceReporter interface {
	MeanConfidence() float64
}

// PressureReporter is an optional Manager extension exposing the mean
// ATS-style conflict pressure across static transactions. The time-series
// sampler polls it when present.
type PressureReporter interface {
	MeanPressure() float64
}
