package sched

// This file implements the classic *reactive* contention managers of
// Scherer & Scott, which the paper's Section 2 positions as the
// predecessors of transaction scheduling: they never predict, only decide
// — when a transaction is NACKed — how long to keep stalling before
// giving up, and how long to back off after an abort. On LogTM-style
// hardware a requester cannot abort the holder (eager versioning), so the
// policies reduce to stall-budget and backoff disciplines:
//
//   - Polite: bounded exponential patience — stall longer each consecutive
//     abort of the same execution, then retry.
//   - Karma: priority = work invested (lines accessed). A requester that
//     has done more work than the holder is patient (it expects to win);
//     one that has done less gives up quickly and retries later.
//   - Timestamp: age wins. Older transactions are patient; younger ones
//     yield quickly, which guarantees the oldest transaction in the system
//     always makes progress.
//
// They plug into the runner through the StallPolicy extension interface.

// StallInfo describes a NACK for StallPolicy decisions.
type StallInfo struct {
	ReqTid, ReqStx int
	// ReqWork and HolderWork count distinct lines each side has isolated
	// so far — Karma's "work invested" currency.
	ReqWork, HolderWork int
	// ReqSeq and HolderSeq are global begin-order stamps (lower = older).
	ReqSeq, HolderSeq uint64
	// Attempts is how many times this execution has already aborted.
	Attempts int
}

// StallPolicy is an optional Manager extension: managers implementing it
// control how long a NACKed transaction stalls before self-aborting,
// replacing the runner's fixed timeout.
type StallPolicy interface {
	// StallBudget returns the cycles to keep spinning on the line before
	// giving up and aborting. Returning 0 aborts immediately.
	StallBudget(info StallInfo) int64
}

// Polite is the patient reactive manager: its stall budget and its
// post-abort backoff both grow exponentially with consecutive failures.
type Polite struct {
	env        Env
	BaseStall  int64
	MaxStallSh int
}

// NewPolite returns the Polite manager with the evaluation's windows.
func NewPolite(env Env) *Polite {
	return &Polite{env: env, BaseStall: 400, MaxStallSh: 6}
}

// Name implements Manager.
func (p *Polite) Name() string { return "Polite" }

// OnBegin implements Manager: reactive managers never gate begins.
func (p *Polite) OnBegin(tid, stx int) BeginResult { return BeginResult{Action: Proceed} }

// OnCPUSlot implements Manager.
func (p *Polite) OnCPUSlot(cpu, dtx int) {}

// StallBudget implements StallPolicy: patience doubles per abort.
func (p *Polite) StallBudget(info StallInfo) int64 {
	sh := info.Attempts
	if sh > p.MaxStallSh {
		sh = p.MaxStallSh
	}
	return p.BaseStall << sh
}

// OnAbort implements Manager.
func (p *Polite) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	sh := attempts
	if sh > 9 {
		sh = 9
	}
	return AbortResult{Backoff: p.env.Rand.Int63n(200<<sh) + 1, Overhead: 8}
}

// OnCommit implements Manager.
func (p *Polite) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	return 0
}

// OnTxEnded implements Manager.
func (p *Polite) OnTxEnded(tid, stx int, committed bool) {}

// Karma is the work-invested reactive manager.
type Karma struct {
	env       Env
	BaseStall int64
}

// NewKarma returns the Karma manager.
func NewKarma(env Env) *Karma {
	return &Karma{env: env, BaseStall: 500}
}

// Name implements Manager.
func (k *Karma) Name() string { return "Karma" }

// OnBegin implements Manager.
func (k *Karma) OnBegin(tid, stx int) BeginResult { return BeginResult{Action: Proceed} }

// OnCPUSlot implements Manager.
func (k *Karma) OnCPUSlot(cpu, dtx int) {}

// StallBudget implements StallPolicy: patience scales with the ratio of
// work invested — a requester holding more lines than the holder waits it
// out; one holding fewer yields fast.
func (k *Karma) StallBudget(info StallInfo) int64 {
	ratio := float64(info.ReqWork+1) / float64(info.HolderWork+1)
	budget := int64(float64(k.BaseStall) * ratio * 2)
	if budget < 100 {
		budget = 100
	}
	if budget > 16*k.BaseStall {
		budget = 16 * k.BaseStall
	}
	return budget
}

// OnAbort implements Manager: backoff proportional to the karma deficit
// is approximated with the standard randomized window.
func (k *Karma) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	sh := attempts
	if sh > 9 {
		sh = 9
	}
	return AbortResult{Backoff: k.env.Rand.Int63n(150<<sh) + 1, Overhead: 12}
}

// OnCommit implements Manager.
func (k *Karma) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	return 0
}

// OnTxEnded implements Manager.
func (k *Karma) OnTxEnded(tid, stx int, committed bool) {}

// TimestampCM is the age-based reactive manager: the oldest transaction in
// any conflict is infinitely patient, so it always eventually wins — a
// livelock-freedom guarantee none of the windowed policies give.
type TimestampCM struct {
	env       Env
	BaseStall int64
	// OldPatience is the stall budget when the requester is older than
	// the holder (long: the holder will finish or deadlock resolution
	// will kill the younger side).
	OldPatience int64
}

// NewTimestampCM returns the Timestamp manager.
func NewTimestampCM(env Env) *TimestampCM {
	return &TimestampCM{env: env, BaseStall: 300, OldPatience: 50000}
}

// Name implements Manager.
func (t *TimestampCM) Name() string { return "Timestamp" }

// OnBegin implements Manager.
func (t *TimestampCM) OnBegin(tid, stx int) BeginResult { return BeginResult{Action: Proceed} }

// OnCPUSlot implements Manager.
func (t *TimestampCM) OnCPUSlot(cpu, dtx int) {}

// StallBudget implements StallPolicy.
func (t *TimestampCM) StallBudget(info StallInfo) int64 {
	if info.ReqSeq < info.HolderSeq {
		return t.OldPatience
	}
	return t.BaseStall
}

// OnAbort implements Manager.
func (t *TimestampCM) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	sh := attempts
	if sh > 9 {
		sh = 9
	}
	return AbortResult{Backoff: t.env.Rand.Int63n(200<<sh) + 1, Overhead: 8}
}

// OnCommit implements Manager.
func (t *TimestampCM) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	return 0
}

// OnTxEnded implements Manager.
func (t *TimestampCM) OnTxEnded(tid, stx int, committed bool) {}
