package sched

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func testEnv(nCPUs, nThreads, nStatic int) (Env, *[]int) {
	woken := &[]int{}
	return Env{
		NumCPUs:    nCPUs,
		NumThreads: nThreads,
		NumStatic:  nStatic,
		CPUOf:      func(tid int) int { return tid % nCPUs },
		Wake:       func(tid int) { *woken = append(*woken, tid) },
		Rand:       rand.New(rand.NewSource(1)),
	}, woken
}

func TestBackoffAlwaysProceeds(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	b := NewBackoff(env)
	if r := b.OnBegin(0, 0); r.Action != Proceed || r.Overhead != 0 {
		t.Fatalf("backoff begin = %+v, want free Proceed", r)
	}
}

func TestBackoffWindowGrowsWithAttempts(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	b := NewBackoff(env)
	max := func(attempts, trials int) int64 {
		var m int64
		for i := 0; i < trials; i++ {
			if r := b.OnAbort(0, 0, 1, 1, attempts); r.Backoff > m {
				m = r.Backoff
			}
		}
		return m
	}
	if m1, m8 := max(1, 50), max(8, 50); m8 <= m1 {
		t.Fatalf("backoff window did not grow: attempt1 max %d, attempt8 max %d", m1, m8)
	}
}

func TestBackoffWindowCapped(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	b := NewBackoff(env)
	limit := b.BaseCycles << b.MaxShift
	for i := 0; i < 100; i++ {
		if r := b.OnAbort(0, 0, 1, 1, 1000); r.Backoff > limit {
			t.Fatalf("backoff %d exceeds cap %d", r.Backoff, limit)
		}
	}
}

func TestATSLowPressureBypassesQueue(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	a := NewATS(env)
	for tid := 0; tid < 8; tid++ {
		if r := a.OnBegin(tid, 0); r.Action != Proceed {
			t.Fatalf("low-pressure begin for tid %d = %+v, want Proceed", tid, r)
		}
	}
	if a.QueueLen() != 0 {
		t.Fatal("queue grew under low pressure")
	}
}

func raiseATSPressure(a *ATS, stx int) {
	for i := 0; i < 20; i++ {
		a.OnAbort(0, stx, 1, stx, 1)
	}
}

func TestATSHighPressureSerializes(t *testing.T) {
	env, woken := testEnv(4, 16, 2)
	a := NewATS(env)
	raiseATSPressure(a, 0)
	if a.Pressure(0) <= a.Threshold {
		t.Fatalf("pressure = %v, not above threshold %v", a.Pressure(0), a.Threshold)
	}
	// First high-pressure transaction takes the token and proceeds.
	if r := a.OnBegin(3, 0); r.Action != Proceed {
		t.Fatalf("first serialized begin = %+v, want Proceed (token)", r)
	}
	// The next two must block.
	if r := a.OnBegin(4, 0); r.Action != Block {
		t.Fatalf("second begin = %+v, want Block", r)
	}
	if r := a.OnBegin(5, 0); r.Action != Block {
		t.Fatalf("third begin = %+v, want Block", r)
	}
	if a.QueueLen() != 2 {
		t.Fatalf("queue length = %d, want 2", a.QueueLen())
	}
	// Token holder commits: head of queue is woken and proceeds.
	a.OnCommit(3, 0, nil, nil, 1)
	a.OnTxEnded(3, 0, true)
	if len(*woken) != 1 || (*woken)[0] != 4 {
		t.Fatalf("woken = %v, want [4]", *woken)
	}
	if r := a.OnBegin(4, 0); r.Action != Proceed {
		t.Fatalf("woken thread begin = %+v, want Proceed", r)
	}
}

func TestATSTokenKeptAcrossAbortRetry(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	a := NewATS(env)
	raiseATSPressure(a, 0)
	a.OnBegin(3, 0)          // takes token
	a.OnAbort(3, 0, 1, 0, 1) // aborts
	a.OnTxEnded(3, 0, false) // retry pending
	if r := a.OnBegin(3, 0); r.Action != Proceed {
		t.Fatalf("retry of token holder = %+v, want Proceed", r)
	}
}

func TestATSPressureDecaysOnCommit(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	a := NewATS(env)
	raiseATSPressure(a, 0)
	p := a.Pressure(0)
	for i := 0; i < 30; i++ {
		a.OnCommit(0, 0, nil, nil, 1)
	}
	if a.Pressure(0) >= p || a.Pressure(0) > a.Threshold {
		t.Fatalf("pressure did not decay: %v -> %v", p, a.Pressure(0))
	}
}

func linesOf(addrs ...uint64) []uint64 { return addrs }

func TestPTSLearnsAndSerializes(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	p := NewPTS(env)
	// Initially optimistic.
	if r := p.OnBegin(0, 0); r.Action != Proceed {
		t.Fatal("PTS not optimistic initially")
	}
	// Thread 1 (stx 1) is running on CPU 1.
	enemy := p.dtx(1, 1)
	p.OnCPUSlot(1, enemy)
	// Conflicts between (0,0) and (1,1) strengthen the edge.
	for i := 0; i < 3; i++ {
		p.OnAbort(0, 0, 1, 1, 1)
	}
	r := p.OnBegin(0, 0)
	if r.Action != YieldRetry || r.WaitDTx != enemy {
		t.Fatalf("begin after learned conflicts = %+v, want YieldRetry behind %d", r, enemy)
	}
}

func TestPTSKeysGraphByDynamicID(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	p := NewPTS(env)
	p.OnCPUSlot(1, p.dtx(1, 1))
	for i := 0; i < 3; i++ {
		p.OnAbort(0, 0, 1, 1, 1)
	}
	// A different thread running the same static transaction pair has no
	// learned edge — PTS does not generalize across threads (its key
	// weakness vs BFGTS's static-ID tables).
	if r := p.OnBegin(2, 0); r.Action != Proceed {
		t.Fatalf("PTS generalized across threads: %+v", r)
	}
	if p.GraphEdges() == 0 {
		t.Fatal("no graph edges materialized")
	}
}

func TestPTSCommitValidationWeakensFalsePredictions(t *testing.T) {
	env, _ := testEnv(4, 16, 2)
	p := NewPTS(env)
	enemy := p.dtx(1, 1)
	self := p.dtx(0, 0)
	// Learn an edge and give the enemy a committed signature over lines
	// 1000.. while self commits disjoint lines: validation must decay.
	p.OnCPUSlot(1, enemy)
	for i := 0; i < 3; i++ {
		p.OnAbort(0, 0, 1, 1, 1)
	}
	p.OnCommit(1, 1, linesOf(1000*64, 1001*64, 1002*64), linesOf(1000*64), 3)
	before := p.Confidence(self, enemy)
	p.OnBegin(0, 0) // records waitingOn
	p.OnCommit(0, 0, linesOf(5000*64, 5001*64, 5002*64), linesOf(5000*64), 3)
	after := p.Confidence(self, enemy)
	if after >= before {
		t.Fatalf("validation did not weaken edge: %v -> %v", before, after)
	}
}

func bfgtsFor(t *testing.T, mode BFGTSMode) (*BFGTS, Env) {
	t.Helper()
	env, _ := testEnv(4, 16, 3)
	cfg := core.DefaultConfig(env.NumThreads, env.NumStatic)
	cfg.SimInterval = 1
	cfg.SmallTxLines = 10
	return NewBFGTS(env, mode, cfg), env
}

func TestBFGTSOptimisticInitially(t *testing.T) {
	for _, mode := range []BFGTSMode{BFGTSSW, BFGTSHW, BFGTSHWBackoff, BFGTSNoOverhead} {
		b, _ := bfgtsFor(t, mode)
		if r := b.OnBegin(0, 0); r.Action != Proceed {
			t.Fatalf("%v initial begin = %+v, want Proceed", mode, r)
		}
	}
}

func TestBFGTSLearnsConflictAndSerializes(t *testing.T) {
	for _, mode := range []BFGTSMode{BFGTSSW, BFGTSHW, BFGTSNoOverhead} {
		b, _ := bfgtsFor(t, mode)
		enemy := b.Runtime().Config().DTx(1, 1)
		b.OnCPUSlot(1, enemy)
		for i := 0; i < 10; i++ {
			b.OnAbort(0, 0, 1, 1, 1)
		}
		r := b.OnBegin(0, 0)
		if r.Action == Proceed {
			t.Fatalf("%v did not serialize after repeated conflicts: %+v", mode, r)
		}
		if r.WaitDTx != enemy {
			t.Fatalf("%v serialized behind %d, want %d", mode, r.WaitDTx, enemy)
		}
	}
}

func TestBFGTSGeneralizesAcrossThreads(t *testing.T) {
	// Unlike PTS, BFGTS keys confidence by static IDs: conflicts seen by
	// thread 0 inform thread 2's scheduling.
	b, _ := bfgtsFor(t, BFGTSSW)
	enemy := b.Runtime().Config().DTx(1, 1)
	b.OnCPUSlot(1, enemy)
	for i := 0; i < 10; i++ {
		b.OnAbort(0, 0, 1, 1, 1)
	}
	if r := b.OnBegin(2, 0); r.Action == Proceed {
		t.Fatal("BFGTS did not generalize learned conflict across threads")
	}
}

func TestBFGTSSpinVsYieldBySize(t *testing.T) {
	b, _ := bfgtsFor(t, BFGTSSW)
	rt := b.Runtime()
	cfg := rt.Config()
	small, big := cfg.DTx(1, 1), cfg.DTx(2, 2)
	// Establish sizes: small tx of 2 lines, big of 50.
	rt.CommitTx(small, linesOf(64, 128), linesOf(64), 2)
	bigLines := make([]uint64, 50)
	for i := range bigLines {
		bigLines[i] = uint64(10000+i) * 64
	}
	rt.CommitTx(big, bigLines, bigLines, 50)

	for i := 0; i < 10; i++ {
		b.OnAbort(0, 0, 1, 1, 1)
		b.OnAbort(0, 0, 2, 2, 1)
	}
	b.OnCPUSlot(1, small)
	if r := b.OnBegin(0, 0); r.Action != SpinWait {
		t.Fatalf("wait behind small tx = %+v, want SpinWait", r)
	}
	b.OnCPUSlot(1, core.NoTx)
	b.OnCPUSlot(2, big)
	if r := b.OnBegin(0, 0); r.Action != YieldRetry {
		t.Fatalf("wait behind big tx = %+v, want YieldRetry", r)
	}
}

func TestBFGTSHWCheaperThanSW(t *testing.T) {
	sw, _ := bfgtsFor(t, BFGTSSW)
	hw, _ := bfgtsFor(t, BFGTSHW)
	enemy := sw.Runtime().Config().DTx(1, 1)
	sw.OnCPUSlot(1, enemy)
	hw.OnCPUSlot(1, enemy)
	swCost := sw.OnBegin(0, 0).Overhead
	hw.OnBegin(0, 0) // warm the confidence cache
	hwCost := hw.OnBegin(0, 0).Overhead
	if hwCost >= swCost {
		t.Fatalf("HW begin (%d cyc) not cheaper than SW begin (%d cyc)", hwCost, swCost)
	}
}

func TestBFGTSNoOverheadCostsOneCycle(t *testing.T) {
	b, _ := bfgtsFor(t, BFGTSNoOverhead)
	if r := b.OnBegin(0, 0); r.Overhead != 1 {
		t.Fatalf("NoOverhead begin cost = %d, want 1", r.Overhead)
	}
	if c := b.OnCommit(0, 0, linesOf(64, 128), linesOf(64), 2); c != 1 {
		t.Fatalf("NoOverhead commit cost = %d, want 1", c)
	}
}

func TestHybridSkipsPredictionWhenCalm(t *testing.T) {
	b, _ := bfgtsFor(t, BFGTSHWBackoff)
	enemy := b.Runtime().Config().DTx(1, 1)
	b.OnCPUSlot(1, enemy)
	// Teach the runtime the conflict but keep pressure at zero: the
	// hybrid must still proceed (backoff mode).
	for i := 0; i < 10; i++ {
		b.Runtime().TxConflict(b.Runtime().Config().DTx(0, 0), enemy)
	}
	if r := b.OnBegin(0, 0); r.Action != Proceed || r.Overhead > 10 {
		t.Fatalf("calm hybrid begin = %+v, want cheap Proceed", r)
	}
}

func TestHybridEngagesUnderPressure(t *testing.T) {
	b, _ := bfgtsFor(t, BFGTSHWBackoff)
	enemy := b.Runtime().Config().DTx(1, 1)
	b.OnCPUSlot(1, enemy)
	// Aborts raise pressure (alpha 0.95, so it takes a sustained burst)
	// and teach the conflict.
	for i := 0; i < 80; i++ {
		b.OnAbort(0, 0, 1, 1, 1)
	}
	if r := b.OnBegin(0, 0); r.Action == Proceed {
		t.Fatalf("pressured hybrid begin = %+v, want serialization", r)
	}
}

func TestHybridCommitLightUnderLowPressure(t *testing.T) {
	b, _ := bfgtsFor(t, BFGTSHWBackoff)
	full, _ := bfgtsFor(t, BFGTSHW)
	lines := make([]uint64, 40)
	for i := range lines {
		lines[i] = uint64(i) * 64
	}
	// Warm both with one commit so similarity work happens on the second.
	b.OnCommit(0, 0, lines, lines, 40)
	full.OnCommit(0, 0, lines, lines, 40)
	calm := b.OnCommit(0, 0, lines, lines, 40)
	busy := full.OnCommit(0, 0, lines, lines, 40)
	if calm >= busy {
		t.Fatalf("calm hybrid commit (%d cyc) not cheaper than full commit (%d cyc)", calm, busy)
	}
}

func TestPressureMeter(t *testing.T) {
	p := newPressureMeter(2, 0.5)
	p.onConflict(0)
	if p.value(0) != 0.5 {
		t.Fatalf("pressure after one conflict = %v, want 0.5", p.value(0))
	}
	p.onCommit(0)
	if p.value(0) != 0.25 {
		t.Fatalf("pressure after commit = %v, want 0.25", p.value(0))
	}
	if p.value(1) != 0 {
		t.Fatal("pressure leaked across static IDs")
	}
}
