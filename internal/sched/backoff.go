package sched

// Backoff is the reactive baseline contention manager: no begin-time
// logic, randomized exponential backoff after an abort. It is the
// lowest-overhead manager and the best choice when contention is near zero
// (Ssca2), but it lets conflicts repeat indefinitely under load — the
// pathology the proactive schedulers exist to fix.
type Backoff struct {
	env Env

	// BaseCycles is the first backoff window; each consecutive abort of
	// the same execution doubles it up to MaxShift doublings.
	BaseCycles int64
	MaxShift   int
}

// NewBackoff returns the baseline manager with the windows used in the
// evaluation.
func NewBackoff(env Env) *Backoff {
	return &Backoff{env: env, BaseCycles: 200, MaxShift: 9}
}

// Name implements Manager.
func (b *Backoff) Name() string { return "Backoff" }

// OnBegin implements Manager: always proceed, no overhead.
func (b *Backoff) OnBegin(tid, stx int) BeginResult { return BeginResult{Action: Proceed} }

// OnCPUSlot implements Manager: backoff keeps no CPU table.
func (b *Backoff) OnCPUSlot(cpu, dtx int) {}

// OnAbort implements Manager: randomized exponential backoff.
func (b *Backoff) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	shift := attempts
	if shift > b.MaxShift {
		shift = b.MaxShift
	}
	window := b.BaseCycles << shift
	return AbortResult{
		Backoff:  b.env.Rand.Int63n(window) + 1,
		Overhead: 10,
	}
}

// OnCommit implements Manager: no commit-time bookkeeping.
func (b *Backoff) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	return 0
}

// OnTxEnded implements Manager.
func (b *Backoff) OnTxEnded(tid, stx int, committed bool) {}
