package sched

import (
	"sort"

	"repro/internal/bloofi"
	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/metrics"
)

// PTS is Proactive Transaction Scheduling (Blake et al., MICRO 2009), the
// paper's closest prior work. Like BFGTS it learns a conflict graph and
// serializes transactions predicted to conflict with a running one, but:
//
//   - the graph is keyed by *dynamic* transaction ID pairs, so the
//     structure is enormous (the paper reports tens of megabytes) and the
//     begin-time scan walks cold software structures on every begin;
//   - confidence updates use fixed increments/decrements, unweighted by
//     any notion of how stable a transaction's footprint is; and
//   - commit-time validation uses the raw bitwise Bloom intersection
//     ("rudimentary Bloom filter use"), whose false positives at realistic
//     fill ratios strengthen confidences that should decay.
//
// These are precisely the three deficiencies BFGTS fixes.
type PTS struct {
	env Env

	Threshold float64
	Inc, Dec  float64

	// conf is the conflict graph: confidence per ordered dTxID pair.
	conf map[[2]int]float64
	// sigs holds each dTxID's most recent committed read/write-set filter.
	sigs map[int]*bloom.Filter
	// sigFree recycles filters displaced from sigs, so steady-state commits
	// reuse instead of allocating one filter per commit.
	sigFree []*bloom.Filter
	// waitingOn records the dTxID each dTxID last serialized behind.
	waitingOn map[int]int
	// suspects caches, per dTxID, the ascending dTxIDs whose edge from it
	// currently clears Threshold — maintained at every addConf threshold
	// crossing, so the directory probe's suspect set is exactly the set
	// the linear scan would have matched. Threshold is fixed after
	// construction, which is what keeps the cache coherent.
	suspects map[int][]uint64

	cpuTable []int
	// dir/probe index occupied CPU slots under the dynamic transaction ID
	// running there (nil under Env.LinearScan). Unlike BFGTS there is no
	// static-ID folding: PTS's conflict graph is keyed by dTxID pairs, so
	// the dTxID itself is the identity key.
	dir   *bloofi.Tree
	probe *bloofi.Probe

	// scanEntryCost is the per-CPU-table-entry cost of the begin scan.
	// PTS's per-dTxID tables are far too large for any cache to hold, so
	// each probe is priced as a near-memory access, which is what makes
	// "overhead of executing a scan of software structures on every
	// transaction begin" one of the paper's three PTS complaints.
	scanEntryCost int64

	bloomBits int

	// Decision-point instruments (nil = disabled, free).
	metScanLen    *metrics.Histogram // CPU-table entries probed per begin scan
	metSerial     *metrics.Counter   // begins that serialized behind a prediction
	metEdges      *metrics.Gauge     // materialized conflict-graph edges
	metAborts     *metrics.Counter
	metProbeNodes *metrics.Histogram // tree nodes visited per begin probe
	metProbeCands *metrics.Histogram // candidate slots surfaced per probe
	metProbeRun   *metrics.Histogram // running-set size at probe time
}

// NewPTS returns the manager with the standard configuration from the PTS
// paper as used in this paper's comparison.
func NewPTS(env Env) *PTS {
	p := &PTS{
		env:           env,
		Threshold:     0.30,
		Inc:           0.35,
		Dec:           0.05,
		conf:          make(map[[2]int]float64),
		sigs:          make(map[int]*bloom.Filter),
		waitingOn:     make(map[int]int),
		suspects:      make(map[int][]uint64),
		cpuTable:      make([]int, env.NumCPUs),
		scanEntryCost: 45,
		bloomBits:     2048,
	}
	for i := range p.cpuTable {
		p.cpuTable[i] = core.NoTx
	}
	if !env.LinearScan {
		p.dir = bloofi.New(bloofi.Config{Capacity: env.NumCPUs})
		p.probe = bloofi.NewProbe(p.dir)
	}
	if reg := env.Metrics; reg != nil {
		p.metScanLen = reg.Histogram("sched.pts.scan_len")
		p.metSerial = reg.Counter("sched.pts.serializations")
		p.metEdges = reg.Gauge("sched.pts.graph_edges")
		p.metAborts = reg.Counter("sched.aborts")
		if p.dir != nil {
			p.metProbeNodes = reg.Histogram("sched.pts.probe.nodes")
			p.metProbeCands = reg.Histogram("sched.pts.probe.candidates")
			p.metProbeRun = reg.Histogram("sched.pts.probe.running")
		}
	}
	return p
}

// Name implements Manager.
func (p *PTS) Name() string { return "PTS" }

func (p *PTS) dtx(tid, stx int) int { return tid*p.env.NumStatic + stx }

// Confidence exposes the learned edge weight between two dynamic
// transactions (for tests and diagnostics).
func (p *PTS) Confidence(d1, d2 int) float64 { return p.conf[[2]int{d1, d2}] }

// GraphEdges returns the number of materialized conflict-graph edges, the
// driver of PTS's memory-footprint problem.
func (p *PTS) GraphEdges() int { return len(p.conf) }

func (p *PTS) addConf(d1, d2 int, delta float64) {
	k := [2]int{d1, d2}
	old := p.conf[k]
	v := old + delta
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	if v == 0 {
		delete(p.conf, k)
	} else {
		p.conf[k] = v
	}
	p.updateSuspects(d1, d2, old > p.Threshold, v > p.Threshold)
}

// updateSuspects keeps suspects[d1] in sync with the conflict graph when
// the (d1, d2) edge crosses Threshold in either direction. The list stays
// sorted (the directory probe binary-searches it), and edges that merely
// move within one side of the threshold cost nothing.
func (p *PTS) updateSuspects(d1, d2 int, was, now bool) {
	if was == now {
		return
	}
	s := p.suspects[d1]
	key := uint64(d2)
	i := sort.Search(len(s), func(j int) bool { return s[j] >= key })
	if now {
		s = append(s, 0)
		copy(s[i+1:], s[i:])
		s[i] = key
		p.suspects[d1] = s
		return
	}
	copy(s[i:], s[i+1:])
	s = s[:len(s)-1]
	if len(s) == 0 {
		delete(p.suspects, d1)
		return
	}
	p.suspects[d1] = s
}

// OnBegin implements Manager: scan the CPU table in software against the
// per-dTxID conflict graph — through the Bloofi directory when enabled,
// byte-identically to the linear walk (including the scan-length metric,
// reconstructed from the directory's subtree counters).
func (p *PTS) OnBegin(tid, stx int) BeginResult {
	self := p.dtx(tid, stx)
	selfCPU := p.env.CPUOf(tid)
	res := BeginResult{Action: Proceed, WaitDTx: core.NoTx}
	res.Overhead = 120 + int64(p.env.NumCPUs)*p.scanEntryCost
	if p.dir != nil {
		p.beginProbe(self, selfCPU, &res)
		return res
	}
	scanned := 0
	for cpu, dtx := range p.cpuTable {
		if cpu == selfCPU || dtx == core.NoTx {
			continue
		}
		scanned++
		if c := p.conf[[2]int{self, dtx}]; c > p.Threshold {
			p.waitingOn[self] = dtx
			res.Action = YieldRetry
			res.WaitDTx = dtx
			res.Confidence = c
			p.metSerial.Inc()
			break
		}
	}
	p.metScanLen.Observe(int64(scanned))
	return res
}

// beginProbe is the directory-backed begin scan. The suspect list for
// self holds exactly the dTxIDs whose edge clears Threshold, so the first
// candidate the probe surfaces (in ascending slot order, skipping the
// beginning thread's own CPU) is the same hit the linear walk would have
// taken. The linear walk's scanned-entry count is recovered from the
// subtree occupancy counters: every occupied non-self slot before the hit
// was "scanned", plus the hit itself; with no hit, every occupied
// non-self slot was.
func (p *PTS) beginProbe(self, selfCPU int, res *BeginResult) {
	selfOcc := p.dir.Occupied(selfCPU)
	p.probe.Reset(p.suspects[self])
	var scanned int64
	hit := false
	for {
		cpu, ok := p.probe.Next()
		if !ok {
			break
		}
		if cpu == selfCPU {
			continue
		}
		dtx := p.cpuTable[cpu]
		if dtx == core.NoTx {
			continue
		}
		if c := p.conf[[2]int{self, dtx}]; c > p.Threshold {
			p.waitingOn[self] = dtx
			res.Action = YieldRetry
			res.WaitDTx = dtx
			res.Confidence = c
			p.metSerial.Inc()
			scanned = int64(p.dir.OccupiedBefore(cpu)) + 1
			if selfOcc && selfCPU < cpu {
				scanned--
			}
			hit = true
			break
		}
	}
	if !hit {
		scanned = int64(p.dir.Len())
		if selfOcc {
			scanned--
		}
	}
	p.metScanLen.Observe(scanned)
	p.metProbeNodes.Observe(int64(p.probe.Nodes()))
	p.metProbeCands.Observe(int64(p.probe.Candidates()))
	p.metProbeRun.Observe(int64(p.dir.Len()))
}

// OnCPUSlot implements Manager.
func (p *PTS) OnCPUSlot(cpu, dtx int) {
	p.cpuTable[cpu] = dtx
	if p.dir == nil {
		return
	}
	if dtx == core.NoTx {
		if p.dir.Occupied(cpu) {
			p.dir.Remove(cpu)
		}
		return
	}
	p.dir.Set(cpu, uint64(dtx))
}

// OnAbort implements Manager: strengthen the edge between the two dynamic
// transactions by the fixed increment.
func (p *PTS) OnAbort(tid, stx, enemyTid, enemyStx, attempts int) AbortResult {
	self, enemy := p.dtx(tid, stx), p.dtx(enemyTid, enemyStx)
	p.metAborts.Inc()
	p.addConf(self, enemy, p.Inc)
	p.addConf(enemy, self, p.Inc)
	p.metEdges.Set(float64(len(p.conf)))
	shift := attempts
	if shift > 8 {
		shift = 8
	}
	return AbortResult{
		Backoff:  p.env.Rand.Int63n(200<<shift) + 1,
		Overhead: 150, // two read-modify-writes in the cold graph structure
	}
}

// OnCommit implements Manager: save the new filter and validate any
// recorded serialization with a raw bitwise intersection.
func (p *PTS) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	self := p.dtx(tid, stx)
	var sig *bloom.Filter
	if n := len(p.sigFree); n > 0 {
		sig = p.sigFree[n-1]
		p.sigFree[n-1] = nil
		p.sigFree = p.sigFree[:n-1]
		sig.Reset()
	} else {
		sig = bloom.NewFilter(p.bloomBits, bloom.DefaultHashes)
	}
	for _, a := range lines {
		sig.Add(a)
	}
	cost := int64(100) + int64(size)*2 // build filter, bookkeeping

	if waited, ok := p.waitingOn[self]; ok {
		delete(p.waitingOn, self)
		if prev := p.sigs[waited]; prev != nil {
			cost += int64(sig.Words()) * 2 // word-wise AND walk
			if sig.IntersectsNonNull(prev) {
				p.addConf(self, waited, p.Inc)
			} else {
				p.addConf(self, waited, -p.Dec)
			}
			p.metEdges.Set(float64(len(p.conf)))
			cost += 50
		}
	}
	if prev := p.sigs[self]; prev != nil {
		// The displaced filter was only consulted above (as the waited-on
		// side of validation, never self), so it is safe to recycle.
		p.sigFree = append(p.sigFree, prev)
	}
	p.sigs[self] = sig
	return cost
}

// OnTxEnded implements Manager.
func (p *PTS) OnTxEnded(tid, stx int, committed bool) {}
