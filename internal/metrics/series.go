package metrics

// Point is one time-series sample: a value at a simulated cycle.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series is a bounded ring buffer of Points. When full, the oldest point
// is overwritten, so a long run keeps its most recent window — the part
// phase-dynamics plots care about. Appends never allocate after the buffer
// fills.
type Series struct {
	buf   []Point
	start int // index of the oldest point
	n     int // points currently held
}

// DefaultSeriesCap bounds series created with a non-positive capacity.
const DefaultSeriesCap = 4096

// NewSeries returns an empty series holding at most capacity points.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Series{buf: make([]Point, 0, capacity)}
}

// Append records a point, evicting the oldest when full. No-op on a nil
// receiver.
func (s *Series) Append(t int64, v float64) {
	if s == nil {
		return
	}
	if s.n < cap(s.buf) {
		s.buf = append(s.buf, Point{T: t, V: finite(v)})
		s.n++
		return
	}
	s.buf[s.start] = Point{T: t, V: finite(v)}
	s.start = (s.start + 1) % s.n
}

// Len returns the number of points held (0 on a nil receiver).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Points returns the held points in chronological order, as a fresh slice.
func (s *Series) Points() []Point {
	if s == nil || s.n == 0 {
		return nil
	}
	out := make([]Point, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.start+i)%s.n])
	}
	return out
}
