// Package metrics is the simulator's scheduler-internals observability
// layer: a deterministic, allocation-light registry of named counters,
// gauges, histograms, summaries and bounded time series that every layer
// (internal/core, internal/hwaccel, internal/sched, internal/sim) writes
// its decision-point instrumentation into.
//
// Two properties are load-bearing:
//
//   - Free when disabled. A nil *Registry hands out nil instruments, and
//     every instrument method short-circuits on a nil receiver, so a
//     simulation run without metrics pays one predictable branch per
//     instrumented event and allocates nothing (pinned by benchmark).
//   - Deterministic. Snapshots order every instrument by name and the JSON
//     encoding is byte-identical across runs of the same simulation at the
//     same seed (encoding/json sorts map keys; non-finite floats are
//     sanitized), so machine-readable output can be diffed and pinned.
//
// Producers acquire instruments once, at construction time, and record
// through the cached pointers on the hot path; the registry itself is not
// safe for concurrent use (each simulation owns its own registry, matching
// the single-threaded event engine).
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"

	"repro/internal/stats"
)

// Counter is a monotonically written int64 instrument.
type Counter struct {
	v int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins float64 instrument.
type Gauge struct {
	v float64
}

// Set overwrites the gauge. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a registry-owned stats.Histogram with a nil-safe recording
// method (log-scaled buckets, integer samples).
type Histogram struct {
	h stats.Histogram
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.h.Add(v)
}

// Stats returns the underlying histogram (nil on a nil receiver).
func (h *Histogram) Stats() *stats.Histogram {
	if h == nil {
		return nil
	}
	return &h.h
}

// Summary is a registry-owned stats.Summary with a nil-safe recording
// method (count/mean/stddev/min/max over float64 samples).
type Summary struct {
	s stats.Summary
}

// Observe records one sample. No-op on a nil receiver.
func (s *Summary) Observe(v float64) {
	if s == nil {
		return
	}
	s.s.Add(v)
}

// Stats returns the underlying summary (nil on a nil receiver).
func (s *Summary) Stats() *stats.Summary {
	if s == nil {
		return nil
	}
	return &s.s
}

// Registry is a named-instrument store. The zero value of *Registry (nil)
// is a valid, permanently disabled registry.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	summaries  map[string]*Summary
	series     map[string]*Series
}

// New returns an enabled, empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		summaries:  make(map[string]*Summary),
		series:     make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid disabled instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Summary returns the named summary, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Summary(name string) *Summary {
	if r == nil {
		return nil
	}
	s, ok := r.summaries[name]
	if !ok {
		s = &Summary{}
		r.summaries[name] = s
	}
	return s
}

// Series returns the named bounded time series, creating it with the given
// capacity on first use (later capacities are ignored). Returns nil on a
// nil registry.
func (r *Registry) Series(name string, capacity int) *Series {
	if r == nil {
		return nil
	}
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(capacity)
		r.series[name] = s
	}
	return s
}

// Merge folds every instrument of src into r: counters add, gauges take
// src's last value, histograms and summaries merge their underlying stats,
// and series append src's points after r's. Sharded simulations use it to
// fold per-shard registries into the caller's registry after the run; the
// per-name merges are independent, so map iteration order cannot affect
// the merged state. No-op when either registry is nil.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for name, c := range src.counters {
		dst, ok := r.counters[name]
		if !ok {
			dst = &Counter{}
			r.counters[name] = dst
		}
		dst.v += c.v
	}
	for name, g := range src.gauges {
		dst, ok := r.gauges[name]
		if !ok {
			dst = &Gauge{}
			r.gauges[name] = dst
		}
		dst.v = g.v
	}
	for name, h := range src.histograms {
		dst, ok := r.histograms[name]
		if !ok {
			dst = &Histogram{}
			r.histograms[name] = dst
		}
		dst.h.Merge(&h.h)
	}
	for name, s := range src.summaries {
		dst, ok := r.summaries[name]
		if !ok {
			dst = &Summary{}
			r.summaries[name] = dst
		}
		dst.s.Merge(&s.s)
	}
	for name, ser := range src.series {
		dst, ok := r.series[name]
		if !ok {
			dst = NewSeries(cap(ser.buf))
			r.series[name] = dst
		}
		for i := 0; i < ser.n; i++ {
			p := ser.buf[(ser.start+i)%ser.n]
			dst.Append(p.T, p.V)
		}
	}
}

// HistogramStats is the snapshot form of a histogram.
type HistogramStats struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"` // upper bound of the occupied top bucket
}

// SummaryStats is the snapshot form of a summary.
type SummaryStats struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// keyed by instrument name. encoding/json emits map keys sorted, so the
// encoding is deterministic.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Summaries  map[string]SummaryStats   `json:"summaries,omitempty"`
	Series     map[string][]Point        `json:"series,omitempty"`
}

// finite replaces NaN and ±Inf with 0 so snapshots always marshal.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Snapshot captures every instrument. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = finite(g.v)
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.histograms))
		for k, h := range r.histograms {
			s.Histograms[k] = HistogramStats{
				N:    h.h.N(),
				Mean: finite(h.h.Mean()),
				P50:  h.h.Percentile(50),
				P90:  h.h.Percentile(90),
				P99:  h.h.Percentile(99),
				Max:  h.h.Percentile(100),
			}
		}
	}
	if len(r.summaries) > 0 {
		s.Summaries = make(map[string]SummaryStats, len(r.summaries))
		for k, sum := range r.summaries {
			s.Summaries[k] = SummaryStats{
				N:      sum.s.N(),
				Mean:   finite(sum.s.Mean()),
				StdDev: finite(sum.s.StdDev()),
				Min:    finite(sum.s.Min()),
				Max:    finite(sum.s.Max()),
			}
		}
	}
	if len(r.series) > 0 {
		s.Series = make(map[string][]Point, len(r.series))
		for k, ser := range r.series {
			s.Series[k] = ser.Points()
		}
	}
	return s
}

// Keys returns every instrument name in the snapshot, sorted — the ordered
// view consumers iterate when rendering.
func (s *Snapshot) Keys() []string {
	if s == nil {
		return nil
	}
	var keys []string
	for k := range s.Counters {
		keys = append(keys, k)
	}
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	for k := range s.Summaries {
		keys = append(keys, k)
	}
	for k := range s.Series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeJSON writes the snapshot as indented JSON with sorted keys —
// byte-identical for identical snapshots.
func (s *Snapshot) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
