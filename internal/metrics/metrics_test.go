package metrics

import (
	"bytes"
	"math"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1 := r.Counter("a")
	c1.Add(3)
	if c2 := r.Counter("a"); c2 != c1 || c2.Value() != 3 {
		t.Fatalf("Counter not memoized: %p vs %p, v=%d", c1, c2, c2.Value())
	}
	g := r.Gauge("g")
	g.Set(1.5)
	if r.Gauge("g").Value() != 1.5 {
		t.Fatal("Gauge not memoized")
	}
	h := r.Histogram("h")
	h.Observe(7)
	if r.Histogram("h").Stats().N() != 1 {
		t.Fatal("Histogram not memoized")
	}
	s := r.Summary("s")
	s.Observe(2)
	if r.Summary("s").Stats().N() != 1 {
		t.Fatal("Summary not memoized")
	}
	ser := r.Series("ts", 8)
	ser.Append(1, 0.5)
	if r.Series("ts", 99).Len() != 1 {
		t.Fatal("Series not memoized")
	}
}

func TestNilRegistryShortCircuits(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	s := r.Summary("x")
	ser := r.Series("x", 16)
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(9)
	s.Observe(1.5)
	ser.Append(10, 2)
	if c.Value() != 0 || g.Value() != 0 || h.Stats() != nil || s.Stats() != nil || ser.Len() != 0 {
		t.Fatal("nil instruments recorded state")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatal("nil registry produced a snapshot")
	}
}

// The disabled path must be allocation-free: this is what lets every layer
// instrument its hot paths unconditionally.
func TestNilRegistryZeroAllocations(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("x")
	s := r.Summary("x")
	g := r.Gauge("x")
	ser := r.Series("x", 16)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.Observe(5)
		s.Observe(0.5)
		ser.Append(1, 1)
		_ = r.Counter("y") // even acquisition is free when disabled
	})
	if allocs != 0 {
		t.Fatalf("nil registry path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkNilRegistryCommitPath pins the disabled-metrics cost of the
// instruments a commit fires (counter add, two summary observes, gauge
// set): it must report 0 B/op, 0 allocs/op.
func BenchmarkNilRegistryCommitPath(b *testing.B) {
	var r *Registry
	commits := r.Counter("sched.commits")
	simW := r.Summary("core.conf.inc_weight")
	fill := r.Summary("bloom.fill_ratio")
	conf := r.Gauge("core.conf.mean")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		commits.Inc()
		simW.Observe(0.5)
		fill.Observe(0.12)
		conf.Set(0.3)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Snapshot {
		r := New()
		r.Counter("z.count").Add(4)
		r.Counter("a.count").Add(2)
		r.Gauge("m.gauge").Set(0.25)
		r.Histogram("lat").Observe(100)
		r.Histogram("lat").Observe(900)
		r.Summary("w").Observe(1)
		r.Summary("w").Observe(3)
		ser := r.Series("ts", 4)
		ser.Append(10, 0.1)
		ser.Append(20, 0.2)
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().EncodeJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().EncodeJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshot JSON not byte-identical:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	keys := build().Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %v", keys)
		}
	}
}

func TestSnapshotSanitizesNonFinite(t *testing.T) {
	r := New()
	r.Gauge("bad").Set(math.NaN())
	r.Gauge("inf").Set(math.Inf(1))
	snap := r.Snapshot()
	if snap.Gauges["bad"] != 0 || snap.Gauges["inf"] != 0 {
		t.Fatalf("non-finite gauges survived: %v", snap.Gauges)
	}
	var buf bytes.Buffer
	if err := snap.EncodeJSON(&buf); err != nil {
		t.Fatalf("snapshot with sanitized values failed to encode: %v", err)
	}
}

func TestSeriesRingBuffer(t *testing.T) {
	s := NewSeries(3)
	for i := int64(1); i <= 5; i++ {
		s.Append(i, float64(i))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	pts := s.Points()
	want := []Point{{3, 3}, {4, 4}, {5, 5}}
	for i, p := range pts {
		if p != want[i] {
			t.Fatalf("Points = %v, want %v", pts, want)
		}
	}
	// Appends after fill must not allocate.
	allocs := testing.AllocsPerRun(100, func() { s.Append(99, 1) })
	if allocs != 0 {
		t.Fatalf("full-ring Append allocates %.1f/op", allocs)
	}
}

func TestSeriesDefaultCap(t *testing.T) {
	s := NewSeries(0)
	if cap(s.buf) != DefaultSeriesCap {
		t.Fatalf("cap = %d, want %d", cap(s.buf), DefaultSeriesCap)
	}
}
