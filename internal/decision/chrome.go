package decision

import (
	"encoding/json"
	"io"
)

// ChromeTrace builds a Chrome trace_event JSON document ("JSON Object
// Format") that Perfetto and chrome://tracing open directly: one process
// per run, one track per thread, decision spans annotated with the
// confidence/similarity inputs behind each choice.
//
// Timestamps: trace_event "ts"/"dur" are microseconds. One simulated
// cycle (or one wall nanosecond, for STM streams) is mapped to one
// nanosecond, i.e. ts = Time/1000.0 — absolute durations in the UI read
// as ns at a 1 GHz mental clock, and relative structure is exact.
//
// Encoding goes through encoding/json with fixed-order struct fields and
// sorted map keys, so output is deterministic.
type ChromeTrace struct {
	evs []chromeEvent
}

// chromeEvent is one trace_event entry. Fields follow the trace-event
// format spec; omitempty keeps metadata and instant events compact.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level JSON Object Format document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usPerUnit = 1000.0 // trace_event ts is µs; Record.Time is cycles/ns

// AddProcess names a process (one per run) in the trace UI.
func (c *ChromeTrace) AddProcess(pid int, name string) {
	c.evs = append(c.evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
}

// AddThread names a thread track within a process.
func (c *ChromeTrace) AddThread(pid, tid int, name string) {
	c.evs = append(c.evs, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// AddSpan appends a complete ("X") event lasting dur time units starting
// at ts (both in Record.Time units). args may be nil.
func (c *ChromeTrace) AddSpan(pid, tid int, name string, ts, dur int64, args map[string]any) {
	d := float64(dur) / usPerUnit
	if d < 0 {
		d = 0
	}
	c.evs = append(c.evs, chromeEvent{
		Name: name, Ph: "X", Ts: float64(ts) / usPerUnit, Dur: d,
		Pid: pid, Tid: tid, Args: args,
	})
}

// AddInstant appends a thread-scoped instant ("i") event.
func (c *ChromeTrace) AddInstant(pid, tid int, name string, ts int64, args map[string]any) {
	c.evs = append(c.evs, chromeEvent{
		Name: name, Ph: "i", Ts: float64(ts) / usPerUnit, S: "t",
		Pid: pid, Tid: tid, Args: args,
	})
}

// AddRun lays one recorded run out as a process: thread tracks in tid
// order, serialize/stall decisions as spans covering their measured wait,
// aborted proceeds as spans covering the wasted work, and everything else
// as instants — each annotated with the decision's predictor inputs and
// settled outcome.
func (c *ChromeTrace) AddRun(pid int, name string, set *Set) {
	c.AddProcess(pid, name)
	recs := set.Merge()
	seen := make(map[int32]bool)
	for i := range recs {
		if tid := recs[i].Tid; !seen[tid] {
			seen[tid] = true
			c.AddThread(pid, int(tid), "thread")
		}
	}
	for i := range recs {
		r := &recs[i]
		args := map[string]any{
			"outcome":    r.Outcome.String(),
			"confidence": r.Confidence,
			"similarity": r.Similarity,
			"stx":        r.Stx,
			"enemy_stx":  r.EnemyStx,
			"attempt":    r.Attempt,
		}
		label := r.Point.String() + ":" + r.Choice.String()
		switch {
		case r.WaitCycles > 0:
			c.AddSpan(pid, int(r.Tid), label, r.Time, r.WaitCycles, args)
		case r.WastedCycles > 0:
			c.AddSpan(pid, int(r.Tid), label, r.Time, r.WastedCycles, args)
		default:
			c.AddInstant(pid, int(r.Tid), label, r.Time, args)
		}
	}
}

// WriteTo serializes the document. Returns the written byte count to
// satisfy io.WriterTo.
func (c *ChromeTrace) WriteTo(w io.Writer) (int64, error) {
	evs := c.evs
	if evs == nil {
		evs = []chromeEvent{} // emit [], not null: consumers index it
	}
	out, err := json.Marshal(chromeDoc{TraceEvents: evs, DisplayTimeUnit: "ns"})
	if err != nil {
		return 0, err
	}
	out = append(out, '\n')
	n, err := w.Write(out)
	return int64(n), err
}
