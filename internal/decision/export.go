package decision

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the decisions-export document format. It is
// independent of harness.ExportSchemaVersion (the reports document stays
// at v1); the two document kinds are distinguished by the Kind field,
// which scripts/jsonverify dispatches on.
const SchemaVersion = 2

// ExportKind is the document discriminator for decisions exports.
const ExportKind = "decisions"

// Export is the machine-readable form of one or more decision-traced
// runs. Encoding is deterministic: all fields are scalars and slices in
// fixed order, so two runs at the same seed produce byte-identical files.
type Export struct {
	SchemaVersion int         `json:"schema_version"`
	Kind          string      `json:"kind"`
	Runs          []RunExport `json:"runs"`
}

// RunExport is one decision-traced run.
type RunExport struct {
	Name     string `json:"name"` // "workload/manager" display handle
	Manager  string `json:"manager"`
	Workload string `json:"workload"`
	// Units is "cycles" (simulator) or "ns" (live STM).
	Units   string `json:"units"`
	Threads int    `json:"threads"`
	Dropped int64  `json:"dropped"`

	Regret  RegretExport   `json:"regret"`
	Records []RecordExport `json:"records"`
}

// RegretExport mirrors Regret with stable snake_case names.
type RegretExport struct {
	Decisions          int64   `json:"decisions"`
	Proceeds           int64   `json:"proceeds"`
	Serializations     int64   `json:"serializations"`
	Stalls             int64   `json:"stalls"`
	Committed          int64   `json:"committed"`
	Aborted            int64   `json:"aborted"`
	Justified          int64   `json:"justified"`
	Overcautious       int64   `json:"overcautious"`
	Released           int64   `json:"released"`
	TimedOut           int64   `json:"timed_out"`
	Pending            int64   `json:"pending"`
	OvercautionCycles  int64   `json:"overcaution_cycles"`
	UndercautionCycles int64   `json:"undercaution_cycles"`
	WaitCycles         int64   `json:"wait_cycles"`
	StallWaitCycles    int64   `json:"stall_wait_cycles"`
	TotalRegret        int64   `json:"total_regret"`
	SerializeRate      float64 `json:"serialize_rate"`
}

// RecordExport mirrors Record with string enums and snake_case names.
type RecordExport struct {
	Time       int64   `json:"t"`
	Tid        int32   `json:"tid"`
	Stx        int32   `json:"stx"`
	Attempt    int32   `json:"attempt"`
	BeginIndex int64   `json:"begin_index,omitempty"`
	Point      string  `json:"point"`
	Choice     string  `json:"choice"`
	Outcome    string  `json:"outcome"`
	EnemyDTx   int32   `json:"enemy_dtx"`
	EnemyStx   int32   `json:"enemy_stx"`
	Confidence float64 `json:"confidence"`
	Similarity float64 `json:"similarity"`
	Wait       int64   `json:"wait"`
	Wasted     int64   `json:"wasted"`
}

// NewExport starts an empty decisions document; append runs with AddRun.
func NewExport() *Export {
	return &Export{SchemaVersion: SchemaVersion, Kind: ExportKind}
}

// AddRun folds one recorded set into the document: records are merged
// deterministically and the regret ledger is computed here so consumers
// never re-derive it.
func (e *Export) AddRun(manager, workload, units string, set *Set) {
	recs := set.Merge()
	run := RunExport{
		Name:     workload + "/" + manager,
		Manager:  manager,
		Workload: workload,
		Units:    units,
		Threads:  set.Threads(),
		Dropped:  set.Dropped(),
		Regret:   newRegretExport(Estimate(recs)),
		Records:  make([]RecordExport, 0, len(recs)),
	}
	for i := range recs {
		r := &recs[i]
		run.Records = append(run.Records, RecordExport{
			Time:       r.Time,
			Tid:        r.Tid,
			Stx:        r.Stx,
			Attempt:    r.Attempt,
			BeginIndex: r.BeginIndex,
			Point:      r.Point.String(),
			Choice:     r.Choice.String(),
			Outcome:    r.Outcome.String(),
			EnemyDTx:   r.EnemyDTx,
			EnemyStx:   r.EnemyStx,
			Confidence: r.Confidence,
			Similarity: r.Similarity,
			Wait:       r.WaitCycles,
			Wasted:     r.WastedCycles,
		})
	}
	e.Runs = append(e.Runs, run)
}

func newRegretExport(g Regret) RegretExport {
	return RegretExport{
		Decisions:          g.Decisions,
		Proceeds:           g.Proceeds,
		Serializations:     g.Serializations,
		Stalls:             g.Stalls,
		Committed:          g.Committed,
		Aborted:            g.Aborted,
		Justified:          g.Justified,
		Overcautious:       g.Overcautious,
		Released:           g.Released,
		TimedOut:           g.TimedOut,
		Pending:            g.Pending,
		OvercautionCycles:  g.OvercautionCycles,
		UndercautionCycles: g.UndercautionCycles,
		WaitCycles:         g.WaitCycles,
		StallWaitCycles:    g.StallWaitCycles,
		TotalRegret:        g.Total(),
		SerializeRate:      g.SerializeRate(),
	}
}

// EncodeJSON writes the export as indented JSON.
func (e *Export) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Validate checks the structural invariants scripts/jsonverify gates on:
// the right schema version and kind, at least one run, known enum labels,
// and per-run ledger/record consistency.
func (e *Export) Validate() error {
	if e.SchemaVersion != SchemaVersion {
		return fmt.Errorf("schema_version %d, want %d", e.SchemaVersion, SchemaVersion)
	}
	if e.Kind != ExportKind {
		return fmt.Errorf("kind %q, want %q", e.Kind, ExportKind)
	}
	if len(e.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	for i := range e.Runs {
		run := &e.Runs[i]
		if run.Manager == "" || run.Workload == "" || run.Name == "" {
			return fmt.Errorf("run %d: empty name/manager/workload", i)
		}
		if run.Units != "cycles" && run.Units != "ns" {
			return fmt.Errorf("run %s: units %q, want cycles|ns", run.Name, run.Units)
		}
		if run.Threads <= 0 {
			return fmt.Errorf("run %s: threads %d", run.Name, run.Threads)
		}
		if run.Regret.Decisions != int64(len(run.Records)) {
			return fmt.Errorf("run %s: regret.decisions %d != %d records",
				run.Name, run.Regret.Decisions, len(run.Records))
		}
		for j := range run.Records {
			r := &run.Records[j]
			if !validLabel(r.Point, pointLabels) {
				return fmt.Errorf("run %s record %d: unknown point %q", run.Name, j, r.Point)
			}
			if !validLabel(r.Choice, choiceLabels) {
				return fmt.Errorf("run %s record %d: unknown choice %q", run.Name, j, r.Choice)
			}
			if !validLabel(r.Outcome, outcomeLabels) {
				return fmt.Errorf("run %s record %d: unknown outcome %q", run.Name, j, r.Outcome)
			}
			if r.Wait < 0 || r.Wasted < 0 {
				return fmt.Errorf("run %s record %d: negative wait/wasted", run.Name, j)
			}
		}
	}
	return nil
}

// Enum label tables for Validate, derived from the String methods so the
// validator can never drift from the encoder.
var (
	pointLabels   = enumLabels(int(numPoints), func(i int) string { return Point(i).String() })
	choiceLabels  = enumLabels(int(numChoices), func(i int) string { return Choice(i).String() })
	outcomeLabels = enumLabels(int(numOutcomes), func(i int) string { return Outcome(i).String() })
)

func enumLabels(n int, name func(int) string) map[string]bool {
	m := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		m[name(i)] = true
	}
	return m
}

func validLabel(s string, set map[string]bool) bool { return set[s] }
