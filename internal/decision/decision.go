// Package decision is the unified decision-trace and regret layer shared
// by the simulator (internal/sim) and the live STM (internal/stm): every
// scheduling decision point — serialize-vs-proceed at transaction begin,
// stall-vs-abort on a NACK, spin-vs-yield inside an STM suspend — emits
// one compact record carrying the decision, the predicted enemy, the
// confidence/similarity inputs that drove it, and (settled later) the
// outcome: cycles wasted if the attempt aborted, cycles waited if the
// thread serialized.
//
// The paper's metrics answer "was the prediction right?" (precision);
// this layer answers "did the decision pay?". On top of the raw stream
// sit an estimated-regret accountant (Estimate), a schema-v2 JSON export
// (export.go) and a Chrome trace_event exporter (chrome.go) that opens
// directly in Perfetto.
//
// The recorder mirrors internal/trace's bounded drop-counting design and
// is sharded per thread: each shard is owned by one thread (simulator
// threads are single-threaded by construction; STM workers are
// single-flight per slot), so the hot-path Add takes no lock and
// allocates nothing in steady state (//bfgts:allocfree, cross-checked by
// bfgtsvet). Merge folds the shards into one deterministic stream.
package decision

import "sort"

// Point is where in the transaction lifecycle a decision was taken.
type Point uint8

// Decision points.
const (
	// PBegin: the serialize-vs-proceed decision at transaction begin.
	PBegin Point = iota
	// PNack: the stall-vs-abort decision after an access was NACKed.
	PNack
	numPoints
)

// String returns the label used in exports.
func (p Point) String() string {
	switch p {
	case PBegin:
		return "begin"
	case PNack:
		return "nack"
	default:
		return "point?"
	}
}

// Choice is what the scheduler decided to do at a decision point.
type Choice uint8

// Choices.
const (
	// CProceed: start (or continue) the transaction optimistically.
	CProceed Choice = iota
	// CSpin: serialize by busy-waiting behind the predicted enemy.
	CSpin
	// CYield: serialize by yielding the CPU behind the predicted enemy.
	CYield
	// CBlock: serialize by parking on a scheduler queue (ATS).
	CBlock
	// CStall: hold the NACKed access and wait for the holder to drain.
	CStall
	numChoices
)

// String returns the label used in exports.
func (c Choice) String() string {
	switch c {
	case CProceed:
		return "proceed"
	case CSpin:
		return "spin"
	case CYield:
		return "yield"
	case CBlock:
		return "block"
	case CStall:
		return "stall"
	default:
		return "choice?"
	}
}

// Serializes reports whether the choice delayed the transaction behind a
// predicted enemy (the overcaution side of the regret ledger).
func (c Choice) Serializes() bool { return c == CSpin || c == CYield || c == CBlock }

// Outcome is how a decision settled once the future arrived.
type Outcome uint8

// Outcomes. A record starts OPending and is settled in place.
const (
	// OPending: the outcome is not (yet) known; unsettled records survive
	// in exports so truncated windows stay honest.
	OPending Outcome = iota
	// OCommitted: a proceed decision whose attempt committed.
	OCommitted
	// OAborted: a proceed decision whose attempt aborted — WastedCycles
	// holds the work thrown away (the undercaution currency).
	OAborted
	// OJustified: a serialize decision whose enemy really overlapped the
	// committed line set — the wait bought something.
	OJustified
	// OOvercautious: a serialize decision whose enemy did not overlap —
	// WaitCycles were spent for nothing (the overcaution currency).
	OOvercautious
	// OReleased: a stall decision that ended with the holder draining;
	// the access retried without an abort.
	OReleased
	// OTimedOut: a stall decision that exhausted its budget (or was
	// doomed while waiting) and rolled back.
	OTimedOut
	numOutcomes
)

// String returns the label used in exports.
func (o Outcome) String() string {
	switch o {
	case OPending:
		return "pending"
	case OCommitted:
		return "committed"
	case OAborted:
		return "aborted"
	case OJustified:
		return "justified"
	case OOvercautious:
		return "overcautious"
	case OReleased:
		return "released"
	case OTimedOut:
		return "timed_out"
	default:
		return "outcome?"
	}
}

// Record is one scheduling decision. Time units are simulated cycles in
// the simulator and wall nanoseconds in the STM; the export stamps which.
type Record struct {
	// Time is when the decision was taken (cycles or ns, run-relative).
	Time int64
	// Seq is the per-thread emission index: (Tid, Seq) is unique, so the
	// merged (Time, Tid, Seq) order is total and deterministic.
	Seq int32
	// BeginIndex is the global 1-based OnBegin call index in the
	// simulator (the replay coordinate of RunConfig.FlipBegin); 0 when
	// not applicable (STM, NACK records).
	BeginIndex int64

	Tid     int32 // deciding thread / worker
	Stx     int32 // its static transaction
	Attempt int32 // attempt number within the execution (1-based; 0 in STM)

	Point  Point
	Choice Choice
	// Outcome starts OPending and is settled in place via Resolve.
	Outcome Outcome

	// EnemyDTx/EnemyStx identify the predicted enemy (serialize decisions),
	// the NACKing holder (stall decisions), or — stamped at settlement via
	// SetEnemy — the transaction that doomed an aborted proceed; -1 when
	// none.
	EnemyDTx int32
	EnemyStx int32

	// Confidence and Similarity are the predictor inputs behind the
	// decision (zero for managers that do not track them).
	Confidence float64
	Similarity float64

	// WaitCycles is time spent waiting because of the decision
	// (serialize and stall choices).
	WaitCycles int64
	// WastedCycles is work thrown away when a proceed decision aborted.
	WastedCycles int64
}

// DefaultCap bounds per-thread recorders that do not set Cap.
const DefaultCap = 1 << 17

// Recorder accumulates one thread's decisions up to a cap, then counts
// drops — the internal/trace bounding discipline. It is single-owner: the
// emitting thread is the only writer, so no locking is needed and the
// append-to-field hot path stays allocation-free once capacity is warm.
type Recorder struct {
	// Cap is the maximum retained records; <=0 means DefaultCap.
	Cap     int
	recs    []Record
	dropped int64
	seq     int32
}

// Add records a decision and returns its token for later settlement, or
// -1 when the record was dropped past the cap. The Seq field is stamped
// here; callers need not set it.
//
//bfgts:allocfree
func (r *Recorder) Add(rec Record) int {
	rec.Seq = r.seq
	r.seq++
	cap := r.Cap
	if cap <= 0 {
		cap = DefaultCap
	}
	if len(r.recs) >= cap {
		r.dropped++
		return -1
	}
	r.recs = append(r.recs, rec)
	return len(r.recs) - 1
}

// SetWait settles the wait duration of a pending decision in place.
// Tolerates the -1 drop token.
//
//bfgts:allocfree
func (r *Recorder) SetWait(tok int, wait int64) {
	if tok < 0 {
		return
	}
	r.recs[tok].WaitCycles = wait
}

// Resolve settles a pending decision's outcome (and, for aborted
// proceeds, the wasted cycles) in place. Tolerates the -1 drop token.
//
//bfgts:allocfree
func (r *Recorder) Resolve(tok int, o Outcome, wasted int64) {
	if tok < 0 {
		return
	}
	r.recs[tok].Outcome = o
	r.recs[tok].WastedCycles = wasted
}

// SetEnemy settles the counterparty of a pending decision in place — used
// when the enemy only becomes known at settlement (the transaction that
// doomed an optimistic proceed). Tolerates the -1 drop token.
//
//bfgts:allocfree
func (r *Recorder) SetEnemy(tok int, dtx, stx int32) {
	if tok < 0 {
		return
	}
	r.recs[tok].EnemyDTx = dtx
	r.recs[tok].EnemyStx = stx
}

// Records returns the retained records in emission order.
func (r *Recorder) Records() []Record { return r.recs }

// Dropped returns how many records exceeded the cap.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Reset empties the recorder, keeping its storage for reuse.
func (r *Recorder) Reset() {
	r.recs = r.recs[:0]
	r.dropped = 0
	r.seq = 0
}

// Set is a per-thread sharded decision trace: one Recorder per thread,
// merged deterministically after the run. Shards are fixed at
// construction so the hot path never allocates or locks.
type Set struct {
	shards []Recorder
}

// NewSet builds a set with one shard per thread. capPerThread <= 0 means
// DefaultCap.
func NewSet(threads, capPerThread int) *Set {
	s := &Set{shards: make([]Recorder, threads)}
	for i := range s.shards {
		s.shards[i].Cap = capPerThread
	}
	return s
}

// Threads returns the shard count.
func (s *Set) Threads() int { return len(s.shards) }

// Shard returns thread tid's recorder. The caller owns it exclusively.
//
//bfgts:allocfree
func (s *Set) Shard(tid int) *Recorder { return &s.shards[tid] }

// Len totals retained records across shards.
func (s *Set) Len() int {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].recs)
	}
	return n
}

// Dropped totals drops across shards.
func (s *Set) Dropped() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].dropped
	}
	return n
}

// Merge folds all shards into one stream ordered by (Time, Tid, Seq).
// (Tid, Seq) is unique, so the order is total: two merges of the same set
// are byte-identical regardless of shard sizes or call timing.
func (s *Set) Merge() []Record {
	out := make([]Record, 0, s.Len())
	for i := range s.shards {
		out = append(out, s.shards[i].recs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Seq < b.Seq
	})
	return out
}
