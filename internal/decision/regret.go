package decision

// Regret is the estimated-regret ledger over a decision stream: how much
// time the scheduler's mistakes cost, split into the two failure modes
// the paper's managers trade off.
//
//   - Overcaution: the thread serialized behind a predicted enemy whose
//     committed line set never overlapped — the wait bought nothing.
//   - Undercaution: the thread proceeded optimistically and the attempt
//     aborted — the transactional work was thrown away.
//
// Units follow the stream: simulated cycles (sim) or nanoseconds (STM).
// Stall (NACK) waits are tallied separately and excluded from Total:
// a timed-out stall already surfaces as the subsequent abort's wasted
// cycles, and double-charging it would overstate undercaution.
type Regret struct {
	Decisions int64 // records considered

	Proceeds       int64 // begin decisions that proceeded
	Serializations int64 // begin decisions that spun/yielded/blocked
	Stalls         int64 // NACK stall decisions

	Committed    int64 // proceeds that committed
	Aborted      int64 // proceeds that aborted
	Justified    int64 // serializations whose enemy really overlapped
	Overcautious int64 // serializations whose enemy did not
	Released     int64 // stalls resolved by the holder draining
	TimedOut     int64 // stalls that gave up (or were doomed waiting)
	Pending      int64 // records never settled (run ended first)

	OvercautionCycles  int64 // wait spent on refuted serializations
	UndercautionCycles int64 // work wasted by aborted proceeds
	WaitCycles         int64 // all serialize wait, justified or not
	StallWaitCycles    int64 // all NACK stall wait
}

// Total is the headline estimated regret: overcaution plus undercaution.
func (g Regret) Total() int64 { return g.OvercautionCycles + g.UndercautionCycles }

// SerializeRate is the fraction of begin decisions that serialized.
func (g Regret) SerializeRate() float64 {
	if d := g.Proceeds + g.Serializations; d > 0 {
		return float64(g.Serializations) / float64(d)
	}
	return 0
}

// Estimate walks a decision stream (any order) and accumulates its
// regret ledger.
func Estimate(recs []Record) Regret {
	var g Regret
	for i := range recs {
		r := &recs[i]
		g.Decisions++
		switch {
		case r.Point == PNack:
			g.Stalls++
			g.StallWaitCycles += r.WaitCycles
			switch r.Outcome {
			case OReleased:
				g.Released++
			case OTimedOut:
				g.TimedOut++
			default:
				g.Pending++
			}
		case r.Choice.Serializes():
			g.Serializations++
			g.WaitCycles += r.WaitCycles
			switch r.Outcome {
			case OJustified:
				g.Justified++
			case OOvercautious:
				g.Overcautious++
				g.OvercautionCycles += r.WaitCycles
			default:
				g.Pending++
			}
		default:
			g.Proceeds++
			switch r.Outcome {
			case OCommitted:
				g.Committed++
			case OAborted:
				g.Aborted++
				g.UndercautionCycles += r.WastedCycles
			default:
				g.Pending++
			}
		}
	}
	return g
}
