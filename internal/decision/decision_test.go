package decision

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRecorderAddSettle(t *testing.T) {
	var r Recorder
	tok := r.Add(Record{Time: 10, Tid: 1, Stx: 0, Point: PBegin, Choice: CSpin, EnemyDTx: 7, EnemyStx: 1})
	if tok != 0 {
		t.Fatalf("token = %d, want 0", tok)
	}
	r.SetWait(tok, 500)
	r.Resolve(tok, OOvercautious, 0)
	recs := r.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	got := recs[0]
	if got.WaitCycles != 500 || got.Outcome != OOvercautious || got.Seq != 0 {
		t.Fatalf("settled record = %+v", got)
	}
	// The drop token must be inert.
	r.SetWait(-1, 1)
	r.Resolve(-1, OCommitted, 1)
}

// TestRecorderCapBoundary pins drop accounting at exactly Cap and Cap+1,
// and that tokens for dropped records are -1.
func TestRecorderCapBoundary(t *testing.T) {
	r := Recorder{Cap: 4}
	for i := 0; i < 4; i++ {
		if tok := r.Add(Record{Time: int64(i)}); tok != i {
			t.Fatalf("add %d: token %d", i, tok)
		}
	}
	if len(r.Records()) != 4 || r.Dropped() != 0 {
		t.Fatalf("at cap: records=%d dropped=%d", len(r.Records()), r.Dropped())
	}
	if tok := r.Add(Record{Time: 4}); tok != -1 {
		t.Fatalf("cap+1 add returned token %d, want -1", tok)
	}
	if len(r.Records()) != 4 || r.Dropped() != 1 {
		t.Fatalf("past cap: records=%d dropped=%d", len(r.Records()), r.Dropped())
	}
}

func TestRecorderReset(t *testing.T) {
	r := Recorder{Cap: 2}
	r.Add(Record{})
	r.Add(Record{})
	r.Add(Record{})
	r.Reset()
	if len(r.Records()) != 0 || r.Dropped() != 0 {
		t.Fatalf("reset left records=%d dropped=%d", len(r.Records()), r.Dropped())
	}
	if tok := r.Add(Record{}); tok != 0 {
		t.Fatalf("post-reset token = %d", tok)
	}
	if r.Records()[0].Seq != 0 {
		t.Fatalf("post-reset seq = %d", r.Records()[0].Seq)
	}
}

// TestMergeDeterministicConcurrent writes shards from concurrent
// goroutines (the STM usage pattern: one owner per shard) and checks the
// merged stream is identical across merges and independent of write
// timing.
func TestMergeDeterministicConcurrent(t *testing.T) {
	const threads, per = 8, 100
	build := func() *Set {
		s := NewSet(threads, 0)
		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				sh := s.Shard(tid)
				for i := 0; i < per; i++ {
					// Colliding timestamps across shards force the
					// (Time, Tid, Seq) tiebreak to do real work.
					sh.Add(Record{Time: int64(i % 10), Tid: int32(tid), Stx: int32(i % 3)})
				}
			}(tid)
		}
		wg.Wait()
		return s
	}
	a, b := build(), build()
	ma, mb := a.Merge(), b.Merge()
	if len(ma) != threads*per || len(ma) != len(mb) {
		t.Fatalf("merge sizes %d, %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("merge diverges at %d: %+v vs %+v", i, ma[i], mb[i])
		}
	}
	// Order must be (Time, Tid, Seq)-sorted.
	for i := 1; i < len(ma); i++ {
		p, q := &ma[i-1], &ma[i]
		if p.Time > q.Time ||
			(p.Time == q.Time && p.Tid > q.Tid) ||
			(p.Time == q.Time && p.Tid == q.Tid && p.Seq >= q.Seq) {
			t.Fatalf("merge out of order at %d: %+v then %+v", i, *p, *q)
		}
	}
	// Merging twice from one set must also be stable.
	mc := a.Merge()
	for i := range ma {
		if ma[i] != mc[i] {
			t.Fatalf("re-merge diverges at %d", i)
		}
	}
}

func TestEstimate(t *testing.T) {
	recs := []Record{
		{Point: PBegin, Choice: CProceed, Outcome: OCommitted},
		{Point: PBegin, Choice: CProceed, Outcome: OAborted, WastedCycles: 300},
		{Point: PBegin, Choice: CSpin, Outcome: OJustified, WaitCycles: 100},
		{Point: PBegin, Choice: CYield, Outcome: OOvercautious, WaitCycles: 250},
		{Point: PBegin, Choice: CBlock, Outcome: OPending, WaitCycles: 40},
		{Point: PNack, Choice: CStall, Outcome: OReleased, WaitCycles: 60},
		{Point: PNack, Choice: CStall, Outcome: OTimedOut, WaitCycles: 800},
	}
	g := Estimate(recs)
	if g.Decisions != 7 || g.Proceeds != 2 || g.Serializations != 3 || g.Stalls != 2 {
		t.Fatalf("counts: %+v", g)
	}
	if g.Committed != 1 || g.Aborted != 1 || g.Justified != 1 || g.Overcautious != 1 {
		t.Fatalf("outcomes: %+v", g)
	}
	if g.Released != 1 || g.TimedOut != 1 || g.Pending != 1 {
		t.Fatalf("stall/pending: %+v", g)
	}
	if g.OvercautionCycles != 250 || g.UndercautionCycles != 300 || g.Total() != 550 {
		t.Fatalf("regret: %+v", g)
	}
	if g.WaitCycles != 390 || g.StallWaitCycles != 860 {
		t.Fatalf("waits: %+v", g)
	}
	if got := g.SerializeRate(); got < 0.59 || got > 0.61 {
		t.Fatalf("serialize rate = %v", got)
	}
}

func buildSampleSet() *Set {
	s := NewSet(2, 0)
	s.Shard(0).Add(Record{Time: 5, Tid: 0, Point: PBegin, Choice: CProceed,
		Outcome: OCommitted, EnemyDTx: -1, EnemyStx: -1, BeginIndex: 1})
	tok := s.Shard(1).Add(Record{Time: 3, Tid: 1, Point: PBegin, Choice: CSpin,
		Outcome: OPending, EnemyDTx: 0, EnemyStx: 0, Confidence: 0.8, Similarity: 0.4, BeginIndex: 2})
	s.Shard(1).SetWait(tok, 120)
	s.Shard(1).Resolve(tok, OJustified, 0)
	s.Shard(1).Add(Record{Time: 9, Tid: 1, Point: PNack, Choice: CStall,
		Outcome: OReleased, EnemyDTx: 0, EnemyStx: 0, WaitCycles: 30})
	return s
}

func TestExportRoundTripAndValidate(t *testing.T) {
	e := NewExport()
	e.AddRun("BFGTS-HW", "intruder", "cycles", buildSampleSet())
	if err := e.Validate(); err != nil {
		t.Fatalf("fresh export invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := e.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped export invalid: %v", err)
	}
	if back.Runs[0].Regret.Decisions != 3 || back.Runs[0].Regret.Serializations != 1 {
		t.Fatalf("regret ledger lost in transit: %+v", back.Runs[0].Regret)
	}
	// Determinism: encoding twice is byte-identical.
	var buf2 bytes.Buffer
	if err := e.EncodeJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export encoding not deterministic")
	}
}

func TestExportValidateRejects(t *testing.T) {
	bad := NewExport()
	if err := bad.Validate(); err == nil {
		t.Fatal("empty export validated")
	}
	e := NewExport()
	e.AddRun("m", "w", "cycles", buildSampleSet())
	e.Runs[0].Records[0].Choice = "teleport"
	if err := e.Validate(); err == nil {
		t.Fatal("unknown choice validated")
	}
	e2 := NewExport()
	e2.AddRun("m", "w", "fortnights", buildSampleSet())
	if err := e2.Validate(); err == nil {
		t.Fatal("bad units validated")
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	var c ChromeTrace
	c.AddRun(0, "intruder/BFGTS-HW", buildSampleSet())
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("doc: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	kinds := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			t.Fatalf("event without ph: %+v", ev)
		}
		kinds[ev.Ph]++
	}
	if kinds["M"] < 3 { // process_name + two thread_names
		t.Fatalf("metadata events = %d", kinds["M"])
	}
	if kinds["X"] == 0 {
		t.Fatal("no decision spans emitted")
	}
	// Span args must carry the confidence annotation the issue asks for.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := ev.Args["confidence"]; ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no span annotated with confidence")
	}
	// Determinism: rebuilding from the same set is byte-identical.
	var c2 ChromeTrace
	c2.AddRun(0, "intruder/BFGTS-HW", buildSampleSet())
	var buf2 bytes.Buffer
	if _, err := c2.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome encoding not deterministic")
	}
}

func TestEmptyChromeTraceIsValid(t *testing.T) {
	var c ChromeTrace
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Fatalf("empty trace = %s", buf.String())
	}
}

// TestDecisionHotPathAllocFree is the runtime half of the 0 allocs/op
// contract on Add/SetWait/Resolve/Shard (the static half is bfgtsvet's
// allocfree analyzer; internal/analysis/markers_test.go keeps the two in
// lockstep).
func TestDecisionHotPathAllocFree(t *testing.T) {
	s := NewSet(2, 256)
	r := s.Shard(1)
	for i := 0; i < 256; i++ { // warm the backing array to capacity
		r.Add(Record{})
	}
	r.Reset()
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		tok := r.Add(Record{Time: int64(i), Point: PBegin, Choice: CSpin})
		r.SetWait(tok, 10)
		r.Resolve(tok, OJustified, 0)
		if i++; i%200 == 0 {
			r.Reset()
		}
	})
	if avg != 0 {
		t.Fatalf("decision hot path allocates %v allocs/op, want 0", avg)
	}
}
