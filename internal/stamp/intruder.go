package stamp

import "repro/internal/workload"

// Intruder models STAMP's network-intrusion detector: packet capture
// dequeues from one shared FIFO, fragments are reassembled in a hash map
// of flows, and completed flows are pushed to a detection queue.
//
// Observable structure targeted (Table 1): three static transactions;
// tx0 (dequeue) conflicts with itself on the queue head, tx1 (reassembly)
// conflicts with tx1 and tx2 on flow buckets, tx2 (detect-enqueue) with
// tx1 and tx2 on the tail and buckets. Similarities ~0.67 / 0.40 / 0.66:
// the queue-cursor blocks recur every execution, flow buckets only
// sometimes. The hot cursors at 64 threads produce Table 4's ~70% backoff
// contention; this is the benchmark where BFGTS-HW posts its largest win
// over PTS (1.7x) because scheduling runs continuously.
type Intruder struct {
	totalTxs int

	inQ    workload.Region // input FIFO cursor block + slots
	flows  workload.Region // reassembly hash buckets
	outQ   workload.Region // detection FIFO cursor block + slots
	nFlows int

	// Queue cursors advance only when dequeues/enqueues commit.
	head, tail int
}

// NewIntruder returns the intruder factory at its default scale.
func NewIntruder() workload.Factory {
	return workload.NewFactory("intruder", 24000, func(total int) workload.Workload {
		sp := workload.NewSpace()
		return &Intruder{
			totalTxs: total,
			inQ:      sp.Alloc("inQ", 1024),
			flows:    sp.Alloc("flows", 96),
			outQ:     sp.Alloc("outQ", 1024),
			nFlows:   16,
		}
	})
}

// Name implements workload.Workload.
func (in *Intruder) Name() string { return "intruder" }

// NumStatic implements workload.Workload.
func (in *Intruder) NumStatic() int { return 3 }

// NewProgram implements workload.Workload: the pipeline rhythm is dequeue,
// reassemble, reassemble, detect.
func (in *Intruder) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	count := share(in.totalTxs, tid, nThreads)
	gen := func(tid, i int, rng *workload.RNG) (int64, *workload.TxDesc) {
		switch i % 4 {
		case 0:
			return 700, in.dequeue(rng)
		case 3:
			return 700, in.detect(rng)
		default:
			return 700, in.reassemble(rng)
		}
	}
	return &program{gen: gen, tid: tid, rng: workload.NewRNG(seed), count: count}
}

// dequeue (tx0): read the cursor block (3 hot lines), read the packet
// slot, advance the head (upgrade on the cursor). Every execution touches
// the same cursor block — similarity ~0.67 — and every concurrent dequeue
// conflicts on it.
func (in *Intruder) dequeue(rng *workload.RNG) *workload.TxDesc {
	h := in.head
	return newTx(0, 420).
		readSpan(in.inQ, 0, 3).        // head, len, stats
		read(in.inQ.Line(4 + h%1000)). // packet slot
		write(in.inQ.Line(0)).         // advance head (upgrade)
		onCommit(func() { in.head++ }).
		build()
}

// reassemble (tx1): read-modify-write a flow bucket (3 lines). Flows are
// Zipf-popular, so buckets recur sometimes (similarity ~0.4) and
// concurrent reassemblies collide on hot flows.
func (in *Intruder) reassemble(rng *workload.RNG) *workload.TxDesc {
	f := rng.Zipf(in.nFlows, 1.8) * 3
	b := newTx(1, 420)
	b.readSpan(in.flows, f, 3)
	b.read(in.flows.Line(90 + rng.Intn(4))) // fragment-pool header, recurs
	b.write(in.flows.Line(f))
	b.write(in.flows.Line(f + 1))
	return b.build()
}

// detect (tx2): read a flow bucket, push the verdict onto the detection
// queue (cursor upgrade). The recurring cursor block gives similarity
// ~0.66 and the bucket read gives the tx1–tx2 edge.
func (in *Intruder) detect(rng *workload.RNG) *workload.TxDesc {
	f := rng.Zipf(in.nFlows, 1.8) * 3
	t := in.tail
	return newTx(2, 300).
		readSpan(in.outQ, 0, 2).         // tail, len
		read(in.flows.Line(f)).          // flow verdict
		write(in.outQ.Line(0)).          // advance tail (upgrade)
		write(in.outQ.Line(3 + t%1000)). // slot
		onCommit(func() { in.tail++ }).
		build()
}
