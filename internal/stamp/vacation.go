package stamp

import "repro/internal/workload"

// Vacation models STAMP's travel-reservation system: one static
// transaction that walks randomly through large index trees (cars, rooms,
// flights) and writes a couple of reservation records.
//
// Observable structure targeted (Table 1): a single static transaction
// conflicting only with itself, rarely (Table 4: ~10% under backoff, a few
// percent scheduled); similarity ~0.26, because most of the footprint is a
// fresh random tree walk while a small customer-manager block recurs.
// Vacation is overhead-sensitive: the paper's BFGTS-HW loses to ATS here
// until the hybrid gets the Bloom work off the common path.
type Vacation struct {
	totalTxs int

	trees   workload.Region // index structures, read-mostly
	records workload.Region // reservation rows
	manager workload.Region // customer/manager block, recurs per thread
	treeTop int             // shared top levels of the trees (recur)
}

// NewVacation returns the vacation factory at its default scale.
func NewVacation() workload.Factory {
	return workload.NewFactory("vacation", 12000, func(total int) workload.Workload {
		sp := workload.NewSpace()
		return &Vacation{
			totalTxs: total,
			trees:    sp.Alloc("trees", 16384),
			records:  sp.Alloc("records", 512),
			manager:  sp.Alloc("manager", 64),
			treeTop:  3,
		}
	})
}

// Name implements workload.Workload.
func (v *Vacation) Name() string { return "vacation" }

// NumStatic implements workload.Workload.
func (v *Vacation) NumStatic() int { return 1 }

// NewProgram implements workload.Workload.
func (v *Vacation) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	count := share(v.totalTxs, tid, nThreads)
	gen := func(tid, i int, rng *workload.RNG) (int64, *workload.TxDesc) {
		return 1400, v.reserve(tid, rng)
	}
	return &program{gen: gen, tid: tid, rng: workload.NewRNG(seed), count: count}
}

// reserve (tx0): walk the shared tree tops, descend into random leaves,
// then write two reservation rows. Rows are drawn from the whole record
// table, so two concurrent reservations occasionally collide.
func (v *Vacation) reserve(tid int, rng *workload.RNG) *workload.TxDesc {
	b := newTx(0, 900)
	// Tree tops recur across executions: the similarity floor.
	b.readSpan(v.trees, 0, v.treeTop)
	// Random descent: 8 fresh leaf lines.
	for j := 0; j < 8; j++ {
		b.read(v.trees.Line(v.treeTop + rng.Intn(v.trees.NumLines-v.treeTop)))
	}
	// The thread's manager line recurs.
	b.read(v.manager.Line(tid % v.manager.NumLines))
	// Two reservation rows, read then written (upgrade). Popular trips
	// make some rows hot — the source of vacation's ~10% backoff
	// contention.
	for j := 0; j < 2; j++ {
		row := rng.Zipf(v.records.NumLines, 2.5)
		b.read(v.records.Line(row))
		b.write(v.records.Line(row))
	}
	return b.build()
}
