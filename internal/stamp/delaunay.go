package stamp

import "repro/internal/workload"

// Delaunay models the transactional Delaunay mesh refinement benchmark
// (Kulkarni et al.): cavity refinements over a shared mesh with a hot
// boundary structure and a shared worklist.
//
// Observable structure targeted (Table 1): four static transactions whose
// conflict graph is DENSE — every transaction conflicts with nearly every
// other, because all of them touch the mesh and the boundary block. The
// similarity spread is wide: tx3 (worklist management, ~0.90) and tx0
// (boundary-anchored refinement, ~0.64) repeat their footprints, tx2
// (edge flips, ~0.56) partially, and tx1 (random point insertion, ~0.04)
// lands somewhere new every time. This is the benchmark that motivates
// similarity-guided scheduling: treating tx1's transient conflicts like
// tx3's persistent ones (as PTS does) over-serializes; ignoring them (as
// backoff does) gives Table 4's 73.5% contention. ATS collapses here
// (paper: BFGTS up to 4.6x over ATS) because the dense pattern pushes
// every transaction onto its single queue.
type Delaunay struct {
	totalTxs int

	mesh     workload.Region // triangle/element store
	boundary workload.Region // hot boundary/encroachment block
	worklist workload.Region // bad-triangle queue cursors

	cavity int // cavity footprint in lines
	popped int
}

// NewDelaunay returns the delaunay factory at its default scale.
func NewDelaunay() workload.Factory {
	return workload.NewFactory("delaunay", 15000, func(total int) workload.Workload {
		sp := workload.NewSpace()
		return &Delaunay{
			totalTxs: total,
			mesh:     sp.Alloc("mesh", 256),
			boundary: sp.Alloc("boundary", 16),
			worklist: sp.Alloc("worklist", 6),
			cavity:   8,
		}
	})
}

// Name implements workload.Workload.
func (d *Delaunay) Name() string { return "delaunay" }

// NumStatic implements workload.Workload.
func (d *Delaunay) NumStatic() int { return 4 }

// NewProgram implements workload.Workload: the refinement loop is
// pop-work, refine, insert, flip in a 1:2:1:2 rhythm.
func (d *Delaunay) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	count := share(d.totalTxs, tid, nThreads)
	gen := func(tid, i int, rng *workload.RNG) (int64, *workload.TxDesc) {
		switch i % 6 {
		case 0:
			return 500, d.popWork(rng)
		case 1, 4:
			return 350, d.refine(rng)
		case 2:
			return 300, d.insert(rng)
		default:
			return 350, d.flip(rng)
		}
	}
	return &program{gen: gen, tid: tid, rng: workload.NewRNG(seed), count: count}
}

// refine (tx0): expand a cavity anchored near the boundary — Zipf-skewed
// placement keeps revisiting popular regions (similarity ~0.64) and makes
// concurrent cavities overlap.
func (d *Delaunay) refine(rng *workload.RNG) *workload.TxDesc {
	base := rng.Zipf(d.mesh.NumLines-d.cavity, 4.0)
	b := newTx(0, 1400)
	b.readSpan(d.boundary, 0, 8) // recurring anchor: the similarity floor
	b.readSpan(d.mesh, base, d.cavity)
	for j := 0; j < d.cavity; j++ {
		b.write(d.mesh.Line(base + j)) // retriangulate: upgrades
	}
	b.write(d.boundary.Line(rng.Intn(3)))
	return b.build()
}

// insert (tx1): insert a point at a uniformly random mesh location —
// fresh footprint every time (similarity ~0.04) but still through the
// shared mesh and boundary, so it conflicts with everything transiently.
func (d *Delaunay) insert(rng *workload.RNG) *workload.TxDesc {
	base := rng.Intn(d.mesh.NumLines - 6)
	b := newTx(1, 1000)
	b.readSpan(d.mesh, base, 6)
	b.read(d.boundary.Line(rng.Intn(d.boundary.NumLines)))
	b.write(d.mesh.Line(base + 1))
	b.write(d.mesh.Line(base + 3))
	// Occasionally the inserted point encroaches the boundary or the
	// worklist — the edges to tx0/tx2/tx3 in Table 1's dense graph.
	if rng.Float64() < 0.25 {
		b.write(d.boundary.Line(3 + rng.Intn(5)))
	}
	if rng.Float64() < 0.10 {
		b.read(d.worklist.Line(0))
		b.write(d.worklist.Line(0))
	}
	return b.build()
}

// flip (tx2): flip edges in a moderately popular region — between tx0 and
// tx1 in both similarity (~0.56) and footprint.
func (d *Delaunay) flip(rng *workload.RNG) *workload.TxDesc {
	base := rng.Zipf(d.mesh.NumLines-4, 2.2)
	b := newTx(2, 800)
	b.readSpan(d.boundary, 0, 4)
	b.readSpan(d.mesh, base, 4)
	b.write(d.mesh.Line(base))
	b.write(d.mesh.Line(base + 2))
	if rng.Float64() < 0.15 {
		b.write(d.boundary.Line(3 + rng.Intn(5))) // edge to tx1
	}
	if rng.Float64() < 0.10 {
		b.read(d.worklist.Line(0))
		b.write(d.worklist.Line(0)) // requeue a bad triangle: edge to tx3
	}
	return b.build()
}

// popWork (tx3): pop the next bad triangle — the worklist cursors recur
// every single execution (similarity ~0.90) and every concurrent pop
// conflicts.
func (d *Delaunay) popWork(rng *workload.RNG) *workload.TxDesc {
	q := d.popped
	return newTx(3, 350).
		readSpan(d.worklist, 0, 3).
		write(d.worklist.Line(q % 2)).
		onCommit(func() { d.popped++ }).
		build()
}
