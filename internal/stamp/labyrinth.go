package stamp

import "repro/internal/workload"

// Labyrinth models STAMP's maze router (with the paper's standard
// modification of performing the grid copy outside the transaction): each
// routing transaction validates a path through the shared grid and claims
// its cells; a small worklist transaction feeds the routers.
//
// Observable structure targeted (Table 1): two static transaction
// families with very high similarity (~0.86/0.90 for routing — the grid
// header and the worklist recur every execution) and one mid-similarity
// helper (~0.45). Transactions are enormous (approaching a hundred cache
// lines), so Bloom-filter similarity calculations amortize and the paper
// finds 8192-bit filters are finally worthwhile here (Figure 6).
// Contention under backoff is ~20% (paths cross), and ATS does well
// because the conflict pattern is not dense.
type Labyrinth struct {
	totalTxs int

	grid     workload.Region // routing grid cells
	header   workload.Region // grid geometry block, read every route
	worklist workload.Region // work queue cursors

	headerSpan int
	pathLen    int

	queued int // worklist cursor, advanced on commit
}

// NewLabyrinth returns the labyrinth factory at its default scale. The
// transaction count is small because each transaction is enormous.
func NewLabyrinth() workload.Factory {
	return workload.NewFactory("labyrinth", 2700, func(total int) workload.Workload {
		sp := workload.NewSpace()
		return &Labyrinth{
			totalTxs:   total,
			grid:       sp.Alloc("grid", 4096),
			header:     sp.Alloc("header", 80),
			worklist:   sp.Alloc("worklist", 8),
			headerSpan: 64,
			pathLen:    16,
		}
	})
}

// Name implements workload.Workload.
func (l *Labyrinth) Name() string { return "labyrinth" }

// NumStatic implements workload.Workload.
func (l *Labyrinth) NumStatic() int { return 2 }

// NewProgram implements workload.Workload: three routes per worklist
// refill.
func (l *Labyrinth) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	count := share(l.totalTxs, tid, nThreads)
	gen := func(tid, i int, rng *workload.RNG) (int64, *workload.TxDesc) {
		if i%4 == 3 {
			return 2500, l.refill(rng)
		}
		return 5000, l.route(rng)
	}
	return &program{gen: gen, tid: tid, rng: workload.NewRNG(seed), count: count}
}

// route (tx0): read the whole grid header (recurs — the similarity
// anchor), read a path of grid cells, then claim the path (upgrades).
// Paths are random walks, so two concurrent routes cross with moderate
// probability.
func (l *Labyrinth) route(rng *workload.RNG) *workload.TxDesc {
	b := newTx(0, 22000)
	b.readSpan(l.header, 0, l.headerSpan)
	start := rng.Intn(l.grid.NumLines)
	stride := 1 + rng.Intn(2)
	cells := make([]int, 0, l.pathLen)
	for j := 0; j < l.pathLen; j++ {
		cells = append(cells, start+j*stride)
	}
	for _, c := range cells {
		b.read(l.grid.Line(c))
	}
	for _, c := range cells {
		b.write(l.grid.Line(c)) // claim the path: the upgrade storm
	}
	return b.build()
}

// refill (tx1): pop work from the worklist cursors — small, hot, moderate
// similarity.
func (l *Labyrinth) refill(rng *workload.RNG) *workload.TxDesc {
	q := l.queued
	return newTx(1, 600).
		read(l.worklist.Line(4)).                     // queue stats block
		read(l.grid.Line(rng.Intn(l.grid.NumLines))). // peek the next source cell
		read(l.grid.Line(rng.Intn(l.grid.NumLines))). // and its sink
		write(l.worklist.Line(q % 2)).                // write-first cursor bump
		onCommit(func() { l.queued++ }).
		build()
}
