package stamp

import "repro/internal/workload"

// Kmeans models STAMP's k-means clusterer: an assignment step that reads
// cluster centers and tags a point, a center-update step that accumulates
// partial sums into one of a small number of centers, and a global-delta
// update on a hot counter.
//
// Observable structure targeted (Table 1): three static transactions;
// tx0 conflicts (rarely) with itself on shared point lines, tx1 conflicts
// with tx1 and tx2 on center accumulators, tx2 with tx1. Similarities
// ~0.38 / 0.67 / 0.68 — centers are few, so the update steps keep
// revisiting the same lines. Contention under backoff is moderate (~20%,
// Table 4) and ATS handles it well (sparse-ish pattern), which is why
// kmeans is one of the benchmarks where scheduling overhead, not accuracy,
// decides the winner.
type Kmeans struct {
	totalTxs int

	points  workload.Region
	centers workload.Region // K centers × linesPerCenter
	delta   workload.Region // global convergence counter

	k              int
	linesPerCenter int
}

// NewKmeans returns the kmeans factory at its default scale.
func NewKmeans() workload.Factory {
	return workload.NewFactory("kmeans", 20000, func(total int) workload.Workload {
		sp := workload.NewSpace()
		return &Kmeans{
			totalTxs:       total,
			points:         sp.Alloc("points", 8192),
			centers:        sp.Alloc("centers", 5*3),
			delta:          sp.Alloc("delta", 1),
			k:              5,
			linesPerCenter: 3,
		}
	})
}

// Name implements workload.Workload.
func (k *Kmeans) Name() string { return "kmeans" }

// NumStatic implements workload.Workload.
func (k *Kmeans) NumStatic() int { return 3 }

// NewProgram implements workload.Workload: the per-iteration rhythm is
// assign, assign, update-center, and every eighth transaction a global
// delta update.
func (k *Kmeans) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	count := share(k.totalTxs, tid, nThreads)
	gen := func(tid, i int, rng *workload.RNG) (int64, *workload.TxDesc) {
		switch {
		case i%6 == 5:
			return 300, k.updateDelta(rng)
		case i%2 == 1:
			return 500, k.updateCenter(tid, rng)
		default:
			return 650, k.assign(tid, rng)
		}
	}
	return &program{gen: gen, tid: tid, rng: workload.NewRNG(seed), count: count}
}

// assign (tx0): read a random point and two candidate centers, write the
// point's membership back. Points are mostly private to a thread's stripe
// but stripes overlap slightly at the edges, giving rare tx0–tx0
// conflicts. Similarity ~0.38: center reads recur, point lines do not.
func (k *Kmeans) assign(tid int, rng *workload.RNG) *workload.TxDesc {
	stripe := k.points.NumLines / 64
	base := (tid*stripe + rng.Intn(stripe+2)) % k.points.NumLines
	c := rng.Intn(k.k) * k.linesPerCenter
	b := newTx(0, 500)
	b.read(k.points.Line(base))
	// The first center's head line is read on every assignment (the
	// distance-loop starting point): the similarity floor (~0.38).
	b.read(k.centers.Line(0))
	b.readSpan(k.centers, c, 2)
	b.write(k.points.Line(base)) // upgrade on the point line
	return b.build()
}

// updateCenter (tx1): read-modify-write one center's accumulator lines.
// Threads have an affinity center (their points cluster), so consecutive
// updates usually hit the same lines (similarity ~0.67) while concurrent
// updates from threads sharing an affinity collide.
func (k *Kmeans) updateCenter(tid int, rng *workload.RNG) *workload.TxDesc {
	c := (tid % k.k) * k.linesPerCenter
	if rng.Float64() > 0.80 {
		c = rng.Intn(k.k) * k.linesPerCenter
	}
	b := newTx(1, 260)
	b.readSpan(k.centers, c, k.linesPerCenter)
	b.write(k.centers.Line(c))
	b.write(k.centers.Line(c + 1))
	return b.build()
}

// updateDelta (tx2): read-modify-write the global convergence counter and
// one center line — the tx1–tx2 conflict edge of Table 1.
func (k *Kmeans) updateDelta(rng *workload.RNG) *workload.TxDesc {
	c := rng.Zipf(k.k, 1.0) * k.linesPerCenter
	return newTx(2, 120).
		read(k.delta.Line(0)).
		read(k.centers.Line(c)).
		write(k.delta.Line(0)).
		build()
}
