// Package stamp contains synthetic reconstructions of the seven STAMP
// benchmarks the paper evaluates (Table 3): delaunay, genome, kmeans,
// vacation, intruder, ssca2 and labyrinth.
//
// A contention manager can only observe a benchmark through its
// transactions' read/write sets, conflict pattern, sizes and arrival
// rhythm, so each kernel here is engineered to reproduce the observable
// structure the paper reports for its namesake:
//
//   - the conflict-graph shape of Table 1 (which static transactions
//     conflict with which),
//   - the per-static-transaction similarity of Table 1 (how much of each
//     transaction's footprint repeats across executions),
//   - the baseline contention level of Table 4 (how often transactions
//     abort under a plain backoff manager), and
//   - the transaction-size regime (Ssca2's few-line transactions through
//     Labyrinth's hundred-line grid reservations).
//
// Every kernel is deterministic given its seed, splits a fixed total
// transaction count across threads, and mutates its generator state (queue
// cursors, table occupancy) only in OnCommit callbacks, so aborted
// attempts replay identical descriptors.
package stamp

import "repro/internal/workload"

// genFunc fabricates the i-th transaction of a thread.
type genFunc func(tid, i int, rng *workload.RNG) (pre int64, desc *workload.TxDesc)

// program is the shared thread-program implementation: count transactions
// from a generator.
type program struct {
	gen   genFunc
	tid   int
	rng   *workload.RNG
	count int
	i     int
}

func (p *program) Next() (int64, *workload.TxDesc, bool) {
	if p.i >= p.count {
		return 0, nil, false
	}
	pre, desc := p.gen(p.tid, p.i, p.rng)
	p.i++
	return pre, desc, true
}

// share splits total work across threads: thread tid of n gets the i-th
// slice, with remainders spread over the first threads.
func share(total, tid, n int) int {
	base := total / n
	if tid < total%n {
		base++
	}
	return base
}

// builder accumulates a transaction's accesses in read-then-write order.
type builder struct {
	desc *workload.TxDesc
	seen map[uint64]bool
}

func newTx(stx int, body int64) *builder {
	return &builder{
		desc: &workload.TxDesc{STx: stx, BodyCycles: body},
		seen: make(map[uint64]bool, 16),
	}
}

// read appends a read of addr (deduplicated).
func (b *builder) read(addr uint64) *builder {
	if !b.seen[addr] {
		b.seen[addr] = true
		b.desc.Accesses = append(b.desc.Accesses, workload.Access{Addr: addr})
	}
	return b
}

// write appends a write of addr. If the line was read earlier this is the
// upgrade that makes concurrent conflicting transactions deadlock-prone,
// exactly as read-modify-write critical sections behave on LogTM.
func (b *builder) write(addr uint64) *builder {
	b.desc.Accesses = append(b.desc.Accesses, workload.Access{Addr: addr, Write: true})
	b.seen[addr] = true
	return b
}

// readSpan reads n consecutive lines of a region starting at line base.
func (b *builder) readSpan(r workload.Region, base, n int) *builder {
	for j := 0; j < n; j++ {
		b.read(r.Line(base + j))
	}
	return b
}

// build finalizes the descriptor.
func (b *builder) build() *workload.TxDesc { return b.desc }

// onCommit attaches a side-effect callback.
func (b *builder) onCommit(fn func()) *builder {
	b.desc.OnCommit = fn
	return b
}

// All returns factories for the full STAMP suite at their default scales,
// in the paper's presentation order.
func All() []workload.Factory {
	return []workload.Factory{
		NewDelaunay(),
		NewGenome(),
		NewKmeans(),
		NewVacation(),
		NewIntruder(),
		NewSsca2(),
		NewLabyrinth(),
	}
}

// ByName returns the factory for a benchmark name, or false.
func ByName(name string) (workload.Factory, bool) {
	for _, f := range All() {
		if f.Name() == name {
			return f, true
		}
	}
	return workload.Factory{}, false
}
