package stamp

import "repro/internal/workload"

// Ssca2 models STAMP's SSCA2 graph kernel: massive numbers of tiny
// transactions appending edges to per-partition adjacency lists. The graph
// is partitioned so well that conflicts are nearly nonexistent (Table 4:
// 0.1% for every manager) — the benchmark exists to punish scheduling
// overhead, and plain Backoff wins it in the paper.
//
// Observable structure (Table 1): tiny transactions with high similarity
// (~0.9 for the append cursors that recur every execution) and almost no
// conflicts. Cross-partition edges are rare (0.3%) and are the only
// conflict source.
type Ssca2 struct {
	totalTxs int

	adj    workload.Region // adjacency storage, striped per thread
	meta   workload.Region // read-only graph metadata
	cursor workload.Region // per-thread append cursors
}

// NewSsca2 returns the ssca2 factory at its default scale.
func NewSsca2() workload.Factory {
	return workload.NewFactory("ssca2", 30000, func(total int) workload.Workload {
		sp := workload.NewSpace()
		return &Ssca2{
			totalTxs: total,
			adj:      sp.Alloc("adj", 16384),
			meta:     sp.Alloc("meta", 256),
			cursor:   sp.Alloc("cursor", 64),
		}
	})
}

// Name implements workload.Workload.
func (s *Ssca2) Name() string { return "ssca2" }

// NumStatic implements workload.Workload.
func (s *Ssca2) NumStatic() int { return 3 }

// NewProgram implements workload.Workload.
func (s *Ssca2) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	count := share(s.totalTxs, tid, nThreads)
	gen := func(tid, i int, rng *workload.RNG) (int64, *workload.TxDesc) {
		switch i % 3 {
		case 0:
			return 350, s.addEdge(tid, rng)
		case 1:
			return 300, s.addWeight(tid, rng)
		default:
			return 400, s.scanVertex(tid, rng)
		}
	}
	return &program{gen: gen, tid: tid, rng: workload.NewRNG(seed), count: count}
}

// stripeBase returns the thread's adjacency stripe origin; rare
// cross-partition edges target a neighbor's stripe.
func (s *Ssca2) stripeBase(tid int, rng *workload.RNG) int {
	stripe := s.adj.NumLines / 64
	owner := tid
	if rng.Float64() < 0.003 { // the rare cross-partition edge
		owner = rng.Intn(64)
	}
	return (owner % 64) * stripe
}

// addEdge (tx0): bump the thread's cursor and write one adjacency line —
// two lines, both recurring (cursor always, stripe head usually).
func (s *Ssca2) addEdge(tid int, rng *workload.RNG) *workload.TxDesc {
	base := s.stripeBase(tid, rng)
	cur := s.cursor.Line(tid % s.cursor.NumLines)
	return newTx(0, 60).
		read(cur).
		write(cur).
		write(s.adj.Line(base + zeroMostly(rng))). // appends cluster at the stripe head
		build()
}

// addWeight (tx1): update an edge weight near the stripe head — same
// recurring footprint shape as tx0.
func (s *Ssca2) addWeight(tid int, rng *workload.RNG) *workload.TxDesc {
	base := s.stripeBase(tid, rng)
	addr := s.adj.Line(base + zeroMostly(rng))
	return newTx(1, 50).
		read(s.cursor.Line(tid % s.cursor.NumLines)).
		read(addr).
		write(addr).
		build()
}

// scanVertex (tx2): read graph metadata and a few stripe lines, write one
// — a slightly larger, less repetitive footprint (similarity ~0.57).
func (s *Ssca2) scanVertex(tid int, rng *workload.RNG) *workload.TxDesc {
	base := s.stripeBase(tid, rng)
	b := newTx(2, 90)
	b.read(s.meta.Line(rng.Intn(s.meta.NumLines))) // fresh metadata line
	b.readSpan(s.adj, base, 2)                     // recurring stripe head
	b.write(s.adj.Line(base + 2 + rng.Intn(40)))   // fresh scan target
	return b.build()
}

// zeroMostly returns 0 with probability 0.85 and 1 otherwise — adjacency
// appends land on the stripe-head line almost every time.
func zeroMostly(rng *workload.RNG) int {
	if rng.Float64() < 0.85 {
		return 0
	}
	return 1
}
