package stamp

import (
	"testing"

	"repro/internal/workload"
)

func TestAllFactoriesDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range All() {
		if seen[f.Name()] {
			t.Fatalf("duplicate benchmark name %q", f.Name())
		}
		seen[f.Name()] = true
	}
	if len(seen) != 7 {
		t.Fatalf("expected the 7 STAMP benchmarks, got %d", len(seen))
	}
}

func TestByName(t *testing.T) {
	f, ok := ByName("intruder")
	if !ok || f.Name() != "intruder" {
		t.Fatal("ByName failed for intruder")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName returned a benchmark for a bogus name")
	}
}

// drain runs a program to completion, returning its transactions.
func drain(t *testing.T, p workload.Program) []*workload.TxDesc {
	t.Helper()
	var txs []*workload.TxDesc
	for {
		pre, desc, ok := p.Next()
		if !ok {
			break
		}
		if pre < 0 {
			t.Fatal("negative non-transactional cycles")
		}
		if desc == nil || len(desc.Accesses) == 0 {
			t.Fatal("transaction with no accesses")
		}
		txs = append(txs, desc)
		if len(txs) > 1_000_000 {
			t.Fatal("program does not terminate")
		}
	}
	return txs
}

func TestWorkShareSumsToTotal(t *testing.T) {
	for _, f := range All() {
		w := f.New(977) // awkward total to exercise remainder spreading
		total := 0
		for tid := 0; tid < 64; tid++ {
			total += len(drain(t, w.NewProgram(tid, 64, uint64(tid))))
		}
		if total != 977 {
			t.Errorf("%s: programs produced %d transactions, want 977", f.Name(), total)
		}
	}
}

func TestStaticIDsWithinRange(t *testing.T) {
	for _, f := range All() {
		w := f.New(500)
		for tid := 0; tid < 8; tid++ {
			for _, tx := range drain(t, w.NewProgram(tid, 8, 42)) {
				if tx.STx < 0 || tx.STx >= w.NumStatic() {
					t.Fatalf("%s: static ID %d out of range [0,%d)", f.Name(), tx.STx, w.NumStatic())
				}
			}
		}
	}
}

func TestAllStaticIDsExercised(t *testing.T) {
	for _, f := range All() {
		w := f.New(f.Txs)
		seen := make(map[int]bool)
		for tid := 0; tid < 4; tid++ {
			for _, tx := range drain(t, w.NewProgram(tid, 4, 1)) {
				seen[tx.STx] = true
			}
		}
		if len(seen) != w.NumStatic() {
			t.Errorf("%s: only %d of %d static transactions generated", f.Name(), len(seen), w.NumStatic())
		}
	}
}

func TestDeterministicPrograms(t *testing.T) {
	for _, f := range All() {
		mk := func() []*workload.TxDesc {
			w := f.New(300)
			return drain(t, w.NewProgram(3, 8, 99))
		}
		a, b := mk(), mk()
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ across identical runs", f.Name())
		}
		for i := range a {
			if a[i].STx != b[i].STx || len(a[i].Accesses) != len(b[i].Accesses) {
				t.Fatalf("%s: tx %d differs across identical runs", f.Name(), i)
			}
			for j := range a[i].Accesses {
				if a[i].Accesses[j] != b[i].Accesses[j] {
					t.Fatalf("%s: access %d/%d differs across identical runs", f.Name(), i, j)
				}
			}
		}
	}
}

func TestLineAddressesAligned(t *testing.T) {
	for _, f := range All() {
		w := f.New(200)
		for _, tx := range drain(t, w.NewProgram(0, 4, 7)) {
			for _, a := range tx.Accesses {
				if a.Addr%workload.LineBytes != 0 {
					t.Fatalf("%s: unaligned access %#x", f.Name(), a.Addr)
				}
			}
		}
	}
}

// Transaction size regimes: ssca2 tiny, labyrinth huge (Section 5's size
// story depends on these).
func TestTransactionSizeRegimes(t *testing.T) {
	meanLines := func(name string) float64 {
		f, _ := ByName(name)
		w := f.New(400)
		total, n := 0, 0
		for tid := 0; tid < 4; tid++ {
			for _, tx := range drain(t, w.NewProgram(tid, 4, 5)) {
				total += tx.Lines()
				n++
			}
		}
		return float64(total) / float64(n)
	}
	ssca2 := meanLines("ssca2")
	labyrinth := meanLines("labyrinth")
	if ssca2 > 6 {
		t.Errorf("ssca2 mean footprint = %.1f lines, want tiny", ssca2)
	}
	if labyrinth < 40 {
		t.Errorf("labyrinth mean footprint = %.1f lines, want huge", labyrinth)
	}
	if labyrinth < 8*ssca2 {
		t.Errorf("labyrinth (%.1f) should dwarf ssca2 (%.1f)", labyrinth, ssca2)
	}
}

// The read-then-upgrade shape: transactions that write a line they
// previously read must exist (the deadlock-prone pattern driving aborts).
func TestUpgradePatternsPresent(t *testing.T) {
	for _, name := range []string{"delaunay", "genome", "intruder", "vacation", "labyrinth"} {
		f, _ := ByName(name)
		w := f.New(400)
		upgrades := 0
		for _, tx := range drain(t, w.NewProgram(0, 4, 11)) {
			read := map[uint64]bool{}
			for _, a := range tx.Accesses {
				if a.Write && read[a.Addr] {
					upgrades++
					break
				}
				if !a.Write {
					read[a.Addr] = true
				}
			}
		}
		if upgrades == 0 {
			t.Errorf("%s: no read-then-upgrade transactions", name)
		}
	}
}

func TestOnCommitAdvancesQueueCursors(t *testing.T) {
	f, _ := ByName("intruder")
	w := f.New(100).(*Intruder)
	p := w.NewProgram(0, 1, 3)
	var deq *workload.TxDesc
	for {
		_, tx, ok := p.Next()
		if !ok {
			break
		}
		if tx.STx == 0 {
			deq = tx
			break
		}
	}
	if deq == nil || deq.OnCommit == nil {
		t.Fatal("dequeue transaction without OnCommit side effect")
	}
	before := w.head
	deq.OnCommit()
	if w.head != before+1 {
		t.Fatal("OnCommit did not advance the queue head")
	}
}
