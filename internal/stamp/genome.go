package stamp

import "repro/internal/workload"

// Genome models STAMP's genome assembler: a segment-deduplication phase
// over a shared hash set, a matching phase that is read-mostly, and two
// chain-building phases that contend on a small chain-header structure.
//
// Observable structure targeted (Table 1): four static transactions;
// tx0 conflicts only with itself (hash-bucket collisions), tx1 is
// effectively conflict-free, tx2 conflicts with tx2 and tx3, tx3 with tx2.
// Similarities ~0.12 / 0.25 / 0.65 / 0.74: the dedup inserts land on a new
// bucket each time (low similarity), while the chain phases keep
// re-touching the chain header block (high similarity). Under plain
// backoff the dedup phase's bucket collisions at 64 threads produce the
// ~60% contention of Table 4; a scheduler that serializes the right pairs
// removes almost all of it.
type Genome struct {
	totalTxs int

	buckets  workload.Region // hash set buckets (dedup phase)
	segments workload.Region // read-only segment pool
	chainHdr workload.Region // hot chain-header block
	chain    workload.Region // chain cells
	scratch  workload.Region // per-thread private results

	nBuckets   int
	hotBuckets int // a small popular subset, the source of collisions
}

// NewGenome returns the genome factory at its default scale.
func NewGenome() workload.Factory {
	return workload.NewFactory("genome", 20000, func(total int) workload.Workload {
		sp := workload.NewSpace()
		return &Genome{
			totalTxs:   total,
			buckets:    sp.Alloc("buckets", 512),
			segments:   sp.Alloc("segments", 8192),
			chainHdr:   sp.Alloc("chainHdr", 12),
			chain:      sp.Alloc("chain", 2048),
			scratch:    sp.Alloc("scratch", 4096),
			nBuckets:   512,
			hotBuckets: 16, // width of the popular-segment window
		}
	})
}

// Name implements workload.Workload.
func (g *Genome) Name() string { return "genome" }

// NumStatic implements workload.Workload.
func (g *Genome) NumStatic() int { return 4 }

// NewProgram implements workload.Workload. Phases run in sequence within
// each thread: 40% dedup inserts, 25% matching, 20% chain links, 15% chain
// merges — roughly genome's phase weights.
func (g *Genome) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	count := share(g.totalTxs, tid, nThreads)
	n0 := count * 40 / 100
	n1 := count * 25 / 100
	n2 := count * 20 / 100
	gen := func(tid, i int, rng *workload.RNG) (int64, *workload.TxDesc) {
		switch {
		case i < n0:
			return 1500, g.dedupInsert(tid, i, rng)
		case i < n0+n1:
			return 1500, g.match(tid, rng)
		case i < n0+n1+n2:
			return 1000, g.chainLink(tid, rng)
		default:
			return 1000, g.chainMerge(tid, rng)
		}
	}
	return &program{gen: gen, tid: tid, rng: workload.NewRNG(seed), count: count}
}

// dedupInsert (tx0): probe the hash bucket of a segment and claim it.
// Segments arrive with heavy duplication and in roughly input order, so at
// any instant the popular segments form a sliding window that several
// threads hit simultaneously: concurrent inserts collide often (Table 4's
// high backoff contention), but the window keeps moving, so consecutive
// inserts by one thread share almost nothing (similarity ~0.1) and the
// conflicts are TRANSIENT — the case similarity-guided decay exists for.
func (g *Genome) dedupInsert(tid, i int, rng *workload.RNG) *workload.TxDesc {
	window := (i / 8 * 16) % g.nBuckets
	bucket := (window + rng.Zipf(g.hotBuckets, 3.0)) % g.nBuckets
	seg := rng.Intn(g.segments.NumLines - 2)
	return newTx(0, 520).
		read(g.buckets.Line(bucket)).
		readSpan(g.segments, seg, 2).
		write(g.buckets.Line(bucket)). // upgrade: claim the bucket
		build()
}

// match (tx1): scan segments against a private scratch area — read-mostly,
// conflict-free, modest similarity from re-reading the thread's scratch.
func (g *Genome) match(tid int, rng *workload.RNG) *workload.TxDesc {
	b := newTx(1, 420)
	b.readSpan(g.segments, rng.Intn(g.segments.NumLines-8), 6)
	// One line of the thread's scratch recurs (similarity ~0.2).
	own := tid * 64
	b.read(g.scratch.Line(own))
	b.write(g.scratch.Line(own + 1 + rng.Intn(40)))
	return b.build()
}

// chainLink (tx2): extend a chain under the shared chain header. The
// header block recurs every execution (high similarity) and is also
// touched by chainMerge, giving the tx2–tx3 conflict edge.
func (g *Genome) chainLink(tid int, rng *workload.RNG) *workload.TxDesc {
	// Header lines 8+ are read-only metadata (the dedup phase reads line
	// 11); chain transactions only write the mutable prefix.
	hdr := rng.Intn(3)
	cell := rng.Intn(g.chain.NumLines)
	return newTx(2, 300).
		readSpan(g.chainHdr, 0, 3). // hot header prefix
		read(g.chain.Line(cell)).
		write(g.chainHdr.Line(hdr)). // upgrade on a header line
		write(g.chain.Line(cell)).
		build()
}

// chainMerge (tx3): merge two chains — a larger header footprint with two
// cell writes; highest similarity of the benchmark.
func (g *Genome) chainMerge(tid int, rng *workload.RNG) *workload.TxDesc {
	cell := rng.Intn(g.chain.NumLines - 4)
	return newTx(3, 380).
		readSpan(g.chainHdr, 0, 4).
		readSpan(g.chain, cell, 2).
		write(g.chainHdr.Line(rng.Intn(3))).
		write(g.chain.Line(cell)).
		build()
}
