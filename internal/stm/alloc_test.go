package stm

import (
	"testing"

	"repro/internal/core"
)

// The runtime halves of the package's allocation discipline (the static
// half is bfgtsvet's allocfree analyzer over the annotated hot paths).
// All three gates warm the pooled per-worker state first: the pools are
// explicitly allowed to allocate while growing to steady state.

// TestReadOnlyPathAllocFree pins the conflict-free read path at zero
// allocations per transaction: pooled Tx, entry-slice read set, no maps.
func TestReadOnlyPathAllocFree(t *testing.T) {
	sys := NewSystem(Config{Workers: 1, StaticTxs: 1, Scheduler: SchedBFGTS})
	vars := make([]*TVar[int], 8)
	for i := range vars {
		vars[i] = NewTVar(i)
	}
	body := func(tx *Tx) error {
		n := 0
		for _, v := range vars {
			n += v.Read(tx)
		}
		if n < 0 {
			t.Fatal("impossible sum")
		}
		return nil
	}
	run := func() {
		if err := sys.Atomic(0, 0, body); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm pooled capacities
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("read-only transaction allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAbortRetryPathAllocFree pins the begin→abort→retry path: a
// read-only transaction deterministically doomed on its first attempt by
// a nested conflicting commit must add nothing to the conflicter's own
// publish cost. Expected allocations per run: exactly 1 — the boxed value
// cell published by the nested bump (values stay under 256 so interface
// boxing hits the runtime's static cache). The aborted attempt, the
// txAbort unwind (a zero-size panic value), OnAbort's confidence update,
// backoff, and the retry contribute zero.
func TestAbortRetryPathAllocFree(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedBackoff, SchedATS, SchedBFGTS} {
		t.Run(kind.String(), func(t *testing.T) {
			sys := NewSystem(Config{Workers: 2, StaticTxs: 2, Scheduler: kind})
			shared := NewTVar(0)
			bump := func() {
				err := sys.Atomic(1, 1, func(tx *Tx) error {
					shared.Write(tx, (shared.Read(tx)+1)&1)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			attempts := 0
			run := func() {
				attempts = 0
				err := sys.Atomic(0, 0, func(tx *Tx) error {
					attempts++
					got := shared.Read(tx)
					if attempts == 1 {
						bump() // nested same-goroutine commit dooms this attempt
						if again := shared.Read(tx); again != got {
							t.Fatal("doomed re-read returned inconsistent data")
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if attempts < 2 {
					t.Fatal("conflict injection did not force a retry")
				}
			}
			for i := 0; i < 30; i++ {
				run() // warm pools, goroutine timer, signature batching
			}
			if allocs := testing.AllocsPerRun(100, run); allocs != 1 {
				t.Fatalf("abort/retry cycle allocates %.1f objects/op, want exactly 1 (the bump's published cell)", allocs)
			}
		})
	}
}

// TestCommitPathAllocs pins the write-commit path at exactly one
// allocation per written TVar: the published immutable value cell. The
// locked/order scratch of the old commit path (fresh slices plus a
// sort.Slice closure per commit) is gone.
func TestCommitPathAllocs(t *testing.T) {
	sys := NewSystem(Config{Workers: 1, StaticTxs: 1, Scheduler: SchedBFGTS})
	vars := make([]*TVar[int], 4)
	for i := range vars {
		vars[i] = NewTVar(0)
	}
	run := func() {
		err := sys.Atomic(0, 0, func(tx *Tx) error {
			for _, v := range vars {
				v.Write(tx, (v.Read(tx)+1)&0x7f)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(100, run); allocs != float64(len(vars)) {
		t.Fatalf("commit of %d writes allocates %.1f objects/op, want exactly %d (one published cell per TVar)",
			len(vars), allocs, len(vars))
	}
}

// TestPredictPathAllocFree pins the BFGTS begin-time prediction at zero
// allocations per call in both modes: the Bloofi directory probe (suspect
// set into a pooled buffer, tree descent on a pooled cursor) and the
// linear fallback. Slot churn through the directory observer is included —
// the live insert/remove-with-repair path must be as silent as the probe.
func TestPredictPathAllocFree(t *testing.T) {
	for _, linear := range []bool{false, true} {
		name := "bloofi"
		if linear {
			name = "linear"
		}
		t.Run(name, func(t *testing.T) {
			sys := NewSystem(Config{Workers: 8, StaticTxs: 4, Scheduler: SchedBFGTS, LinearPredict: linear})
			m := sys.mgr.(*bfgtsManager)
			// Learned confidence so predictions carry a non-empty suspect
			// set, and a few running enemies for the probe to find.
			m.conf.Add(0, 1, 1.0)
			m.conf.Add(0, 2, 1.0)
			run := func() {
				sys.setRunning(3, 1)
				sys.setRunning(5, 2)
				sys.setRunning(6, 3)
				if enemy := m.predict(0, 0); enemy < 0 {
					t.Fatal("saturated confidence predicted no enemy")
				}
				sys.setRunning(3, core.NoTx)
				sys.setRunning(5, core.NoTx)
				sys.setRunning(6, core.NoTx)
				if m.predict(0, 0) >= 0 {
					t.Fatal("empty machine predicted an enemy")
				}
			}
			run() // warm pooled buffers
			if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
				t.Fatalf("predict cycle allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}
