package stm

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// This file is the contention-management layer of the STM: the same three
// hooks the simulator's managers implement (begin, abort, commit), executed
// in real time on goroutines.

// pressureScale is the fixed-point unit for atomically stored ATS
// conflict-pressure values.
const pressureScale = 1 << 16

// schedRand is the jitter source for backoff windows.
var schedRand = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(0x6b66677473))}

func jitter(n int64) time.Duration {
	schedRand.Lock()
	v := schedRand.r.Int63n(n)
	schedRand.Unlock()
	return time.Duration(v)
}

// scheduleBegin blocks until the scheduler allows the attempt to start.
func (s *System) scheduleBegin(worker, stx, dtx, attempt int) {
	switch s.cfg.Scheduler {
	case SchedBackoff:
		// Nothing at begin time.
	case SchedATS:
		s.atsBegin(stx)
	case SchedBFGTS:
		s.bfgtsBegin(worker, stx, dtx)
	}
}

// atsBegin throttles by sleeping while the static transaction's pressure
// exceeds the threshold and another high-pressure transaction is running —
// a queue-free rendering of the central wait queue that preserves its
// serialize-under-pressure behavior.
func (s *System) atsBegin(stx int) {
	for {
		p := float64(s.pressure[stx].Load()) / pressureScale
		if p <= s.cfg.PressureThreshold {
			return
		}
		busy := false
		for w := range s.running {
			if d := s.running[w].Load(); d != int64(core.NoTx) {
				other := int(d) % s.cfg.StaticTxs
				if float64(s.pressure[other].Load())/pressureScale > s.cfg.PressureThreshold {
					busy = true
					break
				}
			}
		}
		if !busy {
			return
		}
		time.Sleep(2*time.Microsecond + jitter(int64(2*time.Microsecond)))
	}
}

// bfgtsBegin runs the paper's begin-time prediction (Example 1 in
// software) and suspend policy (Example 2) against the worker table.
func (s *System) bfgtsBegin(worker, stx, dtx int) {
	for {
		table := make([]int, len(s.running))
		for w := range s.running {
			table[w] = int(s.running[w].Load())
		}
		s.mu.Lock()
		pred := s.rt.PredictSW(stx, table, worker)
		var dec core.SuspendDecision
		if pred.Conflict {
			dec = s.rt.SuspendTx(dtx, pred.WaitDTx)
		}
		s.mu.Unlock()
		if !pred.Conflict {
			return
		}
		if dec.Yield {
			// The predicted enemy is historically large: give up the OS
			// slice and re-predict when we run again.
			time.Sleep(5*time.Microsecond + jitter(int64(5*time.Microsecond)))
			continue
		}
		// Small enemy: spin-stall until that dynamic transaction ends,
		// then re-execute the begin (stallOnTx in Example 2).
		enemyWorker := pred.WaitDTx / s.cfg.StaticTxs
		for s.running[enemyWorker].Load() == int64(pred.WaitDTx) {
			runtime.Gosched()
		}
	}
}

// onAbort strengthens conflict confidence (Example 3) and backs off.
func (s *System) onAbort(tx *Tx, attempt int) {
	switch s.cfg.Scheduler {
	case SchedATS:
		s.bumpPressure(tx.stx, true)
		if enemy := tx.enemy; enemy >= 0 {
			s.bumpPressure(int(enemy)%s.cfg.StaticTxs, true)
		}
	case SchedBFGTS:
		if enemy := tx.enemy; enemy >= 0 {
			s.mu.Lock()
			s.rt.TxConflict(tx.dtx, int(enemy))
			s.mu.Unlock()
		}
	}
	shift := attempt
	if shift > 10 {
		shift = 10
	}
	window := int64(200) << shift // nanoseconds
	time.Sleep(time.Duration(window)/2 + jitter(window))
}

// onCommit performs commit-time bookkeeping (Example 4 for BFGTS).
func (s *System) onCommit(tx *Tx) {
	switch s.cfg.Scheduler {
	case SchedATS:
		s.bumpPressure(tx.stx, false)
	case SchedBFGTS:
		s.mu.Lock()
		// The lines slice may contain duplicates (a TVar both read and
		// written appears twice); CommitTx signatures tolerate that, and
		// footprint() supplies the distinct count.
		lines, writes := s.lineBuf[:0], s.writeBuf[:0]
		for v := range tx.reads {
			lines = append(lines, tvarKey(v))
		}
		for v := range tx.writes {
			k := tvarKey(v)
			lines = append(lines, k)
			writes = append(writes, k)
		}
		s.rt.CommitTx(tx.dtx, lines, writes, tx.footprint())
		s.lineBuf, s.writeBuf = lines, writes
		s.mu.Unlock()
	}
}

// bumpPressure folds a conflict (up) or commit (down) event into the ATS
// moving average with alpha 0.7.
func (s *System) bumpPressure(stx int, conflict bool) {
	for {
		old := s.pressure[stx].Load()
		target := old * 7 / 10
		if conflict {
			target += pressureScale * 3 / 10
		}
		if s.pressure[stx].CompareAndSwap(old, target) {
			return
		}
	}
}

// footprint counts distinct TVars touched.
func (t *Tx) footprint() int {
	n := len(t.writes)
	for v := range t.reads {
		if _, w := t.writes[v]; !w {
			n++
		}
	}
	return n
}

// Runtime exposes the BFGTS state for inspection (similarity, confidence).
func (s *System) Runtime() *core.Runtime { return s.rt }
