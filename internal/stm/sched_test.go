package stm

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestBFGTSBeginEscapeWatchdog pins the starvation hardening of the BFGTS
// begin loop: with the confidence table saturated and an "enemy" parked in
// the CPU table forever (its worker slot never clears, as happens when a
// foreign goroutine stalls mid-transaction), OnBegin must not spin-stall
// indefinitely — after beginEscapeLimit predicted-conflict rounds it
// proceeds optimistically and counts an escape.
func TestBFGTSBeginEscapeWatchdog(t *testing.T) {
	sys := NewSystem(Config{Workers: 2, StaticTxs: 1, Scheduler: SchedBFGTS})
	m := sys.mgr.(*bfgtsManager)
	// Saturate confidence so every predict() round reports a conflict, and
	// park worker 1's dtx in the CPU table with no transaction to finish.
	// Similarity 1.0 is the dangerous corner: the simulator's decay
	// DecayVal·(1−sim) would be zero, so only the decay floor and the
	// escape watchdog stand between this loop and livelock.
	m.conf.Add(0, 0, 1.0)
	m.stats[0].simBits.Store(math.Float64bits(1))
	m.stats[1].simBits.Store(math.Float64bits(1))
	// Through setRunning so the manager's Bloofi directory indexes the
	// parked enemy, exactly as a live transaction would.
	sys.setRunning(1, 1)

	done := make(chan struct{})
	go func() {
		m.OnBegin(0, 0, 0, 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("bfgts begin loop livelocked against a parked enemy")
	}
	if sys.met.beginEscapes.Load() == 0 {
		t.Fatal("watchdog escape not counted")
	}
	if sys.met.predicted.Load() == 0 {
		t.Fatal("no conflicts predicted despite saturated confidence")
	}
}

// TestManagerStressInvariant hammers all three managers with a mixed
// read/transfer workload under -race: value is conserved across randomized
// transfers, every manager commits every operation exactly once, and the
// metrics snapshot is coherent.
func TestManagerStressInvariant(t *testing.T) {
	const (
		workers = 8
		vars    = 32
		opsEach = 400
		total   = vars * 100
	)
	for _, kind := range []SchedulerKind{SchedBackoff, SchedATS, SchedBFGTS} {
		t.Run(kind.String(), func(t *testing.T) {
			sys := NewSystem(Config{Workers: workers, StaticTxs: 2, Scheduler: kind})
			accts := make([]*TVar[int], vars)
			for i := range accts {
				accts[i] = NewTVar(100)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 1))
					for i := 0; i < opsEach; i++ {
						if i%4 == 0 {
							// Audit: read-only sweep, stx 1.
							err := sys.Atomic(w, 1, func(tx *Tx) error {
								sum := 0
								for _, a := range accts {
									sum += a.Read(tx)
								}
								if sum != total {
									t.Errorf("isolation broken: audit saw %d, want %d", sum, total)
								}
								return nil
							})
							if err != nil {
								t.Error(err)
							}
							continue
						}
						from, to := rng.Intn(vars), rng.Intn(vars)
						amt := rng.Intn(5)
						err := sys.Atomic(w, 0, func(tx *Tx) error {
							f := accts[from].Read(tx)
							accts[from].Write(tx, f-amt)
							accts[to].Write(tx, accts[to].Read(tx)+amt)
							return nil
						})
						if err != nil {
							t.Error(err)
						}
					}
				}(w)
			}
			wg.Wait()
			sum := 0
			for _, a := range accts {
				sum += a.Peek()
			}
			if sum != total {
				t.Fatalf("value not conserved: %d, want %d", sum, total)
			}
			if got := sys.Commits(); got != workers*opsEach {
				t.Fatalf("commits = %d, want %d", got, workers*opsEach)
			}
			reg := metrics.New()
			sys.SnapshotMetrics(reg)
			snap := reg.Snapshot()
			if snap == nil || len(snap.Keys()) == 0 {
				t.Fatal("metrics snapshot is empty")
			}
			if reg.Counter("stm.commits").Value() != int64(workers*opsEach) {
				t.Fatal("snapshot commits disagree with System.Commits")
			}
		})
	}
}

// TestCustomManagerHook proves the ContentionManager seam: a Config-
// injected manager observes every hook with validated arguments.
func TestCustomManagerHook(t *testing.T) {
	rec := &recordingManager{}
	sys := NewSystem(Config{
		Workers: 2, StaticTxs: 2,
		NewManager: func(s *System) ContentionManager { rec.sys = s; return rec },
	})
	v := NewTVar(7)
	if err := sys.Atomic(1, 1, func(tx *Tx) error {
		v.Write(tx, v.Read(tx)*2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rec.sys != sys {
		t.Fatal("factory did not receive the System under construction")
	}
	if rec.begins != 1 || rec.commits != 1 {
		t.Fatalf("hooks saw begins=%d commits=%d, want 1/1", rec.begins, rec.commits)
	}
	if rec.lastDTx != 1*2+1 {
		t.Fatalf("OnCommit dtx = %d, want 3", rec.lastDTx)
	}
	if rec.lastSize != 1 {
		t.Fatalf("OnCommit size = %d, want 1 (one distinct line)", rec.lastSize)
	}
	if sys.Manager() != ContentionManager(rec) {
		t.Fatal("Manager() does not expose the injected manager")
	}
}

type recordingManager struct {
	sys      *System
	begins   int
	commits  int
	lastDTx  int
	lastSize int
}

func (r *recordingManager) Name() string                             { return "recording" }
func (r *recordingManager) OnBegin(worker, stx, dtx, attempt int)    { r.begins++ }
func (r *recordingManager) OnAbort(worker, stx, dtx, e, attempt int) {}
func (r *recordingManager) OnCommit(worker, stx, dtx int, lines, writes []uint64, size int) {
	r.commits++
	r.lastDTx = dtx
	r.lastSize = size
}
