package stm

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// atsManager is Adaptive Transaction Scheduling (Yoo & Lee, SPAA 2008)
// adapted to the real STM: each dynamic transaction carries a contention
// intensity EWMA ("pressure") bumped on abort and decayed on commit; a
// beginning transaction whose pressure exceeds the threshold serializes —
// here, by sleeping until the pressured peers drain — instead of piling
// optimistically onto a contended phase.
//
// Pressure is stored as 16.16 fixed point in per-dtx atomic cells updated
// by compare-and-swap, so begin-time checks are plain atomic loads.
type atsManager struct {
	sys       *System
	threshold int64 // fixed-point pressure threshold
	pressure  []atomic.Int64
}

// pressureScale is 1.0 of pressure in fixed point.
const pressureScale = 1 << 16

// atsAlpha is the EWMA weight of history in a pressure update.
const atsAlpha = 0.7

func newATSManager(s *System) *atsManager {
	return &atsManager{
		sys:       s,
		threshold: int64(s.cfg.PressureThreshold * pressureScale),
		pressure:  make([]atomic.Int64, s.cfg.Workers*s.cfg.StaticTxs),
	}
}

func (m *atsManager) Name() string { return "ATS" }

// OnBegin throttles: while this transaction's own pressure is past the
// threshold and some other running transaction is also pressured, the
// worker sleeps — the ATS serialization queue rendered as backoff.
//
//bfgts:allocfree
func (m *atsManager) OnBegin(worker, stx, dtx, attempt int) {
	w := &m.sys.workers[worker]
	for m.pressure[dtx].Load() > m.threshold && m.pressuredPeer(worker) {
		m.sys.met.throttleWaits.Add(1)
		time.Sleep(time.Microsecond + w.jitter(int64(2*time.Microsecond)))
	}
}

// pressuredPeer reports whether any other worker is running a transaction
// whose pressure exceeds the threshold.
//
//bfgts:allocfree
func (m *atsManager) pressuredPeer(worker int) bool {
	for cpu := range m.sys.running {
		if cpu == worker {
			continue
		}
		d := m.sys.running[cpu].Load()
		if d == int64(core.NoTx) {
			continue
		}
		if m.pressure[d].Load() > m.threshold {
			return true
		}
	}
	return false
}

//bfgts:allocfree
func (m *atsManager) OnAbort(worker, stx, dtx, enemyDTx, attempt int) {
	m.bump(dtx, 1)
	if enemyDTx != core.NoTx {
		m.bump(enemyDTx, 1)
	}
	m.sys.backoff(worker, attempt)
}

//bfgts:allocfree
func (m *atsManager) OnCommit(worker, stx, dtx int, lines, writes []uint64, size int) {
	m.bump(dtx, 0)
}

// bump folds an abort (event=1) or commit (event=0) into the pressure
// EWMA: p ← α·p + (1−α)·event, CAS-retried so concurrent enemy bumps are
// not lost.
//
//bfgts:allocfree
func (m *atsManager) bump(dtx int, event int64) {
	cell := &m.pressure[dtx]
	for {
		old := cell.Load()
		next := int64(atsAlpha*float64(old)) + int64((1-atsAlpha)*float64(event*pressureScale))
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

// MeanPressure implements PressureReporter.
func (m *atsManager) MeanPressure() float64 {
	if len(m.pressure) == 0 {
		return 0
	}
	var sum float64
	for i := range m.pressure {
		sum += float64(m.pressure[i].Load())
	}
	return sum / pressureScale / float64(len(m.pressure))
}
