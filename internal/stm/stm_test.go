package stm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newTestSystem(sched SchedulerKind, workers int) *System {
	return NewSystem(Config{Workers: workers, StaticTxs: 2, Scheduler: sched})
}

func TestReadWriteRoundTrip(t *testing.T) {
	sys := newTestSystem(SchedBackoff, 1)
	v := NewTVar(41)
	err := sys.Atomic(0, 0, func(tx *Tx) error {
		v.Write(tx, v.Read(tx)+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != 42 {
		t.Fatalf("value = %d, want 42", got)
	}
	if sys.Commits() != 1 {
		t.Fatalf("commits = %d, want 1", sys.Commits())
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	sys := newTestSystem(SchedBackoff, 1)
	v := NewTVar("a")
	sys.Atomic(0, 0, func(tx *Tx) error {
		v.Write(tx, "b")
		if got := v.Read(tx); got != "b" {
			t.Fatalf("read-own-write = %q, want b", got)
		}
		return nil
	})
}

func TestErrorAbortsWithoutSideEffects(t *testing.T) {
	sys := newTestSystem(SchedBackoff, 1)
	v := NewTVar(1)
	sentinel := errors.New("nope")
	err := sys.Atomic(0, 0, func(tx *Tx) error {
		v.Write(tx, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want sentinel", err)
	}
	if v.Peek() != 1 {
		t.Fatal("failed transaction published a write")
	}
}

func TestUserPanicPropagates(t *testing.T) {
	sys := newTestSystem(SchedBackoff, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("user panic swallowed")
		}
	}()
	sys.Atomic(0, 0, func(tx *Tx) error { panic("boom") })
}

func TestTVarTypes(t *testing.T) {
	sys := newTestSystem(SchedBackoff, 1)
	type pair struct{ a, b int }
	v := NewTVar(pair{1, 2})
	s := NewTVar([]int{1, 2, 3})
	sys.Atomic(0, 0, func(tx *Tx) error {
		p := v.Read(tx)
		p.a = 10
		v.Write(tx, p)
		s.Write(tx, append(s.Read(tx), 4))
		return nil
	})
	if v.Peek().a != 10 || len(s.Peek()) != 4 {
		t.Fatal("struct/slice TVars broken")
	}
}

// counters: every scheduler must produce exact counts under heavy
// concurrent increments of one hot TVar.
func TestConcurrentCounterExact(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedBackoff, SchedATS, SchedBFGTS} {
		const workers = 8
		const perWorker = 200
		sys := newTestSystem(kind, workers)
		counter := NewTVar(0)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					sys.Atomic(w, 0, func(tx *Tx) error {
						counter.Write(tx, counter.Read(tx)+1)
						return nil
					})
				}
			}(w)
		}
		wg.Wait()
		if got := counter.Peek(); got != workers*perWorker {
			t.Fatalf("scheduler %v: counter = %d, want %d (lost updates)", kind, got, workers*perWorker)
		}
		if sys.Commits() != workers*perWorker {
			t.Fatalf("scheduler %v: commits = %d", kind, sys.Commits())
		}
	}
}

// Bank invariant: total money conserved under random transfers.
func TestBankTransferInvariant(t *testing.T) {
	const workers = 8
	const accounts = 16
	const perWorker = 300
	sys := NewSystem(Config{Workers: workers, StaticTxs: 1, Scheduler: SchedBFGTS})
	accts := make([]*TVar[int], accounts)
	for i := range accts {
		accts[i] = NewTVar(1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < perWorker; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				sys.Atomic(w, 0, func(tx *Tx) error {
					bf := accts[from].Read(tx)
					bt := accts[to].Read(tx)
					accts[from].Write(tx, bf-10)
					accts[to].Write(tx, bt+10)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, a := range accts {
		total += a.Peek()
	}
	if total != accounts*1000 {
		t.Fatalf("money not conserved: total = %d, want %d", total, accounts*1000)
	}
}

// Isolation: a transaction never observes another's partial writes (two
// TVars always updated together must always be read equal).
func TestIsolationPairInvariant(t *testing.T) {
	const workers = 6
	sys := NewSystem(Config{Workers: workers, StaticTxs: 2, Scheduler: SchedBackoff})
	x, y := NewTVar(0), NewTVar(0)
	stop := make(chan struct{})
	var bad sync.Once
	violated := false
	var wg sync.WaitGroup
	for w := 0; w < workers/2; w++ {
		wg.Add(2)
		go func(w int) { // writers keep x == y
			defer wg.Done()
			for i := 0; i < 400; i++ {
				sys.Atomic(w, 0, func(tx *Tx) error {
					v := x.Read(tx) + 1
					x.Write(tx, v)
					y.Write(tx, v)
					return nil
				})
			}
		}(w)
		go func(w int) { // readers check the invariant
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sys.Atomic(w, 1, func(tx *Tx) error {
					if x.Read(tx) != y.Read(tx) {
						bad.Do(func() { violated = true })
					}
					return nil
				})
			}
		}(workers/2 + w)
	}
	// Wait for the writers to finish their quota, then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for sys.Commits() < int64(workers/2)*400 {
	}
	close(stop)
	<-done
	if violated {
		t.Fatal("reader observed torn write (x != y)")
	}
}

func TestAbortsAreCounted(t *testing.T) {
	const workers = 8
	sys := newTestSystem(SchedBackoff, workers)
	hot := NewTVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sys.Atomic(w, 0, func(tx *Tx) error {
					hot.Write(tx, hot.Read(tx)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	if sys.Aborts() == 0 {
		t.Skip("no conflicts observed (machine too serial); nothing to assert")
	}
}

func TestBFGTSRuntimeLearns(t *testing.T) {
	const workers = 8
	sys := newTestSystem(SchedBFGTS, workers)
	hot := NewTVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				sys.Atomic(w, 0, func(tx *Tx) error {
					hot.Write(tx, hot.Read(tx)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	if got := hot.Peek(); got != workers*300 {
		t.Fatalf("counter = %d, want %d", got, workers*300)
	}
	// The manager should have accumulated statistics for the hot block.
	if sys.AvgSize(0) <= 0 {
		t.Fatal("BFGTS manager recorded no transaction sizes")
	}
}

func TestWorkerRangePanics(t *testing.T) {
	sys := newTestSystem(SchedBackoff, 2)
	for _, fn := range []func(){
		func() { sys.Atomic(-1, 0, func(*Tx) error { return nil }) },
		func() { sys.Atomic(2, 0, func(*Tx) error { return nil }) },
		func() { sys.Atomic(0, 7, func(*Tx) error { return nil }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range worker/stx did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: sequential transactions compose like plain assignments.
func TestPropertySequentialSemantics(t *testing.T) {
	prop := func(vals []int16) bool {
		sys := newTestSystem(SchedBackoff, 1)
		v := NewTVar(0)
		sum := 0
		for _, x := range vals {
			sum += int(x)
			x := int(x)
			sys.Atomic(0, 0, func(tx *Tx) error {
				v.Write(tx, v.Read(tx)+x)
				return nil
			})
		}
		return v.Peek() == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
