package stm

// backoffManager is the baseline contention manager: no begin-time gating,
// no learning — every abort waits out a randomized exponential window.
// This is the STM equivalent of internal/sched's backoff baseline and the
// floor the guided managers are measured against.
type backoffManager struct {
	sys *System
}

func (m *backoffManager) Name() string { return "Backoff" }

//bfgts:allocfree
func (m *backoffManager) OnBegin(worker, stx, dtx, attempt int) {}

//bfgts:allocfree
func (m *backoffManager) OnAbort(worker, stx, dtx, enemyDTx, attempt int) {
	m.sys.backoff(worker, attempt)
}

//bfgts:allocfree
func (m *backoffManager) OnCommit(worker, stx, dtx int, lines, writes []uint64, size int) {
}
