package stm

import (
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/bloofi"
	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/stats"
)

// bfgtsManager is the paper's Bloom-filter-guided scheduler as a
// production contention manager: begin-time prediction against a conflict
// confidence table, suspend decisions sized by transaction history, and
// commit-time signature comparison feeding the confidence loop — all on
// live goroutines with no global lock anywhere on the hot path.
//
// The sharing discipline, per dtx slot:
//
//   - confidence lives in a core.SharedConf (atomic fixed-point cells), so
//     the begin-time scan is one atomic load per running transaction;
//   - avgSize and sim are float bits in atomic words: written only by the
//     slot's owner at commit, read by anyone deciding against it;
//   - commits/sinceSim/hasHistory/waitingOn are plain fields touched only
//     on the owning worker's goroutine (begin/abort/commit all run there);
//   - signatures are double-buffered bloom.AtomicFilter pairs behind a
//     published index: the owner rebuilds the spare pair at commit, then
//     flips. A concurrent validator probing the published pair may race a
//     later rebuild into torn words — race-free by construction and
//     acceptable, because every consumer is a scheduling heuristic.
type bfgtsManager struct {
	sys  *System
	conf *core.SharedConf

	stats []bfgtsStat
	sigs  []sigSlot

	// dir is the Bloofi directory over the running array (nil under
	// Config.LinearPredict): each occupied worker slot is indexed under
	// the folded static ID of the transaction running there, maintained
	// through the System's runningObserver hook so it can never go stale.
	// probes holds one cursor + scratch per worker (owner-only).
	dir    *bloofi.AtomicTree
	probes []bfgtsWorkerProbe

	confThreshold float64
	incVal        float64
	decayVal      float64
	smallTxLines  float64
	simInterval   int
}

// bfgtsWorkerProbe is one worker's begin-time probe state: a lock-free
// directory cursor, the reusable suspect-key buffer (capacity = the
// confidence table's axis), and plain owner-only histograms folded into
// a Registry by SnapshotMetrics.
type bfgtsWorkerProbe struct {
	probe *bloofi.AtomicProbe
	sus   []uint64

	lenHist  stats.Histogram // candidates visited per begin prediction
	nodeHist stats.Histogram // directory nodes visited per prediction
	runHist  stats.Histogram // running-set size at prediction time
}

// bfgtsStat is one dynamic transaction's history shard.
type bfgtsStat struct {
	avgSizeBits atomic.Uint64 // float64 bits; owner-written, shared-read
	simBits     atomic.Uint64 // float64 bits; owner-written, shared-read

	// Owner-only (accessed solely from the owning worker's goroutine).
	commits    int64
	sinceSim   int
	waitingOn  int // dtx this execution serialized behind, or core.NoTx
	decTok     int // pending serialize decision token, or -1 (settled by validate)
	hasHistory bool

	_ [15]byte // round toward a cache line against false sharing
}

//bfgts:allocfree
func (st *bfgtsStat) avgSize() float64 { return math.Float64frombits(st.avgSizeBits.Load()) }

//bfgts:allocfree
func (st *bfgtsStat) sim() float64 { return math.Float64frombits(st.simBits.Load()) }

// sigSlot double-buffers a dtx's read/write-set signatures. pair[cur.Load()]
// is the published (last committed) signature; the other pair is the
// owner's rebuild scratch.
type sigSlot struct {
	cur  atomic.Uint32
	pair [2]sigPair
}

type sigPair struct {
	rw *bloom.AtomicFilter // full read/write set
	w  *bloom.AtomicFilter // written subset
}

const (
	// initialSim seeds the similarity EWMA at the paper's neutral prior.
	initialSim = 0.5
	// minDecayFrac floors the confidence decay at this fraction of
	// DecayVal. The simulator's decay DecayVal·(1−sim) vanishes as sim→1,
	// which in a live system can freeze a saturated confidence cell and
	// starve a predictor loop; production hardening keeps a trickle.
	minDecayFrac = 0.05
	// stallSpinBudget bounds how many scheduler yields a spin-stall burns
	// waiting for its enemy to leave the CPU table before re-predicting.
	stallSpinBudget = 4096
	// beginEscapeLimit bounds predicted-conflict iterations in one OnBegin:
	// past it the transaction proceeds optimistically (the TM layer's
	// versioned locks keep it safe) rather than risk livelock when the
	// table says "conflict" forever. Escapes are counted in the metrics.
	beginEscapeLimit = 32
	// yieldSleep is the suspend duration when the enemy is a big
	// transaction (avgSize ≥ SmallTxLines): long enough to deschedule.
	yieldSleep = 5 * time.Microsecond
)

func newBFGTSManager(s *System) *bfgtsManager {
	cc := core.DefaultConfig(s.cfg.Workers, s.cfg.StaticTxs)
	n := s.cfg.Workers * s.cfg.StaticTxs
	m := &bfgtsManager{
		sys:           s,
		conf:          core.NewSharedConf(s.cfg.StaticTxs, cc.AliasBuckets),
		stats:         make([]bfgtsStat, n),
		sigs:          make([]sigSlot, n),
		confThreshold: cc.ConfThreshold,
		incVal:        cc.IncVal,
		decayVal:      cc.DecayVal,
		smallTxLines:  cc.SmallTxLines,
		simInterval:   cc.SimInterval,
	}
	for i := range m.stats {
		m.stats[i].simBits.Store(math.Float64bits(initialSim))
		m.stats[i].waitingOn = core.NoTx
		m.stats[i].decTok = -1
	}
	for i := range m.sigs {
		for p := 0; p < 2; p++ {
			m.sigs[i].pair[p].rw = bloom.NewAtomicFilter(s.cfg.BloomBits, cc.BloomHashes)
			m.sigs[i].pair[p].w = bloom.NewAtomicFilter(s.cfg.BloomBits, cc.BloomHashes)
		}
	}
	m.probes = make([]bfgtsWorkerProbe, s.cfg.Workers)
	if !s.cfg.LinearPredict {
		m.dir = bloofi.NewAtomicTree(bloofi.Config{Capacity: s.cfg.Workers})
		for i := range m.probes {
			m.probes[i].probe = bloofi.NewAtomicProbe(m.dir)
			m.probes[i].sus = make([]uint64, 0, m.conf.Dim())
		}
	}
	return m
}

// onRunning implements runningObserver: mirror the worker's running-slot
// transition into the directory. Only the slot's owner calls this (the
// running array has a single mutator per slot), so the leaf mutation
// needs no synchronization beyond the tree's own; clears are idempotent
// because Atomic's deferred cleanup re-clears an already cleared slot.
//
//bfgts:allocfree
func (m *bfgtsManager) onRunning(worker, dtx int) {
	if m.dir == nil {
		return
	}
	if dtx == core.NoTx {
		if m.dir.Occupied(worker) {
			m.dir.Clear(worker)
		}
		return
	}
	m.dir.Set(worker, uint64(m.conf.Fold(dtx%m.sys.cfg.StaticTxs)))
}

func (m *bfgtsManager) Name() string { return "BFGTS" }

// OnBegin is the paper's begin-time scan (Example 1): walk the CPU table,
// look up conflict confidence against each running transaction, and when
// a likely enemy is found either yield (enemy is big) or spin-stall until
// it drains. The scan takes no lock: the CPU table is the System's running
// array read with atomic loads, and each confidence lookup is one atomic
// load of a SharedConf cell.
//
//bfgts:allocfree
func (m *bfgtsManager) OnBegin(worker, stx, dtx, attempt int) {
	w := &m.sys.workers[worker]
	dec := m.sys.decShard(worker)
	rounds := 0
	for {
		enemy := m.predict(worker, stx)
		if enemy == core.NoTx {
			return
		}
		m.sys.met.predicted.Add(1)
		if rounds++; rounds > beginEscapeLimit {
			m.sys.met.beginEscapes.Add(1)
			return
		}
		yield := m.suspend(dtx, enemy)
		// Record the suspension with the inputs that drove it; the wait is
		// measured around the sleep/stall, and validate settles the outcome
		// at commit. Each round overwrites decTok, mirroring waitingOn:
		// only the final suspension of an execution is validated.
		tok, t0 := -1, int64(0)
		if dec != nil {
			choice := decision.CSpin
			if yield {
				choice = decision.CYield
			}
			t0 = m.sys.decNow()
			tok = dec.Add(decision.Record{
				Time:       t0,
				Tid:        int32(worker),
				Stx:        int32(stx),
				Attempt:    int32(attempt + 1),
				Point:      decision.PBegin,
				Choice:     choice,
				EnemyDTx:   int32(enemy),
				EnemyStx:   int32(enemy % m.sys.cfg.StaticTxs),
				Confidence: m.conf.Load(stx, enemy%m.sys.cfg.StaticTxs),
				Similarity: 0.5 * (m.stats[dtx].sim() + m.stats[enemy].sim()),
			})
			m.stats[dtx].decTok = tok
		}
		if yield {
			m.sys.met.yields.Add(1)
			time.Sleep(yieldSleep + w.jitter(int64(yieldSleep)))
		} else {
			m.sys.met.stalls.Add(1)
			m.stallOn(enemy)
		}
		if dec != nil {
			dec.SetWait(tok, m.sys.decNow()-t0)
		}
	}
}

// predict returns the first running dtx whose confidence against stx
// clears the threshold, or core.NoTx — through the Bloofi directory when
// enabled, so only tree-surfaced candidates pay a confidence lookup.
//
//bfgts:allocfree
func (m *bfgtsManager) predict(worker, stx int) int {
	if m.dir != nil {
		return m.predictDir(worker, stx)
	}
	return m.predictLinear(worker, stx)
}

// predictLinear is the literal begin-time scan: one atomic load of the
// running slot plus one confidence load per occupied entry.
//
//bfgts:allocfree
func (m *bfgtsManager) predictLinear(worker, stx int) int {
	running := m.sys.running
	enemy := core.NoTx
	scanned := int64(0)
	for cpu := range running {
		if cpu == worker {
			continue
		}
		d := running[cpu].Load()
		if d == int64(core.NoTx) {
			continue
		}
		scanned++
		if m.conf.Load(stx, int(d)%m.sys.cfg.StaticTxs) > m.confThreshold {
			enemy = int(d)
			break
		}
	}
	m.probes[worker].lenHist.Add(scanned)
	return enemy
}

// predictDir is the directory-backed scan: compute the exact suspect set
// from the confidence row, descend only matching subtrees, and re-verify
// every surfaced candidate against the authoritative running slot and
// confidence cell. Races with concurrent inserts/repairs can make the
// probe miss a candidate the linear walk would have caught (the
// transaction then proceeds optimistically — the TM layer's versioned
// locks keep it safe) or surface a stale one (rejected by the
// re-verification), never anything worse.
//
//bfgts:allocfree
func (m *bfgtsManager) predictDir(worker, stx int) int {
	wp := &m.probes[worker]
	wp.sus = m.conf.SuspectsInto(stx, m.confThreshold, wp.sus[:0])
	wp.probe.Reset(wp.sus)
	enemy := core.NoTx
	for {
		slot, ok := wp.probe.Next()
		if !ok {
			break
		}
		if slot == worker {
			continue
		}
		d := m.sys.running[slot].Load()
		if d == int64(core.NoTx) {
			continue
		}
		if m.conf.Load(stx, int(d)%m.sys.cfg.StaticTxs) > m.confThreshold {
			enemy = int(d)
			break
		}
	}
	wp.lenHist.Add(int64(wp.probe.Candidates()))
	wp.nodeHist.Add(int64(wp.probe.Nodes()))
	wp.runHist.Add(int64(m.dir.Len()))
	return enemy
}

// suspend records the serialization decision for a predicted conflict:
// decay the confidence edge (floored — see minDecayFrac), remember the
// enemy for commit-time validation, and report whether to yield (big
// enemy) or spin-stall (small enemy).
//
//bfgts:allocfree
func (m *bfgtsManager) suspend(dtx, enemyDTx int) (yield bool) {
	self, en := &m.stats[dtx], &m.stats[enemyDTx]
	sim := 0.5 * (self.sim() + en.sim())
	decay := m.decayVal * (1 - sim)
	if floor := m.decayVal * minDecayFrac; decay < floor {
		decay = floor
	}
	m.conf.Add(dtx%m.sys.cfg.StaticTxs, enemyDTx%m.sys.cfg.StaticTxs, -decay)
	self.waitingOn = enemyDTx
	return en.avgSize() >= m.smallTxLines
}

// stallOn burns scheduler yields until the enemy leaves the CPU table or
// the spin budget runs out (then OnBegin re-predicts; the decay applied by
// suspend plus the escape counter guarantee progress).
//
//bfgts:allocfree
func (m *bfgtsManager) stallOn(enemyDTx int) {
	ew := enemyDTx / m.sys.cfg.StaticTxs
	for i := 0; i < stallSpinBudget; i++ {
		if m.sys.running[ew].Load() != int64(enemyDTx) {
			return
		}
		runtime.Gosched()
	}
}

// OnAbort strengthens the confidence edge between the aborted transaction
// and its (validated, same-System) enemy, scaled by their similarity
// history and floored so novel pairs still learn; then backs off.
//
//bfgts:allocfree
func (m *bfgtsManager) OnAbort(worker, stx, dtx, enemyDTx, attempt int) {
	if enemyDTx != core.NoTx {
		sim := 0.5 * (m.stats[dtx].sim() + m.stats[enemyDTx].sim())
		inc := m.incVal * sim
		if floor := m.incVal * 0.30; inc < floor {
			inc = floor
		}
		estx := enemyDTx % m.sys.cfg.StaticTxs
		m.conf.Add(stx, estx, inc)
		m.sys.met.confStrengthens.Add(1)
		if m.conf.Fold(stx) != m.conf.Fold(estx) {
			// The reverse edge, unless aliasing folds both onto one cell
			// (which would double-pump it).
			m.conf.Add(estx, stx, inc)
		}
	}
	m.sys.backoff(worker, attempt)
}

// OnCommit folds the committed set size into the history EWMA, rebuilds
// the spare signature pair and flips it live (batched for small
// transactions per SimInterval), updates the similarity EWMA against the
// previous signature, and validates any begin-time serialization decision
// by intersecting published signatures — strengthening the confidence edge
// when the suspicion was justified, decaying it when it was not.
//
//bfgts:allocfree
func (m *bfgtsManager) OnCommit(worker, stx, dtx int, lines, writes []uint64, size int) {
	st := &m.stats[dtx]
	avg := float64(size)
	if st.commits > 0 {
		avg = 0.5 * (st.avgSize() + avg)
	}
	st.avgSizeBits.Store(math.Float64bits(avg))
	st.commits++
	st.sinceSim++
	small := avg <= m.smallTxLines
	if !small || st.sinceSim >= m.simInterval {
		m.republish(st, dtx, lines, writes, avg)
	}
	if st.waitingOn != core.NoTx {
		m.validate(st, stx, dtx)
	}
}

// republish rebuilds the dtx's spare signature pair from the committed
// set, updates the similarity EWMA against the published previous
// signature, and flips the spare live.
//
//bfgts:allocfree
//bfgts:seqlock-pub cur
func (m *bfgtsManager) republish(st *bfgtsStat, dtx int, lines, writes []uint64, avg float64) {
	slot := &m.sigs[dtx]
	cur := slot.cur.Load()
	next := &slot.pair[1-cur]
	next.rw.Reset()
	next.w.Reset()
	for _, a := range lines {
		next.rw.Add(a)
	}
	for _, a := range writes {
		next.w.Add(a)
	}
	if st.hasHistory {
		newSim := next.rw.Similarity(slot.pair[cur].rw, avg)
		st.simBits.Store(math.Float64bits(0.5 * (st.sim() + newSim)))
		m.sys.met.simUpdates.Add(1)
	} else {
		st.hasHistory = true
	}
	slot.cur.Store(1 - cur)
	st.sinceSim = 0
}

// validate settles a begin-time serialization decision: if this
// transaction's published signature significantly overlaps the waited-on
// transaction's writes (or vice versa), the suspension was justified —
// strengthen the edge; otherwise decay it. Probing the enemy's published
// pair may race its owner's next rebuild; see the type comment.
//
//bfgts:allocfree
//bfgts:seqlock-pub cur
func (m *bfgtsManager) validate(st *bfgtsStat, stx, dtx int) {
	waited := st.waitingOn
	st.waitingOn = core.NoTx
	wslot := &m.sigs[waited]
	wp := &wslot.pair[wslot.cur.Load()]
	sslot := &m.sigs[dtx]
	sp := &sslot.pair[sslot.cur.Load()]
	sim := 0.5 * (st.sim() + m.stats[waited].sim())
	wstx := waited % m.sys.cfg.StaticTxs
	justified := sp.rw.OverlapSignificant(wp.w) || wp.rw.OverlapSignificant(sp.w)
	if justified {
		inc := m.incVal * sim
		if floor := m.incVal * 0.30; inc < floor {
			inc = floor
		}
		m.conf.Add(stx, wstx, inc)
		m.sys.met.validHits.Add(1)
	} else {
		m.conf.Add(stx, wstx, -m.decayVal*(1-sim))
		m.sys.met.validMisses.Add(1)
	}
	// Settle the recorded suspension with the same verdict the confidence
	// loop just acted on. The owner's shard: dtx/StaticTxs is the worker.
	if st.decTok >= 0 {
		if dec := m.sys.decShard(dtx / m.sys.cfg.StaticTxs); dec != nil {
			o := decision.OOvercautious
			if justified {
				o = decision.OJustified
			}
			dec.Resolve(st.decTok, o, 0)
		}
		st.decTok = -1
	}
}

// similarity returns a dtx's similarity EWMA (System.Similarity).
func (m *bfgtsManager) similarity(dtx int) float64 { return m.stats[dtx].sim() }

// avgSize returns a dtx's average set size (System.AvgSize).
func (m *bfgtsManager) avgSize(dtx int) float64 { return m.stats[dtx].avgSize() }

// MeanConfidence implements ConfidenceReporter.
func (m *bfgtsManager) MeanConfidence() float64 { return m.conf.Mean() }
