package stm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkSTMContended drives a contended read-modify-write mix through
// each contention manager: every goroutine owns a worker slot and updates
// hot TVars drawn from a small pool, so begin-time scheduling decisions
// actually matter. Run with -benchmem: steady-state allocs/op should be
// the published value cells only.
func BenchmarkSTMContended(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedBackoff, SchedATS, SchedBFGTS} {
		b.Run(kind.String(), func(b *testing.B) {
			workers := runtime.GOMAXPROCS(0)
			if workers < 2 {
				workers = 2
			}
			sys := NewSystem(Config{Workers: workers, StaticTxs: 2, Scheduler: kind})
			const vars = 16
			pool := make([]*TVar[int], vars)
			for i := range pool {
				pool[i] = NewTVar(0)
			}
			var nextWorker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(nextWorker.Add(1)-1) % workers
				rng := uint64(w)*0x9e3779b97f4a7c15 + 1
				for pb.Next() {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					v := pool[rng%vars]
					_ = sys.Atomic(w, 0, func(tx *Tx) error {
						v.Write(tx, v.Read(tx)+1)
						return nil
					})
				}
			})
			b.ReportMetric(float64(sys.Aborts())/float64(b.N), "aborts/op")
		})
	}
}

// BenchmarkSTMContendedWide oversubscribes the BFGTS manager with worker
// counts far beyond GOMAXPROCS (the live analog of the 64/256/1024
// simulated-core scaling runs), Bloofi directory against linear
// begin-time prediction. Each worker slot gets a dedicated goroutine
// running a fixed slice of ops so the begin path — suspect-set scan plus
// directory probe or linear walk over all worker slots — dominates the
// scheduling cost being compared.
func BenchmarkSTMContendedWide(b *testing.B) {
	for _, workers := range []int{64, 256, 1024} {
		for _, linear := range []bool{false, true} {
			mode := "bloofi"
			if linear {
				mode = "linear"
			}
			b.Run(fmt.Sprintf("workers%d/%s", workers, mode), func(b *testing.B) {
				sys := NewSystem(Config{
					Workers: workers, StaticTxs: 4,
					Scheduler: SchedBFGTS, LinearPredict: linear,
				})
				const vars = 64
				pool := make([]*TVar[int], vars)
				for i := range pool {
					pool[i] = NewTVar(0)
				}
				opsPer := b.N/workers + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := uint64(w)*0x9e3779b97f4a7c15 + 1
						for i := 0; i < opsPer; i++ {
							rng ^= rng << 13
							rng ^= rng >> 7
							rng ^= rng << 17
							v := pool[rng%vars]
							_ = sys.Atomic(w, int(rng>>32)%4, func(tx *Tx) error {
								v.Write(tx, v.Read(tx)+1)
								return nil
							})
						}
					}(w)
				}
				wg.Wait()
				b.ReportMetric(float64(sys.Aborts())/float64(b.N), "aborts/op")
			})
		}
	}
}
