package stm

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkSTMContended drives a contended read-modify-write mix through
// each contention manager: every goroutine owns a worker slot and updates
// hot TVars drawn from a small pool, so begin-time scheduling decisions
// actually matter. Run with -benchmem: steady-state allocs/op should be
// the published value cells only.
func BenchmarkSTMContended(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedBackoff, SchedATS, SchedBFGTS} {
		b.Run(kind.String(), func(b *testing.B) {
			workers := runtime.GOMAXPROCS(0)
			if workers < 2 {
				workers = 2
			}
			sys := NewSystem(Config{Workers: workers, StaticTxs: 2, Scheduler: kind})
			const vars = 16
			pool := make([]*TVar[int], vars)
			for i := range pool {
				pool[i] = NewTVar(0)
			}
			var nextWorker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(nextWorker.Add(1)-1) % workers
				rng := uint64(w)*0x9e3779b97f4a7c15 + 1
				for pb.Next() {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					v := pool[rng%vars]
					_ = sys.Atomic(w, 0, func(tx *Tx) error {
						v.Write(tx, v.Read(tx)+1)
						return nil
					})
				}
			})
			b.ReportMetric(float64(sys.Aborts())/float64(b.N), "aborts/op")
		})
	}
}
