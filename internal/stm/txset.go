package stm

// Read/write-set storage for the pooled Tx. Both sets are entry slices
// reused across attempts (truncated, never freed), searched linearly while
// small and through a pooled open-addressing index once they outgrow the
// scan threshold — the same inline-then-spill shape as internal/tm's
// lineSet, applied to TVar identities. The slow paths that actually touch
// the allocator (index build and growth) are unannotated helpers; the hot
// lookup/append paths are allocation-free once capacities have warmed up.

// readEntry records a TVar read and the version observed at first read.
type readEntry struct {
	v   *tvar
	ver uint64
}

// writeEntry buffers a pending value for a TVar (lazy versioning: nothing
// is published until commit).
type writeEntry struct {
	v   *tvar
	val any
}

// scanLimit is the set size up to which a linear scan beats the index.
const scanLimit = 24

// idxTable is an open-addressing map from TVar key to entry slot. Slots
// hold entryIndex+1; 0 marks an empty probe slot. len(slots) is a power of
// two. The table is pooled with its Tx: reset clears in place.
type idxTable struct {
	slots []uint32
}

//bfgts:allocfree
func (ix *idxTable) reset() {
	for i := range ix.slots {
		ix.slots[i] = 0
	}
}

// place inserts val at the first free probe slot for hash h. The caller
// guarantees a free slot exists (load factor is capped at 3/4).
//
//bfgts:allocfree
func (ix *idxTable) place(h uint64, val uint32) {
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if ix.slots[i] == 0 {
			ix.slots[i] = val
			return
		}
	}
}

// keyHash scrambles a sequential TVar key into a probe hash (splitmix64
// finalizer, same family as the bloom package's mixer).
//
//bfgts:allocfree
func keyHash(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	return key ^ key>>31
}

// lookupRead returns the read-set slot holding v, or -1.
//
//bfgts:allocfree
func (t *Tx) lookupRead(v *tvar) int {
	if len(t.rIdx.slots) == 0 {
		for i := range t.reads {
			if t.reads[i].v == v {
				return i
			}
		}
		return -1
	}
	mask := uint64(len(t.rIdx.slots) - 1)
	for i := keyHash(v.key) & mask; ; i = (i + 1) & mask {
		s := t.rIdx.slots[i]
		if s == 0 {
			return -1
		}
		if t.reads[s-1].v == v {
			return int(s - 1)
		}
	}
}

// lookupWrite returns the write-set slot holding v, or -1. Only valid
// before commit's in-place sort (afterwards use writeSetHas).
//
//bfgts:allocfree
func (t *Tx) lookupWrite(v *tvar) int {
	if len(t.wIdx.slots) == 0 {
		for i := range t.writes {
			if t.writes[i].v == v {
				return i
			}
		}
		return -1
	}
	mask := uint64(len(t.wIdx.slots) - 1)
	for i := keyHash(v.key) & mask; ; i = (i + 1) & mask {
		s := t.wIdx.slots[i]
		if s == 0 {
			return -1
		}
		if t.writes[s-1].v == v {
			return int(s - 1)
		}
	}
}

// appendRead records a first read of v. The append is a self-append into
// pooled storage: it allocates only while the set outgrows its retained
// capacity, then never again.
//
//bfgts:allocfree
func (t *Tx) appendRead(v *tvar, ver uint64) {
	t.reads = append(t.reads, readEntry{v: v, ver: ver})
	n := len(t.reads)
	if len(t.rIdx.slots) == 0 {
		if n > scanLimit {
			t.rebuildReadIndex()
		}
		return
	}
	if 4*n > 3*len(t.rIdx.slots) {
		t.rebuildReadIndex()
		return
	}
	t.rIdx.place(keyHash(v.key), uint32(n))
}

// appendWrite buffers a first write to v; indexing mirrors appendRead.
//
//bfgts:allocfree
func (t *Tx) appendWrite(v *tvar, val any) {
	t.writes = append(t.writes, writeEntry{v: v, val: val})
	n := len(t.writes)
	if len(t.wIdx.slots) == 0 {
		if n > scanLimit {
			t.rebuildWriteIndex()
		}
		return
	}
	if 4*n > 3*len(t.wIdx.slots) {
		t.rebuildWriteIndex()
		return
	}
	t.wIdx.place(keyHash(v.key), uint32(n))
}

// indexSize picks a probe table of 4× the entry count (power of two, min
// 64), capping the load factor at 1/4 right after a rebuild.
func indexSize(entries int) int {
	want := 64
	for want < 4*entries {
		want <<= 1
	}
	return want
}

// rebuildReadIndex (re)sizes and reindexes the read-set probe table.
// Deliberately unannotated: this is the pooled set's growth slow path,
// amortized away once retained capacity is warm.
func (t *Tx) rebuildReadIndex() {
	if want := indexSize(len(t.reads)); want > len(t.rIdx.slots) {
		t.rIdx.slots = make([]uint32, want)
	} else {
		t.rIdx.reset()
	}
	for i := range t.reads {
		t.rIdx.place(keyHash(t.reads[i].v.key), uint32(i+1))
	}
}

// rebuildWriteIndex mirrors rebuildReadIndex for the write set.
func (t *Tx) rebuildWriteIndex() {
	if want := indexSize(len(t.writes)); want > len(t.wIdx.slots) {
		t.wIdx.slots = make([]uint32, want)
	} else {
		t.wIdx.reset()
	}
	for i := range t.writes {
		t.wIdx.place(keyHash(t.writes[i].v.key), uint32(i+1))
	}
}

// sortWrites orders the write set by TVar key in place — the canonical,
// process-wide commit lock order. Shell sort with Knuth gaps: in-place and
// allocation-free (no sort.Slice closure), and effectively insertion sort
// at the small write-set sizes transactions actually have.
//
//bfgts:allocfree
func sortWrites(ws []writeEntry) {
	gap := 1
	for gap < len(ws)/3 {
		gap = 3*gap + 1
	}
	for ; gap >= 1; gap /= 3 {
		for i := gap; i < len(ws); i++ {
			e := ws[i]
			j := i
			for ; j >= gap && ws[j-gap].v.key > e.v.key; j -= gap {
				ws[j] = ws[j-gap]
			}
			ws[j] = e
		}
	}
}
