package stm

import (
	"time"

	"repro/internal/core"
)

// SchedulerKind selects one of the built-in contention managers.
type SchedulerKind int

const (
	// SchedBackoff retries with randomized exponential backoff.
	SchedBackoff SchedulerKind = iota
	// SchedATS throttles workers whose abort pressure is high.
	SchedATS
	// SchedBFGTS runs the paper's Bloom-filter-guided scheduler.
	SchedBFGTS
)

// String names the scheduler kind for benchmark tables and JSON exports.
func (k SchedulerKind) String() string {
	switch k {
	case SchedATS:
		return "ATS"
	case SchedBFGTS:
		return "BFGTS"
	default:
		return "Backoff"
	}
}

// ContentionManager is the STM's pluggable scheduling layer, the real-time
// mirror of internal/sched.Manager's hook surface: the TM layer calls it
// at transaction begin, abort and commit, and the manager decides how long
// a worker waits (by blocking inside the hook — there is no simulator tick
// to return an action to).
//
// Concurrency contract: OnBegin and OnAbort run on the owning worker's
// goroutine before/after attempts; OnCommit runs on the owner after a
// successful commit with the transaction's line keys in pooled buffers the
// manager must not retain. Hooks for different workers run concurrently.
type ContentionManager interface {
	// Name identifies the manager in reports.
	Name() string
	// OnBegin gates an attempt: it returns when the worker may proceed.
	// attempt is 0 for the first try of an Atomic call.
	OnBegin(worker, stx, dtx, attempt int)
	// OnAbort reacts to a conflict abort. enemyDTx is the validated local
	// dTxID of the last writer that doomed the attempt, or core.NoTx when
	// unknown or owned by a different System.
	OnAbort(worker, stx, dtx, enemyDTx, attempt int)
	// OnCommit observes a committed transaction: lines holds the distinct
	// read/write-set keys, writes the written subset, size = len(lines).
	OnCommit(worker, stx, dtx int, lines, writes []uint64, size int)
}

// ConfidenceReporter is implemented by managers that maintain a conflict
// confidence table (BFGTS).
type ConfidenceReporter interface {
	MeanConfidence() float64
}

// PressureReporter is implemented by managers that track per-transaction
// abort pressure (ATS).
type PressureReporter interface {
	MeanPressure() float64
}

// dtxStampMask bounds Workers*StaticTxs: a writer stamp packs the dtx into
// the low 32 bits and the System ID above it.
const dtxStampMask = 1<<32 - 1

// writerStamp packs this System's identity with a dtx into the value
// stored in tvar.lastWriter. Stamps are never 0 (System IDs start at 1),
// so 0 remains the "never written" sentinel.
//
//bfgts:allocfree
func (s *System) writerStamp(dtx int) int64 {
	return int64(s.id<<32) | int64(dtx)
}

// enemyDTx validates a lastWriter stamp, returning the local dTxID when
// this System minted it and core.NoTx otherwise. This is the cross-System
// attribution guard: a TVar shared with another System carries foreign
// stamps, and blindly indexing local confidence/pressure tables with a
// foreign dtx is the out-of-range panic this layer used to have. Foreign
// enemies are dropped (and counted) — the other System schedules its own.
//
//bfgts:allocfree
func (s *System) enemyDTx(stamp int64) int {
	if stamp == 0 {
		return core.NoTx
	}
	if uint64(stamp)>>32 != s.id {
		s.met.foreignEnemies.Add(1)
		return core.NoTx
	}
	dtx := int(stamp & dtxStampMask)
	if dtx >= s.cfg.Workers*s.cfg.StaticTxs {
		// Unreachable when the System-ID check passed; kept as defense in
		// depth because a table index panic here takes the worker down.
		return core.NoTx
	}
	return dtx
}

// backoff sleeps the worker for a randomized exponential window: attempt n
// waits uniformly in [window/2, 3·window/2) with window = 200ns·2^min(n,10).
// Shared by all managers' abort paths.
//
//bfgts:allocfree
func (s *System) backoff(worker, attempt int) {
	shift := attempt
	if shift > 10 {
		shift = 10
	}
	window := int64(200) << shift
	d := time.Duration(window/2) + s.workers[worker].jitter(window)
	s.met.backoffNanos.Add(int64(d))
	time.Sleep(d)
}
