package stm

import (
	"sync/atomic"
	"time"
)

// workerState is one worker's shard of System state: the pooled Tx (with
// its read/write sets and probe indexes), the commit-time line buffers,
// and a private jitter generator. Pooling per worker instead of through a
// free list works because Atomic is single-flight per worker slot (the
// busy guard enforces it), so nothing is ever contended — the retry loop
// reuses the same storage attempt after attempt with zero allocator
// traffic once capacities are warm.
type workerState struct {
	// busy rejects concurrent Atomic calls on the same worker slot, which
	// would silently corrupt the pooled Tx.
	tx  Tx
	rng uint64 // xorshift64 state for jitter; never zero

	// lineBuf/writeBuf are OnCommit's scratch: distinct read/write-set
	// keys, rebuilt per commit, retained across commits.
	lineBuf  []uint64
	writeBuf []uint64

	busy atomic.Bool

	// Pad the shard toward a cache line so adjacent workers' busy/rng
	// traffic does not false-share.
	_ [40]byte
}

// init seeds the worker's private RNG (any fixed odd constant works; the
// worker index decorrelates streams).
func (w *workerState) init(worker int) {
	w.rng = 0x9e3779b97f4a7c15 ^ uint64(worker+1)*0x2545f4914f6cdd1d
}

// jitter returns a uniform duration in [0, n) nanoseconds from the
// worker-private xorshift64 stream — no locked global rand on the abort
// path, and no cross-worker cache traffic.
//
//bfgts:allocfree
func (w *workerState) jitter(n int64) time.Duration {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return time.Duration(int64(x % uint64(n)))
}
