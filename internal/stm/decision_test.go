package stm

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/decision"
)

// TestDecisionRecordingLive drives a contended live System with decision
// recording on and checks the stream: every worker's attempts show up as
// proceed records, aborted attempts carry wall-time waste, and the export
// validates under the "ns" unit.
func TestDecisionRecordingLive(t *testing.T) {
	const workers, iters = 4, 300
	set := decision.NewSet(workers, 0)
	sys := NewSystem(Config{
		Workers: workers, StaticTxs: 2, Scheduler: SchedBFGTS,
		Decisions: set,
	})
	shared := NewTVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := sys.Atomic(w, w%2, func(tx *Tx) error {
					shared.Write(tx, shared.Read(tx)+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := shared.Peek(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}

	recs := set.Merge()
	g := decision.Estimate(recs)
	if g.Proceeds < workers*iters {
		t.Fatalf("proceeds %d < %d atomic attempts", g.Proceeds, workers*iters)
	}
	if g.Committed != workers*iters {
		t.Fatalf("committed %d, want %d", g.Committed, workers*iters)
	}
	if g.Aborted != sys.Aborts() {
		t.Fatalf("ledger aborts %d != system aborts %d", g.Aborted, sys.Aborts())
	}
	if g.Aborted > 0 && g.UndercautionCycles == 0 {
		t.Fatal("aborted attempts carried no wall-time waste")
	}
	for i := range recs {
		r := &recs[i]
		if r.Point != decision.PBegin {
			t.Fatalf("unexpected decision point in STM stream: %+v", *r)
		}
		if r.Choice.Serializes() && r.EnemyDTx < 0 {
			t.Fatalf("serialization without enemy: %+v", *r)
		}
	}

	e := decision.NewExport()
	e.AddRun("BFGTS", "counter", "ns", set)
	if err := e.Validate(); err != nil {
		t.Fatalf("live export invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := e.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var c decision.ChromeTrace
	c.AddRun(0, "counter/BFGTS", set)
	buf.Reset()
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionRecordingAllocFreeLive pins the recording overhead on the
// live hot path: a read-only transaction with decision recording enabled
// must still allocate nothing once the shard's storage is warm.
func TestDecisionRecordingAllocFreeLive(t *testing.T) {
	set := decision.NewSet(1, 1<<14)
	sys := NewSystem(Config{Workers: 1, StaticTxs: 1, Scheduler: SchedBFGTS, Decisions: set})
	v := NewTVar(7)
	run := func() {
		if err := sys.Atomic(0, 0, func(tx *Tx) error {
			v.Read(tx)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm pooled capacities
	// Pre-grow the shard to its cap so append never reallocates mid-gate,
	// then recycle it between runs.
	sh := set.Shard(0)
	for sh.Add(decision.Record{}) >= 0 {
	}
	sh.Reset()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		run()
		if i++; i%1000 == 0 {
			sh.Reset()
		}
	})
	if allocs != 0 {
		t.Fatalf("recorded read-only transaction allocates %.1f objects/op, want 0", allocs)
	}
}
