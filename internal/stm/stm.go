// Package stm is a runnable software transactional memory for Go programs
// with BFGTS-style scheduling. It exists because the paper's system is a
// hardware TM inside a simulator: this package gives the library a real
// concurrent API exercising the same contention-management machinery on
// live goroutines.
//
// The package is layered like the simulator:
//
//   - The TM layer (this file) is a word-based STM in the TL2 tradition: a
//     global version clock, per-TVar versioned locks, lazy versioning
//     (writes buffered until commit), commit-time locking in a canonical
//     order and read-set validation.
//   - The pooling layer (pool.go, txset.go) keeps the begin→abort→retry
//     path allocation-free: each worker owns one pooled Tx whose
//     open-addressing read/write sets and commit scratch survive attempts,
//     the PR 3 free-list idiom applied to the real STM.
//   - The scheduling layer (manager.go and the per-manager files) is a
//     pluggable ContentionManager mirroring internal/sched.Manager's hooks
//     (begin, abort, commit) in real time: Backoff, ATS and a
//     production-grade BFGTS whose begin-time scan takes no lock.
//
// Usage:
//
//	sys := stm.NewSystem(stm.Config{Workers: 8, StaticTxs: 2, Scheduler: stm.SchedBFGTS})
//	acct := stm.NewTVar(100)
//	err := sys.Atomic(workerID, 0, func(tx *stm.Tx) error {
//		bal := acct.Read(tx)
//		acct.Write(tx, bal-10)
//		return nil
//	})
//
// The function passed to Atomic may run several times (on conflict); it
// must not have side effects other than TVar reads and writes.
//
// # Sharing TVars across Systems
//
// TVars may be shared by transactions of different Systems: the version
// clock is process-wide, TVar identities are process-unique, and commit
// lock order is canonical across Systems, so isolation holds globally.
// The caveat is scheduling, not correctness: conflict attribution stamps
// each TVar with a System-qualified writer ID, and a conflict whose last
// writer belongs to another System is deliberately dropped on the floor
// (counted as stm.foreign_enemies) — one System's contention managers
// cannot learn about, throttle, or serialize behind transactions it does
// not manage. Heavily shared TVars are therefore best owned by one System.
package stm

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/decision"
)

// Config parameterizes a System.
type Config struct {
	// Workers is the number of concurrent transaction slots; each
	// goroutine using the system claims a worker ID in [0, Workers).
	Workers int
	// StaticTxs is the number of distinct atomic blocks in the program.
	StaticTxs int
	Scheduler SchedulerKind
	// BloomBits sizes the BFGTS read/write-set filters (default 1024).
	BloomBits int
	// PressureThreshold tunes SchedATS (default 0.5).
	PressureThreshold float64
	// NewManager, when non-nil, overrides Scheduler with a custom
	// contention manager bound to the System under construction.
	NewManager func(*System) ContentionManager

	// LinearPredict disables the BFGTS manager's Bloofi directory and
	// restores the literal linear walk of the running array at begin
	// time. The directory is a best-effort index re-verified against the
	// authoritative running/confidence state, so this is an escape hatch
	// and differential-test oracle, not a semantic knob.
	LinearPredict bool

	// Decisions, if non-nil, receives one record per scheduling decision
	// (each Atomic attempt's proceed, each BFGTS spin/yield suspension)
	// into the per-worker shards; it must have at least Workers shards.
	// Times are wall nanoseconds since NewSystem. Recording is lock-free
	// and allocation-free: each worker writes only its own shard.
	Decisions *decision.Set
}

// systemIDs mints process-unique System identities for writer stamps.
var systemIDs atomic.Uint64

// System owns the scheduling state shared by all transactions.
type System struct {
	cfg Config
	id  uint64 // process-unique, embedded in TVar writer stamps

	// running[w] holds the dTxID executing on worker w, or core.NoTx.
	// Begin-time prediction scans it with plain atomic loads — this is the
	// paper's CPU table, with snoop traffic replaced by cache coherence.
	running []atomic.Int64

	// workers holds the per-worker shards: pooled Tx, commit scratch and
	// jitter state. No worker ever touches another's shard.
	workers []workerState

	mgr ContentionManager
	// runObs is mgr when it observes running-slot transitions (the BFGTS
	// Bloofi directory), else nil. Kept as a dedicated field so the hot
	// path pays one nil check instead of a type assertion per store.
	runObs runningObserver
	met    stmMetrics

	// epoch is the Record.Time zero of the decision trace.
	epoch time.Time
}

// NewSystem builds a System.
func NewSystem(cfg Config) *System {
	if cfg.Workers <= 0 || cfg.StaticTxs <= 0 {
		panic("stm: Config needs positive Workers and StaticTxs")
	}
	if uint64(cfg.Workers)*uint64(cfg.StaticTxs) > dtxStampMask {
		panic("stm: Workers*StaticTxs does not fit a writer stamp")
	}
	if cfg.BloomBits == 0 {
		cfg.BloomBits = 1024
	}
	if cfg.PressureThreshold == 0 {
		cfg.PressureThreshold = 0.5
	}
	s := &System{
		cfg:     cfg,
		id:      systemIDs.Add(1),
		running: make([]atomic.Int64, cfg.Workers),
		workers: make([]workerState, cfg.Workers),
		epoch:   time.Now(),
	}
	for i := range s.running {
		s.running[i].Store(int64(core.NoTx))
	}
	for i := range s.workers {
		s.workers[i].init(i)
	}
	switch {
	case cfg.NewManager != nil:
		s.mgr = cfg.NewManager(s)
	case cfg.Scheduler == SchedATS:
		s.mgr = newATSManager(s)
	case cfg.Scheduler == SchedBFGTS:
		s.mgr = newBFGTSManager(s)
	default:
		s.mgr = &backoffManager{sys: s}
	}
	s.runObs, _ = s.mgr.(runningObserver)
	return s
}

// runningObserver is an optional ContentionManager extension notified
// after every running-slot transition, from the goroutine owning the
// worker slot. The BFGTS manager uses it to mirror the running array
// into its Bloofi directory; the notification must be cheap and must
// tolerate redundant clears (the deferred cleanup in Atomic re-clears an
// already cleared slot).
type runningObserver interface {
	onRunning(worker, dtx int)
}

// setRunning publishes the dTxID executing on a worker slot (or
// core.NoTx) and forwards the transition to the manager's observer. All
// mutations of the running array flow through here so any index the
// manager keeps over it can never go stale.
//
//bfgts:allocfree
func (s *System) setRunning(worker, dtx int) {
	s.running[worker].Store(int64(dtx))
	if s.runObs != nil {
		s.runObs.onRunning(worker, dtx)
	}
}

// Manager returns the System's contention manager.
func (s *System) Manager() ContentionManager { return s.mgr }

// Commits returns the number of committed transactions.
func (s *System) Commits() int64 { return s.met.commits.Load() }

// Aborts returns the number of aborted transaction attempts.
func (s *System) Aborts() int64 { return s.met.aborts.Load() }

// decShard returns the worker's decision-trace shard, or nil when
// decision recording is off. Each worker slot is single-flight, so the
// shard needs no lock.
//
//bfgts:allocfree
func (s *System) decShard(worker int) *decision.Recorder {
	if s.cfg.Decisions == nil || worker >= s.cfg.Decisions.Threads() {
		return nil
	}
	return s.cfg.Decisions.Shard(worker)
}

// decNow is the decision-trace clock: wall nanoseconds since NewSystem.
//
//bfgts:allocfree
func (s *System) decNow() int64 { return int64(time.Since(s.epoch)) }

// RunningDTx returns the dynamic transaction executing on a worker, or
// core.NoTx — one atomic load, for managers scanning the CPU table.
//
//bfgts:allocfree
func (s *System) RunningDTx(worker int) int {
	return int(s.running[worker].Load())
}

// Similarity returns the similarity EWMA of a dynamic transaction under
// the BFGTS manager, and 0 under managers that do not track it.
func (s *System) Similarity(dtx int) float64 {
	if m, ok := s.mgr.(*bfgtsManager); ok {
		return m.similarity(dtx)
	}
	return 0
}

// AvgSize returns the historical average read/write-set size of a dynamic
// transaction under the BFGTS manager, and 0 under other managers.
func (s *System) AvgSize(dtx int) float64 {
	if m, ok := s.mgr.(*bfgtsManager); ok {
		return m.avgSize(dtx)
	}
	return 0
}

// globalClock is the TL2 version clock shared by all TVars (they can be
// shared across Systems, so the clock is process-wide).
var globalClock atomic.Uint64

// tvarKeys mints process-unique TVar identities: stable hash keys for the
// read/write-set indexes, Bloom-signature line addresses, and the
// canonical commit lock order (consistent across Systems by construction).
var tvarKeys atomic.Uint64

// tvar is the type-erased TVar core.
type tvar struct {
	// version is even when unlocked (the commit timestamp of the current
	// value) and odd while a committer holds the write lock.
	version atomic.Uint64
	val     atomic.Pointer[any]
	// lastWriter is the System-qualified stamp of the last committed
	// writer (see writerStamp), or 0 when never written transactionally.
	// Conflict attribution unpacks it and drops stamps minted by other
	// Systems instead of indexing local tables with foreign dTxIDs.
	lastWriter atomic.Int64
	// key is the TVar's process-unique identity.
	key uint64
}

// TVar is a transactional variable holding a value of type T.
type TVar[T any] struct {
	v tvar
}

// NewTVar creates a TVar with an initial value.
func NewTVar[T any](initial T) *TVar[T] {
	tv := &TVar[T]{}
	tv.v.key = tvarKeys.Add(1)
	var boxed any = initial
	tv.v.val.Store(&boxed)
	return tv
}

// Read returns the TVar's value inside a transaction.
func (tv *TVar[T]) Read(tx *Tx) T {
	got := tx.read(&tv.v)
	if got == nil {
		var zero T
		return zero
	}
	return got.(T)
}

// Write buffers a new value for the TVar inside a transaction.
func (tv *TVar[T]) Write(tx *Tx, val T) {
	tx.write(&tv.v, val)
}

// Peek reads the committed value outside any transaction (for tests and
// post-run inspection; racy only in the benign read-latest sense).
func (tv *TVar[T]) Peek() T {
	return (*tv.v.val.Load()).(T)
}

// Tx is one transaction attempt. It is pooled per worker: the same object
// (and its read/write-set storage) is reused across attempts and across
// Atomic calls, so the retry path touches the allocator only while a set
// outgrows its retained capacity.
type Tx struct {
	sys    *System
	worker int
	stx    int
	dtx    int

	readVersion uint64
	reads       []readEntry
	writes      []writeEntry
	rIdx, wIdx  idxTable

	enemy int64 // writer stamp attributed to the last conflict, or 0
}

// reset prepares the pooled Tx for a fresh attempt, keeping all storage.
//
//bfgts:allocfree
func (t *Tx) reset(readVersion uint64) {
	t.readVersion = readVersion
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.rIdx.reset()
	t.wIdx.reset()
	t.enemy = 0
}

// read returns the transaction's view of v, aborting the attempt (via
// txAbort) when a consistent view no longer exists.
//
//bfgts:allocfree
//bfgts:seqlock version
func (t *Tx) read(v *tvar) any {
	if i := t.lookupWrite(v); i >= 0 {
		return t.writes[i].val
	}
	if i := t.lookupRead(v); i >= 0 {
		// Re-read: the recorded version was ≤ readVersion when first read;
		// any later commit moved the version past readVersion, so observing
		// a change means this attempt is doomed. The val load precedes the
		// version check; a committer writes val before unlocking, so an
		// unchanged (even) version proves val is the recorded version's.
		val := v.val.Load()
		if v.version.Load() != t.reads[i].ver {
			t.enemy = v.lastWriter.Load()
			panic(txAbort{})
		}
		return *val
	}
	for {
		v1 := v.version.Load()
		if v1&1 == 1 || v1 > t.readVersion {
			t.enemy = v.lastWriter.Load()
			panic(txAbort{})
		}
		val := v.val.Load()
		if v.version.Load() == v1 {
			t.appendRead(v, v1)
			return *val
		}
	}
}

// write buffers val as the transaction's pending value for v.
//
//bfgts:allocfree
func (t *Tx) write(v *tvar, val any) {
	if i := t.lookupWrite(v); i >= 0 {
		t.writes[i].val = val
		return
	}
	t.appendWrite(v, val)
}

// txAbort unwinds a doomed attempt through the user function.
type txAbort struct{}

// Atomic runs fn transactionally as worker `worker` executing static
// transaction stx, retrying on conflicts until it commits. A non-nil error
// from fn aborts the transaction (its writes are discarded) and is
// returned.
//
// Each worker slot is single-flight: concurrent Atomic calls with the same
// worker ID corrupt the pooled per-worker state, so they panic instead.
func (s *System) Atomic(worker, stx int, fn func(*Tx) error) error {
	if worker < 0 || worker >= s.cfg.Workers {
		panic(fmt.Sprintf("stm: worker %d out of range", worker))
	}
	if stx < 0 || stx >= s.cfg.StaticTxs {
		panic(fmt.Sprintf("stm: static tx %d out of range", stx))
	}
	w := &s.workers[worker]
	if !w.busy.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("stm: worker %d used concurrently", worker))
	}
	dtx := worker*s.cfg.StaticTxs + stx
	defer func() {
		// Normal exits already cleared the running slot; this also covers
		// a panic out of fn, so a poisoned worker cannot wedge the other
		// workers' begin-time scans and ATS throttling forever.
		s.setRunning(worker, core.NoTx)
		w.busy.Store(false)
	}()
	s.met.begins.Add(1)
	tx := &w.tx
	tx.sys, tx.worker, tx.stx, tx.dtx = s, worker, stx, dtx
	dec := s.decShard(worker)
	attempt := 0
	for {
		s.mgr.OnBegin(worker, stx, dtx, attempt)
		tx.reset(globalClock.Load())
		// Record the optimistic proceed: every attempt that reaches here
		// decided to run. Settled below — committed, or aborted with the
		// attempt's wall time charged as undercaution.
		tok, t0 := -1, int64(0)
		if dec != nil {
			t0 = s.decNow()
			tok = dec.Add(decision.Record{
				Time:     t0,
				Tid:      int32(worker),
				Stx:      int32(stx),
				Attempt:  int32(attempt + 1),
				Point:    decision.PBegin,
				Choice:   decision.CProceed,
				EnemyDTx: -1,
				EnemyStx: -1,
			})
		}
		s.setRunning(worker, dtx)
		err, aborted := tx.run(fn)
		s.setRunning(worker, core.NoTx)
		if !aborted {
			if err == nil {
				if dec != nil {
					dec.Resolve(tok, decision.OCommitted, 0)
				}
				s.met.commits.Add(1)
				s.commitBookkeeping(w, tx)
			}
			return err
		}
		s.met.aborts.Add(1)
		attempt++
		enemy := s.enemyDTx(tx.enemy)
		if dec != nil {
			if enemy != core.NoTx {
				dec.SetEnemy(tok, int32(enemy), int32(enemy%s.cfg.StaticTxs))
			}
			dec.Resolve(tok, decision.OAborted, s.decNow()-t0)
		}
		s.mgr.OnAbort(worker, stx, dtx, enemy, attempt)
	}
}

// run executes one attempt; aborted reports a conflict retry is needed.
func (t *Tx) run(fn func(*Tx) error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(txAbort); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	if err := fn(t); err != nil {
		return err, false
	}
	if !t.commit() {
		return nil, true
	}
	return nil, false
}

// commitBookkeeping assembles the committed read/write set into the
// worker's pooled line buffers (distinct keys: writes first, then reads
// not also written) and hands it to the manager's commit hook.
//
//bfgts:allocfree
func (s *System) commitBookkeeping(w *workerState, tx *Tx) {
	lines, writes := w.lineBuf[:0], w.writeBuf[:0]
	for i := range tx.writes {
		k := tx.writes[i].v.key
		lines = append(lines, k)
		writes = append(writes, k)
	}
	for i := range tx.reads {
		if v := tx.reads[i].v; !tx.writeSetHas(v) {
			lines = append(lines, v.key)
		}
	}
	w.lineBuf, w.writeBuf = lines, writes
	s.mgr.OnCommit(tx.worker, tx.stx, tx.dtx, lines, writes, len(lines))
}

// commit performs TL2 commit: lock the write set in canonical (TVar key)
// order, validate the read set, publish. The write entries are sorted in
// place — pooled per-worker storage serving as its own scratch — so the
// commit path allocates nothing but the published value cells.
//
//bfgts:allocfree
//bfgts:lock-rank writes
func (t *Tx) commit() bool {
	if len(t.writes) == 0 {
		// Read-only: the read set was validated incrementally against a
		// fixed readVersion; nothing to publish.
		return true
	}
	sortWrites(t.writes)
	// The write-set index maps TVars to pre-sort slots, so it is stale from
	// here on; commit is the attempt's last act, and the lookups below
	// (writeSetHas) binary-search the now-sorted entries instead.
	nLocked := 0
	for i := range t.writes {
		v := t.writes[i].v
		ver, recorded := t.readVersionOf(v)
		if !recorded {
			ver = v.version.Load()
			if ver&1 == 1 || ver > t.readVersion {
				return t.commitFail(nLocked, v)
			}
		}
		if !v.version.CompareAndSwap(ver, ver+1) {
			return t.commitFail(nLocked, v)
		}
		nLocked++
	}
	// Validate reads not covered by write locks.
	for i := range t.reads {
		e := &t.reads[i]
		if t.writeSetHas(e.v) {
			continue
		}
		if e.v.version.Load() != e.ver {
			return t.commitFail(nLocked, e.v)
		}
	}
	commitVersion := globalClock.Add(2)
	stamp := t.sys.writerStamp(t.dtx)
	for i := range t.writes {
		e := &t.writes[i]
		e.v.val.Store(publish(e.val))
		e.v.lastWriter.Store(stamp)
		e.v.version.Store(commitVersion)
	}
	return true
}

// commitFail rolls back the locked prefix (restoring pre-lock versions),
// attributes the conflict to v's last writer, and reports failure.
//
//bfgts:allocfree
func (t *Tx) commitFail(nLocked int, v *tvar) bool {
	for i := 0; i < nLocked; i++ {
		lv := t.writes[i].v
		lv.version.Store(lv.version.Load() - 1)
	}
	t.enemy = v.lastWriter.Load()
	return false
}

// writeSetHas reports membership in the write set after sortWrites has
// ordered it by key: a binary search, valid only during and after commit.
//
//bfgts:allocfree
func (t *Tx) writeSetHas(v *tvar) bool {
	lo, hi := 0, len(t.writes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.writes[mid].v.key < v.key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(t.writes) && t.writes[lo].v == v
}

// readVersionOf returns the version recorded when v was first read.
//
//bfgts:allocfree
func (t *Tx) readVersionOf(v *tvar) (ver uint64, recorded bool) {
	if i := t.lookupRead(v); i >= 0 {
		return t.reads[i].ver, true
	}
	return 0, false
}

// publish boxes the buffered value into the immutable heap cell concurrent
// readers will hold — the one allocation a commit makes by design: the
// cell outlives the transaction and can never be recycled while readers
// that loaded the pointer are still dereferencing it.
func publish(val any) *any {
	boxed := val
	return &boxed
}
