// Package stm is a runnable software transactional memory for Go programs
// with BFGTS-style scheduling. It exists because the paper's system is a
// hardware TM inside a simulator: this package gives the library a real
// concurrent API exercising the same contention-management machinery
// (internal/core) on live goroutines.
//
// The TM itself is a word-based STM in the TL2 tradition: a global version
// clock, per-TVar versioned locks, lazy versioning (writes buffered until
// commit), commit-time locking in a canonical order and read-set
// validation. The contention manager plugs in at the same three points as
// in the simulator: transaction begin (predict-and-serialize), abort
// (confidence strengthening) and commit (Bloom-filter similarity
// bookkeeping).
//
// Usage:
//
//	sys := stm.NewSystem(stm.Config{Workers: 8, StaticTxs: 2, Scheduler: stm.SchedBFGTS})
//	acct := stm.NewTVar(100)
//	err := sys.Atomic(workerID, 0, func(tx *stm.Tx) error {
//		bal := acct.Read(tx)
//		acct.Write(tx, bal-10)
//		return nil
//	})
//
// The function passed to Atomic may run several times (on conflict); it
// must not have side effects other than TVar reads and writes.
package stm

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// SchedulerKind selects the contention manager.
type SchedulerKind int

// Available schedulers.
const (
	// SchedBackoff retries with randomized exponential backoff.
	SchedBackoff SchedulerKind = iota
	// SchedATS throttles through a central queue above a conflict-pressure
	// threshold (Yoo & Lee).
	SchedATS
	// SchedBFGTS runs the paper's BFGTS-SW: begin-time prediction against
	// the worker table with Bloom-filter similarity bookkeeping.
	SchedBFGTS
)

// Config parameterizes a System.
type Config struct {
	// Workers is the number of concurrent transaction slots; each
	// goroutine using the system claims a worker ID in [0, Workers).
	Workers int
	// StaticTxs is the number of distinct atomic blocks in the program.
	StaticTxs int
	Scheduler SchedulerKind
	// BloomBits sizes the BFGTS read/write-set filters (default 1024).
	BloomBits int
	// PressureThreshold tunes SchedATS (default 0.5).
	PressureThreshold float64
}

// System owns the scheduling state shared by all transactions.
type System struct {
	cfg Config

	// running[w] holds the dTxID executing on worker w, or core.NoTx.
	running []atomic.Int64

	// mu guards rt (the BFGTS runtime is single-threaded by design — in
	// hardware it is per-CPU registers and snooped tables) and the commit
	// scratch buffers below.
	mu       sync.Mutex
	rt       *core.Runtime
	lineBuf  []uint64 // scratch: read/write-set lines for CommitTx
	writeBuf []uint64 // scratch: written lines for CommitTx

	pressure []atomic.Int64 // fixed-point ATS conflict pressure per stx

	commits atomic.Int64
	aborts  atomic.Int64
}

// NewSystem builds a System.
func NewSystem(cfg Config) *System {
	if cfg.Workers <= 0 || cfg.StaticTxs <= 0 {
		panic("stm: Config needs positive Workers and StaticTxs")
	}
	if cfg.BloomBits == 0 {
		cfg.BloomBits = 1024
	}
	if cfg.PressureThreshold == 0 {
		cfg.PressureThreshold = 0.5
	}
	ccfg := core.DefaultConfig(cfg.Workers, cfg.StaticTxs)
	ccfg.BloomBits = cfg.BloomBits
	s := &System{
		cfg:      cfg,
		running:  make([]atomic.Int64, cfg.Workers),
		rt:       core.NewRuntime(ccfg, core.DefaultCosts()),
		pressure: make([]atomic.Int64, cfg.StaticTxs),
	}
	for i := range s.running {
		s.running[i].Store(int64(core.NoTx))
	}
	return s
}

// Commits returns the number of committed transactions.
func (s *System) Commits() int64 { return s.commits.Load() }

// Aborts returns the number of aborted transaction attempts.
func (s *System) Aborts() int64 { return s.aborts.Load() }

// globalClock is the TL2 version clock shared by all TVars (they can be
// shared across Systems, so the clock is process-wide).
var globalClock atomic.Uint64

// tvar is the type-erased TVar core.
type tvar struct {
	// version is even when unlocked (the commit timestamp of the current
	// value) and odd while a committer holds the write lock.
	version atomic.Uint64
	val     atomic.Pointer[any]
	// lastWriter is the dTxID that last committed a write, for conflict
	// attribution.
	lastWriter atomic.Int64
}

// TVar is a transactional variable holding a value of type T.
type TVar[T any] struct {
	v tvar
}

// NewTVar creates a TVar with an initial value.
func NewTVar[T any](initial T) *TVar[T] {
	tv := &TVar[T]{}
	var boxed any = initial
	tv.v.val.Store(&boxed)
	tv.v.lastWriter.Store(int64(core.NoTx))
	return tv
}

// Read returns the TVar's value inside a transaction.
func (tv *TVar[T]) Read(tx *Tx) T {
	got := tx.read(&tv.v)
	if got == nil {
		var zero T
		return zero
	}
	return (*got).(T)
}

// Write buffers a new value for the TVar inside a transaction.
func (tv *TVar[T]) Write(tx *Tx, val T) {
	var boxed any = val
	tx.write(&tv.v, &boxed)
}

// Peek reads the committed value outside any transaction (for tests and
// post-run inspection; racy only in the benign read-latest sense).
func (tv *TVar[T]) Peek() T {
	return (*tv.v.val.Load()).(T)
}

// tvarKey gives each TVar a stable identity for lock ordering and for the
// Bloom-filter signatures (the analogue of a cache-line address).
func tvarKey(v *tvar) uint64 {
	return uint64(reflect.ValueOf(v).Pointer())
}

// Tx is one transaction attempt.
type Tx struct {
	sys    *System
	worker int
	stx    int
	dtx    int

	readVersion uint64
	reads       map[*tvar]uint64
	writes      map[*tvar]*any

	enemy int64 // dTxID attributed to the last conflict, or core.NoTx
}

func (t *Tx) read(v *tvar) *any {
	if val, ok := t.writes[v]; ok {
		return val
	}
	for {
		v1 := v.version.Load()
		if v1&1 == 1 || v1 > t.readVersion {
			t.enemy = v.lastWriter.Load()
			panic(txAbort{})
		}
		val := v.val.Load()
		if v.version.Load() == v1 {
			t.reads[v] = v1
			return val
		}
	}
}

func (t *Tx) write(v *tvar, val *any) {
	t.writes[v] = val
}

// txAbort unwinds a doomed attempt through the user function.
type txAbort struct{}

// Atomic runs fn transactionally as worker `worker` executing static
// transaction stx, retrying on conflicts until it commits. A non-nil error
// from fn aborts the transaction (its writes are discarded) and is
// returned.
func (s *System) Atomic(worker, stx int, fn func(*Tx) error) error {
	if worker < 0 || worker >= s.cfg.Workers {
		panic(fmt.Sprintf("stm: worker %d out of range", worker))
	}
	if stx < 0 || stx >= s.cfg.StaticTxs {
		panic(fmt.Sprintf("stm: static tx %d out of range", stx))
	}
	dtx := worker*s.cfg.StaticTxs + stx
	attempt := 0
	for {
		s.scheduleBegin(worker, stx, dtx, attempt)
		tx := &Tx{
			sys: s, worker: worker, stx: stx, dtx: dtx,
			readVersion: globalClock.Load(),
			reads:       make(map[*tvar]uint64),
			writes:      make(map[*tvar]*any),
			enemy:       int64(core.NoTx),
		}
		s.running[worker].Store(int64(dtx))
		err, aborted := tx.run(fn)
		s.running[worker].Store(int64(core.NoTx))
		if !aborted {
			if err == nil {
				s.commits.Add(1)
				s.onCommit(tx)
			}
			return err
		}
		s.aborts.Add(1)
		attempt++
		s.onAbort(tx, attempt)
	}
}

// run executes one attempt; aborted reports a conflict retry is needed.
func (t *Tx) run(fn func(*Tx) error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(txAbort); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	if err := fn(t); err != nil {
		return err, false
	}
	if !t.commit() {
		return nil, true
	}
	return nil, false
}

// commit performs TL2 commit: lock the write set in canonical order,
// validate the read set, publish.
func (t *Tx) commit() bool {
	if len(t.writes) == 0 {
		// Read-only: the read set was validated incrementally against a
		// fixed readVersion; nothing to publish.
		return true
	}
	locked := make([]*tvar, 0, len(t.writes))
	order := make([]*tvar, 0, len(t.writes))
	for v := range t.writes {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool {
		return tvarKey(order[i]) < tvarKey(order[j])
	})
	release := func() {
		for _, v := range locked {
			v.version.Store(v.version.Load() - 1) // restore pre-lock version
		}
	}
	for _, v := range order {
		ver, ok := t.reads[v]
		if !ok {
			ver = v.version.Load()
			if ver&1 == 1 || ver > t.readVersion {
				t.enemy = v.lastWriter.Load()
				release()
				return false
			}
		}
		if !v.version.CompareAndSwap(ver, ver+1) {
			t.enemy = v.lastWriter.Load()
			release()
			return false
		}
		locked = append(locked, v)
	}
	// Validate reads not covered by write locks.
	for v, ver := range t.reads {
		if _, writes := t.writes[v]; writes {
			continue
		}
		if v.version.Load() != ver {
			t.enemy = v.lastWriter.Load()
			release()
			return false
		}
	}
	commitVersion := globalClock.Add(2)
	for _, v := range order {
		v.val.Store(t.writes[v])
		v.lastWriter.Store(int64(t.dtx))
		v.version.Store(commitVersion)
	}
	return true
}
