package stm

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// stmMetrics is the System's hot-path instrumentation: a struct of atomic
// counters bumped lock-free by workers and managers. internal/metrics'
// Registry is deliberately not safe for concurrent use, so the STM counts
// here and folds into a Registry only on demand (SnapshotMetrics).
type stmMetrics struct {
	begins  atomic.Int64 // Atomic calls
	commits atomic.Int64 // committed transactions
	aborts  atomic.Int64 // aborted attempts

	// Shared abort machinery.
	backoffNanos   atomic.Int64 // total time slept in backoff
	foreignEnemies atomic.Int64 // conflicts attributed to another System's writer

	// BFGTS begin-time scheduling.
	predicted    atomic.Int64 // begin-time scans that predicted a conflict
	yields       atomic.Int64 // suspensions as yield (big enemy)
	stalls       atomic.Int64 // suspensions as spin-stall (small enemy)
	beginEscapes atomic.Int64 // watchdog escapes out of a predicting begin loop

	// BFGTS learning loop.
	confStrengthens atomic.Int64 // abort-time confidence increments
	validHits       atomic.Int64 // commit-time validations confirming a suspension
	validMisses     atomic.Int64 // commit-time validations refuting one
	simUpdates      atomic.Int64 // similarity EWMA updates (signature republishes)

	// ATS throttling.
	throttleWaits atomic.Int64 // begin-time throttle sleeps
}

// SnapshotMetrics folds the System's counters (and the manager's gauges)
// into a Registry under the "stm." prefix. The Registry is not safe for
// concurrent use: call this from one goroutine, after or between workloads.
// Counter values are cumulative since System creation, so snapshot into a
// fresh Registry (or diff) rather than folding twice into one.
func (s *System) SnapshotMetrics(reg *metrics.Registry) {
	reg.Counter("stm.begins").Add(s.met.begins.Load())
	reg.Counter("stm.commits").Add(s.met.commits.Load())
	reg.Counter("stm.aborts").Add(s.met.aborts.Load())
	reg.Counter("stm.backoff_nanos").Add(s.met.backoffNanos.Load())
	reg.Counter("stm.foreign_enemies").Add(s.met.foreignEnemies.Load())
	reg.Counter("stm.predicted_conflicts").Add(s.met.predicted.Load())
	reg.Counter("stm.yields").Add(s.met.yields.Load())
	reg.Counter("stm.stalls").Add(s.met.stalls.Load())
	reg.Counter("stm.begin_escapes").Add(s.met.beginEscapes.Load())
	reg.Counter("stm.conf_strengthens").Add(s.met.confStrengthens.Load())
	reg.Counter("stm.validation_hits").Add(s.met.validHits.Load())
	reg.Counter("stm.validation_misses").Add(s.met.validMisses.Load())
	reg.Counter("stm.sim_updates").Add(s.met.simUpdates.Load())
	reg.Counter("stm.throttle_waits").Add(s.met.throttleWaits.Load())
	if cr, ok := s.mgr.(ConfidenceReporter); ok {
		reg.Gauge("stm.mean_confidence").Set(cr.MeanConfidence())
	}
	if pr, ok := s.mgr.(PressureReporter); ok {
		reg.Gauge("stm.mean_pressure").Set(pr.MeanPressure())
	}
	if m, ok := s.mgr.(*bfgtsManager); ok {
		incs, decs := m.conf.Updates()
		reg.Counter("stm.conf_incs").Add(incs)
		reg.Counter("stm.conf_decs").Add(decs)
		// Per-worker begin-probe histograms, merged here because the
		// Registry is not concurrency-safe. probe_len counts candidates
		// visited per begin prediction under the Bloofi directory (or
		// entries scanned, under LinearPredict); probe_nodes and
		// probe_running exist only in directory mode.
		lenH := reg.Histogram("stm.predict.probe_len").Stats()
		nodeH := reg.Histogram("stm.predict.probe_nodes").Stats()
		runH := reg.Histogram("stm.predict.probe_running").Stats()
		if lenH != nil { // nil Registry: instruments (and Stats) are nil
			for w := range m.probes {
				wp := &m.probes[w]
				lenH.Merge(&wp.lenHist)
				if m.dir != nil {
					nodeH.Merge(&wp.nodeHist)
					runH.Merge(&wp.runHist)
				}
			}
		}
	}
}
