package stm

import "testing"

// TVars are documented as shareable across Systems, but conflict
// attribution flows the enemy's dynamic transaction ID from whichever
// System last wrote the TVar into this System's scheduler state. A dTxID
// minted by a differently-sized System is out of range for the local
// confidence/statistics tables; before the System-qualified lastWriter
// encoding, the BFGTS abort hook fed it unvalidated into the runtime and
// panicked (index out of range), and the ATS hook folded a foreign ID into
// a local pressure slot.

// TestCrossSystemEnemyAttribution forces a deterministic conflict between
// two Systems of different shapes sharing one TVar. The large System
// commits from its highest dTxID (31); when the 1-worker/1-stx System
// aborts on that TVar, its enemy attribution must drop the foreign ID
// instead of indexing local tables with it.
func TestCrossSystemEnemyAttribution(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedBFGTS, SchedATS} {
		big := NewSystem(Config{Workers: 8, StaticTxs: 4, Scheduler: kind})
		small := NewSystem(Config{Workers: 1, StaticTxs: 1, Scheduler: kind})
		shared := NewTVar(0)

		bump := func() {
			// dtx = 7*4+3 = 31 inside big — far out of range for small.
			if err := big.Atomic(7, 3, func(tx *Tx) error {
				shared.Write(tx, shared.Read(tx)+1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		bump() // seed lastWriter with big's dTxID 31

		injected := false
		err := small.Atomic(0, 0, func(tx *Tx) error {
			got := shared.Read(tx)
			if !injected {
				injected = true
				// Commit a foreign write between this attempt's first and
				// second reads: the re-read sees a version beyond the
				// attempt's snapshot and aborts with big's dTxID as the
				// enemy. The retry (injected == true) passes cleanly.
				bump()
			}
			_ = shared.Read(tx) // aborts attempt 0, succeeds on retry
			shared.Write(tx, got+100)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: cross-System abort returned error: %v", kind, err)
		}
		if !injected {
			t.Fatalf("%v: conflict injection never ran", kind)
		}
		if small.Aborts() == 0 {
			t.Fatalf("%v: expected at least one abort from the injected conflict", kind)
		}
	}
}
