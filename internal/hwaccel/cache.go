// Package hwaccel models the BFGTS scheduling hardware accelerator of
// Section 4.1 and Figure 2: one predictor unit per CPU, each holding a CPU
// table (the dTxID running on every remote processor, maintained by snoop
// broadcasts), control registers (confidence-table base address, sTxID
// shift, confidence threshold, and a wait register holding the dTxID to
// serialize behind), and a small dedicated cache for confidence-table
// lines (Table 2: 2 kB, 16-way, 64-byte lines, 1-cycle hits).
//
// On TX_BEGIN the unit walks the CPU table, fetches the confidence between
// the beginning static transaction and each running one, and compares it
// against the threshold (Example 1) — a few cycles instead of the software
// scan's hundreds. The paper's cache refetches lines evicted by invalidate
// snoops, so remote confidence updates do not inflate the prediction
// latency; the model therefore charges misses only for cold and capacity
// effects.
package hwaccel

import "repro/internal/metrics"

// CacheConfig describes a set-associative cache.
type CacheConfig struct {
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitCycles  int64
	MissCycles int64 // fill from L2
}

// DefaultCacheConfig is the Tx Confidence Cache of Table 2.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{
		SizeBytes:  2048,
		Ways:       16,
		LineBytes:  64,
		HitCycles:  1,
		MissCycles: 32,
	}
}

// Cache is a tiny set-associative cache model with LRU replacement. It
// tracks only tags; the simulator charges latencies from the access
// outcomes.
type Cache struct {
	cfg  CacheConfig
	sets [][]uint64 // per set, tags in LRU order (front = most recent)

	hits, misses int64

	// hitCtr/missCtr mirror the counters into a metrics registry when
	// attached; nil instruments are free no-ops.
	hitCtr, missCtr *metrics.Counter
}

// SetMetrics attaches registry counters that mirror the hit/miss totals.
// Banks share one counter pair across all per-CPU caches so the registry
// reports system-wide figures.
func (c *Cache) SetMetrics(hits, misses *metrics.Counter) {
	c.hitCtr, c.missCtr = hits, misses
}

// NewCache builds a cache model; the configuration must describe at least
// one set of at least one way.
func NewCache(cfg CacheConfig) *Cache {
	nLines := cfg.SizeBytes / cfg.LineBytes
	if nLines <= 0 || cfg.Ways <= 0 {
		panic("hwaccel: degenerate cache configuration")
	}
	nSets := nLines / cfg.Ways
	if nSets == 0 {
		nSets = 1
	}
	sets := make([][]uint64, nSets)
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Access touches the byte address and returns the access latency in
// cycles, installing the line on a miss.
func (c *Cache) Access(addr uint64) int64 {
	tag := addr / uint64(c.cfg.LineBytes)
	set := c.sets[tag%uint64(len(c.sets))]
	for i, t := range set {
		if t == tag {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			c.hitCtr.Inc()
			return c.cfg.HitCycles
		}
	}
	c.misses++
	c.missCtr.Inc()
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[tag%uint64(len(c.sets))] = set
	return c.cfg.MissCycles
}

// Invalidate drops the line containing addr, then immediately refetches it
// — the paper's snoop-refetch behavior ("modified to fetch cache lines
// evicted by an invalidate snoop"). The refetch happens off the prediction
// critical path, so no latency is returned and subsequent accesses hit.
func (c *Cache) Invalidate(addr uint64) {
	// With refetch semantics the line stays resident; modeled as a no-op
	// on the tag store. Kept as an explicit method so a non-refetching
	// variant can be ablated.
	_ = addr
}

// InvalidateNoRefetch drops the line containing addr without refetching —
// the conventional cache behavior the paper argues against. Used by the
// ablation benchmarks.
func (c *Cache) InvalidateNoRefetch(addr uint64) {
	tag := addr / uint64(c.cfg.LineBytes)
	set := c.sets[tag%uint64(len(c.sets))]
	for i, t := range set {
		if t == tag {
			c.sets[tag%uint64(len(c.sets))] = append(set[:i], set[i+1:]...)
			return
		}
	}
}

// Stats returns lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }
