package hwaccel

import (
	"testing"

	"repro/internal/core"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(DefaultCacheConfig())
	if lat := c.Access(0); lat != 32 {
		t.Fatalf("cold access latency = %d, want 32 (miss)", lat)
	}
	if lat := c.Access(8); lat != 1 {
		t.Fatalf("same-line access latency = %d, want 1 (hit)", lat)
	}
	if lat := c.Access(64); lat != 32 {
		t.Fatalf("next-line access latency = %d, want miss", lat)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d, %d), want (1, 2)", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 lines of 64B, 1 way => 2 sets, direct mapped.
	c := NewCache(CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 64, HitCycles: 1, MissCycles: 10})
	c.Access(0)   // set 0
	c.Access(128) // set 0, evicts line 0
	if lat := c.Access(0); lat != 10 {
		t.Fatalf("evicted line access = %d, want miss", lat)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// One set, 2 ways.
	c := NewCache(CacheConfig{SizeBytes: 128, Ways: 2, LineBytes: 64, HitCycles: 1, MissCycles: 10})
	c.Access(0)   // A
	c.Access(128) // B (same set: tags 0 and 2 both mod 1? one set since 2 lines/2 ways)
	c.Access(0)   // touch A -> A is MRU
	c.Access(256) // C evicts LRU = B
	if lat := c.Access(0); lat != 1 {
		t.Fatal("MRU line was evicted")
	}
	if lat := c.Access(128); lat != 10 {
		t.Fatal("LRU line was not evicted")
	}
}

func TestCacheSnoopRefetchKeepsLineResident(t *testing.T) {
	c := NewCache(DefaultCacheConfig())
	c.Access(0)
	c.Invalidate(0)
	if lat := c.Access(0); lat != 1 {
		t.Fatalf("post-snoop access = %d, want hit (refetch semantics)", lat)
	}
	d := NewCache(DefaultCacheConfig())
	d.Access(0)
	d.InvalidateNoRefetch(0)
	if lat := d.Access(0); lat != 32 {
		t.Fatalf("post-plain-invalidate access = %d, want miss", lat)
	}
}

func newBank(nCPUs int) (*Bank, *core.Runtime) {
	cfg := core.DefaultConfig(nCPUs*4, 4)
	rt := core.NewRuntime(cfg, core.DefaultCosts())
	return NewBank(rt, nCPUs, DefaultCacheConfig()), rt
}

func TestBankBroadcastMaintainsAllTables(t *testing.T) {
	b, rt := newBank(4)
	d := rt.Config().DTx(5, 2)
	b.BroadcastBegin(1, d)
	for cpu := 0; cpu < 4; cpu++ {
		if got := b.Unit(cpu).CPUTable()[1]; got != d {
			t.Fatalf("cpu %d table[1] = %d, want %d", cpu, got, d)
		}
	}
	b.BroadcastEnd(1)
	for cpu := 0; cpu < 4; cpu++ {
		if got := b.Unit(cpu).CPUTable()[1]; got != core.NoTx {
			t.Fatalf("cpu %d table[1] = %d after end, want NoTx", cpu, got)
		}
	}
}

func TestPredictNoConflictWhenTableEmpty(t *testing.T) {
	b, _ := newBank(4)
	pr := b.Unit(0).Predict(0)
	if pr.Conflict {
		t.Fatal("conflict predicted with empty CPU table")
	}
	if pr.Cycles <= 0 {
		t.Fatal("prediction cost non-positive")
	}
}

func TestPredictConflictAboveThreshold(t *testing.T) {
	b, rt := newBank(4)
	cfg := rt.Config()
	enemy := cfg.DTx(7, 3)
	// Saturate confidence between stx 0 and stx 3.
	for i := 0; i < 30; i++ {
		rt.TxConflict(cfg.DTx(0, 0), enemy)
	}
	b.BroadcastBegin(2, enemy)
	pr := b.Unit(0).Predict(0)
	if !pr.Conflict || pr.WaitDTx != enemy {
		t.Fatalf("prediction = %+v, want conflict with %d", pr, enemy)
	}
	if got := b.Unit(0).WaitRegister(); got != enemy {
		t.Fatalf("wait register = %d, want %d", got, enemy)
	}
}

func TestPredictIgnoresOwnCPU(t *testing.T) {
	b, rt := newBank(4)
	cfg := rt.Config()
	self := cfg.DTx(0, 0)
	for i := 0; i < 30; i++ {
		rt.TxConflict(self, cfg.DTx(1, 0))
	}
	b.BroadcastBegin(0, self) // our own slot
	pr := b.Unit(0).Predict(0)
	if pr.Conflict {
		t.Fatal("predictor matched against its own CPU slot")
	}
}

func TestPredictThresholdRegister(t *testing.T) {
	b, rt := newBank(2)
	cfg := rt.Config()
	enemy := cfg.DTx(1, 1)
	rt.TxConflict(cfg.DTx(0, 0), enemy) // small confidence bump
	b.BroadcastBegin(1, enemy)
	u := b.Unit(0)
	u.SetThreshold(0.0001)
	if pr := u.Predict(0); !pr.Conflict {
		t.Fatal("low threshold did not trigger prediction")
	}
	u.SetThreshold(0.9999)
	if pr := u.Predict(0); pr.Conflict {
		t.Fatal("high threshold still triggered prediction")
	}
}

func TestPredictLatencyHotVsCold(t *testing.T) {
	b, rt := newBank(16)
	cfg := rt.Config()
	for cpu := 1; cpu < 16; cpu++ {
		b.BroadcastBegin(cpu, cfg.DTx(cpu, cpu%4))
	}
	cold := b.Unit(0).Predict(0).Cycles
	hot := b.Unit(0).Predict(0).Cycles
	if hot >= cold {
		t.Fatalf("hot prediction (%d cyc) not faster than cold (%d cyc)", hot, cold)
	}
	// A hot 16-entry walk should be on the order of tens of cycles, far
	// below the software scan's hundreds.
	if hot > 40 {
		t.Fatalf("hot hardware prediction = %d cycles, want fast", hot)
	}
}
