package hwaccel

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// Predictor is one per-CPU hardware prediction unit (Figure 2).
type Predictor struct {
	cpu int
	rt  *core.Runtime

	// cpuTable mirrors the dTxID currently executing on every CPU in the
	// system (core.NoTx when idle or non-transactional), maintained by
	// snooping begin/commit/abort broadcasts on the coherent interconnect.
	cpuTable []int

	// Control registers (set via TX_QUERY_PREDICTOR in the paper).
	threshold float64
	waitReg   int // dTxID to serialize behind, read back by software

	cache *Cache

	// walkCycles is the fixed pipeline cost of triggering the walker.
	walkCycles int64
	// entryCycles is the per-entry compare cost on top of the confidence
	// fetch.
	entryCycles int64

	// Bank-shared instruments (nil until Bank.SetMetrics).
	metPredictions *metrics.Counter
	metConflicts   *metrics.Counter
	metWalkCycles  *metrics.Counter
}

// Bank is the full complement of predictors, one per CPU, kept coherent by
// broadcast, as the paper distributes one identical unit per processor.
type Bank struct {
	units []*Predictor
}

// NewBank builds predictors for nCPUs processors sharing one runtime's
// confidence table.
func NewBank(rt *core.Runtime, nCPUs int, cacheCfg CacheConfig) *Bank {
	b := &Bank{}
	for cpu := 0; cpu < nCPUs; cpu++ {
		p := &Predictor{
			cpu:         cpu,
			rt:          rt,
			cpuTable:    make([]int, nCPUs),
			threshold:   rt.Config().ConfThreshold,
			waitReg:     core.NoTx,
			cache:       NewCache(cacheCfg),
			walkCycles:  3,
			entryCycles: 1,
		}
		for i := range p.cpuTable {
			p.cpuTable[i] = core.NoTx
		}
		b.units = append(b.units, p)
	}
	return b
}

// Unit returns the predictor attached to a CPU.
func (b *Bank) Unit(cpu int) *Predictor { return b.units[cpu] }

// SetMetrics wires every unit in the bank to shared registry instruments:
// confidence-cache hits/misses aggregated across the per-CPU caches, walker
// cycle totals, and prediction counts. A nil registry disables all of them.
func (b *Bank) SetMetrics(reg *metrics.Registry) {
	hits := reg.Counter("hwaccel.conf_cache.hits")
	misses := reg.Counter("hwaccel.conf_cache.misses")
	preds := reg.Counter("hwaccel.predictions")
	conf := reg.Counter("hwaccel.pred_conflicts")
	walk := reg.Counter("hwaccel.walk_cycles")
	for _, p := range b.units {
		p.cache.SetMetrics(hits, misses)
		p.metPredictions = preds
		p.metConflicts = conf
		p.metWalkCycles = walk
	}
}

// BroadcastBegin announces on the interconnect that cpu started executing
// dtx; every predictor snoops it into its CPU table.
func (b *Bank) BroadcastBegin(cpu, dtx int) {
	for _, p := range b.units {
		p.cpuTable[cpu] = dtx
	}
}

// BroadcastEnd announces that cpu's transaction committed or aborted (or
// its thread was descheduled), clearing the slot in every CPU table.
func (b *Bank) BroadcastEnd(cpu int) {
	for _, p := range b.units {
		p.cpuTable[cpu] = core.NoTx
	}
}

// CPUTable exposes the local unit's snapshot of running transactions, as
// software can read it through TX_QUERY_PREDICTOR.
func (p *Predictor) CPUTable() []int { return p.cpuTable }

// WaitRegister returns the dTxID the last positive prediction decided to
// serialize behind (TX_QUERY_PREDICTOR's "query what dTxID to serialize
// against").
func (p *Predictor) WaitRegister() int { return p.waitReg }

// SetThreshold updates the confidence threshold control register.
func (p *Predictor) SetThreshold(t float64) { p.threshold = t }

// Predict implements Example 1 in hardware: walk the CPU table, fetch the
// confidence entry for (stx, running stx) — each fetch going through the
// dedicated confidence cache — and compare against the threshold. It
// returns the prediction and its latency in cycles.
//
// The walk short-circuits: like the pseudo-code, it stops at the first
// predicted conflict, so a hit early in the CPU table costs fewer cache
// accesses than a clean scan. An exhaustive walk that inspects every
// remote entry regardless of hits is not modeled.
func (p *Predictor) Predict(stx int) core.Prediction {
	pr := core.Prediction{WaitDTx: core.NoTx, Cycles: p.walkCycles}
	cfg := p.rt.Config()
	for cpu, dtx := range p.cpuTable {
		if cpu == p.cpu || dtx == core.NoTx {
			continue
		}
		_, otherStx := cfg.SplitDTx(dtx)
		// The confidence tables are per-CPU copies at a base physical
		// address; entry layout is one byte per (row, column) pair, row =
		// beginning sTxID.
		entryAddr := uint64(stx*cfg.NumStatic + otherStx)
		pr.Cycles += p.cache.Access(entryAddr) + p.entryCycles
		if p.rt.Conf(stx, otherStx) > p.threshold {
			pr.Conflict = true
			pr.WaitDTx = dtx
			p.waitReg = dtx
			break
		}
	}
	if p.rt.Costs().NoOverhead {
		pr.Cycles = 1
	}
	p.metPredictions.Inc()
	p.metWalkCycles.Add(pr.Cycles)
	if pr.Conflict {
		p.metConflicts.Inc()
	}
	return pr
}

// CacheStats exposes the confidence cache's hit/miss counters.
func (p *Predictor) CacheStats() (hits, misses int64) { return p.cache.Stats() }
