package tm

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet mirrors a lineSet with the map the implementation replaced.
type refSet map[uint64]struct{}

// checkLineSet verifies s and ref agree on size, membership (both
// directions), and enumeration.
func checkLineSet(t *testing.T, s *lineSet, ref refSet) {
	t.Helper()
	if s.len() != len(ref) {
		t.Fatalf("len = %d, want %d", s.len(), len(ref))
	}
	for addr := range ref {
		if !s.has(addr) {
			t.Fatalf("missing %#x", addr)
		}
	}
	got := s.appendTo(nil)
	if len(got) != len(ref) {
		t.Fatalf("appendTo returned %d addrs, want %d", len(got), len(ref))
	}
	for _, addr := range got {
		if _, ok := ref[addr]; !ok {
			t.Fatalf("appendTo returned %#x not in reference", addr)
		}
	}
	seen := 0
	s.each(func(addr uint64) {
		if _, ok := ref[addr]; !ok {
			t.Fatalf("each yielded %#x not in reference", addr)
		}
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("each yielded %d addrs, want %d", seen, len(ref))
	}
}

// TestLineSetDifferential drives random operation sequences through a
// lineSet and the map it replaced, checking they stay identical. The
// universe is kept small so sequences hit duplicates, address zero (the
// probe table's empty sentinel), the inline→table spill at lineSetInline+1
// elements, table growth, and reset/reuse of spilled capacity.
func TestLineSetDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		var s lineSet
		ref := refSet{}
		// Vary the op count so trials end inline, just past the spill
		// boundary, and deep into table-growth territory.
		ops := 1 + rng.Intn(3*lineSetInline*(trial%5+1))
		for op := 0; op < ops; op++ {
			switch rng.Intn(16) {
			case 0: // reset and keep going: spilled capacity must still work
				s.reset()
				ref = refSet{}
			default:
				addr := uint64(rng.Intn(4 * lineSetInline)) // dense, includes 0
				if rng.Intn(8) == 0 {
					addr = rng.Uint64() // occasional sparse address
				}
				_, dup := ref[addr]
				ref[addr] = struct{}{}
				if fresh := s.add(addr); fresh == dup {
					t.Fatalf("trial %d: add(%#x) fresh=%v, want %v", trial, addr, fresh, !dup)
				}
			}
			probe := uint64(rng.Intn(4 * lineSetInline))
			_, want := ref[probe]
			if got := s.has(probe); got != want {
				t.Fatalf("trial %d: has(%#x) = %v, want %v", trial, probe, got, want)
			}
		}
		checkLineSet(t, &s, ref)
	}
}

// TestLineSetIntersectsDifferential checks intersects (which probes the
// larger set with the smaller) against the brute-force answer, across
// inline/spilled size combinations.
func TestLineSetIntersectsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		var a, b lineSet
		refA, refB := refSet{}, refSet{}
		na, nb := rng.Intn(3*lineSetInline), rng.Intn(3*lineSetInline)
		for i := 0; i < na; i++ {
			addr := uint64(rng.Intn(6 * lineSetInline))
			a.add(addr)
			refA[addr] = struct{}{}
		}
		for i := 0; i < nb; i++ {
			addr := uint64(rng.Intn(6 * lineSetInline))
			b.add(addr)
			refB[addr] = struct{}{}
		}
		want := false
		for addr := range refA {
			if _, ok := refB[addr]; ok {
				want = true
				break
			}
		}
		if got := a.intersects(&b); got != want {
			t.Fatalf("trial %d: intersects = %v, want %v (|a|=%d |b|=%d)", trial, got, want, na, nb)
		}
		if got := b.intersects(&a); got != want {
			t.Fatalf("trial %d: intersects not symmetric", trial)
		}
	}
}

// TestLineSetAppendToReusesCapacity pins the allocation contract of the
// enumeration used on the commit path: appending into a buffer with enough
// capacity never allocates.
func TestLineSetAppendToReusesCapacity(t *testing.T) {
	var s lineSet
	for i := 0; i < 2*lineSetInline; i++ {
		s.add(uint64(i)) // includes 0; spilled
	}
	buf := make([]uint64, 0, 2*lineSetInline)
	allocs := testing.AllocsPerRun(100, func() {
		buf = s.appendTo(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("appendTo into pre-sized buffer: %v allocs/op, want 0", allocs)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	for i, addr := range buf {
		if addr != uint64(i) {
			t.Fatalf("buf[%d] = %d, want %d", i, addr, i)
		}
	}
}

// lifecycle runs one begin→access→commit round: the simulator's hot path.
func lifecycle(s *System, span int) {
	tx := s.Begin(0, 0, 0)
	for j := 0; j < span; j++ {
		s.Access(tx, uint64(64*(j+1)), j < span/2)
	}
	s.Commit(tx)
}

// TestTxLifecycleAllocFree proves the pooled-transaction commit path stays
// off the allocator in steady state, for both inline and spilled set sizes.
// One warm-up round populates the free lists and grows the line directory;
// every round after that must allocate nothing.
func TestTxLifecycleAllocFree(t *testing.T) {
	for _, span := range []int{8, 2 * lineSetInline} {
		s := NewSystem(1)
		lifecycle(s, span) // warm the Tx/line free lists and set capacity
		allocs := testing.AllocsPerRun(200, func() { lifecycle(s, span) })
		if allocs != 0 {
			t.Fatalf("span %d: tx lifecycle costs %v allocs/op, want 0", span, allocs)
		}
	}
}

// BenchmarkTxLifecycle measures the steady-state begin→access→commit round
// trip (8 lines, half written). Pairs with TestTxLifecycleAllocFree: the
// interesting numbers are ns/op and the 0 allocs/op.
func BenchmarkTxLifecycle(b *testing.B) {
	s := NewSystem(1)
	lifecycle(s, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lifecycle(s, 8)
	}
}
