// Package tm implements the simulated hardware transactional memory that
// BFGTS schedules on top of. It follows LogTM (Moore et al.): eager
// version management (old values logged, new values in place, so commits
// are cheap and aborts pay a rollback walk) and eager conflict detection at
// cache-line granularity (a requester whose access conflicts with a running
// transaction is NACKed and stalls).
//
// Deadlock among stalled transactions is resolved with a wait-for graph:
// when adding a stall edge closes a cycle, the youngest transaction in the
// cycle is doomed and must abort. This is the moral equivalent of LogTM's
// possible-cycle heuristic, made exact because the simulator has global
// knowledge.
//
// The package is pure bookkeeping: it owns no notion of time. The runner
// (internal/sim) drives it and charges cycles for stalls and rollbacks.
package tm

import "fmt"

// Tx is one dynamic transaction attempt.
type Tx struct {
	DTx    int // dynamic transaction ID: thread*M + static ID
	STx    int // static transaction ID (position in the code)
	Thread int

	// Seq is the global begin order, used as the age for youngest-aborts
	// deadlock resolution. Lower is older.
	Seq uint64

	// Doomed marks the transaction as killed by deadlock resolution; the
	// runner must abort it at the next step boundary.
	Doomed      bool
	DoomedByTid int // thread of the transaction it conflicted with
	DoomedByStx int

	reads  map[uint64]struct{}
	writes map[uint64]struct{}

	waitFor *Tx // the transaction this one is stalled behind, if any
}

// NumWrites returns the number of distinct lines written (rollback cost is
// proportional to this, per LogTM's undo-log walk).
func (t *Tx) NumWrites() int { return len(t.writes) }

// NumLines returns the read/write-set size in distinct cache lines.
func (t *Tx) NumLines() int {
	n := len(t.writes)
	for a := range t.reads {
		if _, w := t.writes[a]; !w {
			n++
		}
	}
	return n
}

// ConflictsWith reports whether the two transactions' line sets overlap
// with a write on at least one side — the ground truth for "would these
// two have conflicted had they run concurrently". Line sets survive
// release, so this can be evaluated after either side has finished.
func (t *Tx) ConflictsWith(o *Tx) bool {
	for a := range t.writes {
		if _, ok := o.writes[a]; ok {
			return true
		}
		if _, ok := o.reads[a]; ok {
			return true
		}
	}
	for a := range o.writes {
		if _, ok := t.reads[a]; ok {
			return true
		}
	}
	return false
}

// Lines calls fn for every distinct line in the read/write set.
func (t *Tx) Lines(fn func(addr uint64)) {
	for a := range t.writes {
		fn(a)
	}
	for a := range t.reads {
		if _, w := t.writes[a]; !w {
			fn(a)
		}
	}
}

// AccessResult reports the outcome of a transactional memory access.
type AccessResult struct {
	// OK means the access succeeded and the line is now isolated.
	OK bool
	// Holder, when OK is false, is the transaction the requester must stall
	// behind (it was NACKed). The requester retries after Holder releases
	// its isolation. If the deadlock resolver doomed the requester instead,
	// OK is false, Holder is nil, and the requester's Doomed flag is set.
	Holder *Tx
}

type line struct {
	writer  *Tx
	readers []*Tx
}

// System is the global conflict-detection state: the line directory and the
// set of active transactions.
type System struct {
	// OnDoom, if set, is called when deadlock resolution dooms a
	// transaction other than the current requester, so the runner can
	// interrupt its thread.
	OnDoom func(*Tx)

	nStatic   int
	lines     map[uint64]*line
	active    map[int]*Tx // keyed by DTx
	seq       uint64
	conflicts [][]int64 // conflict counts between static IDs (Table 1)

	commits, aborts int64
}

// NewSystem creates a TM system for a program with nStatic static
// transactions.
func NewSystem(nStatic int) *System {
	c := make([][]int64, nStatic)
	for i := range c {
		c[i] = make([]int64, nStatic)
	}
	return &System{
		nStatic:   nStatic,
		lines:     make(map[uint64]*line),
		active:    make(map[int]*Tx),
		conflicts: c,
	}
}

// Begin starts a transaction for the given thread and static ID. A thread
// may only have one active transaction at a time.
func (s *System) Begin(thread, stx, dtx int) *Tx {
	if _, dup := s.active[dtx]; dup {
		panic(fmt.Sprintf("tm: dtx %d already active", dtx))
	}
	s.seq++
	tx := &Tx{
		DTx:    dtx,
		STx:    stx,
		Thread: thread,
		Seq:    s.seq,
		reads:  make(map[uint64]struct{}),
		writes: make(map[uint64]struct{}),
	}
	s.active[dtx] = tx
	return tx
}

// Active reports whether the dynamic transaction is currently executing.
func (s *System) Active(dtx int) bool {
	_, ok := s.active[dtx]
	return ok
}

// ActiveTx returns the active transaction with the given dynamic ID, if any.
func (s *System) ActiveTx(dtx int) *Tx { return s.active[dtx] }

// Commits and Aborts return lifetime counters.
func (s *System) Commits() int64 { return s.commits }

// Aborts returns the number of aborted transaction attempts.
func (s *System) Aborts() int64 { return s.aborts }

// ConflictMatrix returns conflict counts between static transaction IDs,
// the raw data behind the paper's Table 1.
func (s *System) ConflictMatrix() [][]int64 { return s.conflicts }

// Access performs a transactional read or write of a cache line.
func (s *System) Access(tx *Tx, addr uint64, write bool) AccessResult {
	if tx.Doomed {
		return AccessResult{}
	}
	tx.waitFor = nil // a retry clears any previous stall edge

	ln := s.lines[addr]
	if ln == nil {
		ln = &line{}
		s.lines[addr] = ln
	}

	if ln.writer != nil && ln.writer != tx {
		return s.conflict(tx, ln.writer)
	}
	if write {
		for _, r := range ln.readers {
			if r != tx {
				return s.conflict(tx, r)
			}
		}
		ln.writer = tx
		tx.writes[addr] = struct{}{}
		return AccessResult{OK: true}
	}
	// Read: writer is nil or self.
	if _, already := tx.reads[addr]; !already {
		tx.reads[addr] = struct{}{}
		found := false
		for _, r := range ln.readers {
			if r == tx {
				found = true
				break
			}
		}
		if !found {
			ln.readers = append(ln.readers, tx)
		}
	}
	return AccessResult{OK: true}
}

// conflict records a requester/holder conflict, installs the stall edge,
// and resolves any wait-for cycle by dooming the youngest participant.
func (s *System) conflict(req, holder *Tx) AccessResult {
	s.conflicts[req.STx][holder.STx]++
	s.conflicts[holder.STx][req.STx]++

	req.waitFor = holder
	if victim := s.findCycleVictim(req); victim != nil {
		// Identify the enemy as the transaction the victim was waiting on
		// (or the requester, for the holder side of a two-cycle).
		enemy := victim.waitFor
		if enemy == nil || enemy == victim {
			enemy = req
		}
		victim.Doomed = true
		victim.DoomedByTid = enemy.Thread
		victim.DoomedByStx = enemy.STx
		victim.waitFor = nil
		if victim == req {
			return AccessResult{}
		}
		if s.OnDoom != nil {
			s.OnDoom(victim)
		}
	}
	return AccessResult{Holder: holder}
}

// findCycleVictim walks the wait-for chain from req. If the chain loops
// back to req, the youngest transaction on the cycle is returned.
func (s *System) findCycleVictim(req *Tx) *Tx {
	victim := req
	node := req.waitFor
	steps := 0
	for node != nil {
		if node == req {
			return victim
		}
		if node.Seq > victim.Seq {
			victim = node
		}
		node = node.waitFor
		if steps++; steps > len(s.active)+1 {
			panic("tm: wait-for walk did not terminate")
		}
	}
	return nil
}

// Commit finishes a transaction successfully, releasing its isolation.
func (s *System) Commit(tx *Tx) {
	if tx.Doomed {
		panic("tm: committing a doomed transaction")
	}
	s.commits++
	s.release(tx)
}

// Abort finishes a rolled-back transaction, releasing its isolation. The
// runner calls this after charging the rollback cost.
func (s *System) Abort(tx *Tx) {
	s.aborts++
	s.release(tx)
}

func (s *System) release(tx *Tx) {
	for addr := range tx.writes {
		if ln := s.lines[addr]; ln != nil && ln.writer == tx {
			ln.writer = nil
			if len(ln.readers) == 0 {
				delete(s.lines, addr)
			}
		}
	}
	for addr := range tx.reads {
		ln := s.lines[addr]
		if ln == nil {
			continue
		}
		for i, r := range ln.readers {
			if r == tx {
				ln.readers[i] = ln.readers[len(ln.readers)-1]
				ln.readers = ln.readers[:len(ln.readers)-1]
				break
			}
		}
		if ln.writer == nil && len(ln.readers) == 0 {
			delete(s.lines, addr)
		}
	}
	tx.waitFor = nil
	delete(s.active, tx.DTx)
}

// WriteLines calls fn for every distinct line in the write set.
func (t *Tx) WriteLines(fn func(addr uint64)) {
	for a := range t.writes {
		fn(a)
	}
}
