// Package tm implements the simulated hardware transactional memory that
// BFGTS schedules on top of. It follows LogTM (Moore et al.): eager
// version management (old values logged, new values in place, so commits
// are cheap and aborts pay a rollback walk) and eager conflict detection at
// cache-line granularity (a requester whose access conflicts with a running
// transaction is NACKed and stalls).
//
// Deadlock among stalled transactions is resolved with a wait-for graph:
// when adding a stall edge closes a cycle, the youngest transaction in the
// cycle is doomed and must abort. This is the moral equivalent of LogTM's
// possible-cycle heuristic, made exact because the simulator has global
// knowledge.
//
// The package is pure bookkeeping: it owns no notion of time. The runner
// (internal/sim) drives it and charges cycles for stalls and rollbacks.
//
// The hot-path structures are recycled rather than reallocated: finished Tx
// objects (with their open-addressing line sets) and line-directory entries
// go back to per-System free lists, so a steady-state simulation does not
// touch the allocator per transaction attempt. Line sets survive release
// unchanged; callers that keep a *Tx past its release (the prediction-
// quality classifier) must Pin it so the storage is not recycled under
// them.
package tm

import "fmt"

// Tx is one dynamic transaction attempt.
type Tx struct {
	DTx    int // dynamic transaction ID: thread*M + static ID
	STx    int // static transaction ID (position in the code)
	Thread int

	// Seq is the global begin order, used as the age for youngest-aborts
	// deadlock resolution. Lower is older.
	Seq uint64

	// Doomed marks the transaction as killed by deadlock resolution; the
	// runner must abort it at the next step boundary.
	Doomed      bool
	DoomedByTid int // thread of the transaction it conflicted with
	DoomedByStx int

	reads  lineSet
	writes lineSet
	// union counts the distinct lines across reads and writes, maintained
	// incrementally so NumLines is O(1).
	union int

	waitFor *Tx // the transaction this one is stalled behind, if any

	// pins counts Pin holders; released marks the transaction as finished.
	// A released transaction is recycled once its last pin drops.
	pins     int
	released bool
}

// NumWrites returns the number of distinct lines written (rollback cost is
// proportional to this, per LogTM's undo-log walk).
func (t *Tx) NumWrites() int { return t.writes.len() }

// NumLines returns the read/write-set size in distinct cache lines.
func (t *Tx) NumLines() int { return t.union }

// ConflictsWith reports whether the two transactions' line sets overlap
// with a write on at least one side — the ground truth for "would these
// two have conflicted had they run concurrently". Line sets survive
// release, so this can be evaluated after either side has finished (Pin the
// other side if the evaluation happens after the current engine event).
// Each pairwise check probes the larger set with the smaller one.
func (t *Tx) ConflictsWith(o *Tx) bool {
	return t.writes.intersects(&o.writes) ||
		t.writes.intersects(&o.reads) ||
		o.writes.intersects(&t.reads)
}

// Lines calls fn for every distinct line in the read/write set.
func (t *Tx) Lines(fn func(addr uint64)) {
	t.writes.each(fn)
	t.reads.each(func(a uint64) {
		if !t.writes.has(a) {
			fn(a)
		}
	})
}

// AppendLines appends every distinct line of the read/write set to buf and
// returns it — the allocation-free form of Lines for callers that keep a
// scratch buffer.
func (t *Tx) AppendLines(buf []uint64) []uint64 {
	buf = t.writes.appendTo(buf)
	t.reads.each(func(a uint64) {
		if !t.writes.has(a) {
			buf = append(buf, a)
		}
	})
	return buf
}

// WriteLines calls fn for every distinct line in the write set.
func (t *Tx) WriteLines(fn func(addr uint64)) {
	t.writes.each(fn)
}

// AppendWriteLines appends every written line to buf and returns it.
func (t *Tx) AppendWriteLines(buf []uint64) []uint64 {
	return t.writes.appendTo(buf)
}

// AccessResult reports the outcome of a transactional memory access.
type AccessResult struct {
	// OK means the access succeeded and the line is now isolated.
	OK bool
	// Holder, when OK is false, is the transaction the requester must stall
	// behind (it was NACKed). The requester retries after Holder releases
	// its isolation. If the deadlock resolver doomed the requester instead,
	// OK is false, Holder is nil, and the requester's Doomed flag is set.
	Holder *Tx
}

type line struct {
	writer  *Tx
	readers []*Tx
}

// System is the global conflict-detection state: the line directory and the
// set of active transactions.
type System struct {
	// OnDoom, if set, is called when deadlock resolution dooms a
	// transaction other than the current requester, so the runner can
	// interrupt its thread.
	OnDoom func(*Tx)

	nStatic   int
	lines     map[uint64]*line
	active    map[int]*Tx // keyed by DTx
	seq       uint64
	conflicts [][]int64 // conflict counts between static IDs (Table 1)

	commits, aborts int64

	// Free lists: finished transactions and drained directory entries are
	// recycled instead of reallocated.
	txFree   []*Tx
	lineFree []*line
}

// NewSystem creates a TM system for a program with nStatic static
// transactions.
func NewSystem(nStatic int) *System {
	c := make([][]int64, nStatic)
	for i := range c {
		c[i] = make([]int64, nStatic)
	}
	return &System{
		nStatic:   nStatic,
		lines:     make(map[uint64]*line),
		active:    make(map[int]*Tx),
		conflicts: c,
	}
}

// Begin starts a transaction for the given thread and static ID. A thread
// may only have one active transaction at a time. The returned Tx may be a
// recycled object from an earlier attempt; pointers to it are only stable
// until its release unless pinned.
//
//bfgts:allocfree
func (s *System) Begin(thread, stx, dtx int) *Tx {
	if _, dup := s.active[dtx]; dup {
		panic(fmt.Sprintf("tm: dtx %d already active", dtx))
	}
	s.seq++
	var tx *Tx
	if n := len(s.txFree); n > 0 {
		tx = s.txFree[n-1]
		s.txFree[n-1] = nil
		s.txFree = s.txFree[:n-1]
		tx.reads.reset()
		tx.writes.reset()
		*tx = Tx{reads: tx.reads, writes: tx.writes}
	} else {
		//bfgts:ignore allocfree pool miss; steady state reuses txFree
		tx = &Tx{}
	}
	tx.DTx = dtx
	tx.STx = stx
	tx.Thread = thread
	tx.Seq = s.seq
	s.active[dtx] = tx
	return tx
}

// Pin prevents tx's storage from being recycled after its release, so its
// line sets stay readable across later engine events. Every Pin must be
// balanced by exactly one Unpin.
func (s *System) Pin(tx *Tx) { tx.pins++ }

// Unpin drops one pin; the last Unpin of a released transaction returns its
// storage to the free list.
//
//bfgts:allocfree
func (s *System) Unpin(tx *Tx) {
	tx.pins--
	if tx.pins == 0 && tx.released {
		s.txFree = append(s.txFree, tx)
	}
}

// Active reports whether the dynamic transaction is currently executing.
func (s *System) Active(dtx int) bool {
	_, ok := s.active[dtx]
	return ok
}

// ActiveTx returns the active transaction with the given dynamic ID, if any.
func (s *System) ActiveTx(dtx int) *Tx { return s.active[dtx] }

// Commits and Aborts return lifetime counters.
func (s *System) Commits() int64 { return s.commits }

// Aborts returns the number of aborted transaction attempts.
func (s *System) Aborts() int64 { return s.aborts }

// ConflictMatrix returns conflict counts between static transaction IDs,
// the raw data behind the paper's Table 1.
func (s *System) ConflictMatrix() [][]int64 { return s.conflicts }

// LineWriteHeld reports whether some active transaction holds addr's cache
// line in its write set. Sharded runs use it as the owner-side conflict
// check for cross-shard probe messages: shard-owned address slices are
// only ever read from other shards (the workload.Sharder contract), so a
// write-held line under a foreign probe is a partitioning violation.
//
//bfgts:allocfree
func (s *System) LineWriteHeld(addr uint64) bool {
	ln, ok := s.lines[addr]
	return ok && ln.writer != nil
}

// Access performs a transactional read or write of a cache line.
//
//bfgts:allocfree
func (s *System) Access(tx *Tx, addr uint64, write bool) AccessResult {
	if tx.Doomed {
		return AccessResult{}
	}
	tx.waitFor = nil // a retry clears any previous stall edge

	// Re-access fast path: probe the transaction's own line sets before the
	// line directory. A line this tx already writes cannot conflict (the
	// directory pins ln.writer == tx until release, and no reader can join
	// past a writer), and a line it already reads can only have writer nil
	// or self (a foreign writer would have had to get past this reader).
	// Both re-accesses leave every System and Tx structure untouched, so
	// skipping the directory is state-identical, not just result-identical.
	// Read-after-write intentionally misses here: its first read must still
	// take the slow path to join ln.readers.
	if write {
		if tx.writes.has(addr) {
			return AccessResult{OK: true}
		}
	} else if tx.reads.has(addr) {
		return AccessResult{OK: true}
	}

	ln := s.lines[addr]
	if ln == nil {
		if n := len(s.lineFree); n > 0 {
			ln = s.lineFree[n-1]
			s.lineFree[n-1] = nil
			s.lineFree = s.lineFree[:n-1]
		} else {
			//bfgts:ignore allocfree pool miss; steady state reuses lineFree
			ln = &line{}
		}
		s.lines[addr] = ln
	}

	if ln.writer != nil && ln.writer != tx {
		return s.conflict(tx, ln.writer)
	}
	if write {
		for _, r := range ln.readers {
			if r != tx {
				return s.conflict(tx, r)
			}
		}
		ln.writer = tx
		if tx.writes.add(addr) && !tx.reads.has(addr) {
			tx.union++
		}
		return AccessResult{OK: true}
	}
	// Read: writer is nil or self.
	if tx.reads.add(addr) {
		if !tx.writes.has(addr) {
			tx.union++
		}
		found := false
		for _, r := range ln.readers {
			if r == tx {
				found = true
				break
			}
		}
		if !found {
			ln.readers = append(ln.readers, tx)
		}
	}
	return AccessResult{OK: true}
}

// conflict records a requester/holder conflict, installs the stall edge,
// and resolves any wait-for cycle by dooming the youngest participant.
func (s *System) conflict(req, holder *Tx) AccessResult {
	s.conflicts[req.STx][holder.STx]++
	s.conflicts[holder.STx][req.STx]++

	req.waitFor = holder
	if victim := s.findCycleVictim(req); victim != nil {
		// Identify the enemy as the transaction the victim was waiting on
		// (or the requester, for the holder side of a two-cycle).
		enemy := victim.waitFor
		if enemy == nil || enemy == victim {
			enemy = req
		}
		victim.Doomed = true
		victim.DoomedByTid = enemy.Thread
		victim.DoomedByStx = enemy.STx
		victim.waitFor = nil
		if victim == req {
			return AccessResult{}
		}
		if s.OnDoom != nil {
			s.OnDoom(victim)
		}
	}
	return AccessResult{Holder: holder}
}

// findCycleVictim walks the wait-for chain from req. If the chain loops
// back to req, the youngest transaction on the cycle is returned.
func (s *System) findCycleVictim(req *Tx) *Tx {
	victim := req
	node := req.waitFor
	steps := 0
	for node != nil {
		if node == req {
			return victim
		}
		if node.Seq > victim.Seq {
			victim = node
		}
		node = node.waitFor
		if steps++; steps > len(s.active)+1 {
			panic("tm: wait-for walk did not terminate")
		}
	}
	return nil
}

// Commit finishes a transaction successfully, releasing its isolation.
//
//bfgts:allocfree
func (s *System) Commit(tx *Tx) {
	if tx.Doomed {
		panic("tm: committing a doomed transaction")
	}
	s.commits++
	s.release(tx)
}

// Abort finishes a rolled-back transaction, releasing its isolation. The
// runner calls this after charging the rollback cost.
//
//bfgts:allocfree
func (s *System) Abort(tx *Tx) {
	s.aborts++
	s.release(tx)
}

//bfgts:allocfree
func (s *System) release(tx *Tx) {
	tx.writes.each(func(addr uint64) {
		if ln := s.lines[addr]; ln != nil && ln.writer == tx {
			ln.writer = nil
			if len(ln.readers) == 0 {
				s.retireLine(addr, ln)
			}
		}
	})
	tx.reads.each(func(addr uint64) {
		ln := s.lines[addr]
		if ln == nil {
			return
		}
		for i, r := range ln.readers {
			if r == tx {
				ln.readers[i] = ln.readers[len(ln.readers)-1]
				ln.readers[len(ln.readers)-1] = nil
				ln.readers = ln.readers[:len(ln.readers)-1]
				break
			}
		}
		if ln.writer == nil && len(ln.readers) == 0 {
			s.retireLine(addr, ln)
		}
	})
	tx.waitFor = nil
	delete(s.active, tx.DTx)
	// The line sets stay intact for same-event readers (the commit
	// bookkeeping and the conflict classifier); the object is only handed
	// out again by a later Begin, and never while pinned.
	tx.released = true
	if tx.pins == 0 {
		s.txFree = append(s.txFree, tx)
	}
}

// retireLine removes a drained directory entry and recycles it, keeping the
// readers slice's capacity.
//
//bfgts:allocfree
func (s *System) retireLine(addr uint64, ln *line) {
	delete(s.lines, addr)
	ln.writer = nil
	ln.readers = ln.readers[:0]
	s.lineFree = append(s.lineFree, ln)
}
