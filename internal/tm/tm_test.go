package tm

import (
	"testing"
	"testing/quick"
)

func begin(s *System, thread, stx int) *Tx {
	return s.Begin(thread, stx, thread*8+stx)
}

func TestReadReadSharing(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	if !s.Access(a, 100, false).OK || !s.Access(b, 100, false).OK {
		t.Fatal("concurrent readers conflicted")
	}
	s.Commit(a)
	s.Commit(b)
	if s.Commits() != 2 {
		t.Fatalf("commits = %d, want 2", s.Commits())
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	if !s.Access(a, 100, true).OK {
		t.Fatal("first writer NACKed")
	}
	res := s.Access(b, 100, true)
	if res.OK {
		t.Fatal("second writer not NACKed")
	}
	if res.Holder != a {
		t.Fatalf("holder = %v, want tx a", res.Holder)
	}
	// After a commits, b's retry succeeds.
	s.Commit(a)
	if !s.Access(b, 100, true).OK {
		t.Fatal("retry after holder commit still NACKed")
	}
	s.Commit(b)
}

func TestReadThenRemoteWriteConflict(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	s.Access(a, 100, false)
	res := s.Access(b, 100, true)
	if res.OK || res.Holder != a {
		t.Fatal("writer did not stall behind reader")
	}
}

func TestWriteThenRemoteReadConflict(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	s.Access(a, 100, true)
	res := s.Access(b, 100, false)
	if res.OK || res.Holder != a {
		t.Fatal("reader did not stall behind writer")
	}
}

func TestReadUpgradeToWrite(t *testing.T) {
	s := NewSystem(1)
	a := begin(s, 0, 0)
	s.Access(a, 100, false)
	if !s.Access(a, 100, true).OK {
		t.Fatal("sole reader could not upgrade to writer")
	}
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	s.Access(a, 100, false)
	s.Access(b, 100, false)
	res := s.Access(a, 100, true)
	if res.OK || res.Holder != b {
		t.Fatal("upgrade with a second reader present did not stall")
	}
}

func TestDeadlockDoomsYoungest(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0) // older
	b := begin(s, 1, 1) // younger
	s.Access(a, 1, true)
	s.Access(b, 2, true)
	// b waits on a's line: edge b->a.
	if res := s.Access(b, 1, true); res.OK || res.Holder != a {
		t.Fatal("expected b to stall behind a")
	}
	// a now requests b's line: cycle a->b->a; youngest (b) must be doomed.
	res := s.Access(a, 2, true)
	if res.OK {
		t.Fatal("expected a to stall while b rolls back")
	}
	if !b.Doomed {
		t.Fatal("youngest transaction in cycle not doomed")
	}
	if a.Doomed {
		t.Fatal("oldest transaction doomed")
	}
	if b.DoomedByTid != 0 || b.DoomedByStx != 0 {
		t.Fatalf("doom attribution = (tid %d, stx %d), want (0, 0)", b.DoomedByTid, b.DoomedByStx)
	}
	// After b aborts, a's retry succeeds.
	s.Abort(b)
	if !s.Access(a, 2, true).OK {
		t.Fatal("a still NACKed after victim rollback")
	}
}

func TestDeadlockDoomsRequesterWhenYoungest(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0) // older
	b := begin(s, 1, 1) // younger
	s.Access(a, 1, true)
	s.Access(b, 2, true)
	// a waits on b: edge a->b.
	if res := s.Access(a, 2, true); res.OK || res.Holder != b {
		t.Fatal("expected a to stall behind b")
	}
	// b requests a's line: cycle; b is youngest so b (the requester) dies.
	res := s.Access(b, 1, true)
	if res.OK || res.Holder != nil {
		t.Fatalf("doomed requester result = %+v, want neither OK nor Holder", res)
	}
	if !b.Doomed {
		t.Fatal("requester not doomed")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	s := NewSystem(3)
	doomed := 0
	s.OnDoom = func(*Tx) { doomed++ }
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	c := begin(s, 2, 2)
	s.Access(a, 1, true)
	s.Access(b, 2, true)
	s.Access(c, 3, true)
	s.Access(a, 2, true) // a->b
	s.Access(b, 3, true) // b->c
	s.Access(c, 1, true) // c->a closes cycle; youngest = c (requester)
	if !c.Doomed {
		t.Fatal("youngest of three-cycle not doomed")
	}
	if a.Doomed || b.Doomed {
		t.Fatal("wrong victim in three-cycle")
	}
	if doomed != 0 {
		t.Fatal("OnDoom fired for the requester itself")
	}
}

func TestOnDoomFiresForRemoteVictim(t *testing.T) {
	s := NewSystem(2)
	var victims []*Tx
	s.OnDoom = func(tx *Tx) { victims = append(victims, tx) }
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	s.Access(a, 1, true)
	s.Access(b, 2, true)
	s.Access(b, 1, true) // b->a
	s.Access(a, 2, true) // closes cycle, b is youngest and is NOT the requester
	if len(victims) != 1 || victims[0] != b {
		t.Fatalf("OnDoom victims = %v, want [b]", victims)
	}
}

func TestAbortReleasesIsolation(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	s.Access(a, 1, true)
	s.Access(a, 2, false)
	s.Abort(a)
	if s.Aborts() != 1 {
		t.Fatalf("aborts = %d, want 1", s.Aborts())
	}
	b := begin(s, 1, 1)
	if !s.Access(b, 1, true).OK || !s.Access(b, 2, true).OK {
		t.Fatal("lines still isolated after abort")
	}
}

func TestConflictMatrixRecordsPairs(t *testing.T) {
	s := NewSystem(3)
	a := begin(s, 0, 0)
	b := begin(s, 1, 2)
	s.Access(a, 1, true)
	s.Access(b, 1, true)
	m := s.ConflictMatrix()
	if m[0][2] != 1 || m[2][0] != 1 {
		t.Fatalf("conflict matrix = %v, want symmetric entry (0,2)", m)
	}
	if m[0][0] != 0 {
		t.Fatal("spurious self-conflict recorded")
	}
}

func TestTxSetAccounting(t *testing.T) {
	s := NewSystem(1)
	a := begin(s, 0, 0)
	s.Access(a, 1, false)
	s.Access(a, 2, true)
	s.Access(a, 2, true) // duplicate write
	s.Access(a, 1, false)
	s.Access(a, 1, true) // upgrade
	if a.NumWrites() != 2 {
		t.Fatalf("writes = %d, want 2", a.NumWrites())
	}
	if a.NumLines() != 2 {
		t.Fatalf("lines = %d, want 2", a.NumLines())
	}
	seen := map[uint64]bool{}
	a.Lines(func(addr uint64) { seen[addr] = true })
	if len(seen) != 2 || !seen[1] || !seen[2] {
		t.Fatalf("Lines visited %v", seen)
	}
}

func TestDuplicateBeginPanics(t *testing.T) {
	s := NewSystem(1)
	begin(s, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate dtx Begin did not panic")
		}
	}()
	begin(s, 0, 0)
}

func TestActiveTracking(t *testing.T) {
	s := NewSystem(1)
	a := begin(s, 0, 0)
	if !s.Active(a.DTx) || s.ActiveTx(a.DTx) != a {
		t.Fatal("active transaction not tracked")
	}
	s.Commit(a)
	if s.Active(a.DTx) {
		t.Fatal("committed transaction still active")
	}
}

// Property: after any sequence of (begin, access, commit/abort) in which
// every transaction eventually finishes, the directory is empty.
func TestPropertyDirectoryDrains(t *testing.T) {
	prop := func(ops []uint16) bool {
		s := NewSystem(4)
		live := map[int]*Tx{}
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0: // begin
				if len(live) < 8 {
					tx := s.Begin(next, int(op)%4, next*4+int(op)%4)
					live[next] = tx
					next++
				}
			case 1, 2: // access
				for _, tx := range live {
					if tx.Doomed {
						continue
					}
					s.Access(tx, uint64(op%64), op%2 == 0)
					break
				}
			case 3: // finish one
				for id, tx := range live {
					if tx.Doomed {
						s.Abort(tx)
					} else {
						s.Commit(tx)
					}
					delete(live, id)
					break
				}
			}
		}
		for _, tx := range live {
			s.Abort(tx)
		}
		return len(s.lines) == 0 && len(s.active) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: isolation — two active transactions never both hold a write on
// the same line.
func TestPropertySingleWriter(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)
	okA := s.Access(a, 5, true).OK
	okB := s.Access(b, 5, true).OK
	if okA && okB {
		t.Fatal("two simultaneous writers on one line")
	}
}
