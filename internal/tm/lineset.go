package tm

// lineSet is an open-addressing hash set of cache-line addresses tuned for
// transaction read/write sets. The common case — a transaction touching at
// most lineSetInline distinct lines — lives in a small inline array scanned
// linearly, which costs no heap allocation at all. Larger sets spill into a
// power-of-two probe table with linear probing. reset keeps the spilled
// table's capacity, so a pooled transaction that once grew a big set never
// allocates for it again.
//
// The zero value is an empty set.
type lineSet struct {
	n       int                   // total elements, including the zero key
	small   [lineSetInline]uint64 // insertion-ordered storage while table == nil
	table   []uint64              // open-addressing slots; 0 marks an empty slot
	hasZero bool                  // address 0 is tracked out of band (0 is the empty sentinel)
}

// lineSetInline is the inline capacity before spilling to the probe table.
// Read/write sets in the STAMP-like workloads are almost always under this.
const lineSetInline = 16

// lineHash is a Fibonacci-style mixer; the probe table masks its output.
func lineHash(addr uint64) uint64 {
	h := addr * 0x9e3779b97f4a7c15
	return h ^ h>>32
}

// len returns the number of distinct addresses in the set.
func (s *lineSet) len() int { return s.n }

// add inserts addr and reports whether it was not already present. The
// spill/grow slow paths allocate by design (amortized, capacity kept by
// reset) and stay unannotated.
//
//bfgts:allocfree
func (s *lineSet) add(addr uint64) bool {
	if s.table == nil {
		for i := 0; i < s.n; i++ {
			if s.small[i] == addr {
				return false
			}
		}
		if s.n < lineSetInline {
			s.small[s.n] = addr
			s.n++
			return true
		}
		s.spill()
	}
	if addr == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		s.n++
		return true
	}
	stored := s.n
	if s.hasZero {
		stored--
	}
	if 4*(stored+1) > 3*len(s.table) {
		s.grow(2 * len(s.table))
	}
	mask := uint64(len(s.table) - 1)
	i := lineHash(addr) & mask
	for {
		switch s.table[i] {
		case 0:
			s.table[i] = addr
			s.n++
			return true
		case addr:
			return false
		}
		i = (i + 1) & mask
	}
}

// has reports whether addr is in the set.
//
//bfgts:allocfree
func (s *lineSet) has(addr uint64) bool {
	if s.table == nil {
		for i := 0; i < s.n; i++ {
			if s.small[i] == addr {
				return true
			}
		}
		return false
	}
	if addr == 0 {
		return s.hasZero
	}
	mask := uint64(len(s.table) - 1)
	i := lineHash(addr) & mask
	for {
		switch s.table[i] {
		case 0:
			return false
		case addr:
			return true
		}
		i = (i + 1) & mask
	}
}

// spill moves the inline elements into a fresh probe table sized for
// low-load probing right after the crossover.
func (s *lineSet) spill() {
	if s.table == nil {
		s.table = make([]uint64, 4*lineSetInline)
	}
	for i := 0; i < s.n; i++ {
		v := s.small[i]
		if v == 0 {
			s.hasZero = true
			continue
		}
		s.insertNoCheck(v)
	}
}

// grow rehashes the table into newCap slots (a power of two).
func (s *lineSet) grow(newCap int) {
	old := s.table
	s.table = make([]uint64, newCap)
	for _, v := range old {
		if v != 0 {
			s.insertNoCheck(v)
		}
	}
}

// insertNoCheck places a known-absent non-zero address.
func (s *lineSet) insertNoCheck(addr uint64) {
	mask := uint64(len(s.table) - 1)
	i := lineHash(addr) & mask
	for s.table[i] != 0 {
		i = (i + 1) & mask
	}
	s.table[i] = addr
}

// each calls fn for every address in the set. Inline sets iterate in
// insertion order, spilled sets in slot order; callers must not depend on
// the order (the previous map-backed implementation already randomized it).
//
//bfgts:allocfree
func (s *lineSet) each(fn func(addr uint64)) {
	if s.table == nil {
		for i := 0; i < s.n; i++ {
			fn(s.small[i])
		}
		return
	}
	if s.hasZero {
		fn(0)
	}
	for _, v := range s.table {
		if v != 0 {
			fn(v)
		}
	}
}

// appendTo appends every address to buf and returns it, allocating only if
// buf lacks capacity.
//
//bfgts:allocfree
func (s *lineSet) appendTo(buf []uint64) []uint64 {
	if s.table == nil {
		return append(buf, s.small[:s.n]...)
	}
	if s.hasZero {
		buf = append(buf, 0)
	}
	for _, v := range s.table {
		if v != 0 {
			buf = append(buf, v)
		}
	}
	return buf
}

// intersects reports whether the two sets share any address, probing the
// larger set with the smaller one's elements.
//
//bfgts:allocfree
func (s *lineSet) intersects(o *lineSet) bool {
	a, b := s, o
	if a.n > b.n {
		a, b = b, a
	}
	if a.n == 0 {
		return false
	}
	if a.table == nil {
		for i := 0; i < a.n; i++ {
			if b.has(a.small[i]) {
				return true
			}
		}
		return false
	}
	if a.hasZero && b.has(0) {
		return true
	}
	for _, v := range a.table {
		if v != 0 && b.has(v) {
			return true
		}
	}
	return false
}

// reset empties the set, keeping any spilled table's capacity for reuse.
//
//bfgts:allocfree
func (s *lineSet) reset() {
	s.n = 0
	s.hasZero = false
	if s.table != nil {
		clear(s.table)
	}
}
