package tm

import "testing"

// TestReaccessFastPath exercises the own-set probe that short-circuits
// Access for lines the transaction already holds: re-reads and re-writes
// must succeed without perturbing the set accounting or the directory, and
// the paths the probe must NOT take (read-after-write's first read, the
// upgrade) must still reach the directory.
func TestReaccessFastPath(t *testing.T) {
	s := NewSystem(2)
	a := begin(s, 0, 0)
	b := begin(s, 1, 1)

	if !s.Access(a, 10, true).OK {
		t.Fatal("initial write NACKed")
	}
	for i := 0; i < 3; i++ {
		if !s.Access(a, 10, true).OK {
			t.Fatal("re-write NACKed")
		}
	}
	if !s.Access(a, 20, false).OK {
		t.Fatal("initial read NACKed")
	}
	for i := 0; i < 3; i++ {
		if !s.Access(a, 20, false).OK {
			t.Fatal("re-read NACKed")
		}
	}
	if a.NumWrites() != 1 || a.NumLines() != 2 {
		t.Fatalf("writes=%d lines=%d after re-accesses, want 1 and 2", a.NumWrites(), a.NumLines())
	}

	// Read-after-write takes the slow path on its first read (it must join
	// the line's reader list) and still leaves the counts right.
	if !s.Access(a, 10, false).OK {
		t.Fatal("read-after-write NACKed")
	}
	if a.NumWrites() != 1 || a.NumLines() != 2 {
		t.Fatalf("writes=%d lines=%d after RAW, want 1 and 2", a.NumWrites(), a.NumLines())
	}

	// The directory still isolates: b conflicts on a's written line even
	// after all of a's fast-path hits.
	if res := s.Access(b, 10, false); res.OK || res.Holder != a {
		t.Fatalf("remote read of written line: OK=%v holder=%v, want NACK by a", res.OK, res.Holder)
	}

	// An upgrade (read set hit, write intent) must not fast-path: b reads
	// 30, a reads 30, then b upgrading to write must see a as a conflicting
	// reader.
	if !s.Access(b, 30, false).OK || !s.Access(a, 30, false).OK {
		t.Fatal("shared readers conflicted")
	}
	if res := s.Access(b, 30, true); res.OK || res.Holder != a {
		t.Fatalf("upgrade past foreign reader: OK=%v holder=%v, want NACK by a", res.OK, res.Holder)
	}
}

// TestReaccessDoomedStillRefused pins the check order: a doomed transaction
// is refused even on a line it already holds.
func TestReaccessDoomedStillRefused(t *testing.T) {
	s := NewSystem(1)
	a := begin(s, 0, 0)
	if !s.Access(a, 5, true).OK {
		t.Fatal("initial write NACKed")
	}
	a.Doomed = true
	if res := s.Access(a, 5, true); res.OK {
		t.Fatal("doomed tx re-write returned OK")
	}
}

// BenchmarkAccessReaccess measures the hot re-access pattern the simulator
// generates: a transaction touching its own working set over and over. The
// own-set probe should keep this off the line directory entirely.
func BenchmarkAccessReaccess(b *testing.B) {
	s := NewSystem(1)
	tx := begin(s, 0, 0)
	const span = 8
	for i := 0; i < span; i++ {
		s.Access(tx, uint64(i), false)
		s.Access(tx, uint64(i), i < span/2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i % span)
		if !s.Access(tx, addr, addr < span/2).OK {
			b.Fatal("re-access NACKed")
		}
	}
}

// BenchmarkAccessFirstTouch is the contrast case: distinct lines every
// iteration, so every access walks the directory. Comparing it with
// BenchmarkAccessReaccess shows what the fast path saves.
func BenchmarkAccessFirstTouch(b *testing.B) {
	s := NewSystem(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin(0, 0, i)
		if !s.Access(tx, uint64(i), true).OK {
			b.Fatal("first access NACKed")
		}
		s.Commit(tx)
	}
}
