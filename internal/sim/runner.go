package sim

import (
	"math/rand"
	"sync"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TMCosts are the transactional-machinery latencies of the simulated LogTM.
type TMCosts struct {
	Begin  int64 // register checkpoint + mode switch at TX_BEGIN
	Commit int64 // flash-clear of read/write bits at commit
	Access int64 // one transactional load/store (L1 hit)
	// RollbackBase + RollbackPerLine*writes is the undo-log walk.
	RollbackBase    int64
	RollbackPerLine int64
	// StallTimeout is how long a NACKed requester stalls before giving up
	// and aborting — LogTM's conservative possible-cycle discipline plus
	// the OS's unwillingness to leave a core spinning.
	StallTimeout int64
}

// DefaultTMCosts returns the latencies used in the evaluation.
func DefaultTMCosts() TMCosts {
	return TMCosts{
		Begin:           8,
		Commit:          12,
		Access:          1,
		RollbackBase:    40,
		RollbackPerLine: 10,
		StallTimeout:    800,
	}
}

// RunConfig describes one simulation.
type RunConfig struct {
	Cores          int
	ThreadsPerCore int
	OSCosts        OSCosts
	TMCosts        TMCosts
	Seed           uint64

	Workload   workload.Workload
	NewManager func(env sched.Env) sched.Manager

	// ProfileSimilarity tracks exact per-static-transaction similarity
	// (Equation 1) for the Table 1 reproduction. Off by default; it costs
	// host time, not simulated cycles.
	ProfileSimilarity bool

	// MaxCycles aborts the simulation if it runs past this time (live-lock
	// guard). Zero means no limit.
	MaxCycles int64

	// NonTxChunk is the largest uninterrupted slice of non-transactional
	// compute between preemption checks.
	NonTxChunk int64

	// Trace, if non-nil, records per-transaction lifecycle events.
	Trace *trace.Recorder

	// Metrics, if non-nil, receives scheduler-internals instrumentation
	// from every layer (manager decision points, core confidence updates,
	// hardware caches, Bloom occupancy) plus the runner's own
	// prediction-quality accounting and time-series sampler. Nil disables
	// all of it at zero cost.
	Metrics *metrics.Registry

	// SampleInterval is the simulated-cycle period of the time-series
	// sampler (pressure / mean confidence / abort-rate EWMA). Zero means
	// DefaultSampleInterval. Only active when Metrics is set.
	SampleInterval int64

	// NoBatch disables horizon-batched execution and takes the legacy
	// one-event-per-access path. Results are cycle-identical either way
	// (the differential tests pin this); the flag exists so the two paths
	// can be cross-checked and regressions bisected.
	NoBatch bool

	// NoBloofi disables the Bloofi signature directory and forces the
	// software begin-time scans (PTS, BFGTS-SW, BFGTS-NoOverhead) back to
	// the literal linear CPU-table walk. Like NoBatch, results are
	// byte-identical either way (pinned by the bloofi differential test);
	// the flag exists for cross-checking and bisection.
	NoBloofi bool

	// Shards splits the single simulation into per-shard engine/machine
	// lanes, each owning a contiguous core range, executed under the
	// conservative-PDES protocol in shard.go. Output is byte-identical to
	// Shards == 1 at any shard count (pinned by the sharded differential
	// tests and the check.sh cmp gate). Zero or one means unsharded.
	//
	// Two execution modes exist behind this knob (shard.go): entangled
	// lanes (any workload/manager; lanes share one clock and sequence
	// source and a single driver executes the global-minimum event, so the
	// run is identical to the single-heap run by construction) and fully
	// partitioned lanes (workloads implementing workload.Sharder under a
	// sched.ShardSafe manager; lanes free-run concurrently under a
	// lookahead barrier, exchanging timestamped cross-shard probe
	// messages).
	Shards int

	// ShardLookahead bounds the simulated-clock skew between partitioned
	// lanes, in cycles: a lane may run ahead of the slowest other lane's
	// published horizon by at most this much before it must wait at the
	// shard barrier. Zero means DefaultShardLookahead. Ignored outside
	// partitioned mode.
	ShardLookahead int64

	// Decisions, if non-nil, receives one record per scheduling decision
	// (serialize-vs-proceed at begin, stall on NACK) into the per-thread
	// shards; it must have at least Cores*ThreadsPerCore shards. Recording
	// only observes the run — it charges no cycles, draws no randomness,
	// and schedules no events, so a run with Decisions set is cycle-
	// identical to one without (pinned by TestDecisionsDoNotPerturb).
	Decisions *decision.Set

	// FlipBegin, when positive, inverts the manager's decision at the
	// FlipBegin'th OnBegin call (1-based, counted across all threads in
	// engine order): Proceed becomes YieldRetry, SpinWait/YieldRetry
	// become Proceed. Block is left unchanged — undoing the central-queue
	// handshake would desynchronize the manager. This is the counterfactual
	// replay hook (ReplayFlips): re-running the same seed with one decision
	// flipped measures exactly what that decision cost.
	FlipBegin int64
}

// DefaultSampleInterval is the sampler period in simulated cycles.
const DefaultSampleInterval = 100_000

// predWaitCap bounds how many waited-on transactions one execution records
// for prediction-quality classification; beyond it, further serializations
// still count but are not classified.
const predWaitCap = 8

// Result is everything one simulation measured.
type Result struct {
	ManagerName  string
	WorkloadName string

	Makespan int64 // cycles from start to last thread exit
	Commits  int64
	Aborts   int64

	// Breakdown aggregates all thread cycle charges plus core idle time.
	Breakdown Breakdown

	// ConflictMatrix counts conflicts between static transaction pairs.
	ConflictMatrix [][]int64
	// CommitsPerStx counts commits per static transaction.
	CommitsPerStx []int64
	// Similarity is the measured mean Eq. 1 similarity per static
	// transaction (only when ProfileSimilarity was set).
	Similarity []float64

	// Latency holds, per static transaction, the distribution of
	// execution latencies: cycles from the first begin attempt of an
	// execution to its commit, including all aborted attempts, waits and
	// backoffs.
	Latency []stats.Histogram

	// AttemptsPerCommit summarizes how many attempts each committed
	// execution needed (1 = first try). In partitioned sharded runs the
	// per-shard summaries are folded with stats.Summary.Merge, whose
	// Welford recombination can differ from the sequential sample order in
	// the last float64 bits; every integer field (N, Min, Max) and every
	// other Result field is exactly identical.
	AttemptsPerCommit stats.Summary

	// TimedOut reports the MaxCycles guard fired before completion.
	TimedOut bool

	// Metrics is the final snapshot of the run's registry (nil when
	// RunConfig.Metrics was nil).
	Metrics *metrics.Snapshot
}

// ContentionPct is Table 4's metric: the percentage of transaction
// executions that aborted.
func (r *Result) ContentionPct() float64 {
	total := r.Commits + r.Aborts
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Aborts) / float64(total)
}

type threadState int

const (
	stIdle      threadState = iota // between program steps
	stBeginSpin                    // spin-waiting at begin behind a dTx
	stLineStall                    // NACKed, spinning on a line
)

type threadCtx struct {
	tid  int
	th   *Thread
	prog workload.Program

	// lane is the engine/machine shard this thread runs on; dom is the
	// conflict-detection/scheduling domain it belongs to. Unsharded and
	// entangled runs have a single domain shared by every lane;
	// partitioned runs pair lane i with domain i.
	lane *laneState
	dom  *domainState

	resume func() // continuation to run when (re)dispatched

	// Current transaction execution.
	desc     *workload.TxDesc
	attempts int
	tx       *tm.Tx
	accIdx   int
	gap      int64 // compute cycles between accesses
	txCycles int64 // CatTx cycles charged this attempt (recategorized on abort)

	pendingPre int64 // non-transactional cycles left before the next tx
	execStart  int64 // when the first begin attempt of this execution ran

	state      threadState
	waitGen    uint64
	holder     *tm.Tx // line-stall target
	waitDTx    int    // begin-spin target
	chargeMark int64  // start of the current spin charging interval

	// Variant data for the cached continuations below: the pending begin
	// decision and beginSpin's (target, grace) arguments. At most one
	// control-flow event is pending per thread, so plain fields suffice;
	// only the generation-guarded checks (which can coexist with newer
	// control flow) snapshot state into the event via AfterArg.
	beginRes   sched.BeginResult
	spinTarget int
	spinGrace  int
	// batchHolder carries the NACKing transaction from a horizon-batched
	// access to the stall continuation that re-enters the engine at the
	// access's logical completion time. No pin is needed: the completion
	// time is strictly below the horizon, so the holder cannot finish
	// before the continuation fires.
	batchHolder *tm.Tx

	// Decision-trace state (only live when RunConfig.Decisions is set).
	// dec is this thread's shard; the tokens reference pending records:
	// the open proceed decision (settled at commit/abort), the latest
	// serialize decision (wait settled at the next tryBegin, outcome at
	// commit via decSer), and the open NACK stall.
	dec           *decision.Recorder
	decBeginTok   int
	decSerTok     int
	decSerStart   int64
	decStallTok   int
	decStallStart int64
	beginIndex    int64 // global OnBegin index of the current attempt

	*ctxScratch

	// Cached continuations, bound once per run by bindContinuations.
	// The func forms exist for the resume hook (called directly on
	// dispatch); everything scheduled through the engine goes by
	// registered Handle so the event heap stays pointer-free.
	contFetchNext  func()
	contNonTx      func()
	contTryBegin   func()
	contStepAccess func()

	hNonTxStep    Handle
	hTryBegin     Handle
	hBeginAct     Handle
	hBeginSpin    Handle
	hStepAccess   Handle
	hAccess       Handle
	hPostAccess   Handle
	hBatchStall   Handle
	hCommit       Handle
	hPostCommit   Handle
	hRollback     Handle
	hPostAbort    Handle
	hAbort        Handle
	hSpinCheck    ArgHandle
	hStallTimeout ArgHandle
}

// ctxScratch holds a thread context's reusable allocations: the commit-path
// line buffers, the prediction-classification slots, and the exact-
// similarity profiler's sets and scratch filters. Scratches are pooled
// across runs, so repeated simulations in one process (parameter sweeps,
// the parallel harness) stop paying per-thread warm-up allocations.
type ctxScratch struct {
	linesBuf  []uint64 // distinct read/write-set lines of the committing tx
	writesBuf []uint64 // written subset

	// predWaits holds the transactions this execution serialized behind on
	// a predicted conflict, classified true/false at commit (metrics only).
	// Each entry is pinned in the TM so its line sets survive until then.
	predWaits []*tm.Tx

	// decSer holds this execution's pending serialize decisions for the
	// decision trace: the record token plus the pinned enemy, settled
	// justified/overcautious at commit exactly like predWaits.
	decSer []pendingSer

	// Exact-similarity profiling.
	prevSet map[int]*bloom.ExactSet // per stx: previous committed set
	sizeSum map[int]float64
	sizeCnt map[int]int64
	setFree []*bloom.ExactSet // recycled sets displaced from prevSet
	estFA   *bloom.Filter     // scratch filters for Eq. 3 error profiling
	estFB   *bloom.Filter
}

// pendingSer is one unsettled serialize decision: its record token and
// the pinned transaction it waited behind.
type pendingSer struct {
	tok int
	wtx *tm.Tx
}

var scratchPool = sync.Pool{New: func() any { return &ctxScratch{} }}

// getScratch takes a scratch from the pool, lazily building the profiling
// maps when exact-similarity profiling is on.
func getScratch(profile bool) *ctxScratch {
	s := scratchPool.Get().(*ctxScratch)
	if profile && s.prevSet == nil {
		s.prevSet = make(map[int]*bloom.ExactSet)
		s.sizeSum = make(map[int]float64)
		s.sizeCnt = make(map[int]int64)
	}
	return s
}

// release empties the scratch (keeping capacity) and returns it to the pool.
func (s *ctxScratch) release() {
	s.linesBuf = s.linesBuf[:0]
	s.writesBuf = s.writesBuf[:0]
	for i := range s.predWaits {
		s.predWaits[i] = nil
	}
	s.predWaits = s.predWaits[:0]
	for i := range s.decSer {
		s.decSer[i] = pendingSer{}
	}
	s.decSer = s.decSer[:0]
	// Recycled sets are reset and therefore interchangeable: the free
	// list's order never reaches an output, so the map's iteration order
	// cannot break byte-identical results (sync.Pool handout order is
	// already nondeterministic one level up).
	//bfgts:ignore determinism recycled sets are value-identical after Reset
	for stx, set := range s.prevSet {
		set.Reset()
		s.setFree = append(s.setFree, set)
		delete(s.prevSet, stx)
	}
	clear(s.sizeSum)
	clear(s.sizeCnt)
	scratchPool.Put(s)
}

func (s *ctxScratch) getExactSet() *bloom.ExactSet {
	if n := len(s.setFree); n > 0 {
		set := s.setFree[n-1]
		s.setFree[n-1] = nil
		s.setFree = s.setFree[:n-1]
		return set
	}
	return bloom.NewExactSet()
}

func (s *ctxScratch) putExactSet(set *bloom.ExactSet) {
	set.Reset()
	s.setFree = append(s.setFree, set)
}

// runMode selects how the lanes execute (see shard.go for the sharded
// drivers and the protocol description).
type runMode int

const (
	// modeSeq is the classic single-lane, single-domain run.
	modeSeq runMode = iota
	// modeEntangled runs per-shard engines and machines over one shared
	// clock, sequence source and domain; a single driver executes the
	// globally minimal (time, seq) event across lane heaps, which is
	// byte-identical to the single-heap run by construction.
	modeEntangled
	// modePartitioned runs per-shard engines, machines AND domains (line
	// directory, manager, waiter queues, accumulators) on concurrent
	// goroutines under the conservative lookahead barrier.
	modePartitioned
)

// laneState is one simulation shard's execution resources: its event
// engine, its slice of the machine's cores, and the per-lane bookkeeping
// that used to live directly on Runner.
type laneState struct {
	idx      int
	coreBase int // absolute CPU id of the lane's first core
	eng      *Engine
	mac      *Machine

	// batchNow is the logical time of the access currently executing
	// inside a horizon batch on this lane (0 when no batch is in flight):
	// the engine clock still reads the batch's start time, so code that
	// can run underneath a batched access — the remote-doom hook — must
	// take its timestamps from nowFor, not Engine.Now.
	batchNow int64

	makespan int64 // set when the lane's last thread exits
	timedOut bool

	dom *domainState // the domain this lane's threads belong to

	// shard is the partitioned-mode coupling (barrier slot, probe rings,
	// message counters); nil in sequential and entangled runs.
	shard *laneShard
}

// domainState is one conflict-detection and scheduling domain: the line
// directory, the contention manager and its CPU table, the waiter queues,
// and every accumulator that feeds the Result. Unsharded and entangled
// runs have exactly one domain; partitioned runs give each lane its own
// and merge them deterministically afterwards.
type domainState struct {
	sys *tm.System
	mgr sched.Manager

	cpuSlot []int

	stallWaiters map[*tm.Tx][]*threadCtx
	beginWaiters map[int][]*threadCtx

	simSum        []float64
	simCnt        []int64
	commitsPerStx []int64
	latency       []stats.Histogram
	attempts      stats.Summary

	// beginCalls counts OnBegin consultations across the domain's threads
	// in engine order — the coordinate system of RunConfig.FlipBegin and
	// of every begin record's BeginIndex (both only used in single-domain
	// modes, where it matches the historical global counter exactly).
	beginCalls int64

	// Prediction-quality accounting and the time-series sampler (only
	// wired when the domain has a registry; all instruments are nil-safe).
	reg          *metrics.Registry
	metPredSer   *metrics.Counter // serializations on a predicted conflict
	metPredTrue  *metrics.Counter // ...whose counterparty really overlapped
	metPredFalse *metrics.Counter // ...that waited on a non-overlapping tx
	metPrecision *metrics.Gauge
	metEstErr    *metrics.Summary // Eq. 3 estimate error vs exact intersection
	predTrue     int64
	predFalse    int64
	tsPressure   *metrics.Series
	tsConf       *metrics.Series
	tsAbortRate  *metrics.Series
	lastCommits  int64
	lastAborts   int64
	abortEwma    float64
}

// bindInstruments acquires the domain's instruments once, at construction
// time; every hot-path record goes through the cached pointers.
func (dom *domainState) bindInstruments() {
	reg := dom.reg
	if reg == nil {
		return
	}
	dom.metPredSer = reg.Counter("sim.pred.serializations")
	dom.metPredTrue = reg.Counter("sim.pred.true")
	dom.metPredFalse = reg.Counter("sim.pred.false")
	dom.metPrecision = reg.Gauge("sim.pred.precision")
	dom.metEstErr = reg.Summary("bloom.est_error")
	dom.tsPressure = reg.Series("ts.pressure", metrics.DefaultSeriesCap)
	dom.tsConf = reg.Series("ts.mean_confidence", metrics.DefaultSeriesCap)
	dom.tsAbortRate = reg.Series("ts.abort_rate", metrics.DefaultSeriesCap)
}

// Runner executes a workload through the TM under a contention manager.
type Runner struct {
	cfg  RunConfig
	mode runMode

	// clock and seqSrc back the shared (time, seq) coordinate system of
	// entangled lanes (engine.go); unused pointers otherwise.
	clock  int64
	seqSrc uint64

	lanes []*laneState
	doms  []*domainState
	ctxs  []*threadCtx

	// active is the lane currently executing an event. Sequential and
	// entangled drivers maintain it (exactly one event runs at a time);
	// partitioned lanes never read it — their domains are lane-local, so
	// every hook resolves its time source through the victim's own lane.
	active *laneState

	noBatch bool // mirrors cfg.NoBatch

	// Time-series sampler: one cached closure rescheduling itself.
	sampleEvery int64
	sampleFn    func()
}

// NewRunner wires up a simulation. Call Run to execute it.
func NewRunner(cfg RunConfig) *Runner {
	if cfg.NonTxChunk == 0 {
		cfg.NonTxChunk = 20000
	}
	if cfg.OSCosts == (OSCosts{}) {
		cfg.OSCosts = DefaultOSCosts()
	}
	if cfg.TMCosts == (TMCosts{}) {
		cfg.TMCosts = DefaultTMCosts()
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.Cores {
		cfg.Shards = cfg.Cores
	}
	nThreads := cfg.Cores * cfg.ThreadsPerCore
	nStatic := cfg.Workload.NumStatic()

	r := &Runner{
		cfg:     cfg,
		noBatch: cfg.NoBatch,
	}
	r.mode = r.chooseMode()

	// Lanes: per-shard engines and machines over contiguous core ranges.
	// Sequential keeps one self-clocked engine; entangled lanes share the
	// runner's clock and sequence source; partitioned lanes are fully
	// self-clocked (their skew is bounded by the shard barrier instead).
	nLanes := 1
	if r.mode != modeSeq {
		nLanes = cfg.Shards
	}
	for i := 0; i < nLanes; i++ {
		lo := i * cfg.Cores / nLanes
		hi := (i + 1) * cfg.Cores / nLanes
		var eng *Engine
		if r.mode == modeEntangled {
			eng = NewLaneEngine(&r.clock, &r.seqSrc)
		} else {
			eng = NewEngine()
		}
		r.lanes = append(r.lanes, &laneState{
			idx:      i,
			coreBase: lo,
			eng:      eng,
			mac:      NewMachine(eng, hi-lo, cfg.OSCosts),
		})
	}

	// Domains: one shared domain unless partitioned.
	nDoms := 1
	if r.mode == modePartitioned {
		nDoms = nLanes
	}
	for i := 0; i < nDoms; i++ {
		dom := &domainState{
			sys:           tm.NewSystem(nStatic),
			cpuSlot:       make([]int, cfg.Cores),
			stallWaiters:  make(map[*tm.Tx][]*threadCtx),
			beginWaiters:  make(map[int][]*threadCtx),
			simSum:        make([]float64, nStatic),
			simCnt:        make([]int64, nStatic),
			commitsPerStx: make([]int64, nStatic),
			latency:       make([]stats.Histogram, nStatic),
		}
		for j := range dom.cpuSlot {
			dom.cpuSlot[j] = core.NoTx
		}
		if cfg.Metrics != nil {
			if nDoms == 1 {
				dom.reg = cfg.Metrics
			} else {
				// Partitioned domains record into private registries,
				// merged into cfg.Metrics after the run (the registry is
				// not safe for concurrent use).
				dom.reg = metrics.New()
			}
		}
		env := sched.Env{
			NumCPUs:    cfg.Cores,
			NumThreads: nThreads,
			NumStatic:  nStatic,
			CPUOf:      func(tid int) int { return tid % cfg.Cores },
			Wake: func(tid int) {
				c := r.ctxs[tid]
				c.lane.mac.ThreadWake(c.th)
			},
			Rand:       rand.New(rand.NewSource(int64(cfg.Seed) ^ 0x5bf0f7c9)),
			Metrics:    dom.reg,
			LinearScan: cfg.NoBloofi,
		}
		dom.mgr = cfg.NewManager(env)
		dom.bindInstruments()
		dom.sys.OnDoom = r.onRemoteDoom
		r.doms = append(r.doms, dom)
	}
	for _, ln := range r.lanes {
		ln.dom = r.doms[0]
		if nDoms > 1 {
			ln.dom = r.doms[ln.idx]
		}
	}

	base := workload.NewRNG(cfg.Seed)
	for tid := 0; tid < nThreads; tid++ {
		absCore := tid % cfg.Cores
		lane := r.laneOfCore(absCore)
		th := lane.mac.AddThread(absCore - lane.coreBase)
		th.ID = tid // global thread id (machine-local by default)
		ctx := &threadCtx{
			tid:         tid,
			th:          th,
			lane:        lane,
			dom:         lane.dom,
			prog:        cfg.Workload.NewProgram(tid, nThreads, base.Derive(uint64(tid)).Uint64()),
			waitDTx:     core.NoTx,
			ctxScratch:  getScratch(cfg.ProfileSimilarity),
			decBeginTok: -1,
			decSerTok:   -1,
			decStallTok: -1,
		}
		if cfg.Decisions != nil && tid < cfg.Decisions.Threads() {
			ctx.dec = cfg.Decisions.Shard(tid)
		}
		r.bindContinuations(ctx)
		ctx.resume = ctx.contFetchNext
		r.ctxs = append(r.ctxs, ctx)
	}
	for _, ln := range r.lanes {
		ln.mac.OnDispatch = r.dispatched
	}
	if r.mode == modePartitioned {
		r.setupShards()
	}
	return r
}

// chooseMode picks the execution mode for the configured shard count:
// unsharded, entangled (the universal byte-identical mode), or partitioned
// (the concurrent mode, when the workload and manager support it).
func (r *Runner) chooseMode() runMode {
	cfg := &r.cfg
	if cfg.Shards <= 1 {
		return modeSeq
	}
	if !r.partitionable() {
		return modeEntangled
	}
	return modePartitioned
}

// laneOfCore maps an absolute CPU id to the lane owning it.
func (r *Runner) laneOfCore(cpu int) *laneState {
	// Lane ranges are [i*C/S, (i+1)*C/S); invert by scanning — lanes are
	// few and this only runs at construction time.
	for _, ln := range r.lanes {
		hi := (ln.idx + 1) * r.cfg.Cores / len(r.lanes)
		if cpu >= ln.coreBase && cpu < hi {
			return ln
		}
	}
	return r.lanes[len(r.lanes)-1]
}

// bindContinuations builds the thread's reusable continuations once and
// registers the engine-scheduled ones as handles, so steady-state event
// scheduling allocates no closures and pushes no pointers into the event
// heap. Variant data rides in ctx fields (beginRes, spinTarget/spinGrace,
// batchHolder) or in the event itself (the AfterArg generation
// snapshots).
func (r *Runner) bindContinuations(ctx *threadCtx) {
	ctx.contFetchNext = func() { r.fetchNext(ctx) }
	ctx.contNonTx = func() { r.runNonTx(ctx) }
	ctx.contTryBegin = func() { r.tryBegin(ctx) }
	ctx.contStepAccess = func() { r.stepAccess(ctx) }

	eng := ctx.lane.eng
	ctx.hNonTxStep = eng.Register(func() {
		ctx.resume = ctx.contNonTx
		if r.maybePreempt(ctx) {
			return
		}
		r.runNonTx(ctx)
	})
	ctx.hTryBegin = eng.Register(ctx.contTryBegin)
	ctx.hBeginAct = eng.Register(func() { r.actOnBegin(ctx) })
	ctx.hBeginSpin = eng.Register(func() { r.beginSpin(ctx, ctx.spinTarget, ctx.spinGrace) })
	ctx.hStepAccess = eng.Register(ctx.contStepAccess)
	ctx.hAccess = eng.Register(func() { r.performAccess(ctx) })
	ctx.hPostAccess = eng.Register(func() { r.postAccess(ctx) })
	ctx.hBatchStall = eng.Register(func() {
		holder := ctx.batchHolder
		ctx.batchHolder = nil
		r.lineStall(ctx, holder)
	})
	ctx.hCommit = eng.Register(func() { r.finishCommit(ctx) })
	ctx.hPostCommit = eng.Register(func() {
		ctx.resume = ctx.contFetchNext
		if r.maybePreempt(ctx) {
			return
		}
		r.fetchNext(ctx)
	})
	ctx.hRollback = eng.Register(func() { r.finishAbort(ctx) })
	ctx.hPostAbort = eng.Register(func() {
		ctx.resume = ctx.contTryBegin
		if r.maybePreempt(ctx) {
			return
		}
		r.tryBegin(ctx)
	})
	ctx.hAbort = eng.Register(func() { r.abortTx(ctx) })
	ctx.hSpinCheck = eng.RegisterArg(func(gen uint64) { r.beginSpinCheck(ctx, gen) })
	ctx.hStallTimeout = eng.RegisterArg(func(gen uint64) { r.stallTimeout(ctx, gen) })
}

// emit records a trace event if tracing is enabled. other is the
// counterparty's dTxID and otherStx its static ID (-1/-1 when none).
func (r *Runner) emit(ctx *threadCtx, kind trace.Kind, other, otherStx int, extra int64) {
	if r.cfg.Trace == nil {
		return
	}
	r.cfg.Trace.Add(trace.Event{
		Time:     ctx.lane.eng.Now(),
		Kind:     kind,
		Tid:      ctx.tid,
		Stx:      ctx.desc.STx,
		Attempt:  ctx.attempts,
		Other:    other,
		OtherStx: otherStx,
		Extra:    extra,
	})
}

func (r *Runner) dtxOf(ctx *threadCtx) int {
	return ctx.tid*r.cfg.Workload.NumStatic() + ctx.desc.STx
}

// stxOfDTx decodes the static transaction ID from a packed dTxID (-1 in,
// -1 out).
func (r *Runner) stxOfDTx(dtx int) int {
	if dtx < 0 {
		return -1
	}
	return dtx % r.cfg.Workload.NumStatic()
}

// recordPredWait remembers the transaction a predicted-conflict
// serialization is waiting out, so the prediction can be classified
// true/false at this execution's commit. Only active with metrics on.
func (r *Runner) recordPredWait(ctx *threadCtx, waitDTx int) {
	dom := ctx.dom
	if dom.reg == nil {
		return
	}
	dom.metPredSer.Inc()
	if len(ctx.predWaits) >= predWaitCap {
		return
	}
	if wtx := dom.sys.ActiveTx(waitDTx); wtx != nil {
		// Pin: the waited-on transaction usually finishes before this
		// execution commits, and its pooled storage must not be recycled
		// while the classifier still holds the pointer.
		//bfgts:pin-handoff classifyPredWaits unpins every predWaits entry at commit
		dom.sys.Pin(wtx)
		ctx.predWaits = append(ctx.predWaits, wtx)
	}
}

// classifyPredWaits settles this execution's recorded serializations: a
// prediction was true if the waited-on transaction's final line set really
// overlapped the committer's (with a write on at least one side), false
// otherwise — per-manager precision falls out of the two counters.
func (r *Runner) classifyPredWaits(ctx *threadCtx, tx *tm.Tx) {
	if len(ctx.predWaits) == 0 {
		return
	}
	dom := ctx.dom
	for i, wtx := range ctx.predWaits {
		if tx.ConflictsWith(wtx) {
			dom.metPredTrue.Inc()
			dom.predTrue++
		} else {
			dom.metPredFalse.Inc()
			dom.predFalse++
		}
		dom.sys.Unpin(wtx)
		ctx.predWaits[i] = nil
	}
	ctx.predWaits = ctx.predWaits[:0]
}

// decOnCommit settles the execution's decision records at commit: the
// proceed decision committed, and each recorded serialize decision is
// classified by whether the pinned enemy's final line set really
// overlapped the committer's — justified waits bought something,
// overcautious ones paid WaitCycles for nothing.
func (r *Runner) decOnCommit(ctx *threadCtx, tx *tm.Tx) {
	if ctx.dec == nil {
		return
	}
	ctx.dec.Resolve(ctx.decBeginTok, decision.OCommitted, 0)
	ctx.decBeginTok = -1
	for i := range ctx.decSer {
		e := ctx.decSer[i]
		o := decision.OOvercautious
		if tx.ConflictsWith(e.wtx) {
			o = decision.OJustified
		}
		ctx.dec.Resolve(e.tok, o, 0)
		ctx.dom.sys.Unpin(e.wtx)
		ctx.decSer[i] = pendingSer{}
	}
	ctx.decSer = ctx.decSer[:0]
}

// cpuOf returns the thread's absolute CPU id (the machine's core index is
// lane-local).
func (r *Runner) cpuOf(ctx *threadCtx) int { return ctx.lane.coreBase + ctx.th.Core }

// nowFor is the current logical simulation time as observed by code acting
// on ctx: the executing lane's engine clock, or — underneath a
// horizon-batched access — that access's completion time, which the engine
// has not caught up to yet. In sequential and entangled runs exactly one
// lane executes at a time (Runner.active); in partitioned runs every hook
// that lands on ctx runs on ctx's own lane goroutine, so the executing
// lane is ctx.lane.
func (r *Runner) nowFor(ctx *threadCtx) int64 {
	ln := r.active
	if r.mode == modePartitioned {
		ln = ctx.lane
	}
	if ln.batchNow > 0 {
		return ln.batchNow
	}
	return ln.eng.Now()
}

// horizon is the conservative lookahead bound for batched execution on a
// lane: the earliest pending event that could interleave. With one lane
// (or fully partitioned lanes, whose heaps are causally independent) that
// is the lane's own PeekTime; entangled lanes share one logical heap, so
// the horizon is the minimum over all of them.
func (r *Runner) horizon(ln *laneState) int64 {
	if r.mode != modeEntangled {
		return ln.eng.PeekTime()
	}
	min := int64(NoPending)
	for _, l := range r.lanes {
		if t := l.eng.PeekTime(); t < min {
			min = t
		}
	}
	return min
}

// setSlot updates the CPU-table slot for a core and notifies the manager.
func (r *Runner) setSlot(dom *domainState, cpu, dtx int) {
	if dom.cpuSlot[cpu] == dtx {
		return
	}
	dom.cpuSlot[cpu] = dtx
	dom.mgr.OnCPUSlot(cpu, dtx)
}

// dispatched is the machine's OnDispatch hook.
func (r *Runner) dispatched(th *Thread) {
	ctx := r.ctxs[th.ID]
	if ctx.tx != nil && !ctx.tx.Doomed {
		// A transactional thread regained its core: its transaction is
		// visible on the CPU table again.
		r.setSlot(ctx.dom, r.cpuOf(ctx), ctx.tx.DTx)
	}
	ctx.resume()
}

// maybePreempt requeues the thread if its quantum expired and someone else
// wants the core. It returns true if preempted; resume must already be set.
func (r *Runner) maybePreempt(ctx *threadCtx) bool {
	if !ctx.lane.mac.ShouldPreempt(ctx.th) {
		return false
	}
	if ctx.tx != nil {
		r.setSlot(ctx.dom, r.cpuOf(ctx), core.NoTx)
	}
	ctx.lane.mac.Preempt(ctx.th)
	return true
}

// fetchNext pulls the next (non-tx, tx) pair from the program.
func (r *Runner) fetchNext(ctx *threadCtx) {
	pre, desc, ok := ctx.prog.Next()
	if !ok {
		if ctx.tx != nil {
			panic("sim: program finished with open transaction")
		}
		ctx.lane.mac.ThreadExit(ctx.th)
		if ctx.lane.mac.LiveThreads() == 0 {
			ctx.lane.makespan = ctx.lane.eng.Now()
		}
		return
	}
	ctx.desc = desc
	ctx.attempts = 0
	ctx.execStart = -1
	ctx.pendingPre = pre
	r.runNonTx(ctx)
}

// runNonTx burns the pre-transaction compute in preemptible chunks. The
// batched path consumes consecutive chunks locally while their completion
// times stay strictly below the engine's horizon and the quantum allows
// it, re-entering the engine once with the accumulated time; the legacy
// path (NoBatch) pays one event round-trip per chunk. Both charge the
// same cycles at the same logical instants.
func (r *Runner) runNonTx(ctx *threadCtx) {
	if ctx.pendingPre <= 0 {
		r.tryBegin(ctx)
		return
	}
	eng := ctx.lane.eng
	if r.noBatch {
		chunk := ctx.pendingPre
		if chunk > r.cfg.NonTxChunk {
			chunk = r.cfg.NonTxChunk
		}
		ctx.pendingPre -= chunk
		ctx.th.Charge(CatNonTx, chunk)
		eng.AfterHandle(chunk, ctx.hNonTxStep)
		return
	}
	local := eng.Now()
	for {
		chunk := ctx.pendingPre
		if chunk > r.cfg.NonTxChunk {
			chunk = r.cfg.NonTxChunk
		}
		t := local + chunk
		ctx.pendingPre -= chunk
		ctx.th.Charge(CatNonTx, chunk)
		if t >= r.horizon(ctx.lane) || ctx.lane.mac.ShouldPreemptAt(ctx.th, t) {
			// Horizon or quantum boundary: re-enter the engine at this
			// chunk's completion time and take the per-event path there
			// (contNonTxStep redoes the preemption check at engine time
			// t, exactly as the legacy step does).
			eng.AtHandle(t, ctx.hNonTxStep)
			return
		}
		if ctx.pendingPre <= 0 {
			// All pre-transaction compute consumed below the horizon with
			// no preemption due: begin the transaction at its exact time.
			eng.AtHandle(t, ctx.hTryBegin)
			return
		}
		local = t
	}
}

// flipBegin inverts a begin decision for counterfactual replay: proceeds
// become yields, serializations become proceeds. Block is left unchanged
// (see RunConfig.FlipBegin).
func flipBegin(res sched.BeginResult) sched.BeginResult {
	switch res.Action {
	case sched.Proceed:
		res.Action = sched.YieldRetry
		res.WaitDTx = core.NoTx
	case sched.SpinWait, sched.YieldRetry:
		res.Action = sched.Proceed
		res.WaitDTx = core.NoTx
	}
	return res
}

// tryBegin consults the contention manager and acts on its decision.
func (r *Runner) tryBegin(ctx *threadCtx) {
	eng := ctx.lane.eng
	dom := ctx.dom
	if ctx.execStart < 0 {
		ctx.execStart = eng.Now()
	}
	// A pending serialize decision ends the moment the begin is retried:
	// its wait is everything between the suspension and now.
	if ctx.decSerTok >= 0 {
		ctx.dec.SetWait(ctx.decSerTok, eng.Now()-ctx.decSerStart)
		ctx.decSerTok = -1
	}
	res := dom.mgr.OnBegin(ctx.tid, ctx.desc.STx)
	dom.beginCalls++
	ctx.beginIndex = dom.beginCalls
	if r.cfg.FlipBegin == dom.beginCalls {
		res = flipBegin(res)
	}
	if res.Overhead > 0 {
		ctx.th.Charge(CatScheduling, res.Overhead)
	}
	if res.Action == sched.Proceed {
		// The begin broadcast is atomic with the predictor's decision
		// ("when a transaction is allowed to execute, it broadcasts onto
		// the interconnect the dTxID"): the slot becomes visible to other
		// predictors immediately, which serializes same-instant begins.
		r.setSlot(dom, r.cpuOf(ctx), r.dtxOf(ctx))
	}
	ctx.beginRes = res
	eng.AfterHandle(res.Overhead, ctx.hBeginAct)
}

// decChoiceOf maps a begin action to its decision-trace choice.
func decChoiceOf(a sched.Action) decision.Choice {
	switch a {
	case sched.SpinWait:
		return decision.CSpin
	case sched.YieldRetry:
		return decision.CYield
	case sched.Block:
		return decision.CBlock
	default:
		return decision.CProceed
	}
}

// decOnBegin records the begin decision once it is acted on: proceeds open
// a token settled at commit/abort; serializations open a wait token
// settled at the next tryBegin, with the enemy pinned (like predWaits) so
// the commit can classify the wait justified or overcautious.
func (r *Runner) decOnBegin(ctx *threadCtx, res sched.BeginResult) {
	if ctx.dec == nil {
		return
	}
	choice := decChoiceOf(res.Action)
	rec := decision.Record{
		Time:       ctx.lane.eng.Now(),
		BeginIndex: ctx.beginIndex,
		Tid:        int32(ctx.tid),
		Stx:        int32(ctx.desc.STx),
		Attempt:    int32(ctx.attempts + 1),
		Point:      decision.PBegin,
		Choice:     choice,
		EnemyDTx:   -1,
		EnemyStx:   -1,
		Confidence: res.Confidence,
		Similarity: res.Similarity,
	}
	if choice == decision.CProceed {
		ctx.decBeginTok = ctx.dec.Add(rec)
		return
	}
	enemy := core.NoTx
	if choice != decision.CBlock { // Block (ATS) has no per-tx enemy
		enemy = res.WaitDTx
		rec.EnemyDTx = int32(enemy)
		rec.EnemyStx = int32(r.stxOfDTx(enemy))
	}
	tok := ctx.dec.Add(rec)
	ctx.decSerTok = tok
	ctx.decSerStart = ctx.lane.eng.Now()
	if tok < 0 || len(ctx.decSer) >= predWaitCap {
		return
	}
	if wtx := ctx.dom.sys.ActiveTx(enemy); wtx != nil {
		//bfgts:pin-handoff finishCommit settles and unpins every decSer entry
		ctx.dom.sys.Pin(wtx)
		ctx.decSer = append(ctx.decSer, pendingSer{tok: tok, wtx: wtx})
	}
}

// actOnBegin acts on the manager's begin decision once its overhead has
// elapsed.
func (r *Runner) actOnBegin(ctx *threadCtx) {
	res := ctx.beginRes
	r.decOnBegin(ctx, res)
	switch res.Action {
	case sched.Proceed:
		r.startTx(ctx)
	case sched.SpinWait:
		r.emit(ctx, trace.KSuspend, res.WaitDTx, r.stxOfDTx(res.WaitDTx), 0)
		r.recordPredWait(ctx, res.WaitDTx)
		r.beginSpin(ctx, res.WaitDTx, 20)
	case sched.YieldRetry:
		r.emit(ctx, trace.KSuspend, res.WaitDTx, r.stxOfDTx(res.WaitDTx), 0)
		r.recordPredWait(ctx, res.WaitDTx)
		ctx.resume = ctx.contTryBegin
		ctx.lane.mac.ThreadYield(ctx.th)
	case sched.Block:
		ctx.resume = ctx.contTryBegin
		ctx.lane.mac.ThreadBlock(ctx.th)
	}
}

// beginSpin busy-waits until waitDTx is no longer active, then re-runs the
// begin (which re-predicts, as the paper's re-executed TX_BEGIN does).
// grace bounds how long to wait for a transaction that was announced on
// the interconnect but has not reached the TM yet (it is still paying its
// begin overhead); waiting it out without re-running the predictor keeps
// the announce window from draining confidence through repeated suspends.
func (r *Runner) beginSpin(ctx *threadCtx, waitDTx, grace int) {
	eng := ctx.lane.eng
	if !ctx.dom.sys.Active(waitDTx) {
		const recheck = 30
		ctx.th.Charge(CatScheduling, recheck)
		if grace > 0 {
			ctx.spinTarget = waitDTx
			ctx.spinGrace = grace - 1
			eng.AfterHandle(recheck, ctx.hBeginSpin)
		} else {
			// Stale announcement (the transaction ended or never started):
			// re-execute TX_BEGIN.
			eng.AfterHandle(recheck, ctx.hTryBegin)
		}
		return
	}
	ctx.state = stBeginSpin
	ctx.waitGen++
	ctx.waitDTx = waitDTx
	ctx.chargeMark = eng.Now()
	ctx.dom.beginWaiters[waitDTx] = append(ctx.dom.beginWaiters[waitDTx], ctx)
	r.scheduleBeginSpinCheck(ctx, ctx.waitGen)
}

// scheduleBeginSpinCheck arranges the next preemption check while spinning
// at begin: the earliest instant ShouldPreempt could become true. The wait
// generation rides in the event itself (AfterArg): a pending check can
// coexist with newer control flow for the same thread, so it must compare
// against the generation at schedule time, not whatever the ctx holds when
// it fires.
func (r *Runner) scheduleBeginSpinCheck(ctx *threadCtx, gen uint64) {
	eng := ctx.lane.eng
	wait := ctx.th.dispatchedAt + ctx.lane.mac.Costs.Quantum - eng.Now()
	if wait < 1 {
		wait = 1
	}
	eng.AfterArgHandle(wait, ctx.hSpinCheck, gen)
}

// beginSpinCheck is the preemption check while spinning at begin.
func (r *Runner) beginSpinCheck(ctx *threadCtx, gen uint64) {
	if ctx.waitGen != gen || ctx.state != stBeginSpin {
		return
	}
	r.chargeSpin(ctx, CatScheduling)
	if ctx.lane.mac.ShouldPreempt(ctx.th) {
		// The OS timer preempts the spinner; on redispatch it re-executes
		// TX_BEGIN.
		ctx.state = stIdle
		ctx.waitGen++
		r.dropBeginWaiter(ctx)
		ctx.resume = ctx.contTryBegin
		ctx.lane.mac.Preempt(ctx.th)
		return
	}
	r.scheduleBeginSpinCheck(ctx, gen)
}

func (r *Runner) dropBeginWaiter(ctx *threadCtx) {
	ws := ctx.dom.beginWaiters[ctx.waitDTx]
	for i, c := range ws {
		if c == ctx {
			ctx.dom.beginWaiters[ctx.waitDTx] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
}

// chargeSpin charges the elapsed spin interval to a category and resets
// the mark. It reads nowFor, not the engine clock: the remote-doom hook
// can charge a victim's spin from underneath a horizon-batched access,
// where the logical time is ahead of the engine.
func (r *Runner) chargeSpin(ctx *threadCtx, cat Category) {
	now := r.nowFor(ctx)
	d := now - ctx.chargeMark
	if d > 0 {
		ctx.th.Charge(cat, d)
		if cat == CatTx {
			ctx.txCycles += d
		}
		ctx.chargeMark = now
	}
}

// startTx begins the hardware transaction.
func (r *Runner) startTx(ctx *threadCtx) {
	dtx := r.dtxOf(ctx)
	ctx.tx = ctx.dom.sys.Begin(ctx.tid, ctx.desc.STx, dtx)
	ctx.attempts++
	ctx.accIdx = 0
	ctx.txCycles = 0
	n := int64(len(ctx.desc.Accesses)) + 1
	ctx.gap = ctx.desc.BodyCycles / n
	ctx.th.Charge(CatTx, r.cfg.TMCosts.Begin)
	ctx.txCycles += r.cfg.TMCosts.Begin
	r.emit(ctx, trace.KBegin, -1, -1, 0)
	r.setSlot(ctx.dom, r.cpuOf(ctx), dtx)
	ctx.lane.eng.AfterHandle(r.cfg.TMCosts.Begin, ctx.hStepAccess)
}

// stepAccess executes the next transactional access (or commits). With
// batching enabled this is the horizon loop: consecutive accesses are
// consumed in place while each completion time stays strictly below the
// engine's next pending event, so the straight-line body of a transaction
// costs zero heap round-trips; the engine is re-entered only at the
// horizon, at quantum expiry, on a conflict/stall/abort, or at the commit
// boundary, always at the exact timestamp the per-event path would have
// produced.
func (r *Runner) stepAccess(ctx *threadCtx) {
	if ctx.tx.Doomed {
		r.abortTx(ctx)
		return
	}
	eng := ctx.lane.eng
	if r.noBatch {
		if ctx.accIdx >= len(ctx.desc.Accesses) {
			r.commitTx(ctx)
			return
		}
		// Compute gap, then the access itself.
		d := ctx.gap + r.cfg.TMCosts.Access
		ctx.th.Charge(CatTx, d)
		ctx.txCycles += d
		eng.AfterHandle(d, ctx.hAccess)
		return
	}
	local := eng.Now()
	d := ctx.gap + r.cfg.TMCosts.Access
	for {
		if ctx.accIdx >= len(ctx.desc.Accesses) {
			// Commit at logical time local: the same charge + event the
			// legacy commitTx issues when called at that instant.
			c := r.cfg.TMCosts.Commit
			ctx.th.Charge(CatTx, c)
			ctx.txCycles += c
			eng.AtHandle(local+c, ctx.hCommit)
			return
		}
		t := local + d
		// The horizon is re-read each iteration: it is O(1) per lane and
		// guards the (impossible today, cheap to insure against) case of
		// an in-batch call scheduling a new earlier event.
		if t >= r.horizon(ctx.lane) {
			// This access's completion would not precede the next event:
			// schedule it as a real event so anything landing at the same
			// instant keeps its (time, seq) precedence, and let
			// performAccess re-check Doomed at engine time t exactly as
			// the legacy path does.
			ctx.th.Charge(CatTx, d)
			ctx.txCycles += d
			eng.AtHandle(t, ctx.hAccess)
			return
		}
		// The access completes strictly before any other actor can run:
		// perform it now at logical time t. The TM is timeless, so the
		// result is identical to evaluating it at engine time t — except
		// for the remote-doom hook, which reads nowFor (hence batchNow).
		ctx.th.Charge(CatTx, d)
		ctx.txCycles += d
		ctx.lane.batchNow = t
		acc := ctx.desc.Accesses[ctx.accIdx]
		res := ctx.dom.sys.Access(ctx.tx, acc.Addr, acc.Write)
		ctx.lane.batchNow = 0
		switch {
		case res.OK:
			ctx.accIdx++
			if sh := ctx.lane.shard; sh != nil && acc.Addr >= sh.sharedBase {
				sh.probeShared(t, ctx.tid, acc.Addr)
			}
			if ctx.lane.mac.ShouldPreemptAt(ctx.th, t) {
				// Quantum boundary: re-enter the engine at the access's
				// completion time; postAccess performs the preemption
				// there, as the legacy path would.
				eng.AtHandle(t, ctx.hPostAccess)
				return
			}
			local = t
		case res.Holder != nil:
			// NACKed: stall at the access's completion time. The holder
			// pointer stays valid across the event because t is strictly
			// below the horizon — no other actor runs in between.
			ctx.batchHolder = res.Holder
			eng.AtHandle(t, ctx.hBatchStall)
			return
		default: // doomed by deadlock resolution
			eng.AtHandle(t, ctx.hAbort)
			return
		}
	}
}

// performAccess issues the access once its latency has been charged — the
// per-event path, taken under NoBatch and whenever a batched access lands
// on or past the horizon.
func (r *Runner) performAccess(ctx *threadCtx) {
	if ctx.tx.Doomed {
		r.abortTx(ctx)
		return
	}
	acc := ctx.desc.Accesses[ctx.accIdx]
	res := ctx.dom.sys.Access(ctx.tx, acc.Addr, acc.Write)
	switch {
	case res.OK:
		ctx.accIdx++
		if sh := ctx.lane.shard; sh != nil && acc.Addr >= sh.sharedBase {
			sh.probeShared(ctx.lane.eng.Now(), ctx.tid, acc.Addr)
		}
		r.postAccess(ctx)
	case res.Holder != nil:
		r.lineStall(ctx, res.Holder)
	default: // doomed by deadlock resolution
		r.abortTx(ctx)
	}
}

// postAccess is the step after a successful access: preempt if the
// quantum expired, otherwise continue with the next access.
func (r *Runner) postAccess(ctx *threadCtx) {
	ctx.resume = ctx.contStepAccess
	if r.maybePreempt(ctx) {
		return
	}
	r.stepAccess(ctx)
}

// lineStall handles a NACK: spin on the line until the holder releases or
// the stall budget runs out (then abort). Reactive managers implementing
// sched.StallPolicy replace the default budget with their own patience
// discipline (Polite/Karma/Timestamp).
func (r *Runner) lineStall(ctx *threadCtx, holder *tm.Tx) {
	eng := ctx.lane.eng
	ctx.state = stLineStall
	ctx.waitGen++
	gen := ctx.waitGen
	ctx.holder = holder
	ctx.chargeMark = eng.Now()
	r.emit(ctx, trace.KStall, holder.DTx, holder.STx, 0)
	if ctx.dec != nil {
		ctx.decStallTok = ctx.dec.Add(decision.Record{
			Time:     eng.Now(),
			Tid:      int32(ctx.tid),
			Stx:      int32(ctx.desc.STx),
			Attempt:  int32(ctx.attempts),
			Point:    decision.PNack,
			Choice:   decision.CStall,
			EnemyDTx: int32(holder.DTx),
			EnemyStx: int32(holder.STx),
		})
		ctx.decStallStart = eng.Now()
	}
	ctx.dom.stallWaiters[holder] = append(ctx.dom.stallWaiters[holder], ctx)
	budget := r.cfg.TMCosts.StallTimeout
	if sp, ok := ctx.dom.mgr.(sched.StallPolicy); ok {
		budget = sp.StallBudget(sched.StallInfo{
			ReqTid:     ctx.tid,
			ReqStx:     ctx.desc.STx,
			ReqWork:    ctx.tx.NumLines(),
			HolderWork: holder.NumLines(),
			ReqSeq:     ctx.tx.Seq,
			HolderSeq:  holder.Seq,
			Attempts:   ctx.attempts - 1,
		})
		if budget < 1 {
			budget = 1
		}
	}
	eng.AfterArgHandle(budget, ctx.hStallTimeout, gen)
}

// stallTimeout fires when a NACKed spin exhausts its budget; the generation
// snapshot guards against the wake path having already resolved the stall.
func (r *Runner) stallTimeout(ctx *threadCtx, gen uint64) {
	if ctx.waitGen != gen || ctx.state != stLineStall {
		return
	}
	holder := ctx.holder
	// Timed out: give up and abort (LogTM's conservative discipline).
	r.chargeSpin(ctx, CatTx)
	r.decSettleStall(ctx, decision.OTimedOut)
	ctx.state = stIdle
	ctx.waitGen++
	r.dropStallWaiter(ctx)
	// Attribute the conflict to the holder we stalled behind.
	if ctx.tx != nil && !ctx.tx.Doomed {
		ctx.tx.DoomedByTid = holder.Thread
		ctx.tx.DoomedByStx = holder.STx
	}
	r.abortTx(ctx)
}

func (r *Runner) dropStallWaiter(ctx *threadCtx) {
	ws := ctx.dom.stallWaiters[ctx.holder]
	for i, c := range ws {
		if c == ctx {
			ctx.dom.stallWaiters[ctx.holder] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
}

// decSettleStall settles the thread's pending NACK-stall record, if any.
func (r *Runner) decSettleStall(ctx *threadCtx, o decision.Outcome) {
	if ctx.decStallTok < 0 {
		return
	}
	ctx.dec.SetWait(ctx.decStallTok, r.nowFor(ctx)-ctx.decStallStart)
	ctx.dec.Resolve(ctx.decStallTok, o, 0)
	ctx.decStallTok = -1
}

// onTxReleased wakes every thread stalled behind tx (line stalls retry the
// access, begin spins retry the begin). Waiters are woken on their own
// lane's engine; entangled lanes share the clock, so the +1 lands at the
// same absolute instant regardless of which lane the committer ran on.
func (r *Runner) onTxReleased(dom *domainState, tx *tm.Tx) {
	for _, ctx := range dom.stallWaiters[tx] {
		if ctx.state != stLineStall || ctx.holder != tx {
			continue
		}
		r.chargeSpin(ctx, CatTx)
		r.decSettleStall(ctx, decision.OReleased)
		ctx.state = stIdle
		ctx.waitGen++
		ctx.holder = nil
		ctx.lane.eng.AfterHandle(1, ctx.hStepAccess) // retry the same access
	}
	delete(dom.stallWaiters, tx)

	for _, ctx := range dom.beginWaiters[tx.DTx] {
		if ctx.state != stBeginSpin || ctx.waitDTx != tx.DTx {
			continue
		}
		r.chargeSpin(ctx, CatScheduling)
		ctx.state = stIdle
		ctx.waitGen++
		ctx.waitDTx = core.NoTx
		ctx.lane.eng.AfterHandle(1, ctx.hTryBegin)
	}
	delete(dom.beginWaiters, tx.DTx)
}

// onRemoteDoom is tm.System's hook: a transaction other than the requester
// was doomed by deadlock resolution. If its thread is stalled on a line it
// must wake immediately and roll back; otherwise the Doomed flag is picked
// up at the next step boundary.
func (r *Runner) onRemoteDoom(victim *tm.Tx) {
	ctx := r.ctxs[victim.Thread]
	if ctx.tx != victim || ctx.state != stLineStall {
		return
	}
	r.chargeSpin(ctx, CatTx)
	r.decSettleStall(ctx, decision.OTimedOut) // doomed while waiting
	ctx.state = stIdle
	ctx.waitGen++
	r.dropStallWaiter(ctx)
	ctx.holder = nil
	// Scheduled from nowFor, not the engine clock: the dooming access may
	// be executing inside another thread's horizon batch, logically ahead
	// of the engine. (Conflicts are domain-local, so in partitioned runs
	// the doomer and the victim share a lane and nowFor resolves to it.)
	ctx.lane.eng.AtHandle(r.nowFor(ctx)+1, ctx.hAbort)
}

// commitTx finishes the transaction: hardware commit, manager bookkeeping,
// workload side effects, statistics.
func (r *Runner) commitTx(ctx *threadCtx) {
	ctx.th.Charge(CatTx, r.cfg.TMCosts.Commit)
	ctx.txCycles += r.cfg.TMCosts.Commit
	ctx.lane.eng.AfterHandle(r.cfg.TMCosts.Commit, ctx.hCommit)
}

// finishCommit runs once the hardware commit latency has elapsed. The
// transaction's line sets are walked into the ctx scratch buffers once and
// shared by the similarity profiler and the manager's OnCommit, so the
// commit path performs no per-commit allocation.
func (r *Runner) finishCommit(ctx *threadCtx) {
	dom := ctx.dom
	tx := ctx.tx
	size := tx.NumLines()
	ctx.linesBuf = tx.AppendLines(ctx.linesBuf[:0])
	ctx.writesBuf = tx.AppendWriteLines(ctx.writesBuf[:0])
	if r.cfg.ProfileSimilarity {
		r.profileCommit(ctx, size)
	}
	r.classifyPredWaits(ctx, tx)
	r.decOnCommit(ctx, tx)
	dom.sys.Commit(tx)
	dom.commitsPerStx[ctx.desc.STx]++
	dom.latency[ctx.desc.STx].Add(ctx.lane.eng.Now() - ctx.execStart)
	dom.attempts.Add(float64(ctx.attempts))
	r.emit(ctx, trace.KCommit, -1, -1, ctx.lane.eng.Now()-ctx.execStart)
	ctx.tx = nil
	r.setSlot(dom, r.cpuOf(ctx), core.NoTx)
	r.onTxReleased(dom, tx)

	overhead := dom.mgr.OnCommit(ctx.tid, ctx.desc.STx, ctx.linesBuf, ctx.writesBuf, size)
	dom.mgr.OnTxEnded(ctx.tid, ctx.desc.STx, true)
	if ctx.desc.OnCommit != nil {
		ctx.desc.OnCommit()
	}
	if overhead > 0 {
		ctx.th.Charge(CatScheduling, overhead)
	}
	ctx.lane.eng.AfterHandle(overhead, ctx.hPostCommit)
}

// profileCommit records exact Eq. 1 similarity for Table 1, reading the
// committing transaction's lines from ctx.linesBuf (filled by finishCommit)
// and recycling displaced exact sets and the Eq. 3 scratch filters so
// profiling allocates nothing in steady state.
func (r *Runner) profileCommit(ctx *threadCtx, size int) {
	dom := ctx.dom
	stx := ctx.desc.STx
	set := ctx.getExactSet()
	for _, a := range ctx.linesBuf {
		set.Add(a)
	}
	ctx.sizeSum[stx] += float64(size)
	ctx.sizeCnt[stx]++
	if prev := ctx.prevSet[stx]; prev != nil {
		avg := ctx.sizeSum[stx] / float64(ctx.sizeCnt[stx])
		if avg > 0 {
			sim := float64(set.IntersectionLen(prev)) / avg
			if sim > 1 {
				sim = 1
			}
			dom.simSum[stx] += sim
			dom.simCnt[stx]++
		}
		if dom.metEstErr != nil {
			if ctx.estFA == nil {
				// Paper filter geometry (2048 bits, 4 hashes), matching the
				// hardware signatures the estimator runs over.
				ctx.estFA = bloom.NewFilter(2048, bloom.DefaultHashes)
				ctx.estFB = bloom.NewFilter(2048, bloom.DefaultHashes)
			}
			dom.metEstErr.Observe(bloom.EstimateIntersectionErrorInto(set, prev, ctx.estFA, ctx.estFB))
		}
		ctx.putExactSet(prev)
	}
	ctx.prevSet[stx] = set
}

// abortTx rolls the transaction back: wasted work is recategorized from Tx
// to Abort, the undo-log walk and the manager's backoff are charged, and
// the begin is retried.
func (r *Runner) abortTx(ctx *threadCtx) {
	tx := ctx.tx
	if ctx.dec != nil {
		// The proceed decision is refuted: charge the attempt's wasted
		// transactional cycles as undercaution and attribute the abort to
		// the dooming transaction. A still-open stall record (doom noticed
		// at a step boundary) timed out implicitly.
		ctx.dec.SetEnemy(ctx.decBeginTok,
			int32(tx.DoomedByTid*r.cfg.Workload.NumStatic()+tx.DoomedByStx),
			int32(tx.DoomedByStx))
		ctx.dec.Resolve(ctx.decBeginTok, decision.OAborted, ctx.txCycles)
		ctx.decBeginTok = -1
		r.decSettleStall(ctx, decision.OTimedOut)
	}
	// Recategorize this attempt's transactional cycles as wasted.
	ctx.th.Charge(CatTx, -ctx.txCycles)
	ctx.th.Charge(CatAbort, ctx.txCycles)
	ctx.txCycles = 0

	r.emit(ctx, trace.KAbort, tx.DoomedByTid*r.cfg.Workload.NumStatic()+tx.DoomedByStx, tx.DoomedByStx, 0)
	rollback := r.cfg.TMCosts.RollbackBase + r.cfg.TMCosts.RollbackPerLine*int64(tx.NumWrites())
	ctx.th.Charge(CatAbort, rollback)
	ctx.lane.eng.AfterHandle(rollback, ctx.hRollback)
}

// finishAbort runs once the undo-log walk has been charged: release
// isolation, consult the manager, and back off before retrying the begin.
func (r *Runner) finishAbort(ctx *threadCtx) {
	dom := ctx.dom
	tx := ctx.tx
	dom.sys.Abort(tx)
	ctx.tx = nil
	r.setSlot(dom, r.cpuOf(ctx), core.NoTx)
	r.onTxReleased(dom, tx)

	ab := dom.mgr.OnAbort(ctx.tid, ctx.desc.STx, tx.DoomedByTid, tx.DoomedByStx, ctx.attempts)
	dom.mgr.OnTxEnded(ctx.tid, ctx.desc.STx, false)
	ctx.th.Charge(CatScheduling, ab.Overhead)
	ctx.th.Charge(CatAbort, ab.Backoff)
	ctx.lane.eng.AfterHandle(ab.Overhead+ab.Backoff, ctx.hPostAbort)
}

// liveThreads is the total live-thread count across lanes.
func (r *Runner) liveThreads() int {
	n := 0
	for _, ln := range r.lanes {
		n += ln.mac.LiveThreads()
	}
	return n
}

// sample records one time-series point and reschedules itself via the
// cached r.sampleFn closure. Sampling only reads manager and TM state, so
// it cannot perturb the simulated schedule: a run with metrics enabled
// takes the same cycle-level path as one without. The sampler only runs
// in single-domain modes (it reads global manager/TM state), on lane 0's
// engine.
func (r *Runner) sample() {
	if r.liveThreads() == 0 {
		return
	}
	dom := r.doms[0]
	ln := r.lanes[0]
	now := ln.eng.Now()
	if pr, ok := dom.mgr.(sched.PressureReporter); ok {
		dom.tsPressure.Append(now, pr.MeanPressure())
	}
	if cr, ok := dom.mgr.(sched.ConfidenceReporter); ok {
		dom.tsConf.Append(now, cr.MeanConfidence())
	}
	c, a := dom.sys.Commits(), dom.sys.Aborts()
	dc, da := c-dom.lastCommits, a-dom.lastAborts
	dom.lastCommits, dom.lastAborts = c, a
	if dc+da > 0 {
		const alpha = 0.3 // EWMA weight of the newest window
		dom.abortEwma = alpha*float64(da)/float64(dc+da) + (1-alpha)*dom.abortEwma
	}
	dom.tsAbortRate.Append(now, dom.abortEwma)
	ln.eng.After(r.sampleEvery, r.sampleFn)
}

// Run executes the simulation to completion and returns its measurements.
func (r *Runner) Run() *Result {
	if r.cfg.Metrics != nil && r.mode != modePartitioned {
		interval := r.cfg.SampleInterval
		if interval <= 0 {
			interval = DefaultSampleInterval
		}
		r.sampleEvery = interval
		r.sampleFn = func() { r.sample() }
		r.lanes[0].eng.After(interval, r.sampleFn)
	}
	switch r.mode {
	case modeSeq:
		r.runSequential()
	case modeEntangled:
		r.runEntangled()
	default:
		r.runPartitioned()
	}
	return r.buildResult()
}

// runSequential is the classic single-lane driver.
func (r *Runner) runSequential() {
	ln := r.lanes[0]
	r.active = ln
	ln.mac.Start()
	ln.eng.Run(func() bool {
		if r.cfg.MaxCycles > 0 && ln.eng.Now() > r.cfg.MaxCycles {
			ln.timedOut = true
			return true
		}
		return ln.mac.LiveThreads() == 0
	})
}

// buildResult finalizes makespan/idle accounting and assembles the Result,
// merging per-domain accumulators deterministically when partitioned.
func (r *Runner) buildResult() *Result {
	var makespan int64
	timedOut := false
	for _, ln := range r.lanes {
		if ln.makespan == 0 {
			ln.makespan = ln.eng.Now()
		}
		if ln.makespan > makespan {
			makespan = ln.makespan
		}
		timedOut = timedOut || ln.timedOut
	}
	for _, ln := range r.lanes {
		ln.mac.FinishIdle(makespan)
	}

	res := &Result{
		ManagerName:  r.doms[0].mgr.Name(),
		WorkloadName: r.cfg.Workload.Name(),
		Makespan:     makespan,
		TimedOut:     timedOut,
	}
	if len(r.doms) == 1 {
		dom := r.doms[0]
		res.Commits = dom.sys.Commits()
		res.Aborts = dom.sys.Aborts()
		res.ConflictMatrix = dom.sys.ConflictMatrix()
		res.CommitsPerStx = dom.commitsPerStx
		res.Latency = dom.latency
		res.AttemptsPerCommit = dom.attempts
	} else {
		nStatic := r.cfg.Workload.NumStatic()
		res.ConflictMatrix = make([][]int64, nStatic)
		for i := range res.ConflictMatrix {
			res.ConflictMatrix[i] = make([]int64, nStatic)
		}
		res.CommitsPerStx = make([]int64, nStatic)
		res.Latency = make([]stats.Histogram, nStatic)
		for _, dom := range r.doms {
			res.Commits += dom.sys.Commits()
			res.Aborts += dom.sys.Aborts()
			for i, row := range dom.sys.ConflictMatrix() {
				for j, v := range row {
					res.ConflictMatrix[i][j] += v
				}
			}
			for i, v := range dom.commitsPerStx {
				res.CommitsPerStx[i] += v
			}
			for i := range dom.latency {
				res.Latency[i].Merge(&dom.latency[i])
			}
			res.AttemptsPerCommit.Merge(&dom.attempts)
		}
	}
	for _, ctx := range r.ctxs {
		res.Breakdown.Merge(&ctx.th.Acct)
	}
	for _, ln := range r.lanes {
		res.Breakdown.Add(CatIdle, ln.mac.IdleCycles())
	}
	if r.cfg.ProfileSimilarity {
		dom := r.doms[0] // profiling is single-domain only
		res.Similarity = make([]float64, len(dom.simSum))
		for i := range dom.simSum {
			if dom.simCnt[i] > 0 {
				res.Similarity[i] = dom.simSum[i] / float64(dom.simCnt[i])
			}
		}
	}
	if r.cfg.Metrics != nil {
		if len(r.doms) > 1 {
			r.mergeShardMetrics()
		}
		var predTrue, predFalse int64
		for _, dom := range r.doms {
			predTrue += dom.predTrue
			predFalse += dom.predFalse
		}
		if classified := predTrue + predFalse; classified > 0 {
			r.cfg.Metrics.Gauge("sim.pred.precision").Set(float64(predTrue) / float64(classified))
		}
		res.Metrics = r.cfg.Metrics.Snapshot()
	}
	// The run is over: hand each thread's scratch back to the pool so the
	// next Runner (possibly on another goroutine) can reuse the buffers.
	for _, ctx := range r.ctxs {
		if ctx.ctxScratch != nil {
			ctx.ctxScratch.release()
			ctx.ctxScratch = nil
		}
	}
	return res
}
