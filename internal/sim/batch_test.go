package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// runBatchPair runs the same configuration twice — horizon-batched and
// legacy one-event-per-access — and returns both results.
func runBatchPair(t *testing.T, w workload.Workload, mgr string, cores, tpc int, seed uint64, profile bool) (batched, legacy *Result) {
	t.Helper()
	run := func(noBatch bool) *Result {
		res := NewRunner(RunConfig{
			Cores:             cores,
			ThreadsPerCore:    tpc,
			Seed:              seed,
			Workload:          w,
			NewManager:        managerFactory(mgr),
			ProfileSimilarity: profile,
			MaxCycles:         2_000_000_000,
			NoBatch:           noBatch,
		}).Run()
		if res.TimedOut {
			t.Fatalf("%s on %s timed out (noBatch=%v)", mgr, w.Name(), noBatch)
		}
		return res
	}
	return run(false), run(true)
}

// TestBatchedMatchesLegacy is the horizon-batching differential: over a
// randomized matrix of workload shapes, managers, machine sizes and seeds,
// the batched and legacy execution paths must produce cycle-identical
// Results — same makespan, same commit/abort counts, same per-category
// breakdown, same conflict matrix, same latency histograms. Any divergence
// means batching changed the event order, not just the host speed.
func TestBatchedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	managers := allManagers()
	for trial := 0; trial < 12; trial++ {
		mgr := managers[trial%len(managers)]
		nStatic := 1 + rng.Intn(3)
		span := 2 + rng.Intn(6)
		txs := 8 + rng.Intn(25)
		hot := 4 + rng.Intn(60) // smaller → more contention
		cores := 2 + rng.Intn(4)
		tpc := 1 + rng.Intn(3)
		seed := uint64(1 + rng.Intn(1000))

		w := newSynth(fmt.Sprintf("diff%d", trial), nStatic, txs, span)
		w.body = int64(50 + rng.Intn(400))
		w.pre = int64(100 + rng.Intn(2000))
		w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(hot) }
		w.stxOf = func(tid, i int) int { return i % nStatic }

		name := fmt.Sprintf("trial=%d mgr=%s static=%d span=%d txs=%d hot=%d cores=%d tpc=%d seed=%d",
			trial, mgr, nStatic, span, txs, hot, cores, tpc, seed)
		batched, legacy := runBatchPair(t, w, mgr, cores, tpc, seed, trial%4 == 0)
		if !reflect.DeepEqual(batched, legacy) {
			t.Errorf("%s: batched and legacy Results differ\n batched: makespan=%d commits=%d aborts=%d breakdown=%v\n legacy:  makespan=%d commits=%d aborts=%d breakdown=%v",
				name,
				batched.Makespan, batched.Commits, batched.Aborts, batched.Breakdown,
				legacy.Makespan, legacy.Commits, legacy.Aborts, legacy.Breakdown)
		}
	}
}

// TestBatchedMatchesLegacyUncontended pins the pure fast path: a disjoint
// workload where every access batches and the only engine re-entries are
// begin/commit boundaries and quantum expiry.
func TestBatchedMatchesLegacyUncontended(t *testing.T) {
	w := newSynth("disjoint-diff", 1, 40, 5)
	w.pick = func(tid, i int, rng *workload.RNG) int { return tid*2000 + i*8 }
	batched, legacy := runBatchPair(t, w, "backoff", 4, 2, 42, false)
	if !reflect.DeepEqual(batched, legacy) {
		t.Fatalf("disjoint workload diverged: batched makespan=%d, legacy makespan=%d",
			batched.Makespan, legacy.Makespan)
	}
	if batched.Aborts != 0 {
		t.Fatalf("disjoint workload aborted %d times", batched.Aborts)
	}
}

// TestSamplerUnderBatching runs the time-series sampler at a short period
// against both execution paths and requires identical sample points: same
// count, same timestamps, same values. The sampler is an engine event, so
// a batch that overran the sampler's horizon would shift or drop samples.
func TestSamplerUnderBatching(t *testing.T) {
	run := func(noBatch bool) *metrics.Snapshot {
		w := newSynth("sampled", 2, 30, 6)
		w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(8) }
		w.stxOf = func(tid, i int) int { return i % 2 }
		res := NewRunner(RunConfig{
			Cores:          4,
			ThreadsPerCore: 2,
			Seed:           42,
			Workload:       w,
			NewManager:     managerFactory("bfgts-hw"),
			MaxCycles:      2_000_000_000,
			Metrics:        metrics.New(),
			SampleInterval: 5_000, // short period: many chances to collide with a batch
			NoBatch:        noBatch,
		}).Run()
		if res.TimedOut {
			t.Fatalf("sampled run timed out (noBatch=%v)", noBatch)
		}
		return res.Metrics
	}
	batched, legacy := run(false), run(true)
	for _, key := range []string{"ts.pressure", "ts.mean_confidence", "ts.abort_rate"} {
		b, l := batched.Series[key], legacy.Series[key]
		if len(b) == 0 {
			t.Errorf("series %q empty", key)
			continue
		}
		if len(b) != len(l) {
			t.Errorf("series %q: %d samples batched vs %d legacy", key, len(b), len(l))
			continue
		}
		for i := range b {
			if b[i] != l[i] {
				t.Errorf("series %q sample %d: batched (t=%d v=%v) vs legacy (t=%d v=%v)",
					key, i, b[i].T, b[i].V, l[i].T, l[i].V)
				break
			}
		}
	}
}
