package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/decision"
	"repro/internal/workload"
)

// decisionCfg is a small contended configuration that exercises every
// decision point: proceeds, serializations, NACK stalls, and aborts.
func decisionCfg(mgr string, dec *decision.Set, flip int64) RunConfig {
	w := newSynth("dec-"+mgr, 2, 25, 6)
	w.body = 200
	w.pre = 400
	w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(10) }
	w.stxOf = func(tid, i int) int { return i % 2 }
	return RunConfig{
		Cores:          4,
		ThreadsPerCore: 2,
		Seed:           77,
		Workload:       w,
		NewManager:     managerFactory(mgr),
		MaxCycles:      2_000_000_000,
		Decisions:      dec,
		FlipBegin:      flip,
	}
}

// TestDecisionsDoNotPerturb pins the observer property: attaching a
// decision set changes nothing about the simulation — same makespan, same
// commit/abort counts, same per-category breakdown.
func TestDecisionsDoNotPerturb(t *testing.T) {
	for _, mgr := range allManagers() {
		plain := NewRunner(decisionCfg(mgr, nil, 0)).Run()
		set := decision.NewSet(8, 0)
		traced := NewRunner(decisionCfg(mgr, set, 0)).Run()
		if !reflect.DeepEqual(plain, traced) {
			t.Errorf("%s: decision recording perturbed the run: makespan %d vs %d",
				mgr, plain.Makespan, traced.Makespan)
		}
		if set.Len() == 0 {
			t.Errorf("%s: no decisions recorded", mgr)
		}
	}
}

// TestDecisionLedgerConsistency checks the recorded stream itself: begin
// records carry begin indexes, settled serializations have waits, aborted
// proceeds carry wasted cycles, and the regret ledger adds up.
func TestDecisionLedgerConsistency(t *testing.T) {
	set := decision.NewSet(8, 0)
	res := NewRunner(decisionCfg("bfgts-hw", set, 0)).Run()
	recs := set.Merge()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	var begins, proceeds int64
	for i := range recs {
		r := &recs[i]
		switch r.Point {
		case decision.PBegin:
			begins++
			if r.BeginIndex <= 0 {
				t.Fatalf("begin record without index: %+v", *r)
			}
			if r.Choice == decision.CProceed {
				proceeds++
			}
		case decision.PNack:
			if r.BeginIndex != 0 {
				t.Fatalf("nack record with begin index: %+v", *r)
			}
			if r.EnemyDTx < 0 {
				t.Fatalf("nack record without holder: %+v", *r)
			}
		}
		if r.WaitCycles < 0 || r.WastedCycles < 0 {
			t.Fatalf("negative wait/wasted: %+v", *r)
		}
	}
	g := decision.Estimate(recs)
	if g.Decisions != int64(len(recs)) {
		t.Fatalf("ledger decisions %d != %d records", g.Decisions, len(recs))
	}
	if g.Committed > res.Commits {
		t.Fatalf("ledger committed %d > run commits %d", g.Committed, res.Commits)
	}
	if res.Aborts > 0 && g.Aborted+g.TimedOut == 0 {
		t.Fatalf("run aborted %d times but ledger settled none", res.Aborts)
	}
	if g.Aborted > 0 && g.UndercautionCycles == 0 {
		t.Fatal("aborted proceeds carried no wasted cycles")
	}
	if proceeds != g.Proceeds {
		t.Fatalf("proceeds %d != ledger %d", proceeds, g.Proceeds)
	}
	_ = begins
}

// TestRecordedVsReplayedDeterminism is the differential the issue pins:
// recording twice is byte-identical, and a replayed (flipped) run is
// byte-identical to itself while measuring a real counterfactual.
func TestRecordedVsReplayedDeterminism(t *testing.T) {
	export := func(flip int64) ([]byte, int64) {
		set := decision.NewSet(8, 0)
		res := NewRunner(decisionCfg("bfgts-hw", set, flip)).Run()
		e := decision.NewExport()
		e.AddRun("BFGTS-HW", "dec-bfgts-hw", "cycles", set)
		var buf bytes.Buffer
		if err := e.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("export invalid: %v", err)
		}
		return buf.Bytes(), res.Makespan
	}
	a, ma := export(0)
	b, mb := export(0)
	if !bytes.Equal(a, b) || ma != mb {
		t.Fatal("recorded run not byte-deterministic")
	}
	f1, mf1 := export(3)
	f2, mf2 := export(3)
	if !bytes.Equal(f1, f2) || mf1 != mf2 {
		t.Fatal("flipped run not byte-deterministic")
	}
	if bytes.Equal(a, f1) {
		t.Fatal("flipping begin #3 changed nothing — flip is not wired")
	}
}

// TestReplayFlips runs the counterfactual replayer end to end and checks
// each verdict against a direct flipped re-run.
func TestReplayFlips(t *testing.T) {
	cfg := decisionCfg("bfgts-hw", nil, 0)
	rr := ReplayFlips(cfg, 4)
	if rr.Base == nil || rr.Decisions.Len() == 0 {
		t.Fatal("replay recorded nothing")
	}
	if len(rr.Flips) == 0 {
		t.Fatal("no flips replayed")
	}
	if len(rr.Flips) > 4 {
		t.Fatalf("replayed %d flips, asked for 4", len(rr.Flips))
	}
	for _, f := range rr.Flips {
		if f.Choice == decision.CBlock {
			t.Fatalf("replayed a block decision: %+v", f)
		}
		check := cfg
		check.FlipBegin = f.BeginIndex
		res := NewRunner(check).Run()
		if res.Makespan != f.FlipMakespan {
			t.Fatalf("flip %d: replayer says %d, direct run says %d",
				f.BeginIndex, f.FlipMakespan, res.Makespan)
		}
		if f.Regret != f.FlipMakespan-f.BaseMakespan {
			t.Fatalf("flip %d: regret arithmetic wrong: %+v", f.BeginIndex, f)
		}
	}
	// The replayer itself must be deterministic.
	rr2 := ReplayFlips(cfg, 4)
	if !reflect.DeepEqual(rr.Flips, rr2.Flips) {
		t.Fatal("replayer not deterministic")
	}
}

// TestFlipAcrossManagers smoke-tests the flip hook against every manager
// (Block decisions are left alone, so ATS must simply not crash or hang).
func TestFlipAcrossManagers(t *testing.T) {
	for _, mgr := range allManagers() {
		for _, flip := range []int64{1, 5} {
			res := NewRunner(decisionCfg(mgr, nil, flip)).Run()
			if res.TimedOut {
				t.Errorf("%s flip=%d timed out", mgr, flip)
			}
			if res.Commits == 0 {
				t.Errorf("%s flip=%d committed nothing", mgr, flip)
			}
		}
	}
}

// TestDecisionChromeExport exercises the sim → Chrome pipeline.
func TestDecisionChromeExport(t *testing.T) {
	set := decision.NewSet(8, 0)
	NewRunner(decisionCfg("bfgts-hw", set, 0)).Run()
	var c decision.ChromeTrace
	c.AddRun(0, "dec-bfgts-hw/BFGTS-HW", set)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"ph":"M"`)) {
		t.Fatal("no metadata events in chrome trace")
	}
}

// TestDecisionRecorderBounded checks the cap + drop-counting discipline
// under a real run.
func TestDecisionRecorderBounded(t *testing.T) {
	set := decision.NewSet(8, 4) // absurdly small cap
	NewRunner(decisionCfg("bfgts-hw", set, 0)).Run()
	if set.Dropped() == 0 {
		t.Fatal("tiny cap dropped nothing")
	}
	for tid := 0; tid < 8; tid++ {
		if n := len(set.Shard(tid).Records()); n > 4 {
			t.Fatalf("shard %d holds %d records past cap", tid, n)
		}
	}
}
