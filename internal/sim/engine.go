// Package sim contains the deterministic discrete-event simulator that
// stands in for the paper's M5 full-system setup: an event engine, a
// machine model (in-order 1-IPC cores at 2 GHz with an overcommitted OS
// scheduler: 64 threads on 16 cores, 4 per core, round-robin quanta,
// yield/block/wake with kernel-mode cycle charges), per-thread time
// accounting in the five categories of the paper's Figure 5, and the
// transaction runner that executes STAMP-like workloads through the
// simulated LogTM (internal/tm) under a pluggable contention manager
// (internal/sched).
//
// All time is in CPU cycles. Runs are bit-reproducible: the engine is
// single-threaded and event ties break on insertion order.
package sim

// Engine is a discrete-event scheduler. Events fire in (time, insertion
// sequence) order, which makes simulations deterministic.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine at time zero with no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() int64 { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events.ev) }

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it would silently reorder causality.
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now. Negative delays panic.
func (e *Engine) After(d int64, fn func()) {
	e.At(e.now+d, fn)
}

// AfterArg schedules fn(arg) to run d cycles from now. Carrying the
// argument in the event lets callers reuse one long-lived closure for
// events that must snapshot a value at schedule time (generation counters),
// instead of allocating a fresh closure per event.
func (e *Engine) AfterArg(d int64, fn func(uint64), arg uint64) {
	t := e.now + d
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, fnArg: fn, arg: arg})
}

// Step fires the next event, if any, advancing time to it. It reports
// whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.events.ev) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.time
	if ev.fnArg != nil {
		ev.fnArg(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run fires events until none remain or until the supplied predicate (if
// non-nil) reports the simulation should stop. The predicate is evaluated
// after each event.
func (e *Engine) Run(done func() bool) {
	for e.Step() {
		if done != nil && done() {
			return
		}
	}
}

type event struct {
	time int64
	seq  uint64
	fn   func()
	// fnArg+arg is the argument-carrying form used by AfterArg; exactly one
	// of fn and fnArg is set.
	fnArg func(uint64)
	arg   uint64
}

// eventHeap is a binary min-heap of events stored by value, ordered by
// (time, seq). Storing values instead of *event pointers means push/pop
// never touch the allocator once the backing array has grown to the
// simulation's churn depth: pop truncates the slice in place and push
// reuses the freed capacity. The (time, seq) order is total (seq is
// unique), so the pop sequence is identical to the previous
// container/heap-based implementation regardless of internal layout.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts an event and sifts it up.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the heap does not pin the fired closure past its dispatch.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{}
	h.ev = h.ev[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
	return top
}
