// Package sim contains the deterministic discrete-event simulator that
// stands in for the paper's M5 full-system setup: an event engine, a
// machine model (in-order 1-IPC cores at 2 GHz with an overcommitted OS
// scheduler: 64 threads on 16 cores, 4 per core, round-robin quanta,
// yield/block/wake with kernel-mode cycle charges), per-thread time
// accounting in the five categories of the paper's Figure 5, and the
// transaction runner that executes STAMP-like workloads through the
// simulated LogTM (internal/tm) under a pluggable contention manager
// (internal/sched).
//
// All time is in CPU cycles. Runs are bit-reproducible: the engine is
// single-threaded and event ties break on insertion order.
package sim

import "container/heap"

// Engine is a discrete-event scheduler. Events fire in (time, insertion
// sequence) order, which makes simulations deterministic.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine at time zero with no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() int64 { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it would silently reorder causality.
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now. Negative delays panic.
func (e *Engine) After(d int64, fn func()) {
	e.At(e.now+d, fn)
}

// Step fires the next event, if any, advancing time to it. It reports
// whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.time
	ev.fn()
	return true
}

// Run fires events until none remain or until the supplied predicate (if
// non-nil) reports the simulation should stop. The predicate is evaluated
// after each event.
func (e *Engine) Run(done func() bool) {
	for e.Step() {
		if done != nil && done() {
			return
		}
	}
}

type event struct {
	time int64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
