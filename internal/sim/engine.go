// Package sim contains the deterministic discrete-event simulator that
// stands in for the paper's M5 full-system setup: an event engine, a
// machine model (in-order 1-IPC cores at 2 GHz with an overcommitted OS
// scheduler: 64 threads on 16 cores, 4 per core, round-robin quanta,
// yield/block/wake with kernel-mode cycle charges), per-thread time
// accounting in the five categories of the paper's Figure 5, and the
// transaction runner that executes STAMP-like workloads through the
// simulated LogTM (internal/tm) under a pluggable contention manager
// (internal/sched).
//
// All time is in CPU cycles. Runs are bit-reproducible: the engine is
// single-threaded and event ties break on insertion order.
package sim

// Handle names a long-lived func() registered with an engine via
// Register. Scheduling by handle keeps the event heap free of pointers,
// so sift operations are plain memmoves with no GC write barriers — the
// engine's push/pop was the hottest edge in the whole simulation profile
// before handles, and most of that was barrier bookkeeping.
type Handle int32

// ArgHandle names a registered func(uint64) (see RegisterArg); the
// argument rides in the event itself, snapshotted at schedule time.
type ArgHandle int32

// Engine is a discrete-event scheduler. Events fire in (time, insertion
// sequence) order, which makes simulations deterministic.
//
// An engine normally owns its clock and sequence counter. Sharded
// simulations (see shard.go) build one engine per shard over a *shared*
// clock and sequence counter: the union of the shard heaps then behaves
// exactly like one big heap — pops take the global (time, seq) minimum,
// pushes stamp globally unique seq values in execution order — which is
// what makes the sharded run byte-identical to the sequential one.
type Engine struct {
	// now and seq point at ownNow/ownSeq for a standalone engine, or at
	// the shard set's shared clock and push counter for a lane engine.
	now    *int64
	seq    *uint64
	ownNow int64
	ownSeq uint64
	events eventHeap

	// Handler tables. Registered handlers live for the engine's lifetime;
	// one-shot funcs (the closure-based At/After/AfterArg API) occupy a
	// recycled slot until they fire.
	handlers       []func()
	argHandlers    []func(uint64)
	oneShot        []func()
	oneShotFree    []int32
	oneShotArg     []func(uint64)
	oneShotArgFree []int32
}

// NewEngine returns an engine at time zero with no pending events.
func NewEngine() *Engine {
	e := &Engine{}
	e.now = &e.ownNow
	e.seq = &e.ownSeq
	return e
}

// NewLaneEngine returns an engine whose clock and push counter live
// outside it, shared with the other lanes of a sharded simulation. The
// caller advances nothing directly: Step still moves the clock, but every
// lane sees the move immediately, so cross-lane scheduling ("wake thread
// 12 one cycle from now") lands at the right absolute time even when the
// target lane has not fired an event for a while.
func NewLaneEngine(clock *int64, seq *uint64) *Engine {
	return &Engine{now: clock, seq: seq}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() int64 { return *e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events.ev) }

// NoPending is the PeekTime sentinel when no events are scheduled: any
// finite event time compares strictly below it.
const NoPending = int64(1<<63 - 1)

// PeekTime returns the time of the next pending event without firing it,
// or NoPending when the heap is empty. This is the conservative-DES
// lookahead horizon: between Now and PeekTime no event can fire, so an
// actor may execute straight-line work locally and commit the elapsed
// time with a single At call — as long as it stays strictly below the
// horizon, the global event order is indistinguishable from having
// scheduled every intermediate step. (Strictly: an event landing exactly
// on the horizon gets a fresh sequence number and so fires after the
// already-pending event, exactly as a newly scheduled event would have.)
//
//bfgts:allocfree
func (e *Engine) PeekTime() int64 {
	if len(e.events.ev) == 0 {
		return NoPending
	}
	return e.events.ev[0].time
}

// PeekKey returns the full (time, seq) ordering key of the next pending
// event, or ok=false when the heap is empty. The sharded driver uses it
// to pick the globally minimal event across lane heaps: because all lanes
// share one seq counter, comparing (time, seq) pairs across heaps yields
// exactly the order a single merged heap would produce.
//
//bfgts:allocfree
func (e *Engine) PeekKey() (t int64, seq uint64, ok bool) {
	if len(e.events.ev) == 0 {
		return 0, 0, false
	}
	head := &e.events.ev[0]
	return head.time, head.seq, true
}

// Register adds a long-lived handler and returns its Handle for AtHandle /
// AfterHandle scheduling. Handlers are never freed; register once per
// continuation, not per event.
func (e *Engine) Register(fn func()) Handle {
	e.handlers = append(e.handlers, fn)
	return Handle(len(e.handlers) - 1)
}

// RegisterArg adds a long-lived argument-taking handler for
// AfterArgHandle scheduling.
func (e *Engine) RegisterArg(fn func(uint64)) ArgHandle {
	e.argHandlers = append(e.argHandlers, fn)
	return ArgHandle(len(e.argHandlers) - 1)
}

// Event kinds: which handler table the event's index points into.
const (
	evHandler    = uint8(iota) // handlers[h]()
	evArgHandler               // argHandlers[h](arg)
	evOneShot                  // oneShot[h](), slot recycled after firing
	evOneShotArg               // oneShotArg[h](arg), slot recycled
)

// AtHandle schedules a registered handler to run at absolute time t.
// Scheduling in the past (before Now) panics: it would silently reorder
// causality.
//
//bfgts:allocfree
func (e *Engine) AtHandle(t int64, h Handle) {
	if t < *e.now {
		panic("sim: event scheduled in the past")
	}
	*e.seq++
	e.events.push(event{time: t, seq: *e.seq, h: int32(h), kind: evHandler})
}

// AfterHandle schedules a registered handler d cycles from now.
//
//bfgts:allocfree
func (e *Engine) AfterHandle(d int64, h Handle) {
	e.AtHandle(*e.now+d, h)
}

// AtArgHandle schedules a registered argument-taking handler at absolute
// time t, with arg snapshotted into the event.
//
//bfgts:allocfree
func (e *Engine) AtArgHandle(t int64, h ArgHandle, arg uint64) {
	if t < *e.now {
		panic("sim: event scheduled in the past")
	}
	*e.seq++
	e.events.push(event{time: t, seq: *e.seq, h: int32(h), arg: arg, kind: evArgHandler})
}

// AfterArgHandle schedules a registered argument-taking handler d cycles
// from now.
//
//bfgts:allocfree
func (e *Engine) AfterArgHandle(d int64, h ArgHandle, arg uint64) {
	e.AtArgHandle(*e.now+d, h, arg)
}

// At schedules fn to run at absolute time t via a recycled one-shot slot.
// Steady-state cost matches handle scheduling except for one pointer
// store; hot paths should still prefer registered handles.
//
//bfgts:allocfree
func (e *Engine) At(t int64, fn func()) {
	if t < *e.now {
		panic("sim: event scheduled in the past")
	}
	var h int32
	if n := len(e.oneShotFree); n > 0 {
		h = e.oneShotFree[n-1]
		e.oneShotFree = e.oneShotFree[:n-1]
		e.oneShot[h] = fn
	} else {
		e.oneShot = append(e.oneShot, fn)
		h = int32(len(e.oneShot) - 1)
	}
	*e.seq++
	e.events.push(event{time: t, seq: *e.seq, h: h, kind: evOneShot})
}

// After schedules fn to run d cycles from now. Negative delays panic.
//
//bfgts:allocfree
func (e *Engine) After(d int64, fn func()) {
	e.At(*e.now+d, fn)
}

// AfterArg schedules fn(arg) to run d cycles from now, carrying the
// argument in the event so callers can reuse one long-lived closure for
// events that must snapshot a value at schedule time.
//
//bfgts:allocfree
func (e *Engine) AfterArg(d int64, fn func(uint64), arg uint64) {
	t := *e.now + d
	if t < *e.now {
		panic("sim: event scheduled in the past")
	}
	var h int32
	if n := len(e.oneShotArgFree); n > 0 {
		h = e.oneShotArgFree[n-1]
		e.oneShotArgFree = e.oneShotArgFree[:n-1]
		e.oneShotArg[h] = fn
	} else {
		e.oneShotArg = append(e.oneShotArg, fn)
		h = int32(len(e.oneShotArg) - 1)
	}
	*e.seq++
	e.events.push(event{time: t, seq: *e.seq, h: h, arg: arg, kind: evOneShotArg})
}

// Step fires the next event, if any, advancing time to it. It reports
// whether an event was fired.
//
//bfgts:allocfree
func (e *Engine) Step() bool {
	if len(e.events.ev) == 0 {
		return false
	}
	ev := e.events.pop()
	*e.now = ev.time
	switch ev.kind {
	case evHandler:
		e.handlers[ev.h]()
	case evArgHandler:
		e.argHandlers[ev.h](ev.arg)
	case evOneShot:
		fn := e.oneShot[ev.h]
		e.oneShot[ev.h] = nil // don't pin the closure past its dispatch
		e.oneShotFree = append(e.oneShotFree, ev.h)
		fn()
	default: // evOneShotArg
		fn := e.oneShotArg[ev.h]
		e.oneShotArg[ev.h] = nil
		e.oneShotArgFree = append(e.oneShotArgFree, ev.h)
		fn(ev.arg)
	}
	return true
}

// Run fires events until none remain or until the supplied predicate (if
// non-nil) reports the simulation should stop. The predicate is evaluated
// after each event.
func (e *Engine) Run(done func() bool) {
	for e.Step() {
		if done != nil && done() {
			return
		}
	}
}

// event is a pending occurrence. It holds no pointers — the handler is an
// index into one of the engine's tables — so the heap's backing array is
// never scanned by the GC and sift swaps compile to barrier-free copies.
type event struct {
	time int64
	seq  uint64
	arg  uint64
	h    int32
	kind uint8
}

// eventHeap is a binary min-heap of events stored by value, ordered by
// (time, seq). Storing values instead of *event pointers means push/pop
// never touch the allocator once the backing array has grown to the
// simulation's churn depth: pop truncates the slice in place and push
// reuses the freed capacity. The (time, seq) order is total (seq is
// unique), so the pop sequence is identical to the previous
// container/heap-based implementation regardless of internal layout.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts an event and sifts it up.
//
//bfgts:allocfree
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
//
//bfgts:allocfree
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
	return top
}
