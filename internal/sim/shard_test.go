package sim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tm"
	"repro/internal/workload"
)

// runWithShards builds a runner, records which execution mode it chose, and
// runs it to completion.
func runWithShards(t *testing.T, cfg RunConfig) (*Result, runMode) {
	t.Helper()
	r := NewRunner(cfg)
	mode := r.mode
	res := r.Run()
	if res.TimedOut {
		t.Fatalf("%s on %s timed out (shards=%d)", res.ManagerName, res.WorkloadName, cfg.Shards)
	}
	return res, mode
}

// TestEntangledShardedMatchesSequential is the sharding differential for the
// entangled shared-clock mode: over a randomized matrix of workload shapes,
// managers, machine sizes, shard counts and seeds, the sharded run must
// produce a Result deeply equal to the sequential run — makespan, counts,
// breakdown, conflict matrix, latency histograms, attempt summaries, and the
// full metrics snapshot (including the time-series sampler). Synthetic
// workloads do not implement workload.Sharder, so Shards > 1 always takes
// the entangled path here.
func TestEntangledShardedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	managers := allManagers()
	for trial := 0; trial < 10; trial++ {
		mgr := managers[trial%len(managers)]
		nStatic := 1 + rng.Intn(3)
		span := 2 + rng.Intn(6)
		txs := 8 + rng.Intn(20)
		hot := 4 + rng.Intn(60)
		cores := 2 + rng.Intn(15)
		tpc := 1 + rng.Intn(3)
		shards := 2 + rng.Intn(15)
		seed := uint64(1 + rng.Intn(1000))
		withMetrics := trial%3 == 0

		w := newSynth(fmt.Sprintf("shard-diff%d", trial), nStatic, txs, span)
		w.body = int64(50 + rng.Intn(400))
		w.pre = int64(100 + rng.Intn(2000))
		w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(hot) }
		w.stxOf = func(tid, i int) int { return i % nStatic }

		run := func(shards int) (*Result, runMode) {
			cfg := RunConfig{
				Cores:          cores,
				ThreadsPerCore: tpc,
				Seed:           seed,
				Workload:       w,
				NewManager:     managerFactory(mgr),
				MaxCycles:      2_000_000_000,
				Shards:         shards,
			}
			if withMetrics {
				cfg.Metrics = metrics.New()
				cfg.SampleInterval = 10_000
			}
			return runWithShards(t, cfg)
		}
		name := fmt.Sprintf("trial=%d mgr=%s cores=%d tpc=%d shards=%d seed=%d metrics=%v",
			trial, mgr, cores, tpc, shards, seed, withMetrics)
		seq, seqMode := run(1)
		shd, shdMode := run(shards)
		if seqMode != modeSeq {
			t.Fatalf("%s: sequential run took mode %d", name, seqMode)
		}
		if wantEnt := shards >= 2 && cores >= 2; wantEnt && shdMode != modeEntangled {
			t.Fatalf("%s: sharded run took mode %d, want entangled", name, shdMode)
		}
		if !reflect.DeepEqual(seq, shd) {
			t.Errorf("%s: sharded Result differs\n seq:   makespan=%d commits=%d aborts=%d breakdown=%v\n shard: makespan=%d commits=%d aborts=%d breakdown=%v",
				name,
				seq.Makespan, seq.Commits, seq.Aborts, seq.Breakdown,
				shd.Makespan, shd.Commits, shd.Aborts, shd.Breakdown)
		}
	}
}

// TestEntangledManyCores pins the entangled differential at a many-core
// geometry (one lane per few cores) where lane heaps are nearly empty and
// horizon batching does most of the work.
func TestEntangledManyCores(t *testing.T) {
	w := newSynth("shard-manycore", 2, 3, 4)
	w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(512) }
	w.stxOf = func(tid, i int) int { return i % 2 }
	run := func(shards int) *Result {
		res, _ := runWithShards(t, RunConfig{
			Cores:          128,
			ThreadsPerCore: 2,
			Seed:           7,
			Workload:       w,
			NewManager:     managerFactory("bfgts-hw"),
			MaxCycles:      2_000_000_000,
			Shards:         shards,
		})
		return res
	}
	seq := run(1)
	for _, shards := range []int{4, 16, 64} {
		if shd := run(shards); !reflect.DeepEqual(seq, shd) {
			t.Errorf("shards=%d diverged: makespan %d vs %d", shards, seq.Makespan, shd.Makespan)
		}
	}
}

// wideCfg is the canonical partitioned configuration: the wide workload
// (which implements workload.Sharder) under the shard-safe per-thread
// backoff manager.
func wideCfg(cores, tpc, txs, shards int) RunConfig {
	return RunConfig{
		Cores:          cores,
		ThreadsPerCore: tpc,
		Seed:           11,
		Workload:       workload.NewWide(cores, tpc, txs),
		NewManager:     func(env sched.Env) sched.Manager { return sched.NewPerThreadBackoff(env) },
		MaxCycles:      2_000_000_000,
		Shards:         shards,
	}
}

// TestPartitionedWideMatchesSequential is the partitioned-mode differential:
// the wide workload under the shard-safe manager must produce the identical
// Result at every shard count — exactly, except for AttemptsPerCommit, whose
// merged Welford recombination may differ from the sequential sample order
// in the last float64 bits (Result documents this); its integer fields and
// extrema must still match exactly.
func TestPartitionedWideMatchesSequential(t *testing.T) {
	seq, seqMode := runWithShards(t, wideCfg(16, 4, 4000, 1))
	if seqMode != modeSeq {
		t.Fatalf("sequential run took mode %d", seqMode)
	}
	if seq.Aborts == 0 {
		t.Fatal("wide workload produced no contention; the differential is vacuous")
	}
	for _, shards := range []int{2, 4, 8} {
		shd, mode := runWithShards(t, wideCfg(16, 4, 4000, shards))
		if mode != modePartitioned {
			t.Fatalf("shards=%d took mode %d, want partitioned", shards, mode)
		}
		a, b := *seq, *shd
		sa, sb := a.AttemptsPerCommit, b.AttemptsPerCommit
		a.AttemptsPerCommit, b.AttemptsPerCommit = stats.Summary{}, stats.Summary{}
		if !reflect.DeepEqual(&a, &b) {
			t.Errorf("shards=%d: Result differs\n seq:   makespan=%d commits=%d aborts=%d breakdown=%v\n shard: makespan=%d commits=%d aborts=%d breakdown=%v",
				shards,
				seq.Makespan, seq.Commits, seq.Aborts, seq.Breakdown,
				shd.Makespan, shd.Commits, shd.Aborts, shd.Breakdown)
		}
		if sa.N() != sb.N() || sa.Min() != sb.Min() || sa.Max() != sb.Max() {
			t.Errorf("shards=%d: attempts summary shape differs: n=%d/%d min=%v/%v max=%v/%v",
				shards, sa.N(), sb.N(), sa.Min(), sb.Min(), sa.Max(), sb.Max())
		}
		if d := math.Abs(sa.Mean() - sb.Mean()); d > 1e-9 {
			t.Errorf("shards=%d: attempts mean drifted %g beyond float merge noise", shards, d)
		}
	}
}

// TestPartitionedShardMetrics checks the shard-layer instrumentation of a
// partitioned run: the shard count gauge, per-shard horizon-wait histograms,
// and the probe counters. Cross-shard probes target the read-only shared
// region, so the conflict counter must be exactly zero, and sent probes are
// a deterministic function of the event streams, so they must equal recv
// and validated after the final drain.
func TestPartitionedShardMetrics(t *testing.T) {
	cfg := wideCfg(8, 2, 2000, 4)
	cfg.Metrics = metrics.New()
	res, mode := runWithShards(t, cfg)
	if mode != modePartitioned {
		t.Fatalf("took mode %d, want partitioned", mode)
	}
	snap := res.Metrics
	if got := snap.Gauges["sim.shard.count"]; got != 4 {
		t.Errorf("sim.shard.count = %v, want 4", got)
	}
	sent := snap.Counters["sim.shard.msgs.sent"]
	if sent == 0 {
		t.Error("no cross-shard probes were sent; the wide lookup should probe the shared region")
	}
	if recv := snap.Counters["sim.shard.msgs.recv"]; recv != sent {
		t.Errorf("probes sent=%d recv=%d; final drain lost messages", sent, recv)
	}
	if v := snap.Counters["sim.shard.msgs.validated"]; v != sent {
		t.Errorf("probes sent=%d validated=%d", sent, v)
	}
	if c := snap.Counters["sim.shard.msgs.conflicts"]; c != 0 {
		t.Errorf("%d probe conflicts on a read-only shared region (partition contract violated)", c)
	}
	for i := 0; i < 4; i++ {
		if _, ok := snap.Histograms[fmt.Sprintf("sim.shard.%02d.horizon_wait", i)]; !ok {
			t.Errorf("missing per-shard horizon_wait histogram for shard %d", i)
		}
	}
}

// TestPartitionedFallbacks pins every eligibility edge of the partitioned
// path: a non-shard-safe manager, a non-Sharder workload, a core count the
// shard count does not divide, a partition the workload refuses (odd
// cores-per-shard splits a wide pair), and a decision recorder all fall back
// to the entangled mode.
func TestPartitionedFallbacks(t *testing.T) {
	base := wideCfg(16, 2, 200, 4)

	backoff := base
	backoff.NewManager = managerFactory("backoff")
	if r := NewRunner(backoff); r.mode != modeEntangled {
		t.Errorf("shared-rand Backoff: mode %d, want entangled", r.mode)
	}

	synth := base
	synth.Workload = newSynth("notsharder", 1, 5, 3)
	if r := NewRunner(synth); r.mode != modeEntangled {
		t.Errorf("non-Sharder workload: mode %d, want entangled", r.mode)
	}

	uneven := wideCfg(16, 2, 200, 5) // 16 % 5 != 0
	if r := NewRunner(uneven); r.mode != modeEntangled {
		t.Errorf("uneven core split: mode %d, want entangled", r.mode)
	}

	evenSplit := wideCfg(8, 2, 200, 2) // 4 cores per shard: pairs stay whole
	if r := NewRunner(evenSplit); r.mode != modePartitioned {
		t.Errorf("even pair split: mode %d, want partitioned", r.mode)
	}
	oddPerShard := wideCfg(9, 2, 200, 3) // 3 cores per shard splits pair (2,3)
	if r := NewRunner(oddPerShard); r.mode != modeEntangled {
		t.Errorf("odd cores-per-shard: mode %d, want entangled", r.mode)
	}

	// Global observers force the entangled path even when the partition is
	// valid; their output depends on the cross-lane interleaving.
	profiled := base
	profiled.ProfileSimilarity = true
	if r := NewRunner(profiled); r.mode != modeEntangled {
		t.Errorf("similarity profiling: mode %d, want entangled", r.mode)
	}
}

// TestShardBarrierRace stress-tests the barrier under the race detector:
// every lane publishes a monotone horizon stream while reading the others'
// minimum, which must itself be monotone (horizons only move forward).
func TestShardBarrierRace(t *testing.T) {
	const lanes = 4
	bar := newShardBarrier(lanes, 0)
	var wg sync.WaitGroup
	errs := make([]error, lanes)
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			last := int64(-1)
			for step := int64(1); step <= 3000; step++ {
				bar.Publish(i, step*int64(i+1))
				m := bar.MinOther(i)
				if m < last {
					errs[i] = fmt.Errorf("lane %d: MinOther went backwards: %d then %d", i, last, m)
					return
				}
				last = m
			}
			bar.Done(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bar.AllDone() {
		t.Fatal("AllDone false after every lane called Done")
	}
}

// TestShardRingSPSC drives the probe ring from concurrent producer and
// consumer goroutines (the partitioned deployment shape) and requires exact
// FIFO delivery — under -race this also checks the tail-store/load
// publication protocol for the non-atomic slot writes.
func TestShardRingSPSC(t *testing.T) {
	ring := newShardRing()
	const n = 200_000
	done := make(chan error, 1)
	go func() {
		next := int64(0)
		for next < n {
			m, ok := ring.pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if m.time != next {
				done <- fmt.Errorf("popped %d, want %d", m.time, next)
				return
			}
			next++
		}
		done <- nil
	}()
	for i := int64(0); i < n; {
		if ring.push(shardMsg{time: i}) {
			i++
		} else {
			// The ring is intentionally small; on a single-CPU host a
			// full ring stays full until the consumer gets scheduled.
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedRaceStress runs real partitioned simulations back to back;
// under check.sh's -race run this exercises the rings, the barrier and the
// per-lane domains with genuine concurrent traffic.
func TestPartitionedRaceStress(t *testing.T) {
	for rep := 0; rep < 3; rep++ {
		cfg := wideCfg(8, 2, 1500, 4)
		cfg.Seed = uint64(rep + 1)
		cfg.Metrics = metrics.New()
		if _, mode := runWithShards(t, cfg); mode != modePartitioned {
			t.Fatalf("rep %d not partitioned", rep)
		}
	}
}

// TestShardHotPathAllocFree is the runtime allocation gate for the shard
// hot paths (ring push/pop, barrier publish/min, probe send/drain/validate,
// horizon wait, engine key peek); the //bfgts:allocfree directives on these
// functions are cross-checked by TestAllocFreeMarkersMatchRuntimeGates.
func TestShardHotPathAllocFree(t *testing.T) {
	ring := newShardRing()
	ring.push(shardMsg{}) // first push sizes the lazy buffer
	ring.pop()
	if a := testing.AllocsPerRun(1000, func() {
		ring.push(shardMsg{time: 1})
		ring.pop()
	}); a != 0 {
		t.Errorf("ring push/pop allocates %v/op", a)
	}

	bar := newShardBarrier(3, 0)
	if a := testing.AllocsPerRun(1000, func() {
		bar.Publish(0, 5)
		_ = bar.MinOther(0)
	}); a != 0 {
		t.Errorf("barrier publish/min allocates %v/op", a)
	}

	// A two-lane probe loop: lane 0 sends to lane 1, lane 1 drains and
	// validates. One warm-up round sizes the scratch buffer.
	fwd := newShardRing()
	dom := &domainState{sys: tm.NewSystem(1)}
	sh0 := &laneShard{idx: 0, owner: func(addr uint64) int { return 1 }, dom: dom,
		out: []*shardRing{nil, fwd}, in: []*shardRing{nil, nil}}
	sh1 := &laneShard{idx: 1, owner: func(addr uint64) int { return 1 }, dom: dom,
		out: []*shardRing{nil, nil}, in: []*shardRing{fwd, nil}}
	tick := int64(0)
	probe := func() {
		tick++
		sh0.probeShared(tick, 3, 0x40)
		sh1.drainInbound()
		sh1.processDrained()
		_ = sh1.inboundEmpty()
	}
	probe()
	if a := testing.AllocsPerRun(1000, probe); a != 0 {
		t.Errorf("probe send/drain/validate allocates %v/op", a)
	}

	// Horizon wait, fast path (the other lane's horizon is +inf).
	wbar := newShardBarrier(2, 0)
	wbar.Publish(0, NoPending)
	shw := &laneShard{idx: 1, bar: wbar, in: []*shardRing{nil, nil}}
	wt := int64(0)
	if a := testing.AllocsPerRun(1000, func() {
		wt++
		shw.waitHorizon(wt)
	}); a != 0 {
		t.Errorf("waitHorizon fast path allocates %v/op", a)
	}

	eng := NewEngine()
	eng.At(1<<40, func() {})
	if a := testing.AllocsPerRun(1000, func() {
		_, _, _ = eng.PeekKey()
	}); a != 0 {
		t.Errorf("PeekKey allocates %v/op", a)
	}
}
