package sim

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestRunnerEmitsTrace(t *testing.T) {
	w := newSynth("traced", 1, 20, 4)
	w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(4) }
	w.body = 600
	rec := &trace.Recorder{Cap: 100000}
	r := NewRunner(RunConfig{
		Cores: 4, ThreadsPerCore: 4, Seed: 42,
		Workload:   w,
		NewManager: managerFactory("bfgts-hw"),
		MaxCycles:  2_000_000_000,
		Trace:      rec,
	})
	res := r.Run()
	c := rec.Counts()
	if c[trace.KCommit] != res.Commits {
		t.Fatalf("trace commits = %d, result commits = %d", c[trace.KCommit], res.Commits)
	}
	if c[trace.KAbort] != res.Aborts {
		t.Fatalf("trace aborts = %d, result aborts = %d", c[trace.KAbort], res.Aborts)
	}
	if c[trace.KBegin] != res.Commits+res.Aborts {
		t.Fatalf("trace begins = %d, want commits+aborts = %d", c[trace.KBegin], res.Commits+res.Aborts)
	}
	// Times are monotone non-decreasing in record order.
	prev := int64(-1)
	for _, e := range rec.Events() {
		if e.Time < prev {
			t.Fatalf("trace time went backwards: %d after %d", e.Time, prev)
		}
		prev = e.Time
	}
	var sb strings.Builder
	if err := rec.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"kind":"commit"`) {
		t.Fatal("JSONL trace missing commits")
	}
}

func TestRunnerLatencyHistograms(t *testing.T) {
	w := newSynth("lat", 2, 30, 4)
	w.stxOf = func(tid, i int) int { return i % 2 }
	w.pick = func(tid, i int, rng *workload.RNG) int { return tid*500 + i }
	res := runSynth(t, w, "backoff", 4, 2)
	for s := 0; s < 2; s++ {
		h := &res.Latency[s]
		if h.N() != res.CommitsPerStx[s] {
			t.Fatalf("stx %d latency samples %d != commits %d", s, h.N(), res.CommitsPerStx[s])
		}
		if h.Mean() <= 0 {
			t.Fatalf("stx %d zero mean latency", s)
		}
		if h.Percentile(50) > h.Percentile(99) {
			t.Fatal("latency percentiles not monotone")
		}
	}
	if res.AttemptsPerCommit.N() != res.Commits {
		t.Fatal("attempts summary sample count mismatch")
	}
	if res.AttemptsPerCommit.Min() < 1 {
		t.Fatalf("committed execution with %v attempts", res.AttemptsPerCommit.Min())
	}
}
