package sim

import "fmt"

// ThreadState is the OS-level state of a simulated thread.
type ThreadState int

// Thread states.
const (
	ThReady ThreadState = iota
	ThRunning
	ThBlocked
	ThDone
)

// OSCosts are the kernel-mode cycle charges for scheduler operations. They
// model a Linux 2.6-era kernel on a 2 GHz core, matching the paper's
// modified 2.6.18: a full context switch is a few microseconds of work,
// sched_yield and futex wait/wake are cheaper syscalls.
type OSCosts struct {
	ContextSwitch int64 // dispatching a different thread onto a core
	Yield         int64 // sched_yield syscall
	Block         int64 // futex wait (suspending thread)
	Wake          int64 // futex wake, charged to the woken thread
	Quantum       int64 // round-robin timeslice
}

// DefaultOSCosts returns the costs used throughout the evaluation.
func DefaultOSCosts() OSCosts {
	return OSCosts{
		ContextSwitch: 3500,
		Yield:         1400,
		Block:         4000,
		Wake:          4000,
		Quantum:       2000000, // ~1 ms at 2 GHz
	}
}

// Thread is a simulated OS thread pinned to a home core.
type Thread struct {
	ID   int
	Core int

	State ThreadState
	Acct  Breakdown

	dispatchedAt  int64 // when it last got the core (for quantum)
	pendingKernel int64 // kernel cycles to charge at next dispatch (wake cost)
}

// Charge adds d cycles of category c to the thread's account.
func (t *Thread) Charge(c Category, d int64) { t.Acct.Add(c, d) }

type coreState struct {
	id        int
	current   *Thread
	ready     []*Thread
	idleSince int64
	idle      int64
	everBusy  bool
}

// Machine models the CPUs and the OS scheduler. The runner interacts with
// it through the Thread* methods; the machine calls OnDispatch whenever a
// thread (re)gains a core, after charging switch costs.
type Machine struct {
	Eng   *Engine
	Costs OSCosts

	// OnDispatch is invoked when a thread starts running on its core. The
	// runner resumes the thread's continuation from here.
	OnDispatch func(*Thread)

	cores   []*coreState
	threads []*Thread
	live    int // threads not Done
}

// NewMachine creates a machine with nCores cores.
func NewMachine(eng *Engine, nCores int, costs OSCosts) *Machine {
	m := &Machine{Eng: eng, Costs: costs}
	for i := 0; i < nCores; i++ {
		m.cores = append(m.cores, &coreState{id: i})
	}
	return m
}

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Threads returns all threads in creation order.
func (m *Machine) Threads() []*Thread { return m.threads }

// LiveThreads returns the number of threads that have not exited.
func (m *Machine) LiveThreads() int { return m.live }

// CurrentOn returns the thread running on core c, or nil.
func (m *Machine) CurrentOn(c int) *Thread { return m.cores[c].current }

// AddThread creates a thread pinned to the given core, initially ready.
func (m *Machine) AddThread(core int) *Thread {
	t := &Thread{ID: len(m.threads), Core: core, State: ThReady}
	m.threads = append(m.threads, t)
	m.cores[core].ready = append(m.cores[core].ready, t)
	m.live++
	return t
}

// Start dispatches every core once; call after all threads are added.
func (m *Machine) Start() {
	for _, c := range m.cores {
		c.idleSince = m.Eng.Now()
		m.dispatch(c)
	}
}

// dispatch gives the core to its next ready thread, if the core is free.
func (m *Machine) dispatch(c *coreState) {
	if c.current != nil || len(c.ready) == 0 {
		return
	}
	c.idle += m.Eng.Now() - c.idleSince
	t := c.ready[0]
	copy(c.ready, c.ready[1:])
	c.ready = c.ready[:len(c.ready)-1]
	c.current = t
	t.State = ThRunning
	cost := m.Costs.ContextSwitch + t.pendingKernel
	t.pendingKernel = 0
	t.Charge(CatKernel, cost)
	m.Eng.After(cost, func() {
		if c.current != t { // exited or preempted during switch-in (should not happen)
			return
		}
		t.dispatchedAt = m.Eng.Now()
		m.OnDispatch(t)
	})
}

// release takes the current thread off its core and dispatches the next.
func (m *Machine) release(t *Thread) {
	c := m.cores[t.Core]
	if c.current != t {
		panic(fmt.Sprintf("sim: thread %d releasing core %d it does not hold", t.ID, t.Core))
	}
	c.current = nil
	c.idleSince = m.Eng.Now()
	c.everBusy = true
	m.dispatch(c)
}

// ThreadYield models sched_yield: the running thread goes to the back of
// its core's ready queue. The yield syscall cost is charged to the caller.
func (m *Machine) ThreadYield(t *Thread) {
	t.Charge(CatKernel, m.Costs.Yield)
	t.State = ThReady
	c := m.cores[t.Core]
	m.release(t)
	c.ready = append(c.ready, t)
	m.dispatch(c)
}

// ThreadBlock models a futex wait: the running thread leaves the core and
// will not run again until ThreadWake.
func (m *Machine) ThreadBlock(t *Thread) {
	t.Charge(CatKernel, m.Costs.Block)
	t.State = ThBlocked
	m.release(t)
}

// ThreadWake makes a blocked thread ready. Waking a thread that is not
// blocked is a no-op (spurious wakes are allowed). The futex-wake cost is
// charged to the woken thread at its next dispatch.
func (m *Machine) ThreadWake(t *Thread) {
	if t.State != ThBlocked {
		return
	}
	t.State = ThReady
	t.pendingKernel += m.Costs.Wake
	c := m.cores[t.Core]
	c.ready = append(c.ready, t)
	m.dispatch(c)
}

// ThreadExit retires the running thread permanently.
func (m *Machine) ThreadExit(t *Thread) {
	t.State = ThDone
	m.live--
	m.release(t)
}

// ShouldPreempt reports whether the running thread has exhausted its
// quantum and another thread is waiting for the core.
func (m *Machine) ShouldPreempt(t *Thread) bool {
	return m.ShouldPreemptAt(t, m.Eng.Now())
}

// ShouldPreemptAt is ShouldPreempt evaluated at an explicit instant. The
// batched runner uses it to find the preemption boundary inside a horizon
// batch: the ready queue can only change when an event fires, so between
// Now and the engine's next event the answer depends purely on `now`.
func (m *Machine) ShouldPreemptAt(t *Thread, now int64) bool {
	c := m.cores[t.Core]
	return len(c.ready) > 0 && now-t.dispatchedAt >= m.Costs.Quantum
}

// Preempt performs an involuntary context switch of the running thread.
func (m *Machine) Preempt(t *Thread) {
	t.State = ThReady
	c := m.cores[t.Core]
	m.release(t)
	c.ready = append(c.ready, t)
	m.dispatch(c)
}

// IdleCycles returns the total cycles all cores spent with no runnable
// thread, up to the last dispatch on each core. FinishIdle should be called
// once at the end of a run to close out still-idle cores.
func (m *Machine) IdleCycles() int64 {
	var total int64
	for _, c := range m.cores {
		total += c.idle
	}
	return total
}

// FinishIdle closes the idle interval of any core that is idle at time end.
func (m *Machine) FinishIdle(end int64) {
	for _, c := range m.cores {
		if c.current == nil && c.everBusy && end > c.idleSince {
			c.idle += end - c.idleSince
			c.idleSince = end
		}
	}
}
