package sim

import "testing"

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestEngineTiesBreakOnInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []int64
	e.After(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run(nil)
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
}

func TestEnginePastEventPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(nil)
}

func TestEngineRunStopsOnPredicate(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(int64(i), func() { fired++ })
	}
	e.Run(func() bool { return fired == 3 })
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(CatTx, 100)
	b.Add(CatAbort, 50)
	var c Breakdown
	c.Add(CatTx, 1)
	b.Merge(&c)
	if b.Total() != 151 || b[CatTx] != 101 {
		t.Fatalf("breakdown = %v", b)
	}
	if CatScheduling.String() != "Scheduling" || CatNonTx.String() != "NonTx" {
		t.Fatal("category labels wrong")
	}
}
