package sim

import "testing"

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestEngineTiesBreakOnInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []int64
	e.After(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run(nil)
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
}

func TestEnginePastEventPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(nil)
}

func TestEngineRunStopsOnPredicate(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(int64(i), func() { fired++ })
	}
	e.Run(func() bool { return fired == 3 })
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestEnginePeekTime(t *testing.T) {
	e := NewEngine()
	if got := e.PeekTime(); got != NoPending {
		t.Fatalf("PeekTime on empty engine = %d, want NoPending", got)
	}
	e.At(30, func() {})
	e.At(10, func() {})
	e.At(20, func() {})
	if got := e.PeekTime(); got != 10 {
		t.Fatalf("PeekTime = %d, want 10 (the earliest event)", got)
	}
	e.Step()
	if got := e.PeekTime(); got != 20 {
		t.Fatalf("PeekTime after one step = %d, want 20", got)
	}
	e.Run(nil)
	if got := e.PeekTime(); got != NoPending {
		t.Fatalf("PeekTime after drain = %d, want NoPending", got)
	}
	// Any real event time compares strictly below the sentinel, which is
	// what lets batching loops use `t < PeekTime()` without an empty check.
	if NoPending <= 1<<62 {
		t.Fatal("NoPending not above all practical event times")
	}
}

// TestEngineBatchCommitOnHorizon pins the tie-order contract horizon
// batching relies on: an event scheduled exactly AT the horizon (the
// pending event's time) fires after that pending event, because the
// pending event holds an older sequence number. A batched actor that
// stopped at the horizon and re-entered via At therefore observes the
// same order as one that had scheduled every intermediate step.
func TestEngineBatchCommitOnHorizon(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(100, func() { got = append(got, "pending") })
	// Batched actor: skips its intermediate steps and lands on the horizon.
	e.At(100, func() { got = append(got, "batched") })
	e.Run(nil)
	if len(got) != 2 || got[0] != "pending" || got[1] != "batched" {
		t.Fatalf("horizon tie order = %v, want [pending batched]", got)
	}
}

func TestEngineHandleScheduling(t *testing.T) {
	e := NewEngine()
	var got []string
	h := e.Register(func() { got = append(got, "h") })
	ah := e.RegisterArg(func(v uint64) { got = append(got, string(rune('a'+v))) })

	e.AtHandle(10, h)
	e.AfterHandle(20, h)
	e.AtArgHandle(15, ah, 1)
	e.AfterArgHandle(5, ah, 2)
	e.Run(nil)
	// t=5 arg 2 ("c"), t=10 handle, t=15 arg 1 ("b"), t=20 handle.
	want := []string{"c", "h", "b", "h"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("final time = %d, want 20", e.Now())
	}
}

func TestEngineHandlePastEventPanics(t *testing.T) {
	e := NewEngine()
	h := e.Register(func() {})
	ah := e.RegisterArg(func(uint64) {})
	e.After(10, func() {
		for _, try := range []func(){
			func() { e.AtHandle(5, h) },
			func() { e.AtArgHandle(5, ah, 0) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("handle scheduling in the past did not panic")
					}
				}()
				try()
			}()
		}
	})
	e.Run(nil)
}

// TestEngineMixedTieOrder interleaves closure and handle events at one
// instant: insertion order must still be the only tiebreak, regardless of
// which scheduling API each event used.
func TestEngineMixedTieOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	h0 := e.Register(func() { got = append(got, 0) })
	h2 := e.RegisterArg(func(uint64) { got = append(got, 2) })
	e.AtHandle(50, h0)
	e.At(50, func() { got = append(got, 1) })
	e.AtArgHandle(50, h2, 0)
	e.At(50, func() { got = append(got, 3) })
	e.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed tie order = %v, want ascending", got)
		}
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(CatTx, 100)
	b.Add(CatAbort, 50)
	var c Breakdown
	c.Add(CatTx, 1)
	b.Merge(&c)
	if b.Total() != 151 || b[CatTx] != 101 {
		t.Fatalf("breakdown = %v", b)
	}
	if CatScheduling.String() != "Scheduling" || CatNonTx.String() != "NonTx" {
		t.Fatal("category labels wrong")
	}
}
