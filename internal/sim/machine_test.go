package sim

import "testing"

// testRunner gives each thread a simple script of compute bursts separated
// by OS calls, driven through Machine.OnDispatch.
type testRunner struct {
	m     *Machine
	steps map[int][]func(t *Thread) // per-thread remaining actions
}

func (r *testRunner) dispatch(t *Thread) {
	s := r.steps[t.ID]
	if len(s) == 0 {
		r.m.ThreadExit(t)
		return
	}
	r.steps[t.ID] = s[1:]
	s[0](t)
}

func newHarness(nCores int) (*Engine, *Machine, *testRunner) {
	e := NewEngine()
	m := NewMachine(e, nCores, OSCosts{ContextSwitch: 10, Yield: 5, Block: 7, Wake: 7, Quantum: 1000})
	r := &testRunner{m: m, steps: map[int][]func(*Thread){}}
	m.OnDispatch = r.dispatch
	return e, m, r
}

// compute returns a step that burns d cycles of CatNonTx then re-enters the
// dispatcher as if the thread were still running (next step fires
// immediately).
func compute(e *Engine, r *testRunner, d int64) func(*Thread) {
	return func(t *Thread) {
		t.Charge(CatNonTx, d)
		e.After(d, func() { r.dispatch(t) })
	}
}

func TestMachineRunsSingleThread(t *testing.T) {
	e, m, r := newHarness(1)
	th := m.AddThread(0)
	r.steps[th.ID] = []func(*Thread){compute(e, r, 100), compute(e, r, 200)}
	m.Start()
	e.Run(nil)
	if th.State != ThDone {
		t.Fatalf("thread state = %v, want done", th.State)
	}
	if th.Acct[CatNonTx] != 300 {
		t.Fatalf("nontx cycles = %d, want 300", th.Acct[CatNonTx])
	}
	if th.Acct[CatKernel] != 10 { // one context switch at start
		t.Fatalf("kernel cycles = %d, want 10", th.Acct[CatKernel])
	}
	if m.LiveThreads() != 0 {
		t.Fatal("live thread count not zero after exit")
	}
}

func TestMachineTwoThreadsShareCoreViaYield(t *testing.T) {
	e, m, r := newHarness(1)
	a := m.AddThread(0)
	b := m.AddThread(0)
	var order []int
	mark := func(t *Thread) {
		order = append(order, t.ID)
		m.ThreadYield(t)
	}
	r.steps[a.ID] = []func(*Thread){mark, mark}
	r.steps[b.ID] = []func(*Thread){mark, mark}
	m.Start()
	e.Run(nil)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("interleave = %v, want %v", order, want)
		}
	}
}

func TestMachineBlockWake(t *testing.T) {
	e, m, r := newHarness(1)
	a := m.AddThread(0)
	b := m.AddThread(0)
	var trace []string
	r.steps[a.ID] = []func(*Thread){
		func(t *Thread) { trace = append(trace, "a-block"); m.ThreadBlock(t) },
		func(t *Thread) { trace = append(trace, "a-resumed"); m.ThreadExit(t) },
	}
	r.steps[b.ID] = []func(*Thread){
		func(t *Thread) {
			trace = append(trace, "b-wakes-a")
			m.ThreadWake(a)
			m.ThreadExit(t)
		},
	}
	m.Start()
	e.Run(nil)
	if len(trace) != 3 || trace[0] != "a-block" || trace[1] != "b-wakes-a" || trace[2] != "a-resumed" {
		t.Fatalf("trace = %v", trace)
	}
	if a.Acct[CatKernel] == 0 {
		t.Fatal("block/wake charged no kernel time")
	}
}

func TestMachineWakeNonBlockedIsNoop(t *testing.T) {
	e, m, r := newHarness(1)
	a := m.AddThread(0)
	r.steps[a.ID] = []func(*Thread){func(t *Thread) {
		m.ThreadWake(t) // running, must be ignored
		m.ThreadExit(t)
	}}
	m.Start()
	e.Run(nil)
	if a.State != ThDone {
		t.Fatal("thread did not exit cleanly")
	}
}

func TestMachinePreemption(t *testing.T) {
	e, m, r := newHarness(1)
	a := m.AddThread(0)
	b := m.AddThread(0)
	// a computes past the quantum, then checks preemption.
	r.steps[a.ID] = []func(*Thread){
		func(t *Thread) {
			t.Charge(CatNonTx, 2000)
			e.After(2000, func() {
				if !m.ShouldPreempt(t) {
					panic("expected preemption to be due")
				}
				m.Preempt(t)
			})
		},
		func(t *Thread) { m.ThreadExit(t) },
	}
	r.steps[b.ID] = []func(*Thread){func(t *Thread) { m.ThreadExit(t) }}
	m.Start()
	e.Run(nil)
	if a.State != ThDone || b.State != ThDone {
		t.Fatalf("states: a=%v b=%v", a.State, b.State)
	}
}

func TestMachineShouldPreemptRequiresWaiter(t *testing.T) {
	e, m, r := newHarness(1)
	a := m.AddThread(0)
	r.steps[a.ID] = []func(*Thread){func(t *Thread) {
		t.Charge(CatNonTx, 5000)
		e.After(5000, func() {
			if m.ShouldPreempt(t) {
				panic("preemption signalled with empty ready queue")
			}
			m.ThreadExit(t)
		})
	}}
	m.Start()
	e.Run(nil)
}

func TestMachineIdleAccounting(t *testing.T) {
	e, m, r := newHarness(2)
	a := m.AddThread(0) // core 1 never has threads
	r.steps[a.ID] = []func(*Thread){compute(e, r, 100)}
	m.Start()
	e.Run(nil)
	m.FinishIdle(e.Now())
	// Core 0 idles after a exits; core 1 never ran anything and reports no
	// idle (it was never busy).
	if m.IdleCycles() != 0 {
		t.Fatalf("idle = %d, want 0 (cores that never ran work are excluded)", m.IdleCycles())
	}
}

func TestMachineMultiCoreParallelism(t *testing.T) {
	e, m, r := newHarness(4)
	for c := 0; c < 4; c++ {
		th := m.AddThread(c)
		r.steps[th.ID] = []func(*Thread){compute(e, r, 1000)}
	}
	m.Start()
	e.Run(nil)
	// All four ran in parallel: finish time ~ 1000 + switch cost, not 4000.
	if e.Now() > 1100 {
		t.Fatalf("4 independent threads on 4 cores took %d cycles", e.Now())
	}
}
