package sim

import "repro/internal/decision"

// FlipRegret is the counterfactual verdict on one recorded begin decision:
// the makespan of the original run against the makespan of an otherwise
// identical run with that single decision inverted. Because the engine is
// deterministic and FlipBegin addresses decisions by their global OnBegin
// index, the flipped run is exact — not an estimate.
type FlipRegret struct {
	// BeginIndex is the flipped decision's global OnBegin index (the value
	// passed as RunConfig.FlipBegin).
	BeginIndex int64
	Tid        int32
	Stx        int32
	// Choice is what the manager originally decided.
	Choice decision.Choice
	// Outcome is how the original decision settled.
	Outcome decision.Outcome

	BaseMakespan int64
	FlipMakespan int64
	// Regret is FlipMakespan - BaseMakespan: positive means the original
	// decision beat its counterfactual by that many cycles; negative means
	// the opposite choice would have finished sooner.
	Regret int64
}

// ReplayResult bundles a counterfactual replay: the instrumented base run,
// its full decision trace, and the per-decision verdicts.
type ReplayResult struct {
	Base      *Result
	Decisions *decision.Set
	Flips     []FlipRegret
}

// ReplayFlips runs cfg once with decision recording, then re-runs the
// whole window once per recorded begin decision — up to maxFlips of them,
// evenly strided across the record stream — with that decision inverted,
// charging each decision its exact regret. cfg.Decisions, cfg.FlipBegin,
// cfg.Trace and cfg.Metrics are overridden; everything else (seed,
// workload, manager, costs) is replayed verbatim.
//
// Block decisions are skipped (RunConfig.FlipBegin cannot invert them),
// as are records dropped past the recorder cap.
func ReplayFlips(cfg RunConfig, maxFlips int) *ReplayResult {
	threads := cfg.Cores * cfg.ThreadsPerCore
	base := cfg
	base.Decisions = decision.NewSet(threads, 0)
	base.FlipBegin = 0
	base.Trace = nil
	base.Metrics = nil
	baseRes := NewRunner(base).Run()

	recs := base.Decisions.Merge()
	cand := make([]*decision.Record, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		if r.Point == decision.PBegin && r.BeginIndex > 0 && r.Choice != decision.CBlock {
			cand = append(cand, r)
		}
	}
	if maxFlips <= 0 {
		maxFlips = 16
	}
	stride := 1
	if len(cand) > maxFlips {
		stride = len(cand) / maxFlips
	}
	out := &ReplayResult{Base: baseRes, Decisions: base.Decisions}
	for i := 0; i < len(cand) && len(out.Flips) < maxFlips; i += stride {
		r := cand[i]
		flip := cfg
		flip.Decisions = nil
		flip.FlipBegin = r.BeginIndex
		flip.Trace = nil
		flip.Metrics = nil
		flipRes := NewRunner(flip).Run()
		out.Flips = append(out.Flips, FlipRegret{
			BeginIndex:   r.BeginIndex,
			Tid:          r.Tid,
			Stx:          r.Stx,
			Choice:       r.Choice,
			Outcome:      r.Outcome,
			BaseMakespan: baseRes.Makespan,
			FlipMakespan: flipRes.Makespan,
			Regret:       flipRes.Makespan - baseRes.Makespan,
		})
	}
	return out
}
