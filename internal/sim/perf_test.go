package sim

import (
	"sync"
	"testing"
)

// TestEngineDispatchAllocFree proves the event churn cycle — schedule one
// event, fire one event — stays off the allocator once the value heap has
// grown to the simulation's churn depth. This is the property the
// value-based heap exists for: container/heap with *event pointers paid one
// allocation per push.
func TestEngineDispatchAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	argFn := func(uint64) {}
	for i := 0; i < 64; i++ { // grow the heap's backing array once
		e.After(int64(i), fn)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.AfterArg(2, argFn, 7)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("event dispatch costs %v allocs/op, want 0", allocs)
	}
}

// BenchmarkEngineChurn measures push+pop through a heap holding a realistic
// pending-event population (one event in flight per simulated thread).
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const depth = 64
	for i := 0; i < depth; i++ {
		e.After(int64(i%17), fn)
	}
	// One extra round so the heap and the one-shot slot table have grown
	// past the steady-state population (each iteration below holds depth+1
	// events between its push and its pop) before the timer starts.
	e.After(0, fn)
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(int64(i%31), fn)
		e.Step()
	}
}

// TestRunnerScratchPoolParallel exercises the shared thread-scratch pool
// from concurrent runners (the harness's worker-pool shape) under the race
// detector, and checks that a run on recycled scratch is cycle-identical to
// the run that warmed it — pooling must not leak state between runs.
func TestRunnerScratchPoolParallel(t *testing.T) {
	run := func(seed uint64) *Result {
		w := newSynth("pool", 1, 30, 4)
		r := NewRunner(RunConfig{
			Cores:             4,
			ThreadsPerCore:    2,
			Seed:              seed,
			Workload:          w,
			NewManager:        managerFactory("bfgts-hw"),
			MaxCycles:         2_000_000_000,
			ProfileSimilarity: true,
		})
		res := r.Run()
		if res.TimedOut {
			t.Error("run timed out")
		}
		return res
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seed := uint64(g + 1)
			first := run(seed)
			second := run(seed) // reuses scratch released by the first run
			if first.Makespan != second.Makespan || first.Commits != second.Commits {
				t.Errorf("seed %d: pooled rerun diverged: makespan %d vs %d, commits %d vs %d",
					seed, first.Makespan, second.Makespan, first.Commits, second.Commits)
			}
		}(g)
	}
	wg.Wait()
}
