package sim

// Sharded execution: one simulation split into per-shard lanes under the
// conservative-PDES (Chandy-Misra-Bryant style) protocol.
//
// Two modes implement RunConfig.Shards > 1:
//
//   - Entangled lanes. Every lane gets its own event heap and machine
//     slice, but all heaps share one clock and one sequence counter
//     (Engine.NewLaneEngine), and a single driver goroutine repeatedly
//     executes the globally minimal (time, seq) event across the heaps
//     (Engine.PeekKey). Because (time, seq) is a total order and seq values
//     are stamped from the shared counter in push order, the pop sequence
//     is *exactly* the one a single merged heap would produce — the run is
//     byte-identical to the sequential one by construction, for any
//     workload, manager, tracer or decision recorder. This is the mode
//     behind the blanket "-shards N output ≡ -shards 1" contract.
//
//   - Partitioned lanes. When the workload declares a shard partition
//     (workload.Sharder) and the manager is shard-safe (sched.ShardSafe),
//     each lane additionally gets its own conflict-detection domain (line
//     directory, manager, waiter queues, accumulators) and free-runs on its
//     own goroutine. Lanes synchronize through a ShardBarrier: each
//     publishes the time of its next pending event (its PeekTime horizon —
//     the conservative null message) and may execute an event at time t
//     only while t does not exceed the minimum of the other lanes'
//     published horizons by more than the lookahead window. The minimum
//     lane can always proceed, so the protocol is deadlock-free; horizons
//     are monotone, so each lane caches the last minimum it read and only
//     re-reads the barrier when its next event would outrun the cache —
//     the hot path is one comparison, no atomics.
//
//     Cross-shard reads of the workload's shared region become timestamped
//     probe messages on single-producer/single-consumer rings, drained and
//     validated deterministically (sorted by (time, tid)) against the
//     owning shard's line directory at horizon boundaries. The partition
//     contract (shard-private data never crosses lanes, the shared region
//     is read-only) makes every probe conflict-free, which is what lets
//     the lanes' event streams stay exactly equal to the sequential run's
//     lane-restricted subsequences — and therefore lets the merged result
//     stay identical (integer-exact everywhere; see
//     Result.AttemptsPerCommit for the one float-summary caveat).

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// DefaultShardLookahead is the partitioned-mode clock-skew window in
// simulated cycles: a lane may run ahead of the slowest other lane's
// published horizon by at most this much. Larger windows mean fewer
// barrier waits and more cross-lane skew; correctness never depends on the
// value because conflicts are always lane-local under the partition
// contract.
const DefaultShardLookahead = 1 << 20

// shardDrainInterval is how many lane-local events may fire between
// opportunistic drains of the lane's inbound probe rings (lanes also drain
// whenever they wait at the barrier and at termination).
const shardDrainInterval = 256

// shardMsg is one cross-shard probe: lane-local thread tid read addr (in
// the shared region, owned by the receiving shard) at simulated time.
type shardMsg struct {
	time int64
	addr uint64
	tid  int32
	_    int32
}

// shardRingCap is the probe-ring capacity (power of two). A full ring
// back-pressures the sender into draining its own inbound rings and
// yielding, so rings can never deadlock; the capacity only tunes how often
// that happens. It is kept small because a partitioned run has n² rings —
// the buffers are allocated lazily on first send, so pairs that never
// exchange probes cost two cache lines of cursors and nothing else.
const shardRingCap = 64

// shardRing is a single-producer/single-consumer bounded ring. Exactly one
// lane pushes (the sender) and one lane pops (the owner); head and tail
// are kept on separate cache lines so the two sides do not false-share.
type shardRing struct {
	buf  []shardMsg
	head atomic.Int64 // consumer cursor
	_    [56]byte
	tail atomic.Int64 // producer cursor
	_    [56]byte
}

func newShardRing() *shardRing {
	return &shardRing{}
}

// grow allocates the buffer on the producer's first push. The consumer
// only touches buf after observing a tail the producer stored *after*
// assigning buf, so the assignment is safely published by the same
// release/acquire edge that publishes the slots.
func (r *shardRing) grow() {
	r.buf = make([]shardMsg, shardRingCap)
}

// push appends a message, reporting false when the ring is full. Producer
// side only. The tail store publishes the buffered message to the
// consumer (Go's atomics are sequentially consistent, so the slot write
// happens-before any pop that observes the new tail).
//
//bfgts:allocfree
//bfgts:spsc-producer
func (r *shardRing) push(m shardMsg) bool {
	if r.buf == nil {
		r.grow()
	}
	t := r.tail.Load()
	if t-r.head.Load() >= int64(len(r.buf)) {
		return false
	}
	r.buf[t&int64(len(r.buf)-1)] = m
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest message, reporting false when the ring is empty.
// Consumer side only.
//
//bfgts:allocfree
//bfgts:spsc-consumer
func (r *shardRing) pop() (shardMsg, bool) {
	h := r.head.Load()
	if h >= r.tail.Load() {
		return shardMsg{}, false
	}
	m := r.buf[h&int64(len(r.buf)-1)]
	r.head.Store(h + 1)
	return m, true
}

// barSlot is one lane's published horizon, padded to its own cache line so
// per-lane stores never contend.
type barSlot struct {
	h atomic.Int64
	_ [56]byte
}

// ShardBarrier is the conservative-lookahead synchronizer of partitioned
// lanes: a lock-free exchange of per-lane PeekTime horizons (the null
// messages of classic conservative PDES, made cheap by shared memory).
type ShardBarrier struct {
	slots     []barSlot
	done      atomic.Int32
	lookahead int64
}

func newShardBarrier(n int, lookahead int64) *ShardBarrier {
	if lookahead <= 0 {
		lookahead = DefaultShardLookahead
	}
	return &ShardBarrier{slots: make([]barSlot, n), lookahead: lookahead}
}

// Publish announces lane i's next-event time (its horizon: no event below
// t can appear on this lane).
//
//bfgts:allocfree
func (b *ShardBarrier) Publish(i int, t int64) { b.slots[i].h.Store(t) }

// MinOther returns the minimum horizon published by every lane except i.
//
//bfgts:allocfree
func (b *ShardBarrier) MinOther(i int) int64 {
	min := int64(NoPending)
	for j := range b.slots {
		if j == i {
			continue
		}
		if t := b.slots[j].h.Load(); t < min {
			min = t
		}
	}
	return min
}

// Done marks lane i finished: its horizon becomes +inf (it will never
// schedule another event) and the done count lets the other lanes' drain
// loops terminate.
func (b *ShardBarrier) Done(i int) {
	b.slots[i].h.Store(NoPending)
	b.done.Add(1)
}

// AllDone reports whether every lane has called Done.
func (b *ShardBarrier) AllDone() bool { return int(b.done.Load()) == len(b.slots) }

// stallPoint is one recorded barrier stall: the lane spun for spins
// yield-rounds before its event at simulated time t cleared the horizon.
type stallPoint struct {
	t     int64
	spins int64
}

// laneShard is a lane's partitioned-mode coupling: its barrier slot, its
// probe rings, and the shard-layer instrumentation. Sequential and
// entangled lanes have none (laneState.shard == nil).
type laneShard struct {
	idx        int
	bar        *ShardBarrier
	lookahead  int64
	sharedBase uint64
	owner      func(addr uint64) int
	dom        *domainState

	in  []*shardRing // in[j]: probes from lane j to this lane (nil at j==idx)
	out []*shardRing // out[j]: probes from this lane to lane j

	// cachedMin is the last MinOther this lane read. Horizons are
	// monotone non-decreasing, so a stale cache is only ever conservative;
	// the lane re-reads the barrier only when its next event would outrun
	// cache + lookahead.
	cachedMin int64

	scratch []shardMsg // drained-but-unprocessed probes

	msgsSent       int64
	msgsRecv       int64
	msgsValidated  int64
	msgsConflicts  int64
	sendStallSpins int64
	// horizonWait records spins per slow-path barrier wait. The instrument
	// is acquired from the caller's registry at setup (nil when metrics
	// are off) and is distinct per lane, so lane-goroutine writes never
	// touch shared registry state during the run.
	horizonWait *metrics.Histogram
	stallPts    []stallPoint
}

// probeShared forwards a shared-region access to the owning shard as a
// timestamped probe message. Fire-and-forget: probes model asynchronous
// interconnect traffic, charge the issuing thread nothing, and are
// validated by the owner at its next horizon boundary — so they never
// perturb the simulated schedule (load-bearing for the identical-output
// contract). A full ring back-pressures by draining our own inbound
// probes and yielding.
//
//bfgts:allocfree
func (sh *laneShard) probeShared(t int64, tid int, addr uint64) {
	owner := sh.owner(addr)
	if owner == sh.idx {
		return
	}
	sh.msgsSent++
	ring := sh.out[owner]
	for !ring.push(shardMsg{time: t, tid: int32(tid), addr: addr}) {
		sh.sendStallSpins++
		sh.drainInbound()
		sh.processDrained()
		runtime.Gosched()
	}
}

// drainInbound moves every currently visible probe from the inbound rings
// into the scratch buffer.
//
//bfgts:allocfree
func (sh *laneShard) drainInbound() {
	for _, ring := range sh.in {
		if ring == nil {
			continue
		}
		for {
			m, ok := ring.pop()
			if !ok {
				break
			}
			sh.scratch = append(sh.scratch, m)
		}
	}
}

// processDrained validates the drained probes against the owning shard's
// line directory in deterministic (time, tid) order. Under the partition
// contract the shared region is read-only, so LineWriteHeld is always
// false and the conflict counter deterministically stays zero — a nonzero
// value is a workload partitioning bug surfacing in -metrics-out.
//
//bfgts:allocfree
func (sh *laneShard) processDrained() {
	if len(sh.scratch) == 0 {
		return
	}
	// Insertion sort: drain batches are small and almost sorted (each
	// sender produces in time order), and it allocates nothing.
	for i := 1; i < len(sh.scratch); i++ {
		m := sh.scratch[i]
		j := i - 1
		for j >= 0 && (sh.scratch[j].time > m.time ||
			(sh.scratch[j].time == m.time && sh.scratch[j].tid > m.tid)) {
			sh.scratch[j+1] = sh.scratch[j]
			j--
		}
		sh.scratch[j+1] = m
	}
	for i := range sh.scratch {
		sh.msgsRecv++
		sh.msgsValidated++
		if sh.dom.sys.LineWriteHeld(sh.scratch[i].addr) {
			sh.msgsConflicts++
		}
	}
	sh.scratch = sh.scratch[:0]
}

// waitHorizon is the slow path behind the lane loop's inline
// `t-lookahead > cachedMin` check: publish our horizon (so the lanes we
// are about to wait on can see our progress), re-read the others' minimum,
// and spin with drains and yields until the event at t is covered. The
// lane loop publishes lazily outside this path — a stale published horizon
// only makes *other* lanes more conservative, never incorrect, and the
// periodic drain block bounds the staleness.
//
//bfgts:allocfree
func (sh *laneShard) waitHorizon(t int64) {
	sh.bar.Publish(sh.idx, t)
	la := sh.lookahead
	sh.cachedMin = sh.bar.MinOther(sh.idx)
	if t-la <= sh.cachedMin {
		return
	}
	var spins int64
	for t-la > sh.cachedMin {
		sh.drainInbound()
		sh.processDrained()
		runtime.Gosched()
		spins++
		sh.cachedMin = sh.bar.MinOther(sh.idx)
	}
	sh.horizonWait.Observe(spins)
	sh.stallPts = append(sh.stallPts, stallPoint{t: t, spins: spins})
}

// finish retires the lane: it publishes a +inf horizon (unblocking every
// other lane) and keeps draining inbound probes until all lanes are done
// and its rings are empty, so late probes from slower lanes are still
// counted.
func (sh *laneShard) finish() {
	sh.bar.Done(sh.idx)
	for {
		sh.drainInbound()
		sh.processDrained()
		if sh.bar.AllDone() && sh.inboundEmpty() {
			return
		}
		runtime.Gosched()
	}
}

// inboundEmpty reports whether every inbound ring is drained.
//
//bfgts:allocfree
func (sh *laneShard) inboundEmpty() bool {
	for _, ring := range sh.in {
		if ring == nil {
			continue
		}
		if ring.head.Load() < ring.tail.Load() {
			return false
		}
	}
	return true
}

// partitionable reports whether this configuration can take the
// fully-partitioned concurrent path: the workload must declare a valid
// shard partition, the manager must be shard-safe (no cross-shard shared
// state, no draws from the shared Env.Rand), cores must split evenly, and
// the global observers whose output depends on cross-lane interleaving
// (trace, decision records, similarity profiling, FlipBegin's global begin
// numbering) must be off. Everything else falls back to entangled lanes,
// which support all of it byte-identically.
func (r *Runner) partitionable() bool {
	cfg := &r.cfg
	if cfg.Trace != nil || cfg.Decisions != nil || cfg.ProfileSimilarity || cfg.FlipBegin != 0 {
		return false
	}
	if cfg.Cores%cfg.Shards != 0 {
		return false
	}
	sharder, ok := cfg.Workload.(workload.Sharder)
	if !ok {
		return false
	}
	if _, ok := sharder.ShardPlan(cfg.Shards, cfg.Cores, cfg.ThreadsPerCore); !ok {
		return false
	}
	// Probe-construct a manager against a throwaway env purely to check
	// the ShardSafe marker; the instance is discarded.
	probe := cfg.NewManager(sched.Env{
		NumCPUs:    cfg.Cores,
		NumThreads: cfg.Cores * cfg.ThreadsPerCore,
		NumStatic:  cfg.Workload.NumStatic(),
		CPUOf:      func(tid int) int { return tid % cfg.Cores },
		Wake:       func(int) {},
		Rand:       rand.New(rand.NewSource(int64(cfg.Seed) ^ 0x5bf0f7c9)),
		LinearScan: cfg.NoBloofi,
	})
	_, safe := probe.(sched.ShardSafe)
	return safe
}

// setupShards builds the partitioned-mode coupling: the barrier, the
// all-pairs probe rings, and each lane's laneShard.
func (r *Runner) setupShards() {
	n := len(r.lanes)
	plan, _ := r.cfg.Workload.(workload.Sharder).ShardPlan(n, r.cfg.Cores, r.cfg.ThreadsPerCore)
	bar := newShardBarrier(n, r.cfg.ShardLookahead)
	rings := make([][]*shardRing, n)
	for i := range rings {
		rings[i] = make([]*shardRing, n)
		for j := range rings[i] {
			if i != j {
				rings[i][j] = newShardRing()
			}
		}
	}
	// Probes are pure diagnostics: the shared region is read-only under the
	// partition contract, so validation never changes a result — its only
	// output is the sim.shard.msgs.* counters. With metrics off the traffic
	// would be invisible, so it is not generated at all: an unreachable
	// sharedBase makes the runner's addr >= sharedBase probe guard always
	// false, at zero extra cost on the access hot path.
	sharedBase := plan.SharedBase
	if r.cfg.Metrics == nil {
		sharedBase = ^uint64(0)
	}
	for _, ln := range r.lanes {
		sh := &laneShard{
			idx:        ln.idx,
			bar:        bar,
			lookahead:  bar.lookahead,
			sharedBase: sharedBase,
			owner:      plan.OwnerShard,
			dom:        ln.dom,
			out:        rings[ln.idx],
			in:         make([]*shardRing, n),
			//bfgts:ignore metricshoist per-shard instrument acquired once at construction
			horizonWait: r.cfg.Metrics.Histogram(
				fmt.Sprintf("sim.shard.%02d.horizon_wait", ln.idx)),
		}
		for j := 0; j < n; j++ {
			sh.in[j] = rings[j][ln.idx]
		}
		ln.shard = sh
	}
}

// runEntangled is the shared-clock driver: all lanes' machines start (in
// lane order, so initial dispatches stamp the same sequence numbers the
// sequential run would), then the globally minimal (time, seq) event is
// executed until every thread has exited.
func (r *Runner) runEntangled() {
	for _, ln := range r.lanes {
		r.active = ln
		ln.mac.Start()
	}
	for {
		var best *laneState
		var bt int64
		var bs uint64
		for _, ln := range r.lanes {
			t, s, ok := ln.eng.PeekKey()
			if !ok {
				continue
			}
			if best == nil || t < bt || (t == bt && s < bs) {
				best, bt, bs = ln, t, s
			}
		}
		if best == nil {
			return
		}
		r.active = best
		best.eng.Step()
		if r.cfg.MaxCycles > 0 && r.clock > r.cfg.MaxCycles {
			best.timedOut = true
			return
		}
		if r.liveThreads() == 0 {
			return
		}
	}
}

// runPartitioned starts one goroutine per lane and waits for all of them.
func (r *Runner) runPartitioned() {
	var wg sync.WaitGroup
	for _, ln := range r.lanes {
		wg.Add(1)
		go func(ln *laneState) {
			defer wg.Done()
			r.laneLoop(ln)
		}(ln)
	}
	wg.Wait()
}

// laneLoop is one partitioned lane's event loop: publish the next event's
// time, wait for the horizon to cover it, fire it, and periodically drain
// inbound probes. It mirrors the sequential driver's stop conditions
// (heap empty, all lane threads exited, MaxCycles exceeded) per lane.
func (r *Runner) laneLoop(ln *laneState) {
	sh := ln.shard
	ln.mac.Start()
	sinceDrain := 0
	for {
		t, _, ok := ln.eng.PeekKey()
		if !ok {
			break
		}
		if t-sh.lookahead > sh.cachedMin {
			sh.waitHorizon(t)
		}
		ln.eng.Step()
		if r.cfg.MaxCycles > 0 && ln.eng.Now() > r.cfg.MaxCycles {
			ln.timedOut = true
			break
		}
		if ln.mac.LiveThreads() == 0 {
			break
		}
		sinceDrain++
		if sinceDrain >= shardDrainInterval {
			sinceDrain = 0
			// The periodic publish bounds how stale our advertised horizon
			// can get while we free-run inside the lookahead window, so
			// waiting lanes keep moving.
			sh.bar.Publish(sh.idx, t)
			sh.drainInbound()
			sh.processDrained()
		}
	}
	sh.finish()
}

// mergeShardMetrics folds the per-domain registries and the shard-layer
// instrumentation into the caller's registry after a partitioned run.
// Message counters are deterministic (pure functions of each lane's event
// stream); spin counts and stall points measure host scheduling and vary
// run to run, which is documented in the README.
func (r *Runner) mergeShardMetrics() {
	reg := r.cfg.Metrics
	for _, dom := range r.doms {
		reg.Merge(dom.reg)
	}
	reg.Gauge("sim.shard.count").Set(float64(len(r.lanes)))
	ser := reg.Series("ts.shard.barrier_stall", metrics.DefaultSeriesCap)
	var sent, recv, validated, conflicts, stalls int64
	for _, ln := range r.lanes {
		sh := ln.shard
		sent += sh.msgsSent
		recv += sh.msgsRecv
		validated += sh.msgsValidated
		conflicts += sh.msgsConflicts
		stalls += sh.sendStallSpins
		for _, p := range sh.stallPts {
			ser.Append(p.t, float64(p.spins))
		}
	}
	reg.Counter("sim.shard.msgs.sent").Add(sent)
	reg.Counter("sim.shard.msgs.recv").Add(recv)
	reg.Counter("sim.shard.msgs.validated").Add(validated)
	reg.Counter("sim.shard.msgs.conflicts").Add(conflicts)
	reg.Counter("sim.shard.send_stall_spins").Add(stalls)
}
