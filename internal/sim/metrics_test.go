package sim

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// runSynthMetrics runs a contended synth workload with a registry attached
// and returns the result (whose Metrics field holds the final snapshot).
func runSynthMetrics(t *testing.T, mgr string, seed uint64) *Result {
	t.Helper()
	w := newSynth("hot", 2, 30, 6)
	w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(8) }
	w.stxOf = func(tid, i int) int { return i % 2 }
	r := NewRunner(RunConfig{
		Cores:             4,
		ThreadsPerCore:    2,
		Seed:              seed,
		Workload:          w,
		NewManager:        managerFactory(mgr),
		ProfileSimilarity: true,
		MaxCycles:         2_000_000_000,
		Metrics:           metrics.New(),
		SampleInterval:    10_000,
	})
	res := r.Run()
	if res.TimedOut {
		t.Fatalf("%s timed out", mgr)
	}
	return res
}

// TestMetricsSnapshotPopulated checks the instrumented layers all report
// through one registry on a contended BFGTS run.
func TestMetricsSnapshotPopulated(t *testing.T) {
	res := runSynthMetrics(t, "bfgts-hw", 42)
	s := res.Metrics
	if s == nil {
		t.Fatal("Result.Metrics nil with registry attached")
	}
	for _, name := range []string{"sched.predictions", "hwaccel.predictions", "core.conf.inc"} {
		if s.Counters[name] == 0 {
			t.Errorf("counter %q = 0, want > 0", name)
		}
	}
	// The runner classified every recorded serialization exactly once.
	classified := s.Counters["sim.pred.true"] + s.Counters["sim.pred.false"]
	if ser := s.Counters["sim.pred.serializations"]; classified > ser {
		t.Errorf("classified %d > serializations %d", classified, ser)
	}
	if classified > 0 {
		p := s.Gauges["sim.pred.precision"]
		if p < 0 || p > 1 {
			t.Errorf("precision %v outside [0,1]", p)
		}
	}
	if len(s.Series["ts.abort_rate"]) == 0 {
		t.Error("abort-rate time series empty with SampleInterval set")
	}
	if got := s.Summaries["bloom.est_error"]; got.N == 0 {
		t.Error("bloom.est_error never observed with ProfileSimilarity on")
	}
}

// TestMetricsSnapshotDeterministic pins byte-identical metrics JSON across
// two independent runs at the same seed.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		res := runSynthMetrics(t, "bfgts-hw", 42)
		if err := res.Metrics.EncodeJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("metrics snapshots differ across identical runs")
	}
}

// TestMetricsDoNotPerturbSimulation checks a run with the registry attached
// takes the same simulated path as one without: instrumentation observes,
// it never steers.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	build := func(reg *metrics.Registry) *Result {
		w := newSynth("hot", 2, 30, 6)
		w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(8) }
		w.stxOf = func(tid, i int) int { return i % 2 }
		return NewRunner(RunConfig{
			Cores:          4,
			ThreadsPerCore: 2,
			Seed:           42,
			Workload:       w,
			NewManager:     managerFactory("bfgts-hw"),
			MaxCycles:      2_000_000_000,
			Metrics:        reg,
		}).Run()
	}
	plain := build(nil)
	if plain.Metrics != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	instr := build(metrics.New())
	if plain.Makespan != instr.Makespan || plain.Commits != instr.Commits || plain.Aborts != instr.Aborts {
		t.Fatalf("instrumented run diverged: makespan %d vs %d, commits %d vs %d, aborts %d vs %d",
			plain.Makespan, instr.Makespan, plain.Commits, instr.Commits, plain.Aborts, instr.Aborts)
	}
}

// TestHybridPressureCrossings checks the §4.3 gate tracker fires on the
// hybrid variant under contention.
func TestHybridPressureCrossings(t *testing.T) {
	res := runSynthMetrics(t, "bfgts-hyb", 7)
	s := res.Metrics
	light := s.Counters["sched.hybrid.light_begins"]
	if light == 0 {
		t.Error("hybrid never took the light begin path")
	}
	// Crossings are workload-dependent; just require the counters exist
	// and are consistent: down-crossings can exceed up-crossings by at
	// most the number of static transactions that started high (none do).
	up, down := s.Counters["sched.pressure.cross_up"], s.Counters["sched.pressure.cross_down"]
	if down > up {
		t.Errorf("cross_down %d > cross_up %d: gate state leaked", down, up)
	}
}
