package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// dirManagers are the managers whose begin-time scan runs through the
// Bloofi signature directory: PTS and the software-scan BFGTS variants.
// The hardware variants model the scan in the accelerator and never
// touch the directory.
func dirManagers() []string {
	return []string{"pts", "bfgts-sw", "bfgts-no"}
}

// runBloofiPair runs the same configuration twice — directory-backed and
// linear-scan begin probes — and returns both results.
func runBloofiPair(t *testing.T, w workload.Workload, mgr string, cores, tpc int, seed uint64, profile bool) (dir, linear *Result) {
	t.Helper()
	run := func(noBloofi bool) *Result {
		res := NewRunner(RunConfig{
			Cores:             cores,
			ThreadsPerCore:    tpc,
			Seed:              seed,
			Workload:          w,
			NewManager:        managerFactory(mgr),
			ProfileSimilarity: profile,
			MaxCycles:         2_000_000_000,
			NoBloofi:          noBloofi,
		}).Run()
		if res.TimedOut {
			t.Fatalf("%s on %s timed out (noBloofi=%v)", mgr, w.Name(), noBloofi)
		}
		return res
	}
	return run(false), run(true)
}

// TestBloofiMatchesLinear is the signature-directory differential: over a
// randomized matrix of workload shapes, directory-backed managers,
// machine sizes and seeds, the Bloofi probe and the linear begin-time
// scan must produce cycle-identical Results — same makespan, same
// commit/abort counts, same breakdowns, same scan-length accounting. Any
// divergence means the directory changed which enemy a prediction found
// (or what the walk was billed), not just how fast the host found it.
func TestBloofiMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	managers := dirManagers()
	for trial := 0; trial < 12; trial++ {
		mgr := managers[trial%len(managers)]
		nStatic := 1 + rng.Intn(3)
		span := 2 + rng.Intn(6)
		txs := 8 + rng.Intn(25)
		hot := 4 + rng.Intn(60) // smaller → more contention
		cores := 2 + rng.Intn(6)
		tpc := 1 + rng.Intn(3)
		if trial%3 == 2 {
			// Deep trees: a branch-8 directory over ≤ 8 cores is two
			// levels and never suspends an interior frame, so small
			// machines alone cannot exercise the descent stack. These
			// trials cover 3-level trees and rightmost partial subtrees.
			cores = 17 + rng.Intn(100)
			tpc = 1
			txs = 4 + rng.Intn(6)
		}
		seed := uint64(1 + rng.Intn(1000))

		w := newSynth(fmt.Sprintf("bloofi%d", trial), nStatic, txs, span)
		w.body = int64(50 + rng.Intn(400))
		w.pre = int64(100 + rng.Intn(2000))
		w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(hot) }
		w.stxOf = func(tid, i int) int { return i % nStatic }

		name := fmt.Sprintf("trial=%d mgr=%s static=%d span=%d txs=%d hot=%d cores=%d tpc=%d seed=%d",
			trial, mgr, nStatic, span, txs, hot, cores, tpc, seed)
		dir, linear := runBloofiPair(t, w, mgr, cores, tpc, seed, trial%4 == 0)
		if !reflect.DeepEqual(dir, linear) {
			t.Errorf("%s: directory and linear Results differ\n bloofi: makespan=%d commits=%d aborts=%d breakdown=%v\n linear: makespan=%d commits=%d aborts=%d breakdown=%v",
				name,
				dir.Makespan, dir.Commits, dir.Aborts, dir.Breakdown,
				linear.Makespan, linear.Commits, linear.Aborts, linear.Breakdown)
		}
	}
}

// TestBloofiProbeSubLinear checks the acceptance bound of the directory:
// at 256 simulated cores on a low-overlap workload (conflicts exist but
// are sparse), the mean number of tree nodes a begin probe visits must
// stay under 25% of the mean running-set size — the probe prunes, it
// does not degenerate into the linear walk it replaced.
func TestBloofiProbeSubLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("256-core run")
	}
	const cores = 256
	reg := metrics.New()
	// Mostly-disjoint accesses with a small shared tail: enough conflicts
	// to learn nonzero confidence (so probes carry suspects), sparse
	// enough that most subtrees hold none.
	w := newSynth("lowoverlap", 4, 20, 5)
	w.pick = func(tid, i int, rng *workload.RNG) int {
		if rng.Intn(10) == 0 {
			return rng.Intn(16) // shared hot tail
		}
		return 1024 + tid*64 + rng.Intn(32) // private range
	}
	w.stxOf = func(tid, i int) int { return i % 4 }
	res := NewRunner(RunConfig{
		Cores:          cores,
		ThreadsPerCore: 1,
		Seed:           3,
		Workload:       w,
		NewManager:     managerFactory("bfgts-sw"),
		MaxCycles:      20_000_000_000,
		Metrics:        reg,
	}).Run()
	if res.TimedOut {
		t.Fatal("256-core run timed out")
	}
	nodes := reg.Histogram("sched.bfgts.probe.nodes").Stats()
	running := reg.Histogram("sched.bfgts.probe.running").Stats()
	if nodes.N() == 0 || running.N() == 0 {
		t.Fatal("probe histograms empty: directory path not exercised")
	}
	if running.Mean() < float64(cores)/4 {
		t.Fatalf("running set too small to be meaningful: mean %.1f of %d cores", running.Mean(), cores)
	}
	ratio := nodes.Mean() / running.Mean()
	t.Logf("mean probe nodes %.2f, mean running %.2f, ratio %.3f (n=%d)",
		nodes.Mean(), running.Mean(), ratio, nodes.N())
	if ratio >= 0.25 {
		t.Fatalf("probe visits %.1f%% of the running set on a low-overlap workload, want < 25%%", 100*ratio)
	}
}
