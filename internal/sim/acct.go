package sim

// Category labels where a thread's (or core's) cycles went. These are the
// stacked components of the paper's Figure 5 time breakdown. Idle is
// tracked separately and folded into Kernel when rendering the figure: an
// idle core under an overcommitted OS means its threads are blocked in the
// kernel (ATS's central wait queue is the canonical producer of this time).
type Category int

// Time categories, in the order the paper's Figure 5 stacks them.
const (
	CatNonTx      Category = iota // useful work outside transactions
	CatKernel                     // context switches, yields, futex block/wake
	CatTx                         // useful work inside transactions (incl. NACK stalls)
	CatAbort                      // wasted work in aborted attempts, rollback, backoff
	CatScheduling                 // contention-manager bookkeeping and prediction
	CatIdle                       // core had no runnable thread
	NumCategories
)

// String returns the figure label for the category.
func (c Category) String() string {
	switch c {
	case CatNonTx:
		return "NonTx"
	case CatKernel:
		return "Kernel"
	case CatTx:
		return "Tx"
	case CatAbort:
		return "Abort"
	case CatScheduling:
		return "Scheduling"
	case CatIdle:
		return "Idle"
	default:
		return "?"
	}
}

// Breakdown accumulates cycles per category.
type Breakdown [NumCategories]int64

// Add charges d cycles to category c.
func (b *Breakdown) Add(c Category, d int64) { b[c] += d }

// Total returns the sum across categories.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Merge adds other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b {
		b[i] += other[i]
	}
}
