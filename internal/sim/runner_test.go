package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// synthWorkload is a configurable micro-benchmark for runner tests: each
// thread runs txPerThread transactions of one static ID; a transaction
// reads/writes `span` lines starting at a base chosen by `pick`.
type synthWorkload struct {
	name        string
	nStatic     int
	txPerThread int
	span        int
	body        int64
	pre         int64
	// pick returns the first line index for transaction i of thread tid.
	pick func(tid, i int, rng *workload.RNG) int
	// stxOf selects the static transaction ID.
	stxOf  func(tid, i int) int
	region workload.Region
}

func newSynth(name string, nStatic, txPerThread, span int) *synthWorkload {
	sp := workload.NewSpace()
	return &synthWorkload{
		name:        name,
		nStatic:     nStatic,
		txPerThread: txPerThread,
		span:        span,
		body:        200,
		pre:         500,
		region:      sp.Alloc("data", 1<<16),
		pick:        func(tid, i int, rng *workload.RNG) int { return rng.Intn(1 << 15) },
		stxOf:       func(tid, i int) int { return 0 },
	}
}

func (w *synthWorkload) Name() string   { return w.name }
func (w *synthWorkload) NumStatic() int { return w.nStatic }

type synthProgram struct {
	w    *synthWorkload
	tid  int
	rng  *workload.RNG
	left int
	i    int
}

func (w *synthWorkload) NewProgram(tid, nThreads int, seed uint64) workload.Program {
	return &synthProgram{w: w, tid: tid, rng: workload.NewRNG(seed), left: w.txPerThread}
}

func (p *synthProgram) Next() (int64, *workload.TxDesc, bool) {
	if p.left == 0 {
		return 0, nil, false
	}
	p.left--
	i := p.i
	p.i++
	base := p.w.pick(p.tid, i, p.rng)
	desc := &workload.TxDesc{
		STx:        p.w.stxOf(p.tid, i),
		BodyCycles: p.w.body,
	}
	// Read the span first, then upgrade the first half to writes — the
	// read-modify-write shape of real transactions, which is what makes
	// concurrent conflicting transactions deadlock and abort rather than
	// convoy politely.
	for j := 0; j < p.w.span; j++ {
		desc.Accesses = append(desc.Accesses, workload.Access{Addr: p.w.region.Line(base + j)})
	}
	for j := 0; j < (p.w.span+1)/2; j++ {
		desc.Accesses = append(desc.Accesses, workload.Access{Addr: p.w.region.Line(base + j), Write: true})
	}
	return p.w.pre, desc, true
}

func managerFactory(name string) func(env sched.Env) sched.Manager {
	return func(env sched.Env) sched.Manager {
		switch name {
		case "backoff":
			return sched.NewBackoff(env)
		case "ats":
			return sched.NewATS(env)
		case "pts":
			return sched.NewPTS(env)
		case "bfgts-sw":
			return sched.NewBFGTS(env, sched.BFGTSSW, core.DefaultConfig(env.NumThreads, env.NumStatic))
		case "bfgts-hw":
			return sched.NewBFGTS(env, sched.BFGTSHW, core.DefaultConfig(env.NumThreads, env.NumStatic))
		case "bfgts-hyb":
			return sched.NewBFGTS(env, sched.BFGTSHWBackoff, core.DefaultConfig(env.NumThreads, env.NumStatic))
		case "bfgts-no":
			return sched.NewBFGTS(env, sched.BFGTSNoOverhead, core.DefaultConfig(env.NumThreads, env.NumStatic))
		case "polite":
			return sched.NewPolite(env)
		case "karma":
			return sched.NewKarma(env)
		case "timestamp":
			return sched.NewTimestampCM(env)
		default:
			panic("unknown manager " + name)
		}
	}
}

func runSynth(t *testing.T, w workload.Workload, mgr string, cores, tpc int) *Result {
	t.Helper()
	r := NewRunner(RunConfig{
		Cores:          cores,
		ThreadsPerCore: tpc,
		Seed:           42,
		Workload:       w,
		NewManager:     managerFactory(mgr),
		MaxCycles:      2_000_000_000,
	})
	res := r.Run()
	if res.TimedOut {
		t.Fatalf("%s on %s timed out", mgr, w.Name())
	}
	return res
}

func allManagers() []string {
	return []string{"backoff", "ats", "pts", "bfgts-sw", "bfgts-hw", "bfgts-hyb", "bfgts-no"}
}

func TestDisjointWorkloadCommitsEverything(t *testing.T) {
	for _, mgr := range allManagers() {
		w := newSynth("disjoint", 1, 30, 4)
		// Each thread works in its own region slice: never conflicts.
		w.pick = func(tid, i int, rng *workload.RNG) int { return tid*1000 + i*5 }
		res := runSynth(t, w, mgr, 4, 2)
		wantCommits := int64(4 * 2 * 30)
		if res.Commits != wantCommits {
			t.Errorf("%s: commits = %d, want %d", mgr, res.Commits, wantCommits)
		}
		if res.Aborts != 0 {
			t.Errorf("%s: aborts = %d on disjoint workload", mgr, res.Aborts)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, mgr := range []string{"backoff", "bfgts-hw"} {
		mk := func() *Result {
			w := newSynth("hot", 1, 20, 4)
			w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(8) }
			return runSynth(t, w, mgr, 4, 4)
		}
		a, b := mk(), mk()
		if a.Makespan != b.Makespan || a.Commits != b.Commits || a.Aborts != b.Aborts {
			t.Errorf("%s: runs diverged: (%d,%d,%d) vs (%d,%d,%d)", mgr,
				a.Makespan, a.Commits, a.Aborts, b.Makespan, b.Commits, b.Aborts)
		}
	}
}

func TestHotWorkloadConflictsUnderBackoff(t *testing.T) {
	w := newSynth("hot", 1, 25, 6)
	w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(4) }
	w.body = 800
	res := runSynth(t, w, "backoff", 4, 4)
	if res.Aborts == 0 {
		t.Fatal("hot workload produced no aborts under Backoff")
	}
	if res.Commits != 4*4*25 {
		t.Fatalf("commits = %d, want %d", res.Commits, 4*4*25)
	}
	if res.ContentionPct() <= 0 {
		t.Fatal("contention percentage not positive")
	}
	if res.ConflictMatrix[0][0] == 0 {
		t.Fatal("conflict matrix empty despite aborts")
	}
}

func TestSchedulersReduceContentionOnPersistentConflicts(t *testing.T) {
	// Every transaction touches the same 4 lines: a maximally persistent
	// conflict. Proactive schedulers must end up with fewer aborts than
	// Backoff.
	mk := func(mgr string) *Result {
		w := newSynth("persistent", 1, 60, 4)
		w.pick = func(tid, i int, rng *workload.RNG) int { return 0 }
		w.body = 600
		return runSynth(t, w, mgr, 4, 4)
	}
	backoff := mk("backoff")
	for _, mgr := range []string{"bfgts-sw", "bfgts-hw", "bfgts-no"} {
		res := mk(mgr)
		if res.Commits != backoff.Commits {
			t.Fatalf("%s commits = %d, want %d", mgr, res.Commits, backoff.Commits)
		}
		if res.Aborts >= backoff.Aborts {
			t.Errorf("%s aborts = %d, not below backoff's %d", mgr, res.Aborts, backoff.Aborts)
		}
	}
}

func TestBreakdownAccountsAllCategories(t *testing.T) {
	w := newSynth("mix", 1, 20, 4)
	w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(6) }
	res := runSynth(t, w, "bfgts-sw", 4, 4)
	b := res.Breakdown
	if b[CatNonTx] == 0 || b[CatTx] == 0 || b[CatKernel] == 0 {
		t.Fatalf("breakdown missing basics: %v", b)
	}
	if b[CatScheduling] == 0 {
		t.Fatal("BFGTS-SW charged no scheduling time")
	}
	if b.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
}

func TestATSSerializationProducesKernelTime(t *testing.T) {
	mkKernel := func(mgr string) float64 {
		w := newSynth("hot", 1, 25, 4)
		w.pick = func(tid, i int, rng *workload.RNG) int { return 0 }
		w.body = 600
		res := runSynth(t, w, mgr, 4, 4)
		return float64(res.Breakdown[CatKernel]+res.Breakdown[CatIdle]) / float64(res.Breakdown.Total())
	}
	ats := mkKernel("ats")
	backoff := mkKernel("backoff")
	if ats <= backoff {
		t.Errorf("ATS kernel+idle share (%.3f) not above Backoff's (%.3f)", ats, backoff)
	}
}

func TestSingleCoreBaselineSequential(t *testing.T) {
	w := newSynth("seq", 1, 40, 4)
	w.pick = func(tid, i int, rng *workload.RNG) int { return 0 }
	res := runSynth(t, w, "backoff", 1, 1)
	if res.Aborts != 0 {
		t.Fatalf("single-threaded run aborted %d times", res.Aborts)
	}
	if res.Commits != 40 {
		t.Fatalf("commits = %d, want 40", res.Commits)
	}
}

func TestParallelSpeedupOnDisjointWork(t *testing.T) {
	mk := func(cores, tpc, txs int) int64 {
		w := newSynth("scale", 1, txs, 4)
		w.pre = 3000
		w.body = 1000
		w.pick = func(tid, i int, rng *workload.RNG) int { return tid*2000 + i*10 }
		return runSynth(t, w, "backoff", cores, tpc).Makespan
	}
	// 640 transactions total in both runs.
	seq := mk(1, 1, 640)
	par := mk(8, 2, 40)
	speedup := float64(seq) / float64(par)
	if speedup < 4 {
		t.Fatalf("8-core speedup on disjoint work = %.2f, want >= 4", speedup)
	}
}

func TestProfileSimilarityExtremes(t *testing.T) {
	run := func(pick func(tid, i int, rng *workload.RNG) int) float64 {
		w := newSynth("sim", 1, 30, 8)
		w.pick = pick
		r := NewRunner(RunConfig{
			Cores: 2, ThreadsPerCore: 1, Seed: 7,
			Workload:          w,
			NewManager:        managerFactory("backoff"),
			ProfileSimilarity: true,
			MaxCycles:         1_000_000_000,
		})
		res := r.Run()
		return res.Similarity[0]
	}
	same := run(func(tid, i int, rng *workload.RNG) int { return tid * 5000 })
	rnd := run(func(tid, i int, rng *workload.RNG) int { return rng.Intn(1 << 15) })
	if same < 0.9 {
		t.Errorf("repeated-footprint similarity = %.3f, want ~1", same)
	}
	if rnd > 0.2 {
		t.Errorf("random-footprint similarity = %.3f, want ~0", rnd)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	w := newSynth("long", 1, 1000, 2)
	w.pre = 100000
	r := NewRunner(RunConfig{
		Cores: 1, ThreadsPerCore: 1, Seed: 1,
		Workload:   w,
		NewManager: managerFactory("backoff"),
		MaxCycles:  50000,
	})
	res := r.Run()
	if !res.TimedOut {
		t.Fatal("MaxCycles guard did not fire")
	}
}

func TestOvercommittedThreadsAllFinish(t *testing.T) {
	w := newSynth("over", 2, 15, 4)
	w.stxOf = func(tid, i int) int { return i % 2 }
	w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(12) }
	for _, mgr := range allManagers() {
		res := runSynth(t, w, mgr, 2, 8) // 16 threads on 2 cores
		if res.Commits != 2*8*15 {
			t.Errorf("%s: commits = %d, want %d", mgr, res.Commits, 2*8*15)
		}
	}
}

func TestCommitsPerStx(t *testing.T) {
	w := newSynth("stx", 3, 30, 2)
	w.stxOf = func(tid, i int) int { return i % 3 }
	w.pick = func(tid, i int, rng *workload.RNG) int { return tid*100 + i }
	res := runSynth(t, w, "backoff", 2, 2)
	for s := 0; s < 3; s++ {
		if res.CommitsPerStx[s] != 4*10 {
			t.Fatalf("stx %d commits = %d, want 40", s, res.CommitsPerStx[s])
		}
	}
}

func TestATSBlockWakeUnderRunner(t *testing.T) {
	// A maximally hot workload drives ATS pressure over threshold: threads
	// must serialize through the central queue (block/wake) and still all
	// finish with every transaction committed.
	w := newSynth("atshot", 1, 40, 4)
	w.pick = func(tid, i int, rng *workload.RNG) int { return 0 }
	w.body = 700
	res := runSynth(t, w, "ats", 4, 4)
	if res.Commits != 4*4*40 {
		t.Fatalf("commits = %d, want %d", res.Commits, 4*4*40)
	}
	if res.Breakdown[CatKernel] == 0 {
		t.Fatal("ATS serialization produced no kernel time")
	}
}

func TestPTSYieldPathUnderRunner(t *testing.T) {
	// PTS serializes via YieldRetry; the workload must finish and commit
	// everything even when predictions keep threads yielding.
	w := newSynth("ptshot", 2, 40, 4)
	w.stxOf = func(tid, i int) int { return i % 2 }
	w.pick = func(tid, i int, rng *workload.RNG) int { return i % 3 }
	w.body = 700
	res := runSynth(t, w, "pts", 4, 4)
	if res.Commits != 4*4*40 {
		t.Fatalf("commits = %d, want %d", res.Commits, 4*4*40)
	}
}

func TestReactiveManagersUnderRunner(t *testing.T) {
	for _, mgr := range []string{"polite", "karma", "timestamp"} {
		w := newSynth("reactive-"+mgr, 1, 30, 4)
		w.pick = func(tid, i int, rng *workload.RNG) int { return rng.Intn(3) }
		w.body = 500
		res := runSynth(t, w, mgr, 4, 4)
		if res.Commits != 4*4*30 {
			t.Errorf("%s: commits = %d, want %d", mgr, res.Commits, 4*4*30)
		}
	}
}

func TestHybridPressureGatingUnderRunner(t *testing.T) {
	// Low-contention workload: the hybrid must stay in backoff mode and be
	// nearly as cheap as plain Backoff (scheduling share within noise).
	mk := func(mgr string) *Result {
		w := newSynth("calm", 1, 40, 4)
		w.pick = func(tid, i int, rng *workload.RNG) int { return tid*100 + i }
		return runSynth(t, w, mgr, 4, 2)
	}
	hyb, bfgts := mk("bfgts-hyb"), mk("bfgts-hw")
	hybSched := float64(hyb.Breakdown[CatScheduling])
	hwSched := float64(bfgts.Breakdown[CatScheduling])
	if hybSched >= hwSched {
		t.Fatalf("calm hybrid scheduling time (%v) not below BFGTS-HW's (%v)", hybSched, hwSched)
	}
}
