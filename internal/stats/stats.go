// Package stats provides the small statistics toolkit the simulator's
// observability is built on: streaming summaries (count/mean/min/max),
// log-scaled histograms with percentile queries, and exponentially
// weighted moving averages. Everything is allocation-light and
// deterministic so it can run inside the hot commit path of a simulation.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Summary accumulates count, mean, min, max and variance (Welford).
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Min and Max return the extremes (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Merge folds other into s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	s.m2 = s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	s.mean = mean
	s.n = n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.0f max=%.0f",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Histogram is a base-2 log-scaled histogram of non-negative integers
// (cycle counts, set sizes). Bucket i covers [2^(i-1), 2^i) with bucket 0
// covering {0}. Percentiles are approximate to within a factor of 2 — the
// right precision for latency distributions spanning orders of magnitude.
type Histogram struct {
	buckets [65]int64
	total   int64
	sum     float64
}

// Add records a sample. Negative samples are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.total++
	h.sum += float64(v)
}

func bucketOf(v int64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.total }

// Mean returns the exact mean of the samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile returns an upper bound of the p-th percentile (p in [0,100]):
// the top of the bucket where the p-th sample falls.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return (int64(1) << i) - 1
		}
	}
	return math.MaxInt64
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.total += other.total
	h.sum += other.sum
}

// Sparkline renders the occupied range as a compact ASCII bar chart.
func (h *Histogram) Sparkline() string {
	lo, hi := -1, -1
	var peak int64
	for i, c := range h.buckets {
		if c > 0 {
			if lo == -1 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	if lo == -1 {
		return "(empty)"
	}
	glyphs := []rune(" .:-=+*#%@")
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		idx := int(float64(h.buckets[i]) / float64(peak) * float64(len(glyphs)-1))
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// EWMA is an exponentially weighted moving average with weight alpha for
// history (alpha in (0,1); higher = smoother).
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA constructs an EWMA; alpha outside (0,1) panics.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha >= 1 {
		panic("stats: EWMA alpha must be in (0,1)")
	}
	return &EWMA{alpha: alpha}
}

// Add folds in a sample; the first sample primes the average.
func (e *EWMA) Add(x float64) {
	if !e.primed {
		e.value = x
		e.primed = true
		return
	}
	e.value = e.alpha*e.value + (1-e.alpha)*x
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }
