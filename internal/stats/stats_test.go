package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 6} {
		s.Add(x)
	}
	if s.N() != 3 || s.Mean() != 4 || s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("summary = %v", s.String())
	}
	if sd := s.StdDev(); math.Abs(sd-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", sd)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zeroed")
	}
}

func TestSummaryMergeMatchesCombined(t *testing.T) {
	prop := func(a, b []float64) bool {
		var sa, sb, sAll Summary
		for _, x := range a {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // near-overflow magnitudes lose associativity
			}
			sa.Add(x)
			sAll.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // near-overflow magnitudes lose associativity
			}
			sb.Add(x)
			sAll.Add(x)
		}
		sa.Merge(&sb)
		if sa.N() != sAll.N() {
			return false
		}
		if sa.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(sAll.Mean()))
		return math.Abs(sa.Mean()-sAll.Mean()) < 1e-6*scale &&
			math.Abs(sa.Min()-sAll.Min()) < 1e-9 &&
			math.Abs(sa.Max()-sAll.Max()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	if mean := h.Mean(); math.Abs(mean-500.5) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	// Log-scaled: percentile returns the bucket top, within 2x of truth.
	p50 := h.Percentile(50)
	if p50 < 500 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within a bucket of 500", p50)
	}
	p100 := h.Percentile(100)
	if p100 < 1000 || p100 > 1024 {
		t.Fatalf("p100 = %d", p100)
	}
	if h.Percentile(0) > h.Percentile(100) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(-5) // clamped
	if h.N() != 2 || h.Percentile(100) != 0 {
		t.Fatalf("zero handling broken: n=%d p100=%d", h.N(), h.Percentile(100))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Sparkline() != "(empty)" {
		t.Fatal("empty histogram misbehaves")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Add(10)
		b.Add(1000)
	}
	a.Merge(&b)
	if a.N() != 200 {
		t.Fatalf("merged N = %d", a.N())
	}
	if a.Percentile(25) > 16 || a.Percentile(75) < 512 {
		t.Fatalf("merged percentiles wrong: p25=%d p75=%d", a.Percentile(25), a.Percentile(75))
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	prop := func(samples []uint16, p float64) bool {
		var h Histogram
		var maxV int64
		for _, s := range samples {
			v := int64(s)
			h.Add(v)
			if v > maxV {
				maxV = v
			}
		}
		if len(samples) == 0 {
			return h.Percentile(p) == 0
		}
		got := h.Percentile(p)
		// Upper-bound property: never below the true value's bucket floor,
		// never above the max's bucket top.
		return got >= 0 && got <= (int64(1)<<bucketOf(maxV))-1+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparklineShape(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(int64(rng.Intn(100) + 100))
	}
	if s := h.Sparkline(); len(s) == 0 || s == "(empty)" {
		t.Fatalf("sparkline = %q", s)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("unprimed EWMA not zero")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatal("first sample must prime")
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, 1, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestHistogramPercentileExtremesSingleBucket(t *testing.T) {
	var h Histogram
	h.Add(5) // single value, single bucket
	p0, p100 := h.Percentile(0), h.Percentile(100)
	if p0 != p100 {
		t.Fatalf("single-bucket p0 %d != p100 %d", p0, p100)
	}
	if p100 < 5 {
		t.Fatalf("p100 = %d, must bound the observed value 5", p100)
	}
	// Out-of-range p clamps rather than panicking or escaping the bounds.
	if h.Percentile(-10) != p0 || h.Percentile(200) != p100 {
		t.Fatal("out-of-range percentiles did not clamp")
	}
}

func TestSummaryMergeMinMaxPropagation(t *testing.T) {
	var a, b Summary
	a.Add(5)
	a.Add(10)
	b.Add(-3)
	b.Add(100)
	a.Merge(&b)
	if a.Min() != -3 {
		t.Fatalf("merged min = %v, want -3", a.Min())
	}
	if a.Max() != 100 {
		t.Fatalf("merged max = %v, want 100", a.Max())
	}
	if a.N() != 4 {
		t.Fatalf("merged n = %d, want 4", a.N())
	}

	// Merging an empty summary must not disturb min/max.
	var empty Summary
	a.Merge(&empty)
	if a.Min() != -3 || a.Max() != 100 || a.N() != 4 {
		t.Fatalf("merge with empty changed stats: min %v max %v n %d", a.Min(), a.Max(), a.N())
	}

	// Merging into an empty summary adopts the other side's extremes.
	var c Summary
	c.Merge(&a)
	if c.Min() != -3 || c.Max() != 100 || c.N() != 4 {
		t.Fatalf("merge into empty: min %v max %v n %d", c.Min(), c.Max(), c.N())
	}
}
