package workload

import (
	"testing"
)

// TestWideShardPlanContract walks every transaction of every thread and
// checks the Sharder contract the partitioned simulator relies on: every
// below-SharedBase access belongs to the issuing thread's own shard, every
// at-or-above-SharedBase access is a read, and writes never reach the shared
// region. One violated access would make a partitioned run's conflicts
// cross lanes and silently diverge from the sequential run.
func TestWideShardPlanContract(t *testing.T) {
	for _, tc := range []struct{ cores, tpc, shards int }{
		{16, 4, 2}, {16, 4, 4}, {16, 4, 8}, {8, 2, 4}, {256, 2, 16},
	} {
		w := NewWide(tc.cores, tc.tpc, 2000)
		plan, ok := w.ShardPlan(tc.shards, tc.cores, tc.tpc)
		if !ok {
			t.Fatalf("cores=%d shards=%d: plan refused", tc.cores, tc.shards)
		}
		perShard := tc.cores / tc.shards
		nThreads := tc.cores * tc.tpc
		for tid := 0; tid < nThreads; tid++ {
			myShard := (tid % tc.cores) / perShard
			prog := w.NewProgram(tid, nThreads, uint64(tid)*977+1)
			for {
				_, desc, ok := prog.Next()
				if !ok {
					break
				}
				for _, acc := range desc.Accesses {
					if acc.Addr >= plan.SharedBase {
						if acc.Write {
							t.Fatalf("cores=%d shards=%d tid=%d: write to shared region addr %#x",
								tc.cores, tc.shards, tid, acc.Addr)
						}
						continue
					}
					if owner := plan.OwnerShard(acc.Addr); owner != myShard {
						t.Fatalf("cores=%d shards=%d tid=%d (shard %d): private access addr %#x owned by shard %d",
							tc.cores, tc.shards, tid, myShard, acc.Addr, owner)
					}
				}
			}
		}
	}
}

// TestWideShardPlanRefusals pins the geometries ShardPlan must refuse:
// mismatched machine shape, non-dividing shard counts, and odd
// cores-per-shard (which would split a contention pair across shards).
func TestWideShardPlanRefusals(t *testing.T) {
	w := NewWide(16, 4, 1000)
	if _, ok := w.ShardPlan(4, 8, 4); ok {
		t.Error("accepted a plan for the wrong core count")
	}
	if _, ok := w.ShardPlan(4, 16, 2); ok {
		t.Error("accepted a plan for the wrong threads-per-core")
	}
	if _, ok := w.ShardPlan(5, 16, 4); ok {
		t.Error("accepted a shard count that does not divide the cores")
	}
	w9 := NewWide(9, 2, 1000)
	if _, ok := w9.ShardPlan(3, 9, 2); ok {
		t.Error("accepted an odd cores-per-shard plan that splits a pair")
	}
	if _, ok := w.ShardPlan(1, 16, 4); !ok {
		t.Error("refused the trivial one-shard plan")
	}
	if _, ok := w.ShardPlan(8, 16, 4); !ok {
		t.Error("refused a valid even split")
	}
}

// TestWideDistributesTransactions checks the per-thread transaction split
// covers the total exactly, with the remainder spread over the low tids.
func TestWideDistributesTransactions(t *testing.T) {
	w := NewWide(4, 2, 103)
	total := 0
	for tid := 0; tid < 8; tid++ {
		prog := w.NewProgram(tid, 8, 1)
		for {
			_, _, ok := prog.Next()
			if !ok {
				break
			}
			total++
		}
	}
	if total != 103 {
		t.Fatalf("programs produced %d transactions, want 103", total)
	}
}
