// Package workload defines how benchmark programs present transactions to
// the simulator: a Workload fabricates per-thread Programs, each of which
// yields a stream of transaction descriptors (static ID, read/write sets
// as cache-line addresses, compute cycles) separated by non-transactional
// work. The STAMP-like kernels live in internal/stamp; this package holds
// the contract plus the deterministic PRNG and the address-space allocator
// they share.
package workload

// LineBytes is the cache-line size of the simulated machine (Table 2).
const LineBytes = 64

// TxDesc describes one dynamic transaction: the accesses it will perform
// (in order) and the compute it does between them. On abort the same
// descriptor is re-executed — the code and inputs have not changed — and
// the OnCommit side effect runs exactly once, when the transaction finally
// commits.
type TxDesc struct {
	// STx is the static transaction ID (which atomic block in the code).
	STx int
	// Accesses is the ordered list of line accesses.
	Accesses []Access
	// BodyCycles is the total compute inside the transaction, distributed
	// evenly between accesses by the runner.
	BodyCycles int64
	// OnCommit applies the transaction's side effects to the workload's
	// generator state. May be nil.
	OnCommit func()
}

// Access is one transactional memory reference.
type Access struct {
	Addr  uint64 // cache-line address (LineBytes-aligned byte address)
	Write bool
}

// Lines counts distinct lines touched by the descriptor.
func (d *TxDesc) Lines() int {
	seen := make(map[uint64]struct{}, len(d.Accesses))
	for _, a := range d.Accesses {
		seen[a.Addr] = struct{}{}
	}
	return len(seen)
}

// Program is one thread's instruction stream: a sequence of (non-
// transactional compute, transaction) pairs.
type Program interface {
	// Next returns the next transaction and the non-transactional compute
	// cycles preceding it. ok is false when the thread has finished its
	// share of the work; the other return values are then meaningless.
	Next() (pre int64, tx *TxDesc, ok bool)
}

// Workload fabricates the benchmark.
type Workload interface {
	// Name is the benchmark name (lower case, e.g. "genome").
	Name() string
	// NumStatic is the number of static transactions the code declares.
	NumStatic() int
	// NewProgram builds thread tid's instruction stream. The total work is
	// split across nThreads threads; seed makes runs reproducible.
	// Programs of one workload instance may share generator state — the
	// simulator is single-threaded — but all mutation of shared state must
	// happen inside TxDesc.OnCommit callbacks.
	NewProgram(tid, nThreads int, seed uint64) Program
}

// Factory builds a fresh workload instance scaled to n total transactions.
// Every run gets a fresh instance so generator state never leaks between
// experiments.
type Factory struct {
	New  func(totalTxs int) Workload
	Txs  int // default total transactions for full experiments
	name string
}

// NewFactory wraps a constructor with its default scale.
func NewFactory(name string, defaultTxs int, newFn func(totalTxs int) Workload) Factory {
	return Factory{New: newFn, Txs: defaultTxs, name: name}
}

// Name returns the benchmark name without instantiating it.
func (f Factory) Name() string { return f.name }
