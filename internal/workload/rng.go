package workload

// RNG is a small, fast, deterministic generator (xoshiro-style splitmix64
// stream) used by workload generators. Each thread derives its own stream
// from (workload seed, thread ID) so program construction order cannot
// perturb the draw sequence.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Seed 0 is remapped to a fixed odd constant so
// the stream never degenerates.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Derive produces an independent stream for a sub-entity (e.g. a thread).
func (r *RNG) Derive(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id+1)*0xd1342543de82ef95)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Zipf returns an integer in [0, n) with a Zipf-like bias toward small
// values; s controls the skew (s=0 is uniform, larger s is more skewed).
// Workloads use it to model hot-spot structures such as mesh regions.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF of a smooth power-law approximation.
	u := r.Float64()
	x := int(float64(n) * pow(u, 1+s))
	if x >= n {
		x = n - 1
	}
	return x
}

// pow is a cheap x^y for x in [0,1], y >= 1, good enough for workload
// skewing (avoids pulling math into every call site).
func pow(x, y float64) float64 {
	// Exponentiation by squaring on the integer part, linear blend on the
	// fraction.
	ip := int(y)
	fp := y - float64(ip)
	out := 1.0
	base := x
	for ip > 0 {
		if ip&1 == 1 {
			out *= base
		}
		base *= base
		ip >>= 1
	}
	// x^fp ≈ 1 - fp*(1-x) for x near 1; acceptable skew error otherwise.
	return out * (1 - fp*(1-x))
}
