package workload

// ShardPlan is a workload's declared address/core partition for sharded
// simulation (sim.RunConfig.Shards). Shards own contiguous core ranges:
// shard i of S over C cores owns cores [i*C/S, (i+1)*C/S).
type ShardPlan struct {
	// SharedBase splits the address space: lines below it are shard-
	// private (only ever accessed by threads of the owning shard's
	// cores), lines at or above it are shared and read-only.
	SharedBase uint64
	// OwnerShard maps a line address to the shard that owns it. For
	// shard-private lines that is the shard of the accessing cores; for
	// shared lines it names the shard whose directory validates
	// cross-shard probe messages for that line.
	OwnerShard func(addr uint64) int
}

// Sharder is implemented by workloads that can run fully partitioned: the
// plan guarantees that (a) every access below SharedBase comes from a
// thread on a core the owning shard covers, (b) every access at or above
// SharedBase is a read, and (c) programs share no mutable generator state
// (no OnCommit coupling across shards). Under those rules every conflict
// is shard-local, which is what lets the partitioned lanes free-run
// concurrently and still merge to the sequential run's exact results.
//
// ShardPlan reports ok=false when the requested geometry does not match
// the workload (wrong core count, indivisible shard count, ...); the
// simulator then falls back to the entangled shared-clock mode, which is
// valid for every workload.
type Sharder interface {
	ShardPlan(shards, cores, threadsPerCore int) (ShardPlan, bool)
}
