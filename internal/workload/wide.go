package workload

// Wide is the scale-out benchmark behind the sharded-simulation
// experiments: a partition-friendly OLTP-style kernel whose contention is
// local to a pair of adjacent cores by construction, so it remains
// meaningful from 16 to 1000+ cores. Cores 2k and 2k+1 share a contention
// arena (the concatenation of their private regions) that the update
// transaction read-modify-writes — threads on one core of the pair run
// concurrently with the other core's, so real conflicts arise — the lookup
// transaction reads only its own core's lines, and all threads occasionally
// read a global read-only lookup region. That layout satisfies the Sharder
// contract exactly: conflicts never cross a pair boundary, ShardPlan
// refuses any partition that would split a pair, and the only cross-shard
// traffic is read-read on the shared region.
type Wide struct {
	cores    int
	tpc      int
	totalTxs int
	coreBase uint64 // base address of core 0's private region
	shared   Region
}

const (
	wideLinesPerCore = 64  // private lines per core (half of a pair's arena)
	wideHotLines     = 16  // hot subset of the arena that updates hammer
	wideSharedLines  = 256 // global read-only lookup region
	wideUpdatePct    = 30  // % of transactions that are updates (stx 0)
)

// NewWide lays out the address space for a machine of the given geometry.
// The private regions are allocated first and the shared region last, so
// every shared line sits above every private line — the single base
// comparison the simulator's cross-shard probe check needs.
func NewWide(cores, threadsPerCore, totalTxs int) *Wide {
	sp := NewSpace()
	private := sp.Alloc("wide.core-private", wideLinesPerCore*cores)
	shared := sp.Alloc("wide.shared-lookup", wideSharedLines)
	return &Wide{
		cores:    cores,
		tpc:      threadsPerCore,
		totalTxs: totalTxs,
		coreBase: private.Base,
		shared:   shared,
	}
}

// Name implements Workload.
func (w *Wide) Name() string { return "wide" }

// NumStatic implements Workload: stx 0 is the update, stx 1 the lookup.
func (w *Wide) NumStatic() int { return 2 }

// coreLine addresses line i of core c's private region.
func (w *Wide) coreLine(c, i int) uint64 {
	return w.coreBase + uint64(c*wideLinesPerCore+i)*LineBytes
}

// arena returns the base core and line count of core c's contention arena:
// the concatenated private regions of its pair (cores 2k and 2k+1). With an
// odd core count the last core pairs with itself.
func (w *Wide) arena(c int) (base, lines int) {
	base = c &^ 1
	lines = 2 * wideLinesPerCore
	if base+1 >= w.cores {
		lines = wideLinesPerCore
	}
	return base, lines
}

// NewProgram implements Workload. Thread state is fully private (no
// OnCommit callbacks, no shared generator), as the Sharder contract
// requires.
func (w *Wide) NewProgram(tid, nThreads int, seed uint64) Program {
	n := w.totalTxs / nThreads
	if tid < w.totalTxs%nThreads {
		n++
	}
	return &wideProgram{
		w:         w,
		rng:       NewRNG(seed),
		core:      tid % w.cores,
		remaining: n,
	}
}

// ShardPlan implements Sharder. Private lines belong to the shard covering
// their core; shared lines are assigned round-robin by line index so probe
// traffic spreads evenly across owners. Plans whose shards would split a
// core pair (odd cores-per-shard at shards > 1) are refused — conflicts
// cross core boundaries within a pair, so both cores must land in one
// shard; the simulator falls back to the entangled shared-clock mode.
func (w *Wide) ShardPlan(shards, cores, threadsPerCore int) (ShardPlan, bool) {
	if shards < 1 || cores != w.cores || threadsPerCore != w.tpc || cores%shards != 0 {
		return ShardPlan{}, false
	}
	perShard := cores / shards
	if shards > 1 && perShard%2 != 0 {
		return ShardPlan{}, false
	}
	base := w.coreBase
	sharedBase := w.shared.Base
	return ShardPlan{
		SharedBase: sharedBase,
		OwnerShard: func(addr uint64) int {
			if addr >= sharedBase {
				line := int((addr - sharedBase) / LineBytes)
				return line % shards
			}
			c := int((addr - base) / (wideLinesPerCore * LineBytes))
			return c / perShard
		},
	}, true
}

type wideProgram struct {
	w         *Wide
	rng       *RNG
	core      int
	remaining int

	desc TxDesc
	acc  []Access
}

// Next implements Program. The descriptor and access slice are reused
// between transactions: the runner holds them only until the execution
// commits.
func (p *wideProgram) Next() (int64, *TxDesc, bool) {
	if p.remaining == 0 {
		return 0, nil, false
	}
	p.remaining--
	pre := 200 + p.rng.Int63n(200)
	p.acc = p.acc[:0]
	if p.rng.Intn(100) < wideUpdatePct {
		// Update: read-modify-write bursts inside the pair's contention
		// arena — threads on the pair's other core run concurrently, so
		// these conflict for real.
		p.desc.STx = 0
		p.desc.BodyCycles = 800
		base, lines := p.w.arena(p.core)
		for i := 0; i < 8; i++ {
			// Half the accesses hammer a small hot set at the arena's base
			// (concurrent updates from the pair's other core nearly always
			// overlap there); the rest spread over the full arena.
			n := lines
			if p.rng.Intn(2) == 0 {
				n = wideHotLines
			}
			l := p.rng.Intn(n)
			p.acc = append(p.acc, Access{
				Addr:  p.w.coreLine(base+l/wideLinesPerCore, l%wideLinesPerCore),
				Write: p.rng.Intn(2) == 0,
			})
		}
	} else {
		// Lookup: private reads plus two probes into the global read-only
		// region (the only accesses that ever cross a shard boundary).
		p.desc.STx = 1
		p.desc.BodyCycles = 320
		for i := 0; i < 6; i++ {
			p.acc = append(p.acc, Access{
				Addr: p.w.coreLine(p.core, p.rng.Intn(wideLinesPerCore)),
			})
		}
		for i := 0; i < 2; i++ {
			p.acc = append(p.acc, Access{
				Addr: p.w.shared.Line(p.rng.Intn(wideSharedLines)),
			})
		}
	}
	p.desc.Accesses = p.acc
	p.desc.OnCommit = nil
	return pre, &p.desc, true
}
