package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical seeds diverged")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestRNGDeriveIndependentStreams(t *testing.T) {
	base := NewRNG(3)
	a := base.Derive(0)
	b := base.Derive(1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams coincide on %d/64 draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64RoughlyUniform(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestZipfSkewsSmall(t *testing.T) {
	r := NewRNG(17)
	const n = 100
	lowHalf := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if r.Zipf(n, 2.0) < n/2 {
			lowHalf++
		}
	}
	if float64(lowHalf)/draws < 0.60 {
		t.Fatalf("Zipf(s=2) put only %d/%d in the low half; want skew", lowHalf, draws)
	}
	for i := 0; i < 1000; i++ {
		v := r.Zipf(n, 2.0)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
	if r.Zipf(1, 2.0) != 0 || r.Zipf(0, 1.0) != 0 {
		t.Fatal("degenerate Zipf bounds mishandled")
	}
}

func TestSpaceRegionsDisjoint(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100)
	b := s.Alloc("b", 50)
	for i := 0; i < 100; i++ {
		if b.Contains(a.Line(i)) {
			t.Fatalf("region overlap at line %d", i)
		}
	}
	for i := 0; i < 50; i++ {
		if a.Contains(b.Line(i)) {
			t.Fatalf("region overlap at line %d", i)
		}
	}
}

func TestRegionLineAlignmentAndWrap(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("r", 10)
	for i := -20; i < 40; i++ {
		addr := r.Line(i)
		if addr%LineBytes != 0 {
			t.Fatalf("unaligned line address %#x", addr)
		}
		if !r.Contains(addr) {
			t.Fatalf("Line(%d) = %#x escapes region", i, addr)
		}
	}
	if r.Line(0) != r.Line(10) {
		t.Fatal("modulo indexing broken")
	}
}

func TestTxDescLines(t *testing.T) {
	d := &TxDesc{Accesses: []Access{
		{Addr: 64}, {Addr: 128, Write: true}, {Addr: 64, Write: true},
	}}
	if d.Lines() != 2 {
		t.Fatalf("Lines() = %d, want 2", d.Lines())
	}
}
