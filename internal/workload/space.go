package workload

import "fmt"

// Space is a bump allocator over the simulated physical address space.
// Workload data structures carve named regions out of it and address their
// contents by line index, mirroring how the real benchmarks lay out their
// heaps. Addresses are byte addresses aligned to LineBytes.
type Space struct {
	next uint64
}

// NewSpace starts allocation at a non-zero base (so address 0 never
// aliases a valid line).
func NewSpace() *Space {
	return &Space{next: 1 << 20}
}

// Alloc reserves a region of n cache lines and returns it.
func (s *Space) Alloc(name string, lines int) Region {
	if lines <= 0 {
		panic(fmt.Sprintf("workload: region %q with %d lines", name, lines))
	}
	r := Region{Name: name, Base: s.next, NumLines: lines}
	s.next += uint64(lines) * LineBytes
	return r
}

// Region is a contiguous run of cache lines.
type Region struct {
	Name     string
	Base     uint64
	NumLines int
}

// Line returns the address of the i-th line; i is taken modulo the region
// size so generators can index freely.
func (r Region) Line(i int) uint64 {
	if r.NumLines == 0 {
		panic("workload: Line on empty region")
	}
	i %= r.NumLines
	if i < 0 {
		i += r.NumLines
	}
	return r.Base + uint64(i)*LineBytes
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+uint64(r.NumLines)*LineBytes
}
