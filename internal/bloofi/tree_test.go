package bloofi

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bloom"
)

// oracle is the naive linear-scan reference the Tree must match exactly:
// a slot→key map probed by walking every slot in ascending order.
type oracle map[int]uint64

func (o oracle) probe(keys []uint64) []int {
	var slots []int
	for slot := range o {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	var out []int
	for _, slot := range slots {
		k := o[slot]
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		if i < len(keys) && keys[i] == k {
			out = append(out, slot)
		}
	}
	return out
}

func (o oracle) occupiedBefore(slot int) int {
	n := 0
	for s := range o {
		if s < slot {
			n++
		}
	}
	return n
}

// drain runs a probe to exhaustion and returns the candidate slots.
func drain(p *Probe, keys []uint64) []int {
	p.Reset(keys)
	var out []int
	for {
		slot, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, slot)
	}
}

// suspectSet draws a random ascending, deduplicated key set from keySpace.
func suspectSet(rng *rand.Rand, keySpace int) []uint64 {
	n := rng.Intn(5)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		seen[uint64(rng.Intn(keySpace))] = true
	}
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func slotsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// filtersEqual compares bit sets: equal popcounts and a union popcount
// equal to both means the sets are identical.
func filtersEqual(a, b *bloom.Filter) bool {
	return a.PopCount() == b.PopCount() && a.UnionPopCount(b) == a.PopCount()
}

// checkTreeInvariants verifies the structural contract against occ:
//   - every materialized node's count equals the occupied slots under it,
//     and its filter is exactly the OR of their keys (no stale bits);
//   - empty subtrees hold no node at all;
//   - no arena node is referenced from two positions (pool aliasing);
//   - free list size + materialized nodes == arena size.
func checkTreeInvariants(t *testing.T, tr *Tree, occ oracle) {
	t.Helper()
	bits, hashes := tr.arena[0].filter.Bits(), tr.arena[0].filter.Hashes()
	want := bloom.NewFilter(bits, hashes)
	used := map[int32]bool{}
	materialized := 0
	for l := range tr.levels {
		for pos, ni := range tr.levels[l] {
			lo, hi := pos*tr.span[l], (pos+1)*tr.span[l]
			cnt := 0
			want.Reset()
			for slot, key := range occ {
				if slot >= lo && slot < hi {
					cnt++
					want.Add(key)
				}
			}
			if ni < 0 {
				if cnt != 0 {
					t.Fatalf("level %d pos %d: empty node but %d occupants", l, pos, cnt)
				}
				continue
			}
			materialized++
			if used[ni] {
				t.Fatalf("arena node %d referenced twice", ni)
			}
			used[ni] = true
			n := &tr.arena[ni]
			if int(n.count) != cnt {
				t.Fatalf("level %d pos %d: count %d, want %d", l, pos, n.count, cnt)
			}
			if cnt == 0 {
				t.Fatalf("level %d pos %d: materialized node with empty subtree", l, pos)
			}
			if !filtersEqual(n.filter, want) {
				t.Fatalf("level %d pos %d: aggregate has stale or missing bits (pop %d, want %d)",
					l, pos, n.filter.PopCount(), want.PopCount())
			}
		}
	}
	if len(tr.free)+materialized != len(tr.arena) {
		t.Fatalf("pool leak: %d free + %d materialized != %d arena nodes",
			len(tr.free), materialized, len(tr.arena))
	}
}

// TestTreeMatchesOracle drives randomized insert/remove/set churn across
// tree shapes (including partial rightmost subtrees and the single-slot
// degenerate) and requires every probe to return exactly the slots the
// naive linear scan matches, in the same ascending order.
func TestTreeMatchesOracle(t *testing.T) {
	shapes := []Config{
		{Capacity: 1},
		{Capacity: 3},
		{Capacity: 8},
		{Capacity: 9}, // rightmost root child holds one leaf
		{Capacity: 17, Branch: 2},
		{Capacity: 64},
		{Capacity: 100, Branch: 3, Bits: 64},
	}
	const keySpace = 16 // small: shared keys and dense filters
	for _, cfg := range shapes {
		rng := rand.New(rand.NewSource(int64(cfg.Capacity)))
		tr := New(cfg)
		probe := NewProbe(tr)
		occ := oracle{}
		for op := 0; op < 600; op++ {
			slot := rng.Intn(cfg.Capacity)
			key := uint64(rng.Intn(keySpace))
			switch {
			case tr.Occupied(slot) && rng.Intn(2) == 0:
				tr.Remove(slot)
				delete(occ, slot)
			default:
				tr.Set(slot, key)
				occ[slot] = key
			}
			if tr.Len() != len(occ) {
				t.Fatalf("cap %d op %d: Len=%d, oracle %d", cfg.Capacity, op, tr.Len(), len(occ))
			}
			keys := suspectSet(rng, keySpace)
			got, want := drain(probe, keys), occ.probe(keys)
			if !slotsEqual(got, want) {
				t.Fatalf("cap %d op %d: probe(%v) = %v, oracle %v", cfg.Capacity, op, keys, got, want)
			}
			if s := rng.Intn(cfg.Capacity); tr.OccupiedBefore(s) != occ.occupiedBefore(s) {
				t.Fatalf("cap %d op %d: OccupiedBefore(%d) = %d, oracle %d",
					cfg.Capacity, op, s, tr.OccupiedBefore(s), occ.occupiedBefore(s))
			}
		}
	}
}

// TestTreeRemoveRepairsAggregates pins remove-with-repair: after every
// mutation the full structural invariant holds — each interior aggregate
// is exactly the OR of its occupants' keys, so no bit of a removed key
// survives anywhere in the tree.
func TestTreeRemoveRepairsAggregates(t *testing.T) {
	cfg := Config{Capacity: 40, Branch: 4, Bits: 128}
	rng := rand.New(rand.NewSource(99))
	tr := New(cfg)
	occ := oracle{}
	for op := 0; op < 400; op++ {
		slot := rng.Intn(cfg.Capacity)
		if tr.Occupied(slot) && rng.Intn(3) > 0 {
			tr.Remove(slot)
			delete(occ, slot)
		} else {
			key := uint64(rng.Intn(8))
			tr.Set(slot, key)
			occ[slot] = key
		}
		checkTreeInvariants(t, tr, occ)
	}
}

// TestTreePooledNodesNeverAlias cycles the directory through full and
// empty states: released nodes must come back reset (no bits, key or
// count leaking into their next incarnation), no arena node may back two
// positions at once, and after a full drain the pool holds every node.
func TestTreePooledNodesNeverAlias(t *testing.T) {
	cfg := Config{Capacity: 30, Branch: 3}
	tr := New(cfg)
	probe := NewProbe(tr)
	occ := oracle{}
	for run := 0; run < 3; run++ {
		// Fill every slot with run-specific keys.
		for slot := 0; slot < cfg.Capacity; slot++ {
			key := uint64(run*cfg.Capacity + slot)
			tr.Insert(slot, key)
			occ[slot] = key
		}
		checkTreeInvariants(t, tr, occ)
		// Drain in a scrambled order so repairs hit every shape.
		for _, slot := range rand.New(rand.NewSource(int64(run))).Perm(cfg.Capacity) {
			tr.Remove(slot)
			delete(occ, slot)
			checkTreeInvariants(t, tr, occ)
		}
		if tr.Len() != 0 || len(tr.free) != len(tr.arena) {
			t.Fatalf("run %d: drained tree holds %d slots, pool %d/%d",
				run, tr.Len(), len(tr.free), len(tr.arena))
		}
		// Probing for the previous run's keys must find nothing: pooled
		// nodes carry no bits across runs.
		if run > 0 {
			old := []uint64{uint64((run-1)*cfg.Capacity + 1), uint64((run-1)*cfg.Capacity + 7)}
			if got := drain(probe, old); len(got) != 0 {
				t.Fatalf("run %d: stale keys from run %d still probe to %v", run, run-1, got)
			}
		}
	}
}

// TestBloofiTreeAllocFree gates the //bfgts:allocfree annotations at
// runtime: a full insert/probe/remove cycle over a warmed-up directory
// performs zero heap allocations.
func TestBloofiTreeAllocFree(t *testing.T) {
	tr := New(Config{Capacity: 64})
	probe := NewProbe(tr)
	keys := make([]uint64, 0, 8)
	for k := uint64(0); k < 8; k++ {
		keys = append(keys, k)
	}
	cycle := func() {
		for slot := 0; slot < 64; slot++ {
			tr.Insert(slot, uint64(slot%8))
		}
		probe.Reset(keys)
		for {
			if _, ok := probe.Next(); !ok {
				break
			}
		}
		_ = probe.Nodes() + probe.Candidates() + tr.Len() + tr.OccupiedBefore(63)
		for slot := 0; slot < 64; slot++ {
			tr.Remove(slot)
		}
	}
	cycle() // warm up
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("insert/probe/remove cycle allocates %.1f times per run, want 0", n)
	}
}
