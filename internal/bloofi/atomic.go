package bloofi

import (
	"runtime"
	"sync/atomic"

	"repro/internal/bloom"
)

// atomicNode is one node of the concurrent directory. The aggregate
// filter is double-buffered behind a published index, mirroring the
// sigSlot idiom in internal/stm: probes read pair[cur] lock-free;
// remove-with-repair rebuilds the spare under the per-node spinlock and
// flips it live, so a probe always sees a filter that was complete at
// some recent instant. Inserts OR their key into *both* buffers without
// the lock — the bits are monotone, so a concurrent flip cannot unset
// them — which leaves exactly one benign race: a repair that read a
// child before a racing insert reached it, and reset the spare after the
// insert OR'd into it, publishes an aggregate missing that key until the
// node's next repair. A probe then misses a candidate, the predictor
// returns "no conflict", and the transaction proceeds optimistically —
// the same heuristic contract every other signature consumer in
// internal/stm already has.
type atomicNode struct {
	pair  [2]*bloom.AtomicFilter
	cur   atomic.Uint32 // published pair index
	mu    atomic.Uint32 // repair spinlock (removers only)
	count atomic.Int32  // occupied leaves in this subtree
	key   atomic.Uint64 // leaf occupant's identity key (leaves only)
}

// lock spins until it owns the node's repair lock. Repairs are short
// (a few dozen word stores) and contention needs two removers sharing an
// ancestor at the same instant, so a yielding spin is cheaper than any
// blocking primitive here.
//
//bfgts:allocfree
func (n *atomicNode) lock() {
	for !n.mu.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

//bfgts:allocfree
func (n *atomicNode) unlock() { n.mu.Store(0) }

// AtomicTree is the concurrent directory variant (see the package
// comment). Unlike Tree it materializes every node up front — occupancy
// is a per-node atomic counter rather than pooled existence, so inserts
// and removes never touch a shared free list and probes prune empty
// subtrees with one atomic load.
//
// The concurrency contract matches how the STM drives it: each leaf slot
// has exactly one mutator (the worker that owns it — Atomic is
// single-flight per worker slot), while probes may run from any
// goroutine at any time.
type AtomicTree struct {
	branch int
	levels [][]atomicNode
	span   []int
}

// NewAtomicTree builds an empty concurrent directory.
func NewAtomicTree(cfg Config) *AtomicTree {
	if cfg.Capacity <= 0 {
		panic("bloofi: Config.Capacity must be positive")
	}
	cfg = cfg.withDefaults()
	spans, counts := cfg.geometry()
	t := &AtomicTree{
		branch: cfg.Branch,
		levels: make([][]atomicNode, len(counts)),
		span:   spans,
	}
	for l, n := range counts {
		t.levels[l] = make([]atomicNode, n)
		for i := range t.levels[l] {
			t.levels[l][i].pair[0] = bloom.NewAtomicFilter(cfg.Bits, cfg.Hashes)
			t.levels[l][i].pair[1] = bloom.NewAtomicFilter(cfg.Bits, cfg.Hashes)
		}
	}
	return t
}

// Capacity returns the number of leaf slots.
func (t *AtomicTree) Capacity() int { return len(t.levels[0]) }

// Len returns the number of occupied slots (racy-read exact: the root
// counter is adjusted on every insert and remove).
//
//bfgts:allocfree
func (t *AtomicTree) Len() int {
	return int(t.levels[len(t.levels)-1][0].count.Load())
}

// Insert places key at an empty slot owned by the caller: publish the
// leaf key, then OR the key's bits into both buffers of every node on
// the root-to-leaf path. The leaf key is stored before any aggregate
// bit, so a probe that reaches the leaf early at worst compares against
// the previous occupant's key and skips it.
//
//bfgts:allocfree
func (t *AtomicTree) Insert(slot int, key uint64) {
	leaf := &t.levels[0][slot]
	leaf.key.Store(key)
	for l := len(t.levels) - 1; l >= 0; l-- {
		n := &t.levels[l][slot/t.span[l]]
		n.pair[0].Add(key)
		n.pair[1].Add(key)
		n.count.Add(1)
	}
}

// Clear empties the caller's slot and repairs the path above it: every
// ancestor's spare buffer is rebuilt as the OR of its children's
// published buffers and flipped live under the node lock. A fully
// emptied node is simply reset — remove-with-repair leaves no stale bits
// behind once the repairs complete.
//
//bfgts:allocfree
func (t *AtomicTree) Clear(slot int) {
	leaf := &t.levels[0][slot]
	leaf.count.Add(-1)
	leaf.lock()
	leaf.pair[0].Reset()
	leaf.pair[1].Reset()
	leaf.unlock()
	for l := 1; l < len(t.levels); l++ {
		pos := slot / t.span[l]
		n := &t.levels[l][pos]
		n.count.Add(-1)
		n.lock()
		t.repair(n, l, pos)
		n.unlock()
	}
}

// repair rebuilds n's spare buffer from its children's published filters
// and flips it live. Caller holds n's lock.
//
//bfgts:allocfree
//bfgts:seqlock-pub cur
func (t *AtomicTree) repair(n *atomicNode, level, pos int) {
	cur := n.cur.Load()
	spare := n.pair[1-cur]
	spare.Reset()
	children := t.levels[level-1]
	first := pos * t.branch
	last := first + t.branch
	if m := len(children); last > m {
		last = m
	}
	for c := first; c < last; c++ {
		ch := &children[c]
		if ch.count.Load() > 0 {
			spare.OrFrom(ch.pair[ch.cur.Load()])
		}
	}
	n.cur.Store(1 - cur)
}

// Set is the slot owner's upsert: no-op when the key is unchanged,
// otherwise clear-then-insert.
//
//bfgts:allocfree
func (t *AtomicTree) Set(slot int, key uint64) {
	leaf := &t.levels[0][slot]
	if leaf.count.Load() > 0 {
		if leaf.key.Load() == key {
			return
		}
		t.Clear(slot)
	}
	t.Insert(slot, key)
}

// Occupied reports whether a slot currently holds a key.
//
//bfgts:allocfree
func (t *AtomicTree) Occupied(slot int) bool {
	return t.levels[0][slot].count.Load() > 0
}

// AtomicProbe is a reusable lock-free cursor over one AtomicTree. Each
// goroutine needs its own cursor; queries against a concurrently mutated
// tree return a best-effort candidate set (see the package comment), so
// callers must re-verify candidates against authoritative state.
type AtomicProbe struct {
	t     *AtomicTree
	keys  []uint64
	stack []probeFrame
	nodes int
	cands int
}

// NewAtomicProbe returns a cursor bound to t.
func NewAtomicProbe(t *AtomicTree) *AtomicProbe {
	return &AtomicProbe{t: t, stack: make([]probeFrame, 0, len(t.levels))}
}

// Reset starts a new query for the given identity keys (ascending).
//
//bfgts:allocfree
func (p *AtomicProbe) Reset(keys []uint64) {
	p.keys = keys
	p.stack = p.stack[:0]
	p.nodes, p.cands = 0, 0
	if len(keys) == 0 {
		return
	}
	top := len(p.t.levels) - 1
	root := &p.t.levels[top][0]
	if root.count.Load() == 0 {
		return
	}
	if top == 0 {
		p.stack = append(p.stack, probeFrame{level: 1, pos: 0, child: 0})
		return
	}
	p.nodes++
	if p.matchesAny(root) {
		p.stack = append(p.stack, probeFrame{level: int32(top), pos: 0, child: 0})
	}
}

// Next resumes the descent and returns the next candidate slot in
// ascending order; ok is false when the probe is exhausted.
//
//bfgts:allocfree
func (p *AtomicProbe) Next() (slot int, ok bool) {
	t := p.t
	for len(p.stack) > 0 {
		f := &p.stack[len(p.stack)-1]
		childLevel := int(f.level) - 1
		first := int(f.pos) * t.branch
		width := len(t.levels[childLevel])
		pushed := false
		for int(f.child) < t.branch {
			c := first + int(f.child)
			f.child++
			if c >= width {
				f.child = int32(t.branch)
				break
			}
			n := &t.levels[childLevel][c]
			if n.count.Load() == 0 {
				continue
			}
			p.nodes++
			if childLevel == 0 {
				if p.hasKey(n.key.Load()) {
					p.cands++
					return c, true
				}
				continue
			}
			if p.matchesAny(n) {
				p.stack = append(p.stack, probeFrame{level: int32(childLevel), pos: int32(c), child: 0})
				pushed = true
				break
			}
		}
		// Never pop the frame a push just placed on top (see Probe.Next).
		if !pushed {
			p.stack = p.stack[:len(p.stack)-1]
		}
	}
	return 0, false
}

// Nodes returns how many tree nodes the query has visited so far.
//
//bfgts:allocfree
func (p *AtomicProbe) Nodes() int { return p.nodes }

// Candidates returns how many candidate slots the query has returned.
//
//bfgts:allocfree
func (p *AtomicProbe) Candidates() int { return p.cands }

// matchesAny tests the suspect keys against the node's published buffer.
//
//bfgts:allocfree
//bfgts:seqlock-pub cur
func (p *AtomicProbe) matchesAny(n *atomicNode) bool {
	f := n.pair[n.cur.Load()]
	for _, k := range p.keys {
		if f.Test(k) {
			return true
		}
	}
	return false
}

// hasKey binary-searches the (ascending) suspect keys for an exact match.
//
//bfgts:allocfree
func (p *AtomicProbe) hasKey(key uint64) bool {
	lo, hi := 0, len(p.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(p.keys) && p.keys[lo] == key
}
