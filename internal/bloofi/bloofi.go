// Package bloofi implements a Bloofi-style hierarchical signature
// directory (Crainiceanu & Lemire, "Bloofi: Multidimensional Bloom
// Filters") over the running-transaction set: a fixed-capacity B-ary tree
// whose leaves are per-slot Bloom filters and whose interior nodes hold
// the bitwise OR of their children. A membership probe descends only the
// subtrees whose aggregate filter intersects the query, turning the
// begin-time "scan every running transaction" walk of the paper's
// Example 1 into an O(log n) descent when conflicts are sparse.
//
// The directory indexes *identity keys*, not full read/write-set
// signatures: each occupied leaf holds exactly one key naming the
// transaction running on that slot (the folded static ID for the
// simulator's confidence table, the dynamic ID for PTS's per-dTxID
// graph). A begin-time probe first computes the exact suspect set — the
// keys whose learned confidence against the beginning transaction clears
// the threshold — and then asks the tree which occupied slots hold any
// suspect key. Because a leaf surely contains its own key and interior
// aggregates are pure ORs, the probe has no false negatives; interior
// false positives only cost extra descent, and the leaf level compares
// keys exactly, so the candidate slots returned are precisely the slots
// a linear scan would have matched — in the same ascending-slot order.
// That is what lets the simulator keep its results byte-identical to the
// linear scan while the host does sub-linear work.
//
// Two variants share the geometry:
//
//   - Tree is single-goroutine and deterministic (plain bloom.Filter
//     nodes, pooled in a preallocated arena with a free list). The
//     simulator uses it; insert, remove-with-repair and probe are
//     0 allocs/op (//bfgts:allocfree, gated by TestBloofiAllocFree).
//   - AtomicTree is the live-STM variant: a fully materialized tree of
//     double-buffered bloom.AtomicFilter pairs. Inserts OR key bits into
//     both buffers lock-free; remove-with-repair rebuilds the spare
//     buffer under a per-node spinlock and flips it live, mirroring the
//     sigSlot idiom in internal/stm; probes are lock-free reads of the
//     published buffer. Races are benign by construction: a probe racing
//     a repair may miss a candidate or surface a stale one, and every
//     consumer re-verifies candidates against the authoritative running
//     set and confidence table — a wrong answer costs a suboptimal
//     scheduling decision, never a correctness violation.
package bloofi

import "repro/internal/bloom"

// Config sizes a directory.
type Config struct {
	// Capacity is the number of leaf slots (CPUs in the simulator,
	// worker slots in the live STM). Slots are addressed [0, Capacity).
	Capacity int
	// Branch is the tree fan-out (default 8).
	Branch int
	// Bits sizes each node's filter (default 256). Directory filters
	// index identity keys — a handful of distinct values per subtree —
	// so they can be far smaller than read/write-set signatures.
	Bits int
	// Hashes is the hash-function count per filter (default
	// bloom.DefaultHashes).
	Hashes int
}

func (c Config) withDefaults() Config {
	if c.Branch <= 1 {
		c.Branch = 8
	}
	if c.Bits == 0 {
		c.Bits = 256
	}
	if c.Hashes == 0 {
		c.Hashes = bloom.DefaultHashes
	}
	return c
}

// geometry computes the level sizes of a capacity-leaf Branch-ary tree:
// spans[l] is the number of leaf slots covered by one level-l node
// (Branch^l) and counts[l] the number of positions at level l, with
// level 0 the leaves and the last level a single root.
func (c Config) geometry() (spans, counts []int) {
	span, n := 1, c.Capacity
	for {
		spans = append(spans, span)
		counts = append(counts, n)
		if n == 1 {
			return spans, counts
		}
		span *= c.Branch
		n = (n + c.Branch - 1) / c.Branch
	}
}
