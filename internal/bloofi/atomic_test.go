package bloofi

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bloom"
)

// drainAtomic runs an AtomicProbe to exhaustion.
func drainAtomic(p *AtomicProbe, keys []uint64) []int {
	p.Reset(keys)
	var out []int
	for {
		slot, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, slot)
	}
}

func atomicFiltersEqual(a, b *bloom.AtomicFilter) bool {
	return a.PopCount() == b.PopCount() && a.UnionPopCount(b) == a.PopCount()
}

// checkAtomicTreeQuiescent verifies the structural contract of an
// AtomicTree with no concurrent mutators: every node's count equals its
// subtree occupancy and its *published* aggregate is exactly the OR of
// the occupant keys — repairs left no stale bits behind.
func checkAtomicTreeQuiescent(t *testing.T, tr *AtomicTree, occ oracle) {
	t.Helper()
	bits := tr.levels[0][0].pair[0].Bits()
	hashes := tr.levels[0][0].pair[0].Hashes()
	want := bloom.NewAtomicFilter(bits, hashes)
	for l := range tr.levels {
		for pos := range tr.levels[l] {
			n := &tr.levels[l][pos]
			lo, hi := pos*tr.span[l], (pos+1)*tr.span[l]
			cnt := 0
			want.Reset()
			for slot, key := range occ {
				if slot >= lo && slot < hi {
					cnt++
					want.Add(key)
				}
			}
			if int(n.count.Load()) != cnt {
				t.Fatalf("level %d pos %d: count %d, want %d", l, pos, n.count.Load(), cnt)
			}
			if cnt == 0 {
				continue // empty nodes are pruned by count, bits may be stale only if unreachable
			}
			pub := n.pair[n.cur.Load()]
			if !atomicFiltersEqual(pub, want) {
				t.Fatalf("level %d pos %d: published aggregate has stale or missing bits (pop %d, want %d)",
					l, pos, pub.PopCount(), want.PopCount())
			}
		}
	}
}

// TestAtomicTreeMatchesTree drives identical sequential churn through the
// deterministic Tree and the concurrent AtomicTree: with a single
// goroutine the two variants must agree on every probe, occupancy bit and
// length.
func TestAtomicTreeMatchesTree(t *testing.T) {
	for _, cfg := range []Config{{Capacity: 1}, {Capacity: 9}, {Capacity: 64}, {Capacity: 50, Branch: 4}} {
		rng := rand.New(rand.NewSource(int64(cfg.Capacity)))
		det, conc := New(cfg), NewAtomicTree(cfg)
		dp, cp := NewProbe(det), NewAtomicProbe(conc)
		occ := oracle{}
		const keySpace = 12
		for op := 0; op < 500; op++ {
			slot := rng.Intn(cfg.Capacity)
			if det.Occupied(slot) && rng.Intn(2) == 0 {
				det.Remove(slot)
				conc.Clear(slot)
				delete(occ, slot)
			} else {
				key := uint64(rng.Intn(keySpace))
				det.Set(slot, key)
				conc.Set(slot, key)
				occ[slot] = key
			}
			if det.Len() != conc.Len() {
				t.Fatalf("cap %d op %d: Tree.Len=%d, AtomicTree.Len=%d", cfg.Capacity, op, det.Len(), conc.Len())
			}
			if det.Occupied(slot) != conc.Occupied(slot) {
				t.Fatalf("cap %d op %d: Occupied(%d) disagrees", cfg.Capacity, op, slot)
			}
			keys := suspectSet(rng, keySpace)
			got, want := drainAtomic(cp, keys), drain(dp, keys)
			if !slotsEqual(got, want) {
				t.Fatalf("cap %d op %d: AtomicProbe(%v) = %v, Tree probe %v", cfg.Capacity, op, keys, got, want)
			}
		}
		checkAtomicTreeQuiescent(t, conc, occ)
	}
}

// TestAtomicTreeRepairNoStaleBits churns Set/Clear sequentially and
// checks after every operation that the published aggregates carry no
// bits of removed keys — the concurrent remove-with-repair analog of
// TestTreeRemoveRepairsAggregates.
func TestAtomicTreeRepairNoStaleBits(t *testing.T) {
	cfg := Config{Capacity: 27, Branch: 3, Bits: 128}
	rng := rand.New(rand.NewSource(5))
	tr := NewAtomicTree(cfg)
	occ := oracle{}
	for op := 0; op < 300; op++ {
		slot := rng.Intn(cfg.Capacity)
		if tr.Occupied(slot) && rng.Intn(3) > 0 {
			tr.Clear(slot)
			delete(occ, slot)
		} else {
			key := uint64(rng.Intn(6))
			tr.Set(slot, key)
			occ[slot] = key
		}
		checkAtomicTreeQuiescent(t, tr, occ)
	}
}

// TestAtomicTreeConcurrentStress is the -race exercise of the live-STM
// contract: one mutator goroutine per slot range doing Set/Clear churn
// while prober goroutines query concurrently. During the storm probes
// must stay well-formed (ascending in-range slots, terminating); after
// the mutators quiesce, the tree must be exactly consistent with the
// final occupancy and probes must match the oracle again.
func TestAtomicTreeConcurrentStress(t *testing.T) {
	const (
		capacity  = 64
		mutators  = 8
		probers   = 4
		opsEach   = 2000
		keySpace  = 10
		slotsEach = capacity / mutators
	)
	tr := NewAtomicTree(Config{Capacity: capacity})
	const noKey = ^uint64(0)
	final := make([]uint64, capacity) // final key per slot, owner-written
	for i := range final {
		final[i] = noKey
	}
	var mutWg, probeWg sync.WaitGroup
	stop := make(chan struct{})

	for m := 0; m < mutators; m++ {
		mutWg.Add(1)
		go func(m int) {
			defer mutWg.Done()
			rng := rand.New(rand.NewSource(int64(m) + 1))
			base := m * slotsEach
			occupied := make([]bool, slotsEach)
			for i := 0; i < opsEach; i++ {
				s := rng.Intn(slotsEach)
				slot := base + s
				if occupied[s] && rng.Intn(3) == 0 {
					tr.Clear(slot)
					occupied[s] = false
					final[slot] = noKey
				} else {
					key := uint64(rng.Intn(keySpace))
					tr.Set(slot, key)
					occupied[s] = true
					final[slot] = key
				}
			}
		}(m)
	}
	for p := 0; p < probers; p++ {
		probeWg.Add(1)
		go func(p int) {
			defer probeWg.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			probe := NewAtomicProbe(tr)
			for {
				select {
				case <-stop:
					return
				default:
				}
				keys := suspectSet(rng, keySpace)
				prev := -1
				probe.Reset(keys)
				for {
					slot, ok := probe.Next()
					if !ok {
						break
					}
					if slot < 0 || slot >= capacity {
						t.Errorf("probe returned out-of-range slot %d", slot)
						return
					}
					if slot <= prev {
						t.Errorf("probe slots not ascending: %d after %d", slot, prev)
						return
					}
					prev = slot
				}
			}
		}(p)
	}

	mutWg.Wait()
	close(stop)
	probeWg.Wait()

	occ := oracle{}
	for slot, key := range final {
		if key != noKey {
			occ[slot] = key
		}
		if (key != noKey) != tr.Occupied(slot) {
			t.Fatalf("slot %d occupancy %v disagrees with owner's last write", slot, tr.Occupied(slot))
		}
	}
	checkAtomicTreeQuiescent(t, tr, occ)
	probe := NewAtomicProbe(tr)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		keys := suspectSet(rng, keySpace)
		if got, want := drainAtomic(probe, keys), occ.probe(keys); !slotsEqual(got, want) {
			t.Fatalf("post-quiescence probe(%v) = %v, oracle %v", keys, got, want)
		}
	}
}

// TestAtomicTreeAllocFree gates the live-STM hot path: a warmed-up
// Set/probe/Clear cycle performs zero heap allocations.
func TestAtomicTreeAllocFree(t *testing.T) {
	tr := NewAtomicTree(Config{Capacity: 64})
	probe := NewAtomicProbe(tr)
	keys := []uint64{1, 3, 5, 7}
	cycle := func() {
		for slot := 0; slot < 64; slot++ {
			tr.Set(slot, uint64(slot%8))
		}
		probe.Reset(keys)
		for {
			if _, ok := probe.Next(); !ok {
				break
			}
		}
		_ = probe.Nodes() + probe.Candidates() + tr.Len()
		for slot := 0; slot < 64; slot++ {
			tr.Clear(slot)
		}
	}
	cycle()
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("Set/probe/Clear cycle allocates %.1f times per run, want 0", n)
	}
}
