package bloofi

import (
	"fmt"
	"testing"
)

// benchCapacities mirrors the simulated-core counts of the scaling
// experiments: at 64 the tree is 3 levels, at 1024 it is 4-5, so the
// probe-vs-linear gap widens with each step.
var benchCapacities = []int{64, 256, 1024}

// fillLowOverlap occupies every slot with mostly-distinct keys plus a
// small shared tail, the regime the directory is built for: most probes
// prune whole subtrees, a few descend to real candidates.
func fillLowOverlap(set func(slot int, key uint64), capacity int) {
	for slot := 0; slot < capacity; slot++ {
		key := uint64(100 + slot)
		if slot%16 == 0 {
			key = uint64(slot % 4) // shared hot keys
		}
		set(slot, key)
	}
}

func BenchmarkTreeInsertRemove(b *testing.B) {
	for _, capacity := range benchCapacities {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			tr := New(Config{Capacity: capacity})
			fillLowOverlap(tr.Set, capacity)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % capacity
				tr.Remove(slot)
				tr.Insert(slot, uint64(i))
			}
		})
	}
}

func BenchmarkTreeProbe(b *testing.B) {
	for _, capacity := range benchCapacities {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			tr := New(Config{Capacity: capacity})
			fillLowOverlap(tr.Set, capacity)
			probe := NewProbe(tr)
			keys := []uint64{0, 2, 7} // two hot keys present, one absent
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				probe.Reset(keys)
				for {
					if _, ok := probe.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

func BenchmarkAtomicTreeSetClear(b *testing.B) {
	for _, capacity := range benchCapacities {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			tr := NewAtomicTree(Config{Capacity: capacity})
			fillLowOverlap(tr.Set, capacity)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % capacity
				tr.Clear(slot)
				tr.Insert(slot, uint64(i))
			}
		})
	}
}

func BenchmarkAtomicTreeProbe(b *testing.B) {
	for _, capacity := range benchCapacities {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			tr := NewAtomicTree(Config{Capacity: capacity})
			fillLowOverlap(tr.Set, capacity)
			keys := []uint64{0, 2, 7}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				probe := NewAtomicProbe(tr)
				for pb.Next() {
					probe.Reset(keys)
					for {
						if _, ok := probe.Next(); !ok {
							break
						}
					}
				}
			})
		})
	}
}
