package bloofi

import (
	"fmt"

	"repro/internal/bloom"
)

// node is one pooled tree node. Interior nodes aggregate (OR) the filters
// of their children; a leaf's filter contains exactly its occupant's
// identity key, also stored verbatim in key for exact comparison and
// repair.
type node struct {
	filter *bloom.Filter
	key    uint64 // leaf occupant's identity key (leaves only)
	count  int32  // occupied leaves in this subtree
}

// Tree is the deterministic, single-goroutine directory variant (see the
// package comment). Nodes live in a preallocated arena recycled through a
// free list: empty subtrees hold no node at all, insert materializes the
// path to a new leaf from the free list, and remove-with-repair returns
// emptied nodes to it — so the steady state allocates nothing and a
// probe never visits a node with an empty subtree.
type Tree struct {
	branch int
	// levels[l][pos] is the arena index of the node at position pos of
	// level l (level 0 = leaves, last level = root), or -1 while that
	// subtree is empty.
	levels [][]int32
	// span[l] is branch^l, the number of leaf slots under one level-l
	// node: the ancestor of slot s at level l sits at position s/span[l].
	span  []int
	arena []node
	free  []int32
}

// New builds an empty directory. The whole arena — one node per tree
// position, the worst case when every slot is occupied — is allocated
// here, so no later operation touches the allocator.
func New(cfg Config) *Tree {
	if cfg.Capacity <= 0 {
		panic("bloofi: Config.Capacity must be positive")
	}
	cfg = cfg.withDefaults()
	spans, counts := cfg.geometry()
	total := 0
	for _, n := range counts {
		total += n
	}
	t := &Tree{
		branch: cfg.Branch,
		levels: make([][]int32, len(counts)),
		span:   spans,
		arena:  make([]node, total),
		free:   make([]int32, 0, total),
	}
	for l, n := range counts {
		t.levels[l] = make([]int32, n)
		for i := range t.levels[l] {
			t.levels[l][i] = -1
		}
	}
	for i := range t.arena {
		t.arena[i].filter = bloom.NewFilter(cfg.Bits, cfg.Hashes)
		t.free = append(t.free, int32(i))
	}
	return t
}

// Capacity returns the number of leaf slots.
func (t *Tree) Capacity() int { return len(t.levels[0]) }

// Len returns the number of occupied slots.
//
//bfgts:allocfree
func (t *Tree) Len() int {
	root := t.levels[len(t.levels)-1][0]
	if root < 0 {
		return 0
	}
	return int(t.arena[root].count)
}

// Occupied reports whether a slot holds a key.
//
//bfgts:allocfree
func (t *Tree) Occupied(slot int) bool { return t.levels[0][slot] >= 0 }

// Key returns the identity key stored at an occupied slot.
func (t *Tree) Key(slot int) uint64 {
	li := t.levels[0][slot]
	if li < 0 {
		panic(fmt.Sprintf("bloofi: Key on empty slot %d", slot))
	}
	return t.arena[li].key
}

// alloc pops a pooled node from the free list. The arena covers every
// tree position, so exhaustion means the occupancy bookkeeping broke.
//
//bfgts:allocfree
func (t *Tree) alloc() int32 {
	n := len(t.free)
	if n == 0 {
		panic("bloofi: node pool exhausted")
	}
	ni := t.free[n-1]
	t.free = t.free[:n-1]
	return ni
}

// release clears a node's position and returns it — reset, so a pooled
// node can never leak bits into its next incarnation — to the free list.
//
//bfgts:allocfree
func (t *Tree) release(level, pos int) {
	ni := t.levels[level][pos]
	t.levels[level][pos] = -1
	n := &t.arena[ni]
	n.filter.Reset()
	n.key = 0
	n.count = 0
	t.free = append(t.free, ni)
}

// Insert places key at an empty slot, materializing the root-to-leaf path
// from the node pool and folding the key's bits into every node on it —
// the incremental Bloofi insert.
//
//bfgts:allocfree
func (t *Tree) Insert(slot int, key uint64) {
	if t.levels[0][slot] >= 0 {
		panic(fmt.Sprintf("bloofi: Insert on occupied slot %d", slot))
	}
	for l := len(t.levels) - 1; l >= 0; l-- {
		pos := slot / t.span[l]
		ni := t.levels[l][pos]
		if ni < 0 {
			ni = t.alloc()
			t.levels[l][pos] = ni
		}
		n := &t.arena[ni]
		n.filter.Add(key)
		n.count++
		if l == 0 {
			n.key = key
		}
	}
}

// Remove clears an occupied slot and repairs the path above it: each
// ancestor either empties (and returns to the node pool) or has its
// aggregate rebuilt as the OR of its remaining children — a full repair,
// not a lazy one, so no stale bits of the removed key survive anywhere.
//
//bfgts:allocfree
func (t *Tree) Remove(slot int) {
	if t.levels[0][slot] < 0 {
		panic(fmt.Sprintf("bloofi: Remove on empty slot %d", slot))
	}
	t.release(0, slot)
	for l := 1; l < len(t.levels); l++ {
		pos := slot / t.span[l]
		n := &t.arena[t.levels[l][pos]]
		n.count--
		if n.count == 0 {
			t.release(l, pos)
			continue
		}
		n.filter.Reset()
		first := pos * t.branch
		last := first + t.branch
		if m := len(t.levels[l-1]); last > m {
			last = m
		}
		for c := first; c < last; c++ {
			if ci := t.levels[l-1][c]; ci >= 0 {
				n.filter.UnionWith(t.arena[ci].filter)
			}
		}
	}
}

// Set makes slot hold key regardless of its current state: a no-op when
// the key is already there, otherwise remove-then-insert.
//
//bfgts:allocfree
func (t *Tree) Set(slot int, key uint64) {
	if li := t.levels[0][slot]; li >= 0 {
		if t.arena[li].key == key {
			return
		}
		t.Remove(slot)
	}
	t.Insert(slot, key)
}

// OccupiedBefore returns how many occupied slots have an index strictly
// below slot — an O(depth·branch) prefix count off the subtree counters,
// used to price what a linear scan would have walked.
//
//bfgts:allocfree
func (t *Tree) OccupiedBefore(slot int) int {
	n := 0
	for l := len(t.levels) - 1; l >= 1; l-- {
		first := (slot / t.span[l]) * t.branch
		stop := slot / t.span[l-1]
		for c := first; c < stop; c++ {
			if ci := t.levels[l-1][c]; ci >= 0 {
				n += int(t.arena[ci].count)
			}
		}
	}
	return n
}

// probeFrame is one suspended level of a probe's descent: the node at
// (level, pos) matched the suspect set, and child is the next child
// position to examine.
type probeFrame struct {
	level int32
	pos   int32
	child int32
}

// Probe is a reusable cursor over one Tree. Reset starts a query; Next
// returns candidate slots in ascending order. The cursor owns its stack
// (capacity = tree depth), so a query performs no allocation; a Tree may
// have any number of Probes, but the Tree and its Probes share one
// goroutine.
type Probe struct {
	t     *Tree
	keys  []uint64
	stack []probeFrame
	nodes int
	cands int
}

// NewProbe returns a cursor bound to t.
func NewProbe(t *Tree) *Probe {
	return &Probe{t: t, stack: make([]probeFrame, 0, len(t.levels))}
}

// Reset starts a new query for the given identity keys, which must be in
// ascending order (the leaf comparison binary-searches them). The slice
// is retained until the next Reset.
//
//bfgts:allocfree
func (p *Probe) Reset(keys []uint64) {
	p.keys = keys
	p.stack = p.stack[:0]
	p.nodes, p.cands = 0, 0
	if len(keys) == 0 {
		return
	}
	top := len(p.t.levels) - 1
	ri := p.t.levels[top][0]
	if ri < 0 {
		return
	}
	if top == 0 {
		// Single-slot tree: the root is the leaf; visit it via a
		// sentinel frame so Next's leaf handling stays uniform.
		p.stack = append(p.stack, probeFrame{level: 1, pos: 0, child: 0})
		return
	}
	p.nodes++
	if p.matchesAny(p.t.arena[ri].filter) {
		p.stack = append(p.stack, probeFrame{level: int32(top), pos: 0, child: 0})
	}
}

// Next resumes the descent and returns the next slot whose occupant's key
// is in the suspect set, in ascending slot order. ok is false when the
// probe is exhausted.
//
//bfgts:allocfree
func (p *Probe) Next() (slot int, ok bool) {
	t := p.t
	for len(p.stack) > 0 {
		f := &p.stack[len(p.stack)-1]
		childLevel := int(f.level) - 1
		first := int(f.pos) * t.branch
		width := len(t.levels[childLevel])
		pushed := false
		for int(f.child) < t.branch {
			c := first + int(f.child)
			f.child++
			if c >= width {
				f.child = int32(t.branch)
				break
			}
			ci := t.levels[childLevel][c]
			if ci < 0 {
				continue
			}
			n := &t.arena[ci]
			p.nodes++
			if childLevel == 0 {
				if p.hasKey(n.key) {
					p.cands++
					return c, true
				}
				continue
			}
			if p.matchesAny(n.filter) {
				p.stack = append(p.stack, probeFrame{level: int32(childLevel), pos: int32(c), child: 0})
				// Descend depth-first so candidates surface in slot order.
				pushed = true
				break
			}
		}
		// The loop exits either by pushing a matching child (descend into
		// it) or by exhausting the children (pop this frame) — never pop
		// the frame a push just placed on top.
		if !pushed {
			p.stack = p.stack[:len(p.stack)-1]
		}
	}
	return 0, false
}

// Nodes returns how many tree nodes the query has visited so far (the
// probe-depth signal surfaced in the metrics histograms).
//
//bfgts:allocfree
func (p *Probe) Nodes() int { return p.nodes }

// Candidates returns how many candidate slots the query has returned.
//
//bfgts:allocfree
func (p *Probe) Candidates() int { return p.cands }

// matchesAny reports whether any suspect key may be under this aggregate.
//
//bfgts:allocfree
func (p *Probe) matchesAny(f *bloom.Filter) bool {
	for _, k := range p.keys {
		if f.Test(k) {
			return true
		}
	}
	return false
}

// hasKey binary-searches the (ascending) suspect keys for an exact match,
// eliminating Bloom false positives at the leaf level.
//
//bfgts:allocfree
func (p *Probe) hasKey(key uint64) bool {
	lo, hi := 0, len(p.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(p.keys) && p.keys[lo] == key
}
