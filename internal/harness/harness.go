// Package harness maps every table and figure of the paper's evaluation
// (Section 5) to runnable experiments over the simulator: Table 1
// (conflict graphs and similarity), Table 4 (contention rates), Figure 4
// (speedup and improvement over PTS), Figure 5 (time breakdown), Figure 6
// (Bloom-filter size sensitivity), the Section 5.3.2 similarity-interval
// sweep, and ablations for the design choices DESIGN.md calls out.
//
// Experiments return structured Reports that the CLI renders as ASCII and
// the test suite asserts shape properties against.
package harness

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config scales and seeds a whole experiment.
type Config struct {
	Cores          int
	ThreadsPerCore int
	Seed           uint64
	// Scale multiplies every benchmark's transaction count; use < 1 for
	// quick runs (benchmarks, CI).
	Scale float64
	// Workers bounds how many simulations may execute concurrently when
	// experiments fan out (RunAll, MultiSeed, warm passes). 0 means
	// runtime.NumCPU(); 1 serializes all compute.
	Workers int
	// NoBatch runs every simulation on the legacy one-event-per-access
	// engine path instead of horizon-batched execution. Output is
	// cycle-identical either way; the switch exists for differential
	// testing and bisection.
	NoBatch bool
	// NoBloofi runs every simulation with the Bloofi signature directory
	// disabled, using the literal linear begin-time scans. Output is
	// byte-identical either way; the switch exists for differential
	// testing and bisection.
	NoBloofi bool
	// Shards splits every simulation into that many concurrently
	// synchronized engine/directory shards (sim.RunConfig.Shards). Output
	// is byte-identical at any shard count; the knob trades single-run
	// wall-clock for shard coordination. 0 or 1 means unsharded.
	Shards int
	// Progress, if non-nil, receives one line per simulation as it
	// finishes (cache hits are silent). It may be called from multiple
	// goroutines concurrently.
	Progress func(line string)
}

// DefaultConfig is the paper's machine: 16 CPUs, 64 threads.
func DefaultConfig() Config {
	return Config{Cores: 16, ThreadsPerCore: 4, Seed: 1, Scale: 1.0}
}

// ManagerSpec names a contention-manager configuration.
type ManagerSpec struct {
	Name      string
	BloomBits int // 0 where not applicable
	New       func(env sched.Env) sched.Manager
}

// bfgtsSpec builds a BFGTS variant spec with a given Bloom size and
// similarity interval.
func bfgtsSpec(mode sched.BFGTSMode, bloomBits, simInterval int) ManagerSpec {
	name := mode.String()
	if bloomBits != 0 {
		name = fmt.Sprintf("%s/%db", name, bloomBits)
	}
	return ManagerSpec{
		Name:      name,
		BloomBits: bloomBits,
		New: func(env sched.Env) sched.Manager {
			cfg := core.DefaultConfig(env.NumThreads, env.NumStatic)
			if bloomBits != 0 {
				cfg.BloomBits = bloomBits
			}
			if simInterval != 0 {
				cfg.SimInterval = simInterval
			}
			return sched.NewBFGTS(env, mode, cfg)
		},
	}
}

// BaselineSpecs are the non-BFGTS managers.
func BaselineSpecs() []ManagerSpec {
	return []ManagerSpec{
		{Name: "Backoff", New: func(env sched.Env) sched.Manager { return sched.NewBackoff(env) }},
		{Name: "PTS", New: func(env sched.Env) sched.Manager { return sched.NewPTS(env) }},
		{Name: "ATS", New: func(env sched.Env) sched.Manager { return sched.NewATS(env) }},
	}
}

// PerThreadBackoffSpec is the shard-safe Backoff variant (per-thread
// jitter streams). It is kept out of BaselineSpecs so the pinned baseline
// reports are unchanged; the wide experiment and the sharded differential
// gates use it where fully-partitioned execution matters.
func PerThreadBackoffSpec() ManagerSpec {
	return ManagerSpec{
		Name: "Backoff-PT",
		New:  func(env sched.Env) sched.Manager { return sched.NewPerThreadBackoff(env) },
	}
}

// BloomSizes is the paper's sweep range.
var BloomSizes = []int{512, 1024, 2048, 4096, 8192}

// runKey identifies a simulation for the in-process cache.
type runKey struct {
	bench    string
	manager  string
	cores    int
	tpc      int
	seed     uint64
	scale    float64
	profile  bool
	noBatch  bool
	noBloofi bool
	shards   int
}

// cacheEntry is one memoized simulation. The first caller of a runKey
// (the leader) allocates the entry, runs the simulation, and closes done;
// concurrent callers of the same key block on done and share the result —
// a singleflight memo, so racing experiments never duplicate a cell.
type cacheEntry struct {
	done chan struct{}
	res  *sim.Result
}

// decCacheEntry is one memoized decision-traced simulation: the result
// plus its decision set, which is read-only once done closes and so safe
// to share across experiments.
type decCacheEntry struct {
	done chan struct{}
	res  *sim.Result
	set  *decision.Set
}

// Runner executes and caches simulations for one experiment session.
// All methods are safe for concurrent use.
type Runner struct {
	cfg  Config
	pool *Pool

	mu       sync.Mutex
	cache    map[runKey]*cacheEntry
	decCache map[runKey]*decCacheEntry
}

// NewRunner returns a fresh experiment session with its own worker pool
// sized from cfg.Workers.
func NewRunner(cfg Config) *Runner {
	return newRunnerPool(cfg, NewPool(cfg.Workers))
}

// newRunnerPool builds a session that shares an existing pool — used by
// MultiSeed so per-seed sessions contend for one global compute budget.
func newRunnerPool(cfg Config, pool *Pool) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	return &Runner{
		cfg:      cfg,
		pool:     pool,
		cache:    make(map[runKey]*cacheEntry),
		decCache: make(map[runKey]*decCacheEntry),
	}
}

// Run simulates one (benchmark, manager) cell, memoizing by configuration.
func (r *Runner) Run(f workload.Factory, m ManagerSpec, profile bool) *sim.Result {
	return r.runAt(f, m, r.cfg.Cores, r.cfg.ThreadsPerCore, profile)
}

// RunTraced simulates one cell with an event trace attached (uncached).
func (r *Runner) RunTraced(f workload.Factory, m ManagerSpec, rec *trace.Recorder) *sim.Result {
	return r.RunInstrumented(f, m, rec, nil)
}

// RunInstrumented simulates one cell with an optional event trace and an
// optional metrics registry attached. Instrumented runs bypass the memo
// cache: their observers are caller-owned, so sharing a cached result
// would silently drop the instrumentation.
func (r *Runner) RunInstrumented(f workload.Factory, m ManagerSpec, rec *trace.Recorder, reg *metrics.Registry) *sim.Result {
	if rec == nil && reg == nil {
		return r.Run(f, m, false)
	}
	var res *sim.Result
	r.pool.do(func() {
		w := f.New(scaledTxs(f, r.cfg.Scale))
		res = sim.NewRunner(sim.RunConfig{
			Cores:          r.cfg.Cores,
			ThreadsPerCore: r.cfg.ThreadsPerCore,
			Seed:           r.cfg.Seed,
			Workload:       w,
			NewManager:     m.New,
			// Exact-set profiling feeds the bloom.est_error summary; it
			// costs host time, not simulated cycles. It reads every
			// thread's sets across the whole machine, so it is a global
			// observer that would force a sharded run back to the
			// entangled path — when the caller explicitly asked for the
			// sharded engine, prefer the engine: shard-safe configs then
			// take the partitioned path and the snapshot carries the
			// sim.shard.* instruments instead of bloom.est_error.
			ProfileSimilarity: reg != nil && r.cfg.Shards <= 1,
			MaxCycles:         100_000_000_000,
			Trace:             rec,
			Metrics:           reg,
			NoBatch:           r.cfg.NoBatch,
			NoBloofi:          r.cfg.NoBloofi,
			Shards:            r.cfg.Shards,
		}).Run()
	})
	res.ManagerName = m.Name
	return res
}

// RunDecisions simulates one cell with a decision trace attached and
// returns both the result and the merged-ready decision set. Decision
// runs are memoized in their own singleflight cache (decision recording
// is observer-only, so the result matches the plain cell cycle for
// cycle); the returned set is read-only and shared — callers must not
// Reset its shards.
func (r *Runner) RunDecisions(f workload.Factory, m ManagerSpec) (*sim.Result, *decision.Set) {
	key := runKey{f.Name(), m.Name, r.cfg.Cores, r.cfg.ThreadsPerCore, r.cfg.Seed, r.cfg.Scale, false, r.cfg.NoBatch, r.cfg.NoBloofi, r.cfg.Shards}
	r.mu.Lock()
	if e, ok := r.decCache[key]; ok {
		r.mu.Unlock()
		<-e.done
		return e.res, e.set
	}
	e := &decCacheEntry{done: make(chan struct{})}
	r.decCache[key] = e
	r.mu.Unlock()
	defer close(e.done)
	r.pool.do(func() {
		w := f.New(scaledTxs(f, r.cfg.Scale))
		set := decision.NewSet(r.cfg.Cores*r.cfg.ThreadsPerCore, 0)
		res := sim.NewRunner(sim.RunConfig{
			Cores:          r.cfg.Cores,
			ThreadsPerCore: r.cfg.ThreadsPerCore,
			Seed:           r.cfg.Seed,
			Workload:       w,
			NewManager:     m.New,
			MaxCycles:      100_000_000_000,
			Decisions:      set,
			NoBatch:        r.cfg.NoBatch,
			NoBloofi:       r.cfg.NoBloofi,
			Shards:         r.cfg.Shards,
		}).Run()
		res.ManagerName = m.Name
		e.res, e.set = res, set
	})
	return e.res, e.set
}

// ReplayFlips runs the counterfactual replayer on one cell: a decision-
// traced base run plus one full re-run per sampled begin decision with
// that decision inverted (sim.ReplayFlips). Replay re-simulates the
// window up to maxFlips+1 times, so it is uncached and pool-bounded as
// one long job.
func (r *Runner) ReplayFlips(f workload.Factory, m ManagerSpec, maxFlips int) *sim.ReplayResult {
	var out *sim.ReplayResult
	r.pool.do(func() {
		w := f.New(scaledTxs(f, r.cfg.Scale))
		out = sim.ReplayFlips(sim.RunConfig{
			Cores:          r.cfg.Cores,
			ThreadsPerCore: r.cfg.ThreadsPerCore,
			Seed:           r.cfg.Seed,
			Workload:       w,
			NewManager:     m.New,
			MaxCycles:      100_000_000_000,
			NoBatch:        r.cfg.NoBatch,
			NoBloofi:       r.cfg.NoBloofi,
			Shards:         r.cfg.Shards,
		}, maxFlips)
	})
	out.Base.ManagerName = m.Name
	return out
}

// Baseline simulates the single-core, single-thread reference run that
// Figure 4(a) speedups normalize against.
func (r *Runner) Baseline(f workload.Factory) *sim.Result {
	return r.runAt(f, BaselineSpecs()[0], 1, 1, false)
}

func (r *Runner) runAt(f workload.Factory, m ManagerSpec, cores, tpc int, profile bool) *sim.Result {
	key := runKey{f.Name(), m.Name, cores, tpc, r.cfg.Seed, r.cfg.Scale, profile, r.cfg.NoBatch, r.cfg.NoBloofi, r.cfg.Shards}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done // wait out an in-flight leader; closed == complete
		return e.res
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	defer close(e.done) // wake waiters even if the simulation panics
	r.pool.do(func() {
		w := f.New(scaledTxs(f, r.cfg.Scale))
		res := sim.NewRunner(sim.RunConfig{
			Cores:             cores,
			ThreadsPerCore:    tpc,
			Seed:              r.cfg.Seed,
			Workload:          w,
			NewManager:        m.New,
			ProfileSimilarity: profile,
			MaxCycles:         100_000_000_000,
			NoBatch:           r.cfg.NoBatch,
			NoBloofi:          r.cfg.NoBloofi,
			Shards:            r.cfg.Shards,
		}).Run()
		res.ManagerName = m.Name // keep the spec name (includes Bloom size)
		e.res = res
	})
	if r.cfg.Progress != nil {
		r.cfg.Progress(fmt.Sprintf("%-10s %-22s cores=%-2d tpc=%d seed=%d  %8.2f Mcycles",
			key.bench, key.manager, key.cores, key.tpc, key.seed, float64(e.res.Makespan)/1e6))
	}
	return e.res
}

func scaledTxs(f workload.Factory, scale float64) int {
	n := int(float64(f.Txs) * scale)
	if n < 64 {
		n = 64
	}
	return n
}

// Speedup returns the Figure 4(a) metric for a result against the
// benchmark's single-core baseline.
func (r *Runner) Speedup(f workload.Factory, res *sim.Result) float64 {
	base := r.Baseline(f)
	if res.Makespan == 0 {
		return 0
	}
	return float64(base.Makespan) / float64(res.Makespan)
}

// BestBloom runs the Bloom-size sweep for a BFGTS mode on one benchmark
// and returns the best-performing size and its result — the paper reports
// each BFGTS variant "with their optimal size Bloom filter".
func (r *Runner) BestBloom(f workload.Factory, mode sched.BFGTSMode) (int, *sim.Result) {
	bestBits := 0
	var best *sim.Result
	for _, bits := range BloomSizes {
		res := r.Run(f, bfgtsSpec(mode, bits, 0), false)
		if best == nil || res.Makespan < best.Makespan {
			best, bestBits = res, bits
		}
	}
	return bestBits, best
}
