package harness

import (
	"runtime"
	"sync"
)

// Pool bounds how many simulations execute concurrently. Fan-out layers
// (RunAll, MultiSeed, experiment warm passes) spawn goroutines freely;
// only the leaf simulation compute acquires a slot, so nesting fan-outs
// can never deadlock and the host stays at the configured width.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool with n slots; n <= 0 means runtime.NumCPU() and
// n == 1 serializes all compute.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Workers reports the slot count.
func (p *Pool) Workers() int { return cap(p.sem) }

// do runs fn in the calling goroutine once a slot frees up.
func (p *Pool) do(fn func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// fanOut runs every thunk in its own goroutine and waits for all of them.
// Thunks are expected to bottom out in pool-bounded simulation calls.
func fanOut(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}
