package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// exportBytes runs the speedup experiment on a fresh runner and encodes it.
func exportBytes(t *testing.T, cfg Config) []byte {
	t.Helper()
	e, ok := ExperimentByID("speedup")
	if !ok {
		t.Fatal("speedup alias not registered")
	}
	reports := RunAll(NewRunner(cfg), []Experiment{e})
	var buf bytes.Buffer
	if err := NewExport(cfg, reports).EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExportDeterministic pins the acceptance criterion: the speedup
// experiment's JSON export is byte-identical across two independent runs
// at the same seed.
func TestExportDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	a := exportBytes(t, cfg)
	b := exportBytes(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatalf("export not byte-identical across runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestExportRoundTrip checks the export parses back into the schema with
// everything intact.
func TestExportRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	data := exportBytes(t, cfg)
	var e Export
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if e.SchemaVersion != ExportSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", e.SchemaVersion, ExportSchemaVersion)
	}
	if e.Config.Cores != cfg.Cores || e.Config.Seed != cfg.Seed {
		t.Fatalf("config did not round-trip: %+v", e.Config)
	}
	if len(e.Reports) != 1 || e.Reports[0].ID != "fig4a" {
		t.Fatalf("reports = %+v", e.Reports)
	}
	rep := e.Reports[0]
	if len(rep.Rows) == 0 || len(rep.Values) == 0 {
		t.Fatal("empty rows or values after round trip")
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(rep.Columns))
		}
	}
	for k, v := range rep.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value %q = %v survived sanitization", k, v)
		}
	}
}

// TestExportSanitizesNonFinite checks NewExport scrubs NaN/Inf values.
func TestExportSanitizesNonFinite(t *testing.T) {
	rep := &Report{
		ID:      "x",
		Columns: []string{"a"},
		Rows:    [][]string{{"1"}},
		Values:  map[string]float64{"nan": math.NaN(), "inf": math.Inf(1), "ok": 2},
	}
	e := NewExport(DefaultConfig(), []*Report{rep})
	if v := e.Reports[0].Values["nan"]; v != 0 {
		t.Fatalf("nan -> %v, want 0", v)
	}
	if v := e.Reports[0].Values["inf"]; v != 0 {
		t.Fatalf("inf -> %v, want 0", v)
	}
	if v := e.Reports[0].Values["ok"]; v != 2 {
		t.Fatalf("ok -> %v, want 2", v)
	}
	var buf bytes.Buffer
	if err := e.EncodeJSON(&buf); err != nil {
		t.Fatalf("encode after sanitize: %v", err)
	}
}
