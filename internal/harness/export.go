package harness

import (
	"encoding/json"
	"io"
	"math"
)

// ExportSchemaVersion identifies the machine-readable output format.
// Bump it on any field rename or semantic change so downstream parsers
// can detect incompatibility instead of misreading.
const ExportSchemaVersion = 1

// Export is the machine-readable form of an experiment session: the
// configuration that produced it plus every report, values included. The
// encoding is deterministic — encoding/json sorts the Values maps by key,
// and non-finite floats are sanitized — so two runs at the same seed
// produce byte-identical files.
type Export struct {
	SchemaVersion int            `json:"schema_version"`
	Config        ExportConfig   `json:"config"`
	Reports       []ExportReport `json:"reports"`
}

// ExportConfig pins the session parameters the results depend on.
type ExportConfig struct {
	Cores          int     `json:"cores"`
	ThreadsPerCore int     `json:"threads_per_core"`
	Seed           uint64  `json:"seed"`
	Scale          float64 `json:"scale"`
}

// ExportReport mirrors Report with stable snake_case field names.
type ExportReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes,omitempty"`
	Values  map[string]float64 `json:"values,omitempty"`
}

// NewExport assembles the export view of a session's reports.
func NewExport(cfg Config, reports []*Report) *Export {
	e := &Export{
		SchemaVersion: ExportSchemaVersion,
		Config: ExportConfig{
			Cores:          cfg.Cores,
			ThreadsPerCore: cfg.ThreadsPerCore,
			Seed:           cfg.Seed,
			Scale:          cfg.Scale,
		},
	}
	for _, rep := range reports {
		er := ExportReport{
			ID:      rep.ID,
			Title:   rep.Title,
			Columns: rep.Columns,
			Rows:    rep.Rows,
			Notes:   rep.Notes,
		}
		if len(rep.Values) > 0 {
			er.Values = make(map[string]float64, len(rep.Values))
			for k, v := range rep.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				er.Values[k] = v
			}
		}
		e.Reports = append(e.Reports, er)
	}
	return e
}

// EncodeJSON writes the export as indented JSON.
func (e *Export) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
