package harness

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/stamp"
)

// quickRunner runs experiments at reduced scale so the suite stays fast;
// shape assertions below are robust to the scale.
func quickRunner() *Runner {
	cfg := DefaultConfig()
	cfg.Scale = 0.25
	return NewRunner(cfg)
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table4", "fig4a", "fig4b", "fig5", "fig6a", "fig6b", "sec532"} {
		if !ids[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
	if _, ok := ExperimentByID("fig4a"); !ok {
		t.Fatal("ExperimentByID failed")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("ExperimentByID invented an experiment")
	}
}

func TestRunnerCachesResults(t *testing.T) {
	r := quickRunner()
	f := stamp.All()[5] // ssca2: fastest
	a := r.Run(f, BaselineSpecs()[0], false)
	b := r.Run(f, BaselineSpecs()[0], false)
	if a != b {
		t.Fatal("identical runs not cached")
	}
}

func TestSpeedupBaselineIsSequential(t *testing.T) {
	r := quickRunner()
	f, _ := stamp.ByName("ssca2")
	base := r.Baseline(f)
	if base.Aborts != 0 {
		t.Fatalf("sequential baseline aborted %d times", base.Aborts)
	}
	par := r.Run(f, BaselineSpecs()[0], false)
	if sp := r.Speedup(f, par); sp < 4 {
		t.Fatalf("ssca2 16-core speedup = %.2f, want substantial", sp)
	}
}

// The paper's headline qualitative claims, asserted at quick scale.
func TestPaperShapeClaims(t *testing.T) {
	r := quickRunner()
	fig4a := Fig4a(r)
	v := fig4a.Values

	sp := func(bench, mgr string) float64 { return v["speedup_"+bench+"_"+mgr] }

	// Claim: Backoff collapses on the dense high-contention benchmarks.
	if sp("delaunay", "Backoff") > 0.8*sp("delaunay", "BFGTS-HW") {
		t.Errorf("Backoff not collapsing on delaunay: %.2f vs BFGTS-HW %.2f",
			sp("delaunay", "Backoff"), sp("delaunay", "BFGTS-HW"))
	}
	if sp("intruder", "Backoff") > 0.8*sp("intruder", "BFGTS-HW") {
		t.Errorf("Backoff not collapsing on intruder: %.2f vs BFGTS-HW %.2f",
			sp("intruder", "Backoff"), sp("intruder", "BFGTS-HW"))
	}

	// Claim: BFGTS-HW beats ATS by a large factor on delaunay (paper: 4.6x).
	if ratio := sp("delaunay", "BFGTS-HW") / sp("delaunay", "ATS"); ratio < 2 {
		t.Errorf("BFGTS-HW/ATS on delaunay = %.2fx, want large", ratio)
	}

	// Claim: BFGTS-HW beats PTS substantially on intruder (paper: 1.7x).
	if ratio := sp("intruder", "BFGTS-HW") / sp("intruder", "PTS"); ratio < 1.2 {
		t.Errorf("BFGTS-HW/PTS on intruder = %.2fx, want > 1.2", ratio)
	}

	// Claim: low-overhead managers win the near-zero-contention benchmark.
	if sp("ssca2", "Backoff") < sp("ssca2", "PTS") {
		t.Error("PTS should not beat Backoff on ssca2")
	}

	// Claim: average ordering PTS < BFGTS-HW <= hybrid family.
	if v["avg_BFGTS-HW"] <= v["avg_PTS"] {
		t.Errorf("BFGTS-HW average (%.2f) not above PTS (%.2f)", v["avg_BFGTS-HW"], v["avg_PTS"])
	}
	if v["avg_BFGTS-HW"] <= v["avg_BFGTS-SW"] {
		t.Errorf("hardware acceleration did not help: HW %.2f vs SW %.2f",
			v["avg_BFGTS-HW"], v["avg_BFGTS-SW"])
	}
	if v["avg_BFGTS-HW/Backoff"] <= v["avg_PTS"] {
		t.Error("hybrid average not above PTS")
	}
}

func TestTable4ShapeClaims(t *testing.T) {
	r := quickRunner()
	rep := Table4(r)
	v := rep.Values
	// Backoff contention ordering: dense benchmarks far above quiet ones.
	if v["cont_delaunay_Backoff"] < 30 {
		t.Errorf("delaunay backoff contention = %.1f%%, want high", v["cont_delaunay_Backoff"])
	}
	if v["cont_ssca2_Backoff"] > 1 {
		t.Errorf("ssca2 backoff contention = %.1f%%, want ~0", v["cont_ssca2_Backoff"])
	}
	// Scheduling reduces delaunay contention by a large factor.
	if v["cont_delaunay_BFGTS-HW"] > 0.7*v["cont_delaunay_Backoff"] {
		t.Errorf("BFGTS-HW did not reduce delaunay contention: %.1f%% vs %.1f%%",
			v["cont_delaunay_BFGTS-HW"], v["cont_delaunay_Backoff"])
	}
}

func TestTable1ShapeClaims(t *testing.T) {
	r := quickRunner()
	rep := Table1(r)
	v := rep.Values
	// Similarity spread in delaunay: the random-insert transaction (1) far
	// below the worklist transaction (3).
	if v["sim_delaunay_1"] > 0.3 {
		t.Errorf("delaunay tx1 similarity = %.2f, want low", v["sim_delaunay_1"])
	}
	if v["sim_delaunay_3"] < 0.6 {
		t.Errorf("delaunay tx3 similarity = %.2f, want high", v["sim_delaunay_3"])
	}
	// Intruder's dequeue repeats its cursor block.
	if v["sim_intruder_0"] < 0.5 {
		t.Errorf("intruder tx0 similarity = %.2f, want high", v["sim_intruder_0"])
	}
	// Genome's dedup wanders.
	if v["sim_genome_0"] > 0.35 {
		t.Errorf("genome tx0 similarity = %.2f, want low", v["sim_genome_0"])
	}
}

func TestFig5KernelBlowupForATS(t *testing.T) {
	r := quickRunner()
	rep := Fig5(r)
	v := rep.Values
	// The paper's Figure 5 signature: ATS's kernel share dwarfs BFGTS-HW's
	// on the dense benchmarks.
	if v["kernel_delaunay_ATS"] < 3*v["kernel_delaunay_BFGTS-HW"] {
		t.Errorf("ATS kernel time (%.3f) not dominating BFGTS-HW's (%.3f) on delaunay",
			v["kernel_delaunay_ATS"], v["kernel_delaunay_BFGTS-HW"])
	}
	// BFGTS-HW spends less scheduling time than BFGTS-SW.
	if v["sched_genome_BFGTS-HW"] >= v["sched_genome_BFGTS-SW"] {
		t.Errorf("HW scheduling share (%.3f) not below SW's (%.3f)",
			v["sched_genome_BFGTS-HW"], v["sched_genome_BFGTS-SW"])
	}
}

func TestBloomSweepRunsAllSizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	r := NewRunner(cfg)
	rep := Fig6a(r)
	for _, f := range stamp.All() {
		for _, bits := range BloomSizes {
			key := "speedup_" + f.Name() + "_" + itoa(bits)
			if rep.Values[key] <= 0 {
				t.Fatalf("missing sweep cell %s", key)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestBestBloomPicksFastest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	r := NewRunner(cfg)
	f, _ := stamp.ByName("ssca2")
	bits, best := r.BestBloom(f, sched.BFGTSHW)
	found := false
	for _, b := range BloomSizes {
		if b == bits {
			found = true
		}
		res := r.Run(f, bfgtsSpec(sched.BFGTSHW, b, 0), false)
		if res.Makespan < best.Makespan {
			t.Fatalf("BestBloom missed a faster size: %d beats %d", b, bits)
		}
	}
	if !found {
		t.Fatalf("BestBloom returned unknown size %d", bits)
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"A", "B"},
		Rows:    [][]string{{"r1", "v1"}, {"row2", "value2"}},
		Notes:   []string{"note"},
	}
	out := rep.Render()
	for _, want := range []string{"## x — demo", "A", "row2", "value2", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestScalingExperimentShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.15
	rep := AblScaling(NewRunner(cfg))
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 core counts", len(rep.Rows))
	}
	// At 16 cores the proactive scheduler must beat unmanaged backoff on
	// the dense benchmark.
	if rep.Values["speedup_16_BFGTS-HW/2048b"] <= rep.Values["speedup_16_Backoff"] {
		t.Fatalf("BFGTS-HW (%.2f) not above Backoff (%.2f) at 16 cores",
			rep.Values["speedup_16_BFGTS-HW/2048b"], rep.Values["speedup_16_Backoff"])
	}
}
