package harness

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// MultiSeed runs an experiment across n seeds (base, base+1, …) and
// aggregates every reported value into mean ± standard deviation — the
// variance disclosure behind EXPERIMENTS.md's cross-seed claims.
//
// Seeds execute concurrently over one pool sized from cfg.Workers (each
// seed gets its own cache session, since the seed is part of every run
// key), but aggregation always folds values in ascending seed order, so
// the report is byte-identical to a serial run.
func MultiSeed(exp Experiment, cfg Config, n int) *Report {
	if n < 1 {
		n = 1
	}
	pool := NewPool(cfg.Workers)
	reps := make([]*Report, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := newRunnerPool(c, pool)
			if exp.Warm != nil {
				exp.Warm(r)
			}
			reps[i] = exp.Run(r)
		}()
	}
	wg.Wait()
	agg := map[string]*stats.Summary{}
	for _, rep := range reps {
		for k, v := range rep.Values {
			s, ok := agg[k]
			if !ok {
				s = &stats.Summary{}
				agg[k] = s
			}
			s.Add(v)
		}
	}
	out := &Report{
		ID:      exp.ID + "-multiseed",
		Title:   fmt.Sprintf("%s across %d seeds (mean ± sd)", exp.Description, n),
		Columns: []string{"Value", "Mean", "StdDev", "Min", "Max"},
		Values:  map[string]float64{},
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		s := agg[k]
		out.Rows = append(out.Rows, []string{
			k,
			fmt.Sprintf("%.3f", s.Mean()),
			fmt.Sprintf("%.3f", s.StdDev()),
			fmt.Sprintf("%.3f", s.Min()),
			fmt.Sprintf("%.3f", s.Max()),
		})
		out.Values[k+"_mean"] = s.Mean()
		out.Values[k+"_sd"] = s.StdDev()
	}
	return out
}

// sortStrings is an insertion sort: key counts are small and this avoids
// widening the import set of a hot-path file.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
