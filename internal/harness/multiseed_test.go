package harness

import "testing"

func TestMultiSeedAggregates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.08
	exp, _ := ExperimentByID("table1")
	rep := MultiSeed(exp, cfg, 2)
	if len(rep.Rows) == 0 {
		t.Fatal("no aggregated rows")
	}
	// Every aggregated key exposes mean and sd.
	mean, ok := rep.Values["sim_intruder_0_mean"]
	if !ok {
		t.Fatal("missing aggregated mean for sim_intruder_0")
	}
	if mean <= 0 || mean > 1 {
		t.Fatalf("aggregated similarity mean = %v", mean)
	}
	if _, ok := rep.Values["sim_intruder_0_sd"]; !ok {
		t.Fatal("missing aggregated sd")
	}
}

func TestMultiSeedSingleSeedDegenerate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	exp, _ := ExperimentByID("table1")
	rep := MultiSeed(exp, cfg, 0) // clamped to 1
	for _, row := range rep.Rows {
		if row[2] != "0.000" { // sd of a single sample
			t.Fatalf("single-seed sd = %s for %s", row[2], row[0])
		}
	}
}
