package harness

import (
	"fmt"
	"strings"
)

// Report is a rendered experiment: a table plus machine-readable key
// values the tests assert against.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Values holds named scalar results, e.g. "avg_improvement_over_pts".
	Values map[string]float64
}

// Render formats the report as an ASCII table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				// Row wider than the header: emit the extra cells unpadded
				// instead of panicking on widths[i].
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}
