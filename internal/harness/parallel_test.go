package harness

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stamp"
)

func TestPoolSizing(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.NumCPU() {
		t.Fatalf("NewPool(0).Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := NewPool(3).Workers(); got != 3 {
		t.Fatalf("NewPool(3).Workers() = %d, want 3", got)
	}
}

// TestConcurrentRunnerCache hammers the memo cache from many goroutines
// (run under -race via scripts/check.sh): every caller of the same cell
// must get the identical *sim.Result pointer — the singleflight entry —
// and the cell must simulate exactly once.
func TestConcurrentRunnerCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	cfg.Workers = 8
	r := NewRunner(cfg)
	f, _ := stamp.ByName("ssca2")

	const goroutines = 16
	runs := make([]*sim.Result, goroutines)
	bases := make([]*sim.Result, goroutines)
	blooms := make([]*sim.Result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs[i] = r.Run(f, BaselineSpecs()[0], false)
			bases[i] = r.Baseline(f)
			_, blooms[i] = r.BestBloom(f, sched.BFGTSHW)
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if runs[i] != runs[0] {
			t.Fatal("concurrent Run calls returned distinct results for one cell")
		}
		if bases[i] != bases[0] {
			t.Fatal("concurrent Baseline calls returned distinct results")
		}
		if blooms[i] != blooms[0] {
			t.Fatal("concurrent BestBloom calls returned distinct best results")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// ssca2 baseline + 16-core Backoff + 5 bloom sizes — nothing duplicated.
	if want := 2 + len(BloomSizes); len(r.cache) != want {
		t.Fatalf("cache holds %d entries, want %d", len(r.cache), want)
	}
}

// TestParallelMatchesSerial is the determinism guarantee: running the
// full experiment registry through RunAll on an 8-slot pool must emit
// reports byte-identical to a serial (Workers=1, plain loop) run.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry determinism sweep")
	}
	scfg := DefaultConfig()
	scfg.Scale = 0.08
	scfg.Workers = 1
	serial := make([]*Report, 0, len(Experiments()))
	sr := NewRunner(scfg)
	for _, e := range Experiments() {
		serial = append(serial, e.Run(sr))
	}

	pcfg := scfg
	pcfg.Workers = 8
	parallel := RunAll(NewRunner(pcfg), Experiments())

	for i, e := range Experiments() {
		if !reflect.DeepEqual(serial[i].Values, parallel[i].Values) {
			t.Errorf("%s: parallel Values differ from serial", e.ID)
		}
		if serial[i].Render() != parallel[i].Render() {
			t.Errorf("%s: parallel render not byte-identical to serial", e.ID)
		}
	}
}

// TestMultiSeedParallelMatchesSerial pins the same guarantee for the
// seed fan-out: concurrent seeds aggregate in seed order.
func TestMultiSeedParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.08
	exp, _ := ExperimentByID("table1")

	cfg.Workers = 1
	serial := MultiSeed(exp, cfg, 3)
	cfg.Workers = 8
	parallel := MultiSeed(exp, cfg, 3)

	if !reflect.DeepEqual(serial.Values, parallel.Values) {
		t.Error("multi-seed parallel Values differ from serial")
	}
	if serial.Render() != parallel.Render() {
		t.Error("multi-seed parallel render not byte-identical to serial")
	}
}

// TestRunAllPreservesOrder checks reports come back in registry order,
// not completion order.
func TestRunAllPreservesOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	exps := []Experiment{
		mustExperiment(t, "abl-scaling"),
		mustExperiment(t, "fig6a"),
		mustExperiment(t, "table1"),
	}
	reps := RunAll(NewRunner(cfg), exps)
	for i, e := range exps {
		if reps[i] == nil || reps[i].ID != e.ID {
			t.Fatalf("report %d is %v, want id %s", i, reps[i], e.ID)
		}
	}
}

func mustExperiment(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := ExperimentByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	return e
}

// TestProgressReportsEachCellOnce: the progress hook fires once per
// simulated cell, never for cache hits, even under concurrent callers.
func TestProgressReportsEachCellOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	cfg.Workers = 4
	var mu sync.Mutex
	lines := 0
	cfg.Progress = func(string) {
		mu.Lock()
		lines++
		mu.Unlock()
	}
	r := NewRunner(cfg)
	f, _ := stamp.ByName("ssca2")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(f, BaselineSpecs()[0], false)
		}()
	}
	wg.Wait()
	if lines != 1 {
		t.Fatalf("progress fired %d times for one cell, want 1", lines)
	}
}

// TestReportRenderWideRow: rows wider than the header used to panic on
// widths[i]; now the overflow cells render unpadded.
func TestReportRenderWideRow(t *testing.T) {
	rep := &Report{
		ID:      "wide",
		Title:   "overflowing row",
		Columns: []string{"A", "B"},
		Rows:    [][]string{{"a", "b", "extra", "more"}},
	}
	out := rep.Render()
	for _, want := range []string{"extra", "more"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing overflow cell %q:\n%s", want, out)
		}
	}
}
