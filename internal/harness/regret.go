package harness

import (
	"fmt"

	"repro/internal/decision"
	"repro/internal/sched"
	"repro/internal/stamp"
)

// regretSpecs are the managers the regret report compares: the three
// baselines of Figure 4 plus the paper's headline BFGTS variant at its
// canonical 2048-bit Bloom size.
func regretSpecs() []ManagerSpec {
	return append(BaselineSpecs(), bfgtsSpec(sched.BFGTSHW, 2048, 0))
}

// warmRegret schedules every decision-traced cell the regret report needs.
func warmRegret(r *Runner) {
	var fns []func()
	for _, f := range stamp.All() {
		for _, m := range regretSpecs() {
			fns = append(fns, func() { r.RunDecisions(f, m) })
		}
	}
	fanOut(fns)
}

// Regret runs every (benchmark, manager) cell with the decision trace
// attached and folds the stream through the estimated-regret accountant:
// overcaution is cycles spent serialized behind enemies that never
// overlapped, undercaution is work thrown away by optimistic proceeds
// that aborted. Regret% normalizes their sum by the machine's total CPU
// time (cores x makespan), so managers with different makespans stay
// comparable.
func Regret(r *Runner) *Report {
	rep := &Report{
		ID:      "regret",
		Title:   "Decision regret per manager (over/under-caution Mcycles; regret as % of CPU time)",
		Columns: []string{"Benchmark", "Manager", "Decisions", "Ser%", "OverMcyc", "UnderMcyc", "StallMcyc", "Regret%"},
		Values:  map[string]float64{},
	}
	var droppedCells int
	for _, f := range stamp.All() {
		for _, m := range regretSpecs() {
			res, set := r.RunDecisions(f, m)
			g := decision.Estimate(set.Merge())
			if set.Dropped() > 0 {
				droppedCells++
			}
			cpu := float64(r.cfg.Cores) * float64(res.Makespan)
			regretPct := 0.0
			if cpu > 0 {
				regretPct = 100 * float64(g.Total()) / cpu
			}
			rep.Rows = append(rep.Rows, []string{
				f.Name(), m.Name,
				fmt.Sprintf("%d", g.Decisions),
				fmt.Sprintf("%.1f%%", 100*g.SerializeRate()),
				fmt.Sprintf("%.2f", float64(g.OvercautionCycles)/1e6),
				fmt.Sprintf("%.2f", float64(g.UndercautionCycles)/1e6),
				fmt.Sprintf("%.2f", float64(g.StallWaitCycles)/1e6),
				fmt.Sprintf("%.2f%%", regretPct),
			})
			key := f.Name() + "_" + m.Name
			rep.Values["regret_"+key] = regretPct
			rep.Values["serrate_"+key] = g.SerializeRate()
			rep.Values["over_"+key] = float64(g.OvercautionCycles)
			rep.Values["under_"+key] = float64(g.UndercautionCycles)
		}
	}
	if droppedCells > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%d cell(s) hit the per-thread recorder cap; their ledgers undercount late decisions", droppedCells))
	}
	return rep
}
