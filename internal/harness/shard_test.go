package harness

import (
	"bytes"
	"testing"
)

// shardExport runs a set of experiments at the given shard count and
// returns the full schema-versioned JSON export.
func shardExport(t *testing.T, shards int, ids ...string) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	cfg.Shards = shards
	r := NewRunner(cfg)
	var reports []*Report
	for _, id := range ids {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		if e.Warm != nil {
			e.Warm(r)
		}
		reports = append(reports, e.Run(r))
	}
	var buf bytes.Buffer
	if err := NewExport(cfg, reports).EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExportIdenticalAcrossShards is the harness-level sharding
// differential: the machine-readable export of the wide experiment (whose
// Backoff-PT cell takes the fully-partitioned path at shards 4) and a
// stamp-based experiment (always entangled) must be byte-identical at
// shards 1, 3 (non-dividing: everything entangled) and 4.
func TestExportIdenticalAcrossShards(t *testing.T) {
	ids := []string{"wide", "abl-scaling"}
	base := shardExport(t, 1, ids...)
	for _, shards := range []int{3, 4} {
		if got := shardExport(t, shards, ids...); !bytes.Equal(base, got) {
			t.Errorf("export at shards=%d differs from shards=1", shards)
		}
	}
}
