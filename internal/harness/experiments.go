package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/workload"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID          string
	Description string
	Run         func(r *Runner) *Report
	// Warm, if non-nil, schedules every independent simulation the
	// experiment will need concurrently over the runner's pool and waits
	// for them. Run then replays the cells from the memo cache in
	// presentation order, so parallel output is byte-identical to serial.
	// Experiments with cross-cell data dependencies (abl-warmstart) leave
	// it nil and run serially.
	Warm func(r *Runner)
}

// Experiments returns the registry, in the paper's presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Conflict graph and measured similarity per static transaction (Table 1)", Table1, warmTable1},
		{"table4", "Contention rates per contention manager (Table 4)", Table4, warmFig4},
		{"fig4a", "Speedup over one core, 7 managers x 7 benchmarks (Figure 4a)", Fig4a, warmFig4},
		{"fig4b", "Percent improvement over PTS (Figure 4b)", Fig4b, warmFig4},
		{"fig5", "Normalized execution-time breakdown (Figure 5)", Fig5, warmFig4},
		{"fig6a", "BFGTS-HW Bloom-filter size sensitivity (Figure 6a)", Fig6a, warmSweep(sched.BFGTSHW)},
		{"fig6b", "BFGTS-HW/Backoff Bloom-filter size sensitivity (Figure 6b)", Fig6b, warmSweep(sched.BFGTSHWBackoff)},
		{"sec532", "Small-transaction similarity-update interval sweep (Section 5.3.2)", Sec532, warmSec532},
		{"abl-reactive", "Reactive managers (Polite/Karma/Timestamp) vs proactive scheduling", AblReactive, warmReactive},
		{"abl-warmstart", "Ablation: warm-started confidence tables vs cold start", AblWarmStart, nil},
		{"abl-scaling", "Core-count scaling of Backoff vs PTS vs BFGTS-HW on a dense benchmark", AblScaling, warmScaling},
		{"abl-alias", "Ablation: confidence-table aliasing (paper's future-work scheme)", AblAliasing, warmAliasing},
		{"abl-suspend", "Ablation: spin-vs-yield suspend policy (Example 2's size test)", AblSuspend, warmSuspend},
		{"regret", "Per-manager decision-regret accounting (overcaution vs undercaution)", Regret, warmRegret},
		{"wide", "Dense many-core benchmark for sharded simulation (integer-exact at any -shards)", Wide, warmWide},
	}
}

// WideFactory builds the wide benchmark at a given machine geometry. Unlike
// the stamp factories, the workload's address layout depends on the core
// count (per-core private regions plus a shared read-only region), so the
// factory is constructed per configuration rather than registered globally.
func WideFactory(cores, tpc int) workload.Factory {
	return workload.NewFactory("wide", 100_000, func(totalTxs int) workload.Workload {
		return workload.NewWide(cores, tpc, totalTxs)
	})
}

// wideSpecs are the managers the wide experiment compares: the shared-rand
// Backoff baseline (entangled at shards>1), its shard-safe per-thread
// variant (fully partitioned), and the reactive/proactive schedulers.
func wideSpecs() []ManagerSpec {
	return []ManagerSpec{
		BaselineSpecs()[0],
		PerThreadBackoffSpec(),
		BaselineSpecs()[2],
		bfgtsSpec(sched.BFGTSHW, 2048, 0),
	}
}

// Wide reports the dense wide benchmark used by the sharded-simulation
// gates. Every reported value derives from integers (makespan, commit and
// abort counts, and their ratio), so the report is byte-identical at any
// -shards setting; the attempts-per-commit mean is deliberately excluded —
// its Welford merge order differs across shard counts by ULPs (see
// sim.Result.AttemptsPerCommit).
func Wide(r *Runner) *Report {
	rep := &Report{
		ID: "wide",
		Title: fmt.Sprintf("Dense wide benchmark (%d cores, %d threads/core)",
			r.cfg.Cores, r.cfg.ThreadsPerCore),
		Columns: []string{"Manager", "Makespan", "Commits", "Aborts", "Contention"},
		Values:  map[string]float64{},
	}
	f := WideFactory(r.cfg.Cores, r.cfg.ThreadsPerCore)
	for _, m := range wideSpecs() {
		res := r.Run(f, m, false)
		rep.Rows = append(rep.Rows, []string{
			m.Name,
			fmt.Sprintf("%d", res.Makespan),
			fmt.Sprintf("%d", res.Commits),
			fmt.Sprintf("%d", res.Aborts),
			fmt.Sprintf("%.1f%%", res.ContentionPct()),
		})
		rep.Values["makespan_"+m.Name] = float64(res.Makespan)
		rep.Values["commits_"+m.Name] = float64(res.Commits)
		rep.Values["aborts_"+m.Name] = float64(res.Aborts)
		rep.Values["cont_"+m.Name] = res.ContentionPct()
	}
	return rep
}

// warmWide schedules the wide experiment's cells.
func warmWide(r *Runner) {
	f := WideFactory(r.cfg.Cores, r.cfg.ThreadsPerCore)
	var fns []func()
	for _, m := range wideSpecs() {
		fns = append(fns, func() { r.Run(f, m, false) })
	}
	fanOut(fns)
}

// RunAll executes experiments concurrently against one shared runner —
// the singleflight cache dedupes cells shared across experiments (Fig4b
// re-derives Fig4a; Table 4 and Figure 5 reuse the Figure 4 matrix) —
// and returns reports in input order, byte-identical to a serial loop.
func RunAll(r *Runner, exps []Experiment) []*Report {
	reports := make([]*Report, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e.Warm != nil {
				e.Warm(r)
			}
			reports[i] = e.Run(r)
		}()
	}
	wg.Wait()
	return reports
}

// warmTable1 schedules Table 1's profiled baseline runs.
func warmTable1(r *Runner) {
	var fns []func()
	for _, f := range stamp.All() {
		fns = append(fns, func() { r.Run(f, BaselineSpecs()[0], true) })
	}
	fanOut(fns)
}

// bfgtsSweepModes are the BFGTS variants Figure 4 resolves via BestBloom.
var bfgtsSweepModes = []sched.BFGTSMode{sched.BFGTSSW, sched.BFGTSHW, sched.BFGTSHWBackoff}

// warmFig4 schedules the full Figure 4 cell matrix: per benchmark the
// one-core baseline, the three reactive baselines, every (mode, Bloom
// size) sweep point behind BestBloom, and the no-overhead bound.
func warmFig4(r *Runner) {
	var fns []func()
	for _, f := range stamp.All() {
		fns = append(fns, func() { r.Baseline(f) })
		for _, m := range BaselineSpecs() {
			fns = append(fns, func() { r.Run(f, m, false) })
		}
		for _, mode := range bfgtsSweepModes {
			for _, bits := range BloomSizes {
				fns = append(fns, func() { r.Run(f, bfgtsSpec(mode, bits, 0), false) })
			}
		}
		fns = append(fns, func() { r.Run(f, bfgtsSpec(sched.BFGTSNoOverhead, 0, 0), false) })
	}
	fanOut(fns)
}

// warmSweep schedules one BFGTS mode's Bloom-size sweep plus baselines.
func warmSweep(mode sched.BFGTSMode) func(r *Runner) {
	return func(r *Runner) {
		var fns []func()
		for _, f := range stamp.All() {
			fns = append(fns, func() { r.Baseline(f) })
			for _, bits := range BloomSizes {
				fns = append(fns, func() { r.Run(f, bfgtsSpec(mode, bits, 0), false) })
			}
		}
		fanOut(fns)
	}
}

// warmSec532 schedules the similarity-interval sweep cells.
func warmSec532(r *Runner) {
	var fns []func()
	for _, f := range stamp.All() {
		fns = append(fns, func() { r.Baseline(f) })
		fns = append(fns, func() { r.Run(f, BaselineSpecs()[1], false) })
		for _, interval := range []int{1, 10, 20} {
			for _, bits := range BloomSizes {
				fns = append(fns, func() { r.Run(f, bfgtsSpecInterval(bits, interval), false) })
			}
		}
	}
	fanOut(fns)
}

// warmReactive schedules the reactive-manager comparison cells.
func warmReactive(r *Runner) {
	var fns []func()
	for _, f := range stamp.All() {
		fns = append(fns, func() { r.Baseline(f) })
		for _, m := range ReactiveSpecs() {
			fns = append(fns, func() { r.Run(f, m, false) })
		}
		fns = append(fns, func() { r.Run(f, bfgtsSpec(sched.BFGTSHW, 2048, 0), false) })
	}
	fanOut(fns)
}

// warmScaling schedules the core-count sweep cells.
func warmScaling(r *Runner) {
	f, _ := stamp.ByName("delaunay")
	fns := []func(){func() { r.Baseline(f) }}
	for _, m := range scalingSpecs() {
		for _, cores := range scalingCores {
			fns = append(fns, func() { r.runAt(f, m, cores, r.cfg.ThreadsPerCore, false) })
		}
	}
	fanOut(fns)
}

// warmAliasing schedules the aliasing ablation cells.
func warmAliasing(r *Runner) {
	var fns []func()
	for _, f := range stamp.All() {
		fns = append(fns, func() { r.Baseline(f) })
		fns = append(fns, func() { r.Run(f, bfgtsSpec(sched.BFGTSHW, 2048, 0), false) })
		fns = append(fns, func() { r.Run(f, aliasedSpec(), false) })
	}
	fanOut(fns)
}

// warmSuspend schedules the suspend-policy ablation cells.
func warmSuspend(r *Runner) {
	var fns []func()
	for _, f := range stamp.All() {
		fns = append(fns, func() { r.Baseline(f) })
		fns = append(fns, func() { r.Run(f, bfgtsSpec(sched.BFGTSHW, 2048, 0), false) })
		fns = append(fns, func() { r.Run(f, alwaysYieldSpec(), false) })
	}
	fanOut(fns)
}

// experimentAliases maps friendly names onto registry IDs.
var experimentAliases = map[string]string{
	"speedup": "fig4a",
}

// ExperimentByID finds an experiment by ID or alias.
func ExperimentByID(id string) (Experiment, bool) {
	if canonical, ok := experimentAliases[id]; ok {
		id = canonical
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fig4Specs returns the seven managers of Figure 4, resolving each BFGTS
// variant to its best Bloom size per benchmark (the paper reports optimal
// sizes). The returned closure runs one cell.
func fig4Cell(r *Runner, f workload.Factory, name string) *sim.Result {
	switch name {
	case "Backoff", "PTS", "ATS":
		for _, m := range BaselineSpecs() {
			if m.Name == name {
				return r.Run(f, m, false)
			}
		}
	case "BFGTS-SW":
		_, res := r.BestBloom(f, sched.BFGTSSW)
		return res
	case "BFGTS-HW":
		_, res := r.BestBloom(f, sched.BFGTSHW)
		return res
	case "BFGTS-HW/Backoff":
		_, res := r.BestBloom(f, sched.BFGTSHWBackoff)
		return res
	case "BFGTS-NoOverhead":
		return r.Run(f, bfgtsSpec(sched.BFGTSNoOverhead, 0, 0), false)
	}
	panic("harness: unknown manager " + name)
}

// Fig4Managers is the manager order of Figure 4.
var Fig4Managers = []string{
	"Backoff", "PTS", "ATS",
	"BFGTS-SW", "BFGTS-HW", "BFGTS-HW/Backoff", "BFGTS-NoOverhead",
}

// Table1 reproduces the conflict-graph/similarity table.
func Table1(r *Runner) *Report {
	rep := &Report{
		ID:      "table1",
		Title:   "Conflict graph and per-sTx similarity (Backoff manager, exact Eq. 1 profiling)",
		Columns: []string{"Benchmark", "Tx", "ConflictGraph", "Similarity"},
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		res := r.Run(f, BaselineSpecs()[0], true)
		n := len(res.ConflictMatrix)
		for s := 0; s < n; s++ {
			var peers []string
			for o := 0; o < n; o++ {
				if res.ConflictMatrix[s][o] > 0 {
					peers = append(peers, fmt.Sprintf("%d", o))
				}
			}
			bench := ""
			if s == 0 {
				bench = f.Name()
			}
			rep.Rows = append(rep.Rows, []string{
				bench, fmt.Sprintf("%d:", s), strings.Join(peers, " "),
				fmt.Sprintf("%.2f", res.Similarity[s]),
			})
			rep.Values[fmt.Sprintf("sim_%s_%d", f.Name(), s)] = res.Similarity[s]
		}
	}
	return rep
}

// Table4 reproduces the contention-rate table.
func Table4(r *Runner) *Report {
	rep := &Report{
		ID:      "table4",
		Title:   "Contention rates (% of transaction executions aborted)",
		Columns: append([]string{"Benchmark"}, Fig4Managers...),
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		row := []string{f.Name()}
		for _, m := range Fig4Managers {
			res := fig4Cell(r, f, m)
			row = append(row, fmt.Sprintf("%.1f%%", res.ContentionPct()))
			rep.Values[fmt.Sprintf("cont_%s_%s", f.Name(), m)] = res.ContentionPct()
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Fig4a reproduces the speedup-over-one-core chart.
func Fig4a(r *Runner) *Report {
	rep := &Report{
		ID:      "fig4a",
		Title:   "Speedup over one core (16 CPUs, 64 threads)",
		Columns: append([]string{"Benchmark"}, Fig4Managers...),
		Values:  map[string]float64{},
	}
	sums := make([]float64, len(Fig4Managers))
	for _, f := range stamp.All() {
		row := []string{f.Name()}
		for i, m := range Fig4Managers {
			sp := r.Speedup(f, fig4Cell(r, f, m))
			sums[i] += sp
			row = append(row, fmt.Sprintf("%.2f", sp))
			rep.Values[fmt.Sprintf("speedup_%s_%s", f.Name(), m)] = sp
		}
		rep.Rows = append(rep.Rows, row)
	}
	avg := []string{"AVG"}
	n := float64(len(stamp.All()))
	for i, m := range Fig4Managers {
		avg = append(avg, fmt.Sprintf("%.2f", sums[i]/n))
		rep.Values["avg_"+m] = sums[i] / n
	}
	rep.Rows = append(rep.Rows, avg)
	return rep
}

// Fig4b derives percent improvement over PTS from the Figure 4(a) data.
func Fig4b(r *Runner) *Report {
	base := Fig4a(r)
	rep := &Report{
		ID:      "fig4b",
		Title:   "Percent improvement over PTS",
		Columns: append([]string{"Benchmark"}, Fig4Managers...),
		Values:  map[string]float64{},
	}
	sums := make([]float64, len(Fig4Managers))
	for _, f := range stamp.All() {
		row := []string{f.Name()}
		pts := base.Values[fmt.Sprintf("speedup_%s_PTS", f.Name())]
		for i, m := range Fig4Managers {
			sp := base.Values[fmt.Sprintf("speedup_%s_%s", f.Name(), m)]
			imp := 100 * (sp - pts) / pts
			sums[i] += imp
			row = append(row, fmt.Sprintf("%+.1f%%", imp))
			rep.Values[fmt.Sprintf("imp_%s_%s", f.Name(), m)] = imp
		}
		rep.Rows = append(rep.Rows, row)
	}
	avg := []string{"AVG"}
	n := float64(len(stamp.All()))
	for i, m := range Fig4Managers {
		avg = append(avg, fmt.Sprintf("%+.1f%%", sums[i]/n))
		rep.Values["avgimp_"+m] = sums[i] / n
	}
	rep.Rows = append(rep.Rows, avg)
	return rep
}

// fig5Managers is the subset of managers Figure 5 breaks down.
var fig5Managers = []string{"PTS", "ATS", "BFGTS-SW", "BFGTS-HW", "BFGTS-HW/Backoff"}

// Fig5 reproduces the normalized time breakdown. Each row's categories sum
// to the benchmark's runtime normalized to single-core execution (core
// idle time is folded into Kernel, as blocked-thread time manifests there).
func Fig5(r *Runner) *Report {
	rep := &Report{
		ID:      "fig5",
		Title:   "Execution-time breakdown normalized to one-core runtime",
		Columns: []string{"Benchmark", "Manager", "NonTx", "Kernel", "Tx", "Abort", "Scheduling", "Total"},
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		base := r.Baseline(f)
		denom := float64(r.cfg.Cores) * float64(base.Makespan)
		for _, m := range fig5Managers {
			res := fig4Cell(r, f, m)
			b := res.Breakdown
			kernel := float64(b[sim.CatKernel]+b[sim.CatIdle]) / denom
			vals := []float64{
				float64(b[sim.CatNonTx]) / denom,
				kernel,
				float64(b[sim.CatTx]) / denom,
				float64(b[sim.CatAbort]) / denom,
				float64(b[sim.CatScheduling]) / denom,
			}
			total := 0.0
			row := []string{f.Name(), m}
			for _, v := range vals {
				row = append(row, fmt.Sprintf("%.3f", v))
				total += v
			}
			row = append(row, fmt.Sprintf("%.3f", total))
			rep.Rows = append(rep.Rows, row)
			rep.Values[fmt.Sprintf("kernel_%s_%s", f.Name(), m)] = kernel
			rep.Values[fmt.Sprintf("sched_%s_%s", f.Name(), m)] = vals[4]
			rep.Values[fmt.Sprintf("abort_%s_%s", f.Name(), m)] = vals[3]
		}
	}
	return rep
}

func bloomSweep(r *Runner, id, title string, mode sched.BFGTSMode) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Columns: []string{"Benchmark", "512b", "1024b", "2048b", "4096b", "8192b", "best"},
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		row := []string{f.Name()}
		bestBits, bestSp := 0, 0.0
		for _, bits := range BloomSizes {
			sp := r.Speedup(f, r.Run(f, bfgtsSpec(mode, bits, 0), false))
			row = append(row, fmt.Sprintf("%.2f", sp))
			rep.Values[fmt.Sprintf("speedup_%s_%d", f.Name(), bits)] = sp
			if sp > bestSp {
				bestSp, bestBits = sp, bits
			}
		}
		row = append(row, fmt.Sprintf("%db", bestBits))
		rep.Values[fmt.Sprintf("best_%s", f.Name())] = float64(bestBits)
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Fig6a is the BFGTS-HW Bloom-size sweep.
func Fig6a(r *Runner) *Report {
	return bloomSweep(r, "fig6a", "BFGTS-HW speedup vs Bloom filter size", sched.BFGTSHW)
}

// Fig6b is the BFGTS-HW/Backoff Bloom-size sweep.
func Fig6b(r *Runner) *Report {
	return bloomSweep(r, "fig6b", "BFGTS-HW/Backoff speedup vs Bloom filter size", sched.BFGTSHWBackoff)
}

// Sec532 sweeps the small-transaction similarity-update interval for
// BFGTS-HW and reports average improvement over PTS per interval.
func Sec532(r *Runner) *Report {
	rep := &Report{
		ID:      "sec532",
		Title:   "Average improvement over PTS vs similarity-update interval (BFGTS-HW)",
		Columns: []string{"Interval", "AvgImprovementOverPTS"},
		Values:  map[string]float64{},
	}
	for _, interval := range []int{1, 10, 20} {
		sum := 0.0
		for _, f := range stamp.All() {
			pts := r.Speedup(f, r.Run(f, BaselineSpecs()[1], false))
			// Use each benchmark's optimal Bloom size at this interval.
			best := 0.0
			for _, bits := range BloomSizes {
				sp := r.Speedup(f, r.Run(f, bfgtsSpecInterval(bits, interval), false))
				if sp > best {
					best = sp
				}
			}
			sum += 100 * (best - pts) / pts
		}
		avg := sum / float64(len(stamp.All()))
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", interval), fmt.Sprintf("%+.1f%%", avg)})
		rep.Values[fmt.Sprintf("imp_interval_%d", interval)] = avg
	}
	return rep
}

func bfgtsSpecInterval(bits, interval int) ManagerSpec {
	s := bfgtsSpec(sched.BFGTSHW, bits, interval)
	s.Name = fmt.Sprintf("%s/i%d", s.Name, interval)
	return s
}

// aliasedSpec is BFGTS-HW with static IDs folded into 2 confidence-table
// buckets — shared by AblAliasing and its warm pass so both hit one cell.
func aliasedSpec() ManagerSpec {
	return ManagerSpec{
		Name: "BFGTS-HW/alias2",
		New: func(env sched.Env) sched.Manager {
			cfg := core.DefaultConfig(env.NumThreads, env.NumStatic)
			cfg.AliasBuckets = 2
			return sched.NewBFGTS(env, sched.BFGTSHW, cfg)
		},
	}
}

// alwaysYieldSpec is BFGTS-HW with the small-transaction spin path
// disabled — shared by AblSuspend and its warm pass.
func alwaysYieldSpec() ManagerSpec {
	return ManagerSpec{
		Name: "BFGTS-HW/yield",
		New: func(env sched.Env) sched.Manager {
			cfg := core.DefaultConfig(env.NumThreads, env.NumStatic)
			cfg.SmallTxLines = 0 // nothing counts as small: always yield
			return sched.NewBFGTS(env, sched.BFGTSHW, cfg)
		},
	}
}

// AblAliasing compares BFGTS-HW with and without confidence-table
// aliasing (folding static IDs into 2 buckets), quantifying what the
// paper's future-work compression would cost.
func AblAliasing(r *Runner) *Report {
	rep := &Report{
		ID:      "abl-alias",
		Title:   "BFGTS-HW speedup: full confidence table vs 2-bucket aliasing",
		Columns: []string{"Benchmark", "Full", "Aliased", "Delta"},
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		full := r.Speedup(f, r.Run(f, bfgtsSpec(sched.BFGTSHW, 2048, 0), false))
		al := r.Speedup(f, r.Run(f, aliasedSpec(), false))
		rep.Rows = append(rep.Rows, []string{
			f.Name(), fmt.Sprintf("%.2f", full), fmt.Sprintf("%.2f", al),
			fmt.Sprintf("%+.1f%%", 100*(al-full)/full),
		})
		rep.Values["full_"+f.Name()] = full
		rep.Values["alias_"+f.Name()] = al
	}
	return rep
}

// AblSuspend compares Example 2's size-dependent spin-vs-yield policy
// against always-yield, isolating the value of the small-transaction stall
// path.
func AblSuspend(r *Runner) *Report {
	rep := &Report{
		ID:      "abl-suspend",
		Title:   "BFGTS-HW speedup: size-aware suspend (Example 2) vs always-yield",
		Columns: []string{"Benchmark", "SizeAware", "AlwaysYield", "Delta"},
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		aware := r.Speedup(f, r.Run(f, bfgtsSpec(sched.BFGTSHW, 2048, 0), false))
		yield := r.Speedup(f, r.Run(f, alwaysYieldSpec(), false))
		rep.Rows = append(rep.Rows, []string{
			f.Name(), fmt.Sprintf("%.2f", aware), fmt.Sprintf("%.2f", yield),
			fmt.Sprintf("%+.1f%%", 100*(yield-aware)/aware),
		})
		rep.Values["aware_"+f.Name()] = aware
		rep.Values["yield_"+f.Name()] = yield
	}
	return rep
}

// SortedValueKeys lists a report's value keys deterministically (test aid).
func SortedValueKeys(rep *Report) []string {
	keys := make([]string, 0, len(rep.Values))
	for k := range rep.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ReactiveSpecs are the Scherer & Scott-style reactive managers (plus the
// plain Backoff baseline) used by AblReactive.
func ReactiveSpecs() []ManagerSpec {
	return []ManagerSpec{
		{Name: "Backoff", New: func(env sched.Env) sched.Manager { return sched.NewBackoff(env) }},
		{Name: "Polite", New: func(env sched.Env) sched.Manager { return sched.NewPolite(env) }},
		{Name: "Karma", New: func(env sched.Env) sched.Manager { return sched.NewKarma(env) }},
		{Name: "Timestamp", New: func(env sched.Env) sched.Manager { return sched.NewTimestampCM(env) }},
	}
}

// AblReactive reproduces the paper's Section 1/2 framing: reactive
// contention managers fix conflicts after the fact and cannot rescue
// dense-contention benchmarks, however clever their stall heuristics; a
// proactive scheduler can. Speedups over one core, BFGTS-HW included as
// the proactive reference.
func AblReactive(r *Runner) *Report {
	specs := ReactiveSpecs()
	cols := []string{"Benchmark"}
	for _, m := range specs {
		cols = append(cols, m.Name)
	}
	cols = append(cols, "BFGTS-HW")
	rep := &Report{
		ID:      "abl-reactive",
		Title:   "Reactive stall heuristics vs proactive scheduling (speedup over one core)",
		Columns: cols,
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		row := []string{f.Name()}
		for _, m := range specs {
			sp := r.Speedup(f, r.Run(f, m, false))
			row = append(row, fmt.Sprintf("%.2f", sp))
			rep.Values[fmt.Sprintf("speedup_%s_%s", f.Name(), m.Name)] = sp
		}
		sp := r.Speedup(f, r.Run(f, bfgtsSpec(sched.BFGTSHW, 2048, 0), false))
		row = append(row, fmt.Sprintf("%.2f", sp))
		rep.Values[fmt.Sprintf("speedup_%s_BFGTS-HW", f.Name())] = sp
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// AblWarmStart measures what skipping the learning phase is worth: run
// BFGTS-HW cold, export the learned state (core.Runtime.ExportState), and
// run again with the tables pre-loaded. Gains concentrate where learning
// is expensive relative to run length (dense conflict graphs).
func AblWarmStart(r *Runner) *Report {
	rep := &Report{
		ID:      "abl-warmstart",
		Title:   "BFGTS-HW speedup: cold start vs warm-started confidence tables",
		Columns: []string{"Benchmark", "Cold", "Warm", "Delta"},
		Values:  map[string]float64{},
	}
	for _, f := range stamp.All() {
		var trained *core.State
		coldSpec := ManagerSpec{
			Name: "BFGTS-HW/cold",
			New: func(env sched.Env) sched.Manager {
				m := sched.NewBFGTS(env, sched.BFGTSHW, core.DefaultConfig(env.NumThreads, env.NumStatic))
				return &stateCapture{BFGTS: m, out: &trained}
			},
		}
		cold := r.Speedup(f, r.Run(f, coldSpec, false))
		warmSpec := ManagerSpec{
			Name: "BFGTS-HW/warm",
			New: func(env sched.Env) sched.Manager {
				m := sched.NewBFGTS(env, sched.BFGTSHW, core.DefaultConfig(env.NumThreads, env.NumStatic))
				if trained != nil {
					if err := m.Runtime().ImportState(trained); err != nil {
						panic(err)
					}
				}
				return m
			},
		}
		warm := r.Speedup(f, r.Run(f, warmSpec, false))
		rep.Rows = append(rep.Rows, []string{
			f.Name(), fmt.Sprintf("%.2f", cold), fmt.Sprintf("%.2f", warm),
			fmt.Sprintf("%+.1f%%", 100*(warm-cold)/cold),
		})
		rep.Values["cold_"+f.Name()] = cold
		rep.Values["warm_"+f.Name()] = warm
	}
	return rep
}

// stateCapture snapshots the runtime's learned state when the run ends
// (approximated by capturing on every commit; the last one wins).
type stateCapture struct {
	*sched.BFGTS
	out     **core.State
	commits int
}

// OnCommit intercepts to refresh the snapshot periodically.
func (s *stateCapture) OnCommit(tid, stx int, lines, writes []uint64, size int) int64 {
	cost := s.BFGTS.OnCommit(tid, stx, lines, writes, size)
	s.commits++
	if s.commits%512 == 0 {
		*s.out = s.BFGTS.Runtime().ExportState()
	}
	return cost
}

// scalingCores and scalingSpecs define the AblScaling sweep grid, shared
// with its warm pass.
var scalingCores = []int{1, 2, 4, 8, 16}

func scalingSpecs() []ManagerSpec {
	return []ManagerSpec{
		BaselineSpecs()[0],
		BaselineSpecs()[1],
		bfgtsSpec(sched.BFGTSHW, 2048, 0),
	}
}

// AblScaling sweeps the machine size (1..16 cores, 4 threads per core) on
// the dense-contention benchmark to show where proactive scheduling's
// advantage comes from: Backoff degrades with added cores (more concurrent
// conflicters), BFGTS keeps extracting what parallelism exists.
func AblScaling(r *Runner) *Report {
	rep := &Report{
		ID:      "abl-scaling",
		Title:   "Speedup over one core vs core count (delaunay, 4 threads/core)",
		Columns: []string{"Cores", "Backoff", "PTS", "BFGTS-HW"},
		Values:  map[string]float64{},
	}
	f, _ := stamp.ByName("delaunay")
	specs := scalingSpecs()
	base := r.Baseline(f)
	for _, cores := range scalingCores {
		row := []string{fmt.Sprintf("%d", cores)}
		for _, m := range specs {
			res := r.runAt(f, m, cores, r.cfg.ThreadsPerCore, false)
			sp := float64(base.Makespan) / float64(res.Makespan)
			row = append(row, fmt.Sprintf("%.2f", sp))
			rep.Values[fmt.Sprintf("speedup_%d_%s", cores, m.Name)] = sp
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
