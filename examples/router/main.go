// Router: a labyrinth-style grid path router on the STM — the paper's
// large-transaction regime. Each transaction validates and claims an
// entire path of grid cells, so read/write sets run to dozens of entries
// and two routes conflict exactly when their paths cross.
//
// The example routes the same batch of nets under each contention manager
// (exponential backoff, ATS, BFGTS) so the schedulers can be compared
// head-to-head on large transactions, and verifies after every run that
// the grid contains only non-overlapping paths.
//
//	go run ./examples/router
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stm"
)

const (
	gridW   = 96
	gridH   = 96
	workers = 8
	nets    = 40 // per worker
	maxSpan = 10 // nets are local: endpoints within maxSpan cells
)

func main() {
	fmt.Printf("routing %d nets (%d workers x %d) on a %dx%d grid\n\n",
		workers*nets, workers, nets, gridW, gridH)
	fmt.Printf("%-10s %8s %8s %8s %9s %11s %6s\n",
		"scheduler", "routed", "commits", "aborts", "footprint", "similarity", "ms")
	for _, kind := range []stm.SchedulerKind{stm.SchedBackoff, stm.SchedATS, stm.SchedBFGTS} {
		routeAll(kind)
	}
}

// routeAll routes the full batch of nets under one contention manager and
// verifies the resulting grid.
func routeAll(kind stm.SchedulerKind) {
	sys := stm.NewSystem(stm.Config{
		Workers:   workers,
		StaticTxs: 1,
		Scheduler: kind,
		BloomBits: 4096, // large transactions tolerate large filters (Fig. 6)
	})

	grid := make([]*stm.TVar[int], gridW*gridH)
	for i := range grid {
		grid[i] = stm.NewTVar(0) // 0 = free, otherwise net id
	}

	routed := make([][]int, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for n := 0; n < nets; n++ {
				netID := w*nets + n + 1
				// Try a few candidate paths; the transaction claims the
				// first one whose cells are all free.
				for attempt := 0; attempt < 25; attempt++ {
					path := candidatePath(rng)
					claimed := false
					_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
						for _, c := range path {
							if grid[c].Read(tx) != 0 {
								claimed = false
								return nil // blocked: try another path
							}
						}
						for _, c := range path {
							grid[c].Write(tx, netID)
						}
						claimed = true
						return nil
					})
					if claimed {
						routed[w] = append(routed[w], netID)
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify: every claimed cell belongs to exactly one net.
	cellsPerNet := map[int]int{}
	for _, g := range grid {
		if id := g.Peek(); id != 0 {
			cellsPerNet[id]++
		}
	}
	total := 0
	for w := range routed {
		total += len(routed[w])
	}
	fmt.Printf("%-10s %8d %8d %8d %9.1f %11.2f %6d\n",
		kind, total, sys.Commits(), sys.Aborts(),
		sys.AvgSize(0), sys.Similarity(0), elapsed.Milliseconds())
	if len(cellsPerNet) != total {
		panic("grid contains nets that were not reported as routed")
	}
}

// candidatePath fabricates an L-shaped path between two nearby points.
func candidatePath(rng *rand.Rand) []int {
	x1, y1 := rng.Intn(gridW-maxSpan), rng.Intn(gridH-maxSpan)
	x2, y2 := x1+1+rng.Intn(maxSpan-1), y1+1+rng.Intn(maxSpan-1)
	var path []int
	x, y := x1, y1
	for x != x2 {
		path = append(path, y*gridW+x)
		if x < x2 {
			x++
		} else {
			x--
		}
	}
	for y != y2 {
		path = append(path, y*gridW+x)
		if y < y2 {
			y++
		} else {
			y--
		}
	}
	path = append(path, y*gridW+x)
	return path
}
