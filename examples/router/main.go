// Router: a labyrinth-style grid path router on the STM — the paper's
// large-transaction regime. Each transaction validates and claims an
// entire path of grid cells, so read/write sets run to dozens of entries
// and two routes conflict exactly when their paths cross.
//
// The example routes a batch of nets on a 2-D grid, retrying crossed
// paths with a detour, and verifies that the final grid contains only
// non-overlapping paths.
//
//	go run ./examples/router
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/stm"
)

const (
	gridW   = 96
	gridH   = 96
	workers = 8
	nets    = 40 // per worker
	maxSpan = 10 // nets are local: endpoints within maxSpan cells
)

func main() {
	sys := stm.NewSystem(stm.Config{
		Workers:   workers,
		StaticTxs: 1,
		Scheduler: stm.SchedBFGTS,
		BloomBits: 4096, // large transactions tolerate large filters (Fig. 6)
	})

	grid := make([]*stm.TVar[int], gridW*gridH)
	for i := range grid {
		grid[i] = stm.NewTVar(0) // 0 = free, otherwise net id
	}

	routed := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for n := 0; n < nets; n++ {
				netID := w*nets + n + 1
				// Try a few candidate paths; the transaction claims the
				// first one whose cells are all free.
				for attempt := 0; attempt < 25; attempt++ {
					path := candidatePath(rng)
					claimed := false
					_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
						for _, c := range path {
							if grid[c].Read(tx) != 0 {
								claimed = false
								return nil // blocked: try another path
							}
						}
						for _, c := range path {
							grid[c].Write(tx, netID)
						}
						claimed = true
						return nil
					})
					if claimed {
						routed[w] = append(routed[w], netID)
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Verify: every claimed cell belongs to exactly one net.
	cellsPerNet := map[int]int{}
	for _, g := range grid {
		if id := g.Peek(); id != 0 {
			cellsPerNet[id]++
		}
	}
	total := 0
	for w := range routed {
		total += len(routed[w])
	}
	fmt.Printf("routed %d/%d nets on a %dx%d grid\n", total, workers*nets, gridW, gridH)
	fmt.Printf("distinct nets on grid: %d, commits %d, aborts %d\n",
		len(cellsPerNet), sys.Commits(), sys.Aborts())
	fmt.Printf("router transaction avg footprint: %.1f TVars, similarity %.2f\n",
		sys.Runtime().AvgSize(0), sys.Runtime().Similarity(0))
	if len(cellsPerNet) != total {
		panic("grid contains nets that were not reported as routed")
	}
}

// candidatePath fabricates an L-shaped path between two nearby points.
func candidatePath(rng *rand.Rand) []int {
	x1, y1 := rng.Intn(gridW-maxSpan), rng.Intn(gridH-maxSpan)
	x2, y2 := x1+1+rng.Intn(maxSpan-1), y1+1+rng.Intn(maxSpan-1)
	var path []int
	x, y := x1, y1
	for x != x2 {
		path = append(path, y*gridW+x)
		if x < x2 {
			x++
		} else {
			x--
		}
	}
	for y != y2 {
		path = append(path, y*gridW+x)
		if y < y2 {
			y++
		} else {
			y--
		}
	}
	path = append(path, y*gridW+x)
	return path
}
