// Queue: the high-similarity workload from the paper's motivation
// (Section 3.1's "enqueuing and dequeuing from a queue" example of
// persistent conflicts).
//
// Producers and consumers hammer one shared FIFO. Every enqueue touches
// the same tail cursor and every dequeue the same head cursor, so each
// atomic block's footprint repeats almost exactly across executions —
// similarity near one — and conflicts between concurrent dequeues are
// guaranteed to recur. This is the case where proactive serialization
// wins: BFGTS learns the self-conflict quickly and stops concurrent
// dequeues from ever starting. On a multi-core machine, compare the abort
// counts of the backoff and BFGTS runs the example performs (on one core
// goroutines rarely overlap, so both stay near zero).
//
//	go run ./examples/queue
package main

import (
	"fmt"
	"sync"

	"repro/internal/stm"
)

const (
	producers = 4
	consumers = 4
	items     = 2500 // per producer
)

// run pushes all items through the queue under one scheduler and reports
// the contention it suffered.
func run(kind stm.SchedulerKind, name string) {
	sys := stm.NewSystem(stm.Config{
		Workers:   producers + consumers,
		StaticTxs: 2, // 0 = enqueue, 1 = dequeue
		Scheduler: kind,
	})
	queue := stm.NewTVar([]int(nil))
	consumed := stm.NewTVar(0)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				item := p*items + i
				_ = sys.Atomic(p, 0, func(tx *stm.Tx) error {
					queue.Write(tx, append(queue.Read(tx), item))
					return nil
				})
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				done := false
				_ = sys.Atomic(producers+c, 1, func(tx *stm.Tx) error {
					q := queue.Read(tx)
					n := consumed.Read(tx)
					if len(q) == 0 {
						done = n >= producers*items
						return nil
					}
					queue.Write(tx, q[1:])
					consumed.Write(tx, n+1)
					return nil
				})
				if done {
					return
				}
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("%-8s consumed %d items, commits %d, aborts %d, enqueue similarity %.2f\n",
		name, consumed.Peek(), sys.Commits(), sys.Aborts(), sys.Similarity(0))
}

func main() {
	run(stm.SchedBackoff, "backoff")
	run(stm.SchedBFGTS, "bfgts")
}
