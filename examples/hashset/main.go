// Hashset: the low-similarity workload from the paper's motivation
// (Section 3.1's "inserting to a hash table" example of transient
// conflicts).
//
// Concurrent workers insert random keys into a bucketed transactional hash
// set. Each insert touches a different bucket, so two consecutive inserts
// by one worker share almost nothing — similarity is near zero — and any
// two conflicting inserts are unlikely to conflict again. A scheduler that
// over-reacts to these transient conflicts (serializing the whole insert
// block) destroys parallelism; BFGTS's similarity-weighted decay is
// designed to keep it optimistic here. The example prints the measured
// similarity so you can see the runtime classify the behavior.
//
//	go run ./examples/hashset
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/stm"
)

const (
	workers = 8
	buckets = 64
	inserts = 3000 // per worker
)

func main() {
	sys := stm.NewSystem(stm.Config{
		Workers:   workers,
		StaticTxs: 1,
		Scheduler: stm.SchedBFGTS,
	})

	set := make([]*stm.TVar[[]uint64], buckets)
	for i := range set {
		set[i] = stm.NewTVar([]uint64(nil))
	}
	size := stm.NewTVar(0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < inserts; i++ {
				key := rng.Uint64()
				b := int(key % buckets)
				_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
					chain := set[b].Read(tx)
					for _, k := range chain {
						if k == key {
							return nil // duplicate
						}
					}
					set[b].Write(tx, append(chain[:len(chain):len(chain)], key))
					size.Write(tx, size.Read(tx)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()

	count := 0
	for _, b := range set {
		count += len(b.Peek())
	}
	fmt.Printf("set size: %d (counter says %d)\n", count, size.Peek())
	fmt.Printf("commits: %d, aborts: %d\n", sys.Commits(), sys.Aborts())
	fmt.Printf("measured similarity of the insert block (worker 0): %.3f — transient conflicts\n",
		sys.Similarity(0))
	if count != size.Peek() {
		panic("size counter out of sync with buckets")
	}
}
