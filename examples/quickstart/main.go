// Quickstart: concurrent bank transfers on the BFGTS-scheduled STM.
//
// Eight goroutines shuffle money between accounts transactionally; the
// invariant (total balance) holds no matter how the transactions
// interleave, and the BFGTS scheduler keeps the abort rate low by learning
// which atomic blocks conflict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/stm"
)

const (
	workers   = 8
	accounts  = 32
	transfers = 2000 // per worker
)

func main() {
	sys := stm.NewSystem(stm.Config{
		Workers:   workers,
		StaticTxs: 1, // one atomic block: "transfer"
		Scheduler: stm.SchedBFGTS,
	})

	accts := make([]*stm.TVar[int], accounts)
	for i := range accts {
		accts[i] = stm.NewTVar(1000)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := rng.Intn(50)
				_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
					bf := accts[from].Read(tx)
					if bf < amount {
						return nil // insufficient funds: commit a no-op
					}
					accts[from].Write(tx, bf-amount)
					accts[to].Write(tx, accts[to].Read(tx)+amount)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for _, a := range accts {
		total += a.Peek()
	}
	fmt.Printf("total balance: %d (expected %d)\n", total, accounts*1000)
	fmt.Printf("commits: %d, aborts: %d (%.1f%% contention)\n",
		sys.Commits(), sys.Aborts(),
		100*float64(sys.Aborts())/float64(sys.Commits()+sys.Aborts()))
	if total != accounts*1000 {
		panic("invariant violated")
	}
}
