// Command txprofile regenerates the paper's Table 1: for each STAMP
// benchmark it runs the simulator under the Backoff manager with exact
// (Eq. 1) similarity profiling enabled and prints the observed conflict
// graph between static transactions and each transaction's measured
// similarity. It also reports the backoff contention rate (the Backoff
// column of Table 4) as a calibration aid.
//
// Usage:
//
//	txprofile [-bench name] [-cores 16] [-tpc 4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (default: all)")
	cores := flag.Int("cores", 16, "number of CPUs")
	tpc := flag.Int("tpc", 4, "threads per CPU")
	seed := flag.Uint64("seed", 1, "workload seed")
	scale := flag.Float64("scale", 1.0, "transaction-count scale factor")
	flag.Parse()

	factories := stamp.All()
	if *bench != "" {
		f, ok := stamp.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		factories = []workload.Factory{f}
	}

	for _, f := range factories {
		w := f.New(int(float64(f.Txs) * *scale))
		r := sim.NewRunner(sim.RunConfig{
			Cores:             *cores,
			ThreadsPerCore:    *tpc,
			Seed:              *seed,
			Workload:          w,
			NewManager:        func(env sched.Env) sched.Manager { return sched.NewBackoff(env) },
			ProfileSimilarity: true,
			MaxCycles:         20_000_000_000,
		})
		res := r.Run()
		printProfile(res)
	}
}

func printProfile(res *sim.Result) {
	fmt.Printf("=== %s ===\n", res.WorkloadName)
	fmt.Printf("commits %d  aborts %d  contention %.1f%%  makespan %.2f Mcyc%s\n",
		res.Commits, res.Aborts, res.ContentionPct(), float64(res.Makespan)/1e6,
		timeoutNote(res))
	fmt.Println("Tx  ConflictGraph        Similarity  Commits")
	n := len(res.ConflictMatrix)
	for s := 0; s < n; s++ {
		var peers []string
		for o := 0; o < n; o++ {
			if res.ConflictMatrix[s][o] > 0 {
				peers = append(peers, fmt.Sprintf("%d", o))
			}
		}
		fmt.Printf("%2d: %-20s %10.2f %8d\n",
			s, strings.Join(peers, " "), res.Similarity[s], res.CommitsPerStx[s])
	}
	fmt.Println()
}

func timeoutNote(res *sim.Result) string {
	if res.TimedOut {
		return "  [TIMED OUT]"
	}
	return ""
}
