// Command stmbench benchmarks the real (goroutine-based) STM head-to-head
// under each contention manager — exponential backoff, ATS, and BFGTS — on
// the canonical behaviors from the paper's motivation: a high-similarity
// hot-counter workload (persistent conflicts), a low-similarity uniform
// hash-set workload (transient conflicts), and a Zipf-skewed transfer
// workload whose head keys concentrate contention the way real caches and
// order books do.
//
// For every (workload, scheduler, worker-count) cell it reports commit
// throughput, abort rate, and per-transaction latency (mean/p50/p99 from a
// log-scaled histogram), and can emit the whole sweep as a schema-v1 JSON
// export (the same format bfgts-sim emits, verified by scripts/jsonverify).
//
// Usage:
//
//	stmbench [-workers 2,4,8] [-ops 5000] [-workloads counter,zipf]
//	         [-keys 256] [-zipf-s 1.2] [-seed 1] [-json-out FILE] [-quiet]
//	         [-cpuprofile FILE] [-decisions-out FILE] [-trace-chrome FILE]
//	         [-linear-predict]
//
// BFGTS cells additionally report the begin-time probe histograms: how
// many candidates each prediction visited (probe_len), how many Bloofi
// directory nodes it touched (probe_nodes), and how many transactions
// were running (probe_running). -linear-predict disables the Bloofi
// signature directory so predictions fall back to the linear scan over
// all worker slots — the A/B lever for the directory's probe savings.
//
// -cpuprofile writes a pprof CPU profile of the sweep; every worker
// goroutine carries pprof labels (manager, workload), so `go tool pprof
// -tagfocus manager=BFGTS` attributes samples per contention manager.
//
// -decisions-out records every live scheduling decision (optimistic
// proceed, spin/yield suspend) with wall-clock outcomes and writes the
// schema-v2 decisions JSON (units "ns"); -trace-chrome writes the same
// streams as Chrome trace_event JSON for Perfetto, one process per
// (workload, scheduler, workers) cell.
//
// Note: meaningful contention requires real hardware parallelism
// (GOMAXPROCS > 1); on a single CPU, goroutines rarely overlap.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/decision"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/stm"
)

var schedulers = []stm.SchedulerKind{stm.SchedBackoff, stm.SchedATS, stm.SchedBFGTS}

func main() {
	workersCSV := flag.String("workers", "2,4,8", "comma-separated worker counts to sweep")
	ops := flag.Int("ops", 5000, "transactions per worker per cell")
	workloadsCSV := flag.String("workloads", "counter,zipf", "comma-separated workloads: counter|hashset|zipf")
	keys := flag.Int("keys", 256, "distinct keys for the hashset and zipf workloads")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf skew exponent (>1) for the zipf workload")
	seed := flag.Uint64("seed", 1, "base seed for the per-worker key streams")
	jsonOut := flag.String("json-out", "", "write the sweep as schema-v1 JSON to this file")
	quiet := flag.Bool("quiet", false, "suppress the text tables (JSON output only)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep (labeled per manager/workload)")
	decisionsOut := flag.String("decisions-out", "", "write the live decision traces as schema-v2 JSON to this file")
	traceChrome := flag.String("trace-chrome", "", "write the live decision traces as Chrome trace_event JSON (Perfetto) to this file")
	linearPredict := flag.Bool("linear-predict", false, "disable the Bloofi signature directory in BFGTS (linear begin-time scans over all worker slots)")
	flag.Parse()

	workerCounts, err := parseWorkers(*workersCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	workloads := strings.Split(*workloadsCSV, ",")
	for _, wl := range workloads {
		if wl != "counter" && wl != "hashset" && wl != "zipf" {
			fmt.Fprintf(os.Stderr, "stmbench: unknown workload %q\n", wl)
			os.Exit(2)
		}
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "stmbench: -zipf-s must be > 1")
		os.Exit(2)
	}

	profiling := false
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		profiling = true
		defer pprof.StopCPUProfile()
	}

	record := *decisionsOut != "" || *traceChrome != ""
	var dexp *decision.Export
	var chrome decision.ChromeTrace
	if record {
		dexp = decision.NewExport()
	}
	pid := 0

	var reports []*harness.Report
	for _, wl := range workloads {
		rep := &harness.Report{
			ID:    "stm-" + wl,
			Title: fmt.Sprintf("STM contention managers on the %s workload (%d ops/worker)", wl, *ops),
			Columns: []string{"scheduler", "workers", "commits", "aborts",
				"abort_rate", "throughput_ops_s", "mean_us", "p50_us", "p99_us"},
			Values: map[string]float64{},
			Notes: []string{
				fmt.Sprintf("keys=%d zipf_s=%.2f seed=%d", *keys, *zipfS, *seed),
				"latency percentiles are log-histogram upper bounds (factor-of-2 precision)",
			},
		}
		if !*quiet {
			fmt.Printf("## %s\n", rep.Title)
			fmt.Printf("%-10s %8s %10s %10s %8s %12s %9s %9s %9s\n",
				"scheduler", "workers", "commits", "aborts", "abort%", "ops/s", "mean(us)", "p50(us)", "p99(us)")
		}
		for _, kind := range schedulers {
			for _, w := range workerCounts {
				res, set := runCell(wl, kind, w, *ops, *keys, *zipfS, *seed, record, *linearPredict)
				addRow(rep, kind, w, res)
				if !*quiet {
					printRow(kind, w, res)
				}
				if record {
					cell := fmt.Sprintf("%s/w%d", wl, w)
					dexp.AddRun(kind.String(), cell, "ns", set)
					chrome.AddRun(pid, cell+"/"+kind.String(), set)
					pid++
				}
			}
		}
		if !*quiet {
			fmt.Println()
		}
		reports = append(reports, rep)
	}

	if profiling {
		// Stop before output so error-path os.Exit cannot truncate it.
		pprof.StopCPUProfile()
		profiling = false
		if !*quiet {
			fmt.Printf("wrote %s\n", *cpuProfile)
		}
	}

	if *decisionsOut != "" {
		writeFile(*decisionsOut, dexp.EncodeJSON, *quiet)
	}
	if *traceChrome != "" {
		writeFile(*traceChrome, func(w io.Writer) error { _, err := chrome.WriteTo(w); return err }, *quiet)
	}

	if *jsonOut != "" {
		cfg := harness.Config{
			Cores:          runtime.NumCPU(),
			ThreadsPerCore: 1,
			Seed:           *seed,
			Scale:          1,
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if err := harness.NewExport(cfg, reports).EncodeJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
	}
}

// writeFile creates path, streams enc into it, and reports the write.
func writeFile(path string, enc func(io.Writer) error, quiet bool) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	if err := enc(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	if !quiet {
		fmt.Printf("wrote %s\n", path)
	}
}

func parseWorkers(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// cellResult is one (workload, scheduler, workers) measurement.
type cellResult struct {
	commits, aborts int64
	elapsed         time.Duration
	lat             stats.Histogram // per-transaction wall latency, ns

	// Begin-time probe histograms, BFGTS cells only (nil otherwise).
	// probeLen counts candidates visited per prediction; probeNodes and
	// probeRun (directory mode only) count Bloofi nodes touched and
	// transactions running at probe time.
	probeLen, probeNodes, probeRun *stats.Histogram
}

func (r *cellResult) abortRate() float64 {
	if r.commits+r.aborts == 0 {
		return 0
	}
	return float64(r.aborts) / float64(r.commits+r.aborts)
}

func (r *cellResult) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.commits) / r.elapsed.Seconds()
}

func addRow(rep *harness.Report, kind stm.SchedulerKind, workers int, r cellResult) {
	rep.Rows = append(rep.Rows, []string{
		kind.String(),
		strconv.Itoa(workers),
		strconv.FormatInt(r.commits, 10),
		strconv.FormatInt(r.aborts, 10),
		strconv.FormatFloat(r.abortRate(), 'f', 4, 64),
		strconv.FormatFloat(r.throughput(), 'f', 0, 64),
		strconv.FormatFloat(r.lat.Mean()/1e3, 'f', 1, 64),
		strconv.FormatFloat(float64(r.lat.Percentile(50))/1e3, 'f', 1, 64),
		strconv.FormatFloat(float64(r.lat.Percentile(99))/1e3, 'f', 1, 64),
	})
	key := fmt.Sprintf("%s/w%d/", kind, workers)
	rep.Values[key+"throughput_ops_s"] = r.throughput()
	rep.Values[key+"abort_rate"] = r.abortRate()
	rep.Values[key+"p99_us"] = float64(r.lat.Percentile(99)) / 1e3
	if r.probeLen != nil && r.probeLen.N() > 0 {
		rep.Values[key+"probe_len_mean"] = r.probeLen.Mean()
		rep.Values[key+"probe_len_p99"] = float64(r.probeLen.Percentile(99))
	}
	if r.probeNodes != nil && r.probeNodes.N() > 0 {
		rep.Values[key+"probe_nodes_mean"] = r.probeNodes.Mean()
	}
	if r.probeRun != nil && r.probeRun.N() > 0 {
		rep.Values[key+"probe_running_mean"] = r.probeRun.Mean()
	}
}

func printRow(kind stm.SchedulerKind, workers int, r cellResult) {
	fmt.Printf("%-10s %8d %10d %10d %7.1f%% %12.0f %9.1f %9.1f %9.1f\n",
		kind, workers, r.commits, r.aborts, 100*r.abortRate(), r.throughput(),
		r.lat.Mean()/1e3, float64(r.lat.Percentile(50))/1e3, float64(r.lat.Percentile(99))/1e3)
	if r.probeLen != nil && r.probeLen.N() > 0 {
		fmt.Printf("%-10s probe_len mean=%.2f p99=%d", "", r.probeLen.Mean(), r.probeLen.Percentile(99))
		if r.probeNodes != nil && r.probeNodes.N() > 0 {
			fmt.Printf("  nodes mean=%.2f", r.probeNodes.Mean())
		}
		if r.probeRun != nil && r.probeRun.N() > 0 {
			fmt.Printf("  running mean=%.2f", r.probeRun.Mean())
		}
		fmt.Println()
	}
}

// runCell executes one workload cell: `workers` goroutines each running
// `ops` transactions under the given contention manager, measuring the
// wall latency of every Atomic call in a per-worker histogram. With
// record set it also attaches a per-worker decision trace and returns
// the set alongside the measurement.
func runCell(workload string, kind stm.SchedulerKind, workers, ops, keys int, zipfS float64, seed uint64, record, linearPredict bool) (cellResult, *decision.Set) {
	var set *decision.Set
	if record {
		set = decision.NewSet(workers, 0)
	}
	sys := stm.NewSystem(stm.Config{Workers: workers, StaticTxs: 1, Scheduler: kind,
		Decisions: set, LinearPredict: linearPredict})

	// txFor builds the per-worker transaction stream for the workload. The
	// returned func runs one operation (one Atomic call) per invocation.
	var txFor func(w int) func()
	switch workload {
	case "counter":
		// One hot counter: every transaction conflicts with every other,
		// and consecutive transactions by one worker are near-identical
		// (the paper's high-similarity, persistent-conflict regime).
		counter := stm.NewTVar(0)
		txFor = func(w int) func() {
			return func() {
				_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
					counter.Write(tx, counter.Read(tx)+1)
					return nil
				})
			}
		}
	case "hashset":
		// Uniform single-key increments across many buckets: conflicts are
		// rare and transient (the hash-table regime of Section 3.1).
		set := newTVars(keys)
		txFor = func(w int) func() {
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)))
			return func() {
				b := rng.Intn(keys)
				_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
					set[b].Write(tx, set[b].Read(tx)+1)
					return nil
				})
			}
		}
	case "zipf":
		// Zipf-skewed transfers: each transaction moves a unit between two
		// keys drawn from a Zipf distribution, so a handful of head keys
		// see persistent conflicts while the tail stays almost private.
		accts := newTVars(keys)
		txFor = func(w int) func() {
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)))
			z := rand.NewZipf(rng, zipfS, 1, uint64(keys-1))
			return func() {
				from, to := int(z.Uint64()), int(z.Uint64())
				_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
					bf := accts[from].Read(tx)
					accts[from].Write(tx, bf-1)
					if to != from {
						accts[to].Write(tx, accts[to].Read(tx)+1)
					}
					return nil
				})
			}
		}
	}

	hists := make([]stats.Histogram, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Label the worker so -cpuprofile samples attribute to their
			// (manager, workload) cell under `go tool pprof -tagfocus`.
			labels := pprof.Labels("manager", kind.String(), "workload", workload)
			pprof.Do(context.Background(), labels, func(context.Context) {
				op := txFor(w)
				h := &hists[w]
				for i := 0; i < ops; i++ {
					t0 := time.Now()
					op()
					h.Add(time.Since(t0).Nanoseconds())
				}
			})
		}(w)
	}
	wg.Wait()

	res := cellResult{commits: sys.Commits(), aborts: sys.Aborts(), elapsed: time.Since(start)}
	for w := range hists {
		res.lat.Merge(&hists[w])
	}
	if kind == stm.SchedBFGTS {
		reg := metrics.New()
		sys.SnapshotMetrics(reg)
		res.probeLen = reg.Histogram("stm.predict.probe_len").Stats()
		res.probeNodes = reg.Histogram("stm.predict.probe_nodes").Stats()
		res.probeRun = reg.Histogram("stm.predict.probe_running").Stats()
	}
	return res, set
}

func newTVars(n int) []*stm.TVar[int] {
	vs := make([]*stm.TVar[int], n)
	for i := range vs {
		vs[i] = stm.NewTVar(0)
	}
	return vs
}
