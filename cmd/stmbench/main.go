// Command stmbench microbenchmarks the real (goroutine-based) STM under
// each contention manager, on the two canonical behaviors from the paper's
// motivation: a low-similarity hash-set insert workload (transient
// conflicts) and a high-similarity hot-counter workload (persistent
// conflicts).
//
// Usage:
//
//	stmbench [-workers 8] [-ops 20000] [-workload counter|hashset|mixed]
//
// Note: meaningful contention requires real hardware parallelism
// (GOMAXPROCS > 1); on a single CPU, goroutines rarely overlap.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stm"
)

func main() {
	workers := flag.Int("workers", 8, "concurrent workers")
	ops := flag.Int("ops", 20000, "operations per worker")
	workload := flag.String("workload", "mixed", "counter | hashset | mixed")
	flag.Parse()

	kinds := []struct {
		kind stm.SchedulerKind
		name string
	}{
		{stm.SchedBackoff, "Backoff"},
		{stm.SchedATS, "ATS"},
		{stm.SchedBFGTS, "BFGTS-SW"},
	}

	fmt.Printf("%-10s %-10s %10s %10s %10s %12s\n",
		"workload", "scheduler", "ops", "aborts", "cont%", "throughput")
	for _, k := range kinds {
		switch *workload {
		case "counter":
			report("counter", k.name, runCounter(k.kind, *workers, *ops))
		case "hashset":
			report("hashset", k.name, runHashset(k.kind, *workers, *ops))
		default:
			report("counter", k.name, runCounter(k.kind, *workers, *ops))
			report("hashset", k.name, runHashset(k.kind, *workers, *ops))
		}
	}
}

type outcome struct {
	commits, aborts int64
	elapsed         time.Duration
}

func report(workload, scheduler string, o outcome) {
	cont := 0.0
	if o.commits+o.aborts > 0 {
		cont = 100 * float64(o.aborts) / float64(o.commits+o.aborts)
	}
	fmt.Printf("%-10s %-10s %10d %10d %9.1f%% %9.0f/ms\n",
		workload, scheduler, o.commits, o.aborts, cont,
		float64(o.commits)/float64(o.elapsed.Milliseconds()+1))
}

// runCounter hammers one hot counter: persistent self-conflict.
func runCounter(kind stm.SchedulerKind, workers, ops int) outcome {
	sys := stm.NewSystem(stm.Config{Workers: workers, StaticTxs: 1, Scheduler: kind})
	counter := stm.NewTVar(0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
					counter.Write(tx, counter.Read(tx)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	return outcome{sys.Commits(), sys.Aborts(), time.Since(start)}
}

// runHashset inserts random keys into many buckets: transient conflicts.
func runHashset(kind stm.SchedulerKind, workers, ops int) outcome {
	const buckets = 128
	sys := stm.NewSystem(stm.Config{Workers: workers, StaticTxs: 1, Scheduler: kind})
	set := make([]*stm.TVar[int], buckets)
	for i := range set {
		set[i] = stm.NewTVar(0)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				b := rng.Intn(buckets)
				_ = sys.Atomic(w, 0, func(tx *stm.Tx) error {
					set[b].Write(tx, set[b].Read(tx)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	return outcome{sys.Commits(), sys.Aborts(), time.Since(start)}
}
