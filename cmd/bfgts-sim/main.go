// Command bfgts-sim runs the paper's experiments on the simulator and
// prints the regenerated tables and figure data.
//
// Usage:
//
//	bfgts-sim -list
//	bfgts-sim -exp fig4a [-cores 16] [-tpc 4] [-seed 1] [-scale 1.0]
//	bfgts-sim -exp all [-parallel 8] [-seeds 5] [-quiet]
//	bfgts-sim -exp speedup -json-out results.json        (machine-readable)
//	bfgts-sim -bench intruder -manager BFGTS-HW -bloom 2048   (single run)
//	bfgts-sim -bench intruder -metrics-out metrics.json  (scheduler internals)
//	bfgts-sim -bench intruder -decisions-out dec.json -trace-chrome dec.trace.json
//	bfgts-sim -bench intruder -replay 16                 (counterfactual regret)
//
// Independent simulation cells fan out over a worker pool (-parallel,
// default one slot per CPU); output is byte-identical to -parallel 1.
// Progress lines stream to stderr unless -quiet is set.
//
// -json-out writes the full experiment matrix (every report, including
// per-cell speedup values) as schema-versioned JSON; -metrics-out attaches
// a metrics registry to a single run and writes its final snapshot.
//
// -decisions-out records every scheduling decision (serialize-vs-proceed
// at begin, stall-vs-abort on NACK) with its predictor inputs and settled
// outcome, and writes the schema-v2 decisions JSON; -trace-chrome writes
// the same stream as Chrome trace_event JSON for Perfetto. -replay N
// re-runs the window once per sampled begin decision with that decision
// inverted and prints each decision's exact counterfactual regret.
//
// -cpuprofile and -memprofile write pprof profiles covering the simulation
// itself (profiling starts after flag parsing and the memory profile is
// captured just before exit), for feeding `go tool pprof` when hunting
// hot-path regressions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	exp := flag.String("exp", "", "experiment id (or 'all')")
	bench := flag.String("bench", "", "single run: benchmark name")
	manager := flag.String("manager", "BFGTS-HW", "single run: manager name")
	bloom := flag.Int("bloom", 2048, "single run: Bloom filter bits for BFGTS variants")
	cores := flag.Int("cores", 16, "number of CPUs")
	tpc := flag.Int("tpc", 4, "threads per CPU")
	seed := flag.Uint64("seed", 1, "workload seed")
	scale := flag.Float64("scale", 1.0, "transaction-count scale factor")
	traceFile := flag.String("trace", "", "single run: write a JSONL event trace to this file")
	metricsOut := flag.String("metrics-out", "", "single run: write the scheduler-internals metrics snapshot (JSON) to this file")
	decisionsOut := flag.String("decisions-out", "", "single run: write the decision trace (schema-v2 JSON) to this file")
	traceChrome := flag.String("trace-chrome", "", "single run: write the decision trace as Chrome trace_event JSON (Perfetto) to this file")
	replay := flag.Int("replay", 0, "single run: counterfactually replay up to N begin decisions inverted and print exact regret")
	jsonOut := flag.String("json-out", "", "experiment run: write all reports as schema-versioned JSON to this file")
	seeds := flag.Int("seeds", 1, "run the experiment across this many seeds and report mean±sd")
	parallel := flag.Int("parallel", 0, "max simulations in flight (0 = all CPUs, 1 = serial)")
	noBatch := flag.Bool("no-batch", false, "disable horizon-batched execution (legacy per-access events; identical output, slower)")
	noBloofi := flag.Bool("no-bloofi", false, "disable the Bloofi signature directory (linear begin-time scans; identical output, slower at high core counts)")
	shards := flag.Int("shards", 1, "split each simulation into this many synchronized engine/directory shards (identical output at any count)")
	quiet := flag.Bool("quiet", false, "suppress per-simulation progress lines on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := harness.Config{Cores: *cores, ThreadsPerCore: *tpc, Seed: *seed, Scale: *scale, Workers: *parallel, NoBatch: *noBatch, NoBloofi: *noBloofi, Shards: *shards}
	if !*quiet {
		var mu sync.Mutex
		done := 0
		cfg.Progress = func(line string) {
			mu.Lock()
			done++
			fmt.Fprintf(os.Stderr, "[%4d] %s\n", done, line)
			mu.Unlock()
		}
	}
	r := harness.NewRunner(cfg)

	if *bench != "" {
		singleRun(cfg, *bench, *manager, *bloom, *traceFile, *metricsOut,
			*decisionsOut, *traceChrome, *replay)
		return
	}

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "need -exp, -bench or -list; see -h")
		os.Exit(2)
	}
	var reports []*harness.Report
	if *exp == "all" {
		if *seeds > 1 {
			// Every experiment goes through the multi-seed aggregator —
			// -seeds used to be silently ignored on the 'all' path.
			for _, e := range harness.Experiments() {
				reports = append(reports, harness.MultiSeed(e, cfg, *seeds))
			}
		} else {
			reports = harness.RunAll(r, harness.Experiments())
		}
	} else {
		e, ok := harness.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		if *seeds > 1 {
			reports = []*harness.Report{harness.MultiSeed(e, cfg, *seeds)}
		} else {
			reports = harness.RunAll(r, []harness.Experiment{e})
		}
	}
	for _, rep := range reports {
		fmt.Println(rep.Render())
	}
	if *jsonOut != "" {
		writeExport(cfg, reports, *jsonOut)
	}
}

// writeExport saves the session's reports as schema-versioned JSON.
func writeExport(cfg harness.Config, reports []*harness.Report, path string) {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer out.Close()
	if err := harness.NewExport(cfg, reports).EncodeJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("json: %d report(s) -> %s\n", len(reports), path)
}

func singleRun(cfg harness.Config, bench, manager string, bloom int, traceFile, metricsOut, decisionsOut, traceChrome string, replay int) {
	r := harness.NewRunner(cfg)
	f, ok := stamp.ByName(bench)
	if !ok {
		if bench == "wide" {
			f, ok = harness.WideFactory(cfg.Cores, cfg.ThreadsPerCore), true
		} else {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", bench)
			os.Exit(1)
		}
	}
	spec, ok := specByName(manager, bloom)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown manager %q\n", manager)
		os.Exit(1)
	}
	var rec *trace.Recorder
	if traceFile != "" {
		rec = &trace.Recorder{Cap: 4 << 20}
	}
	var reg *metrics.Registry
	if metricsOut != "" {
		reg = metrics.New()
	}
	res := r.RunInstrumented(f, spec, rec, reg)
	fmt.Printf("%s on %s: speedup %.2fx over one core, contention %.1f%%\n",
		res.ManagerName, res.WorkloadName, r.Speedup(f, res), res.ContentionPct())
	if rec != nil {
		out, err := os.Create(traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := rec.WriteJSONL(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s -> %s\n", rec.Summary(), traceFile)
	}
	if res.Metrics != nil {
		out, err := os.Create(metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := res.Metrics.EncodeJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics: %d instrument(s) -> %s\n", len(res.Metrics.Keys()), metricsOut)
	}
	if decisionsOut != "" || traceChrome != "" {
		_, set := r.RunDecisions(f, spec)
		g := decision.Estimate(set.Merge())
		fmt.Printf("decisions: %d recorded (%d dropped), serialize rate %.1f%%, regret %.2f Mcycles (over %.2f / under %.2f)\n",
			g.Decisions, set.Dropped(), 100*g.SerializeRate(),
			float64(g.Total())/1e6, float64(g.OvercautionCycles)/1e6, float64(g.UndercautionCycles)/1e6)
		if decisionsOut != "" {
			e := decision.NewExport()
			e.AddRun(spec.Name, f.Name(), "cycles", set)
			writeTo(decisionsOut, e.EncodeJSON)
			fmt.Printf("decisions: schema v%d -> %s\n", decision.SchemaVersion, decisionsOut)
		}
		if traceChrome != "" {
			var c decision.ChromeTrace
			c.AddRun(0, f.Name()+"/"+spec.Name, set)
			writeTo(traceChrome, func(w io.Writer) error { _, err := c.WriteTo(w); return err })
			fmt.Printf("chrome trace -> %s (open in ui.perfetto.dev)\n", traceChrome)
		}
	}
	if replay > 0 {
		rr := r.ReplayFlips(f, spec, replay)
		fmt.Printf("replay: %d decision(s) inverted against base makespan %.2f Mcycles\n",
			len(rr.Flips), float64(rr.Base.Makespan)/1e6)
		for _, fl := range rr.Flips {
			fmt.Printf("  begin #%-6d tid %-3d tx%-2d %-7s (%s)  regret %+.3f Mcycles\n",
				fl.BeginIndex, fl.Tid, fl.Stx, fl.Choice, fl.Outcome,
				float64(fl.Regret)/1e6)
		}
	}
	fmt.Printf("commits %d  aborts %d  makespan %.2f Mcycles\n",
		res.Commits, res.Aborts, float64(res.Makespan)/1e6)
	b := res.Breakdown
	total := float64(b.Total())
	for _, c := range []sim.Category{sim.CatNonTx, sim.CatKernel, sim.CatTx, sim.CatAbort, sim.CatScheduling, sim.CatIdle} {
		pct := 0.0
		if total > 0 { // an empty breakdown used to print NaN% everywhere
			pct = 100 * float64(b[c]) / total
		}
		fmt.Printf("  %-11s %5.1f%%\n", c, pct)
	}
	fmt.Printf("attempts per committed execution: mean %.2f max %.0f\n",
		res.AttemptsPerCommit.Mean(), res.AttemptsPerCommit.Max())
	for s := range res.Latency {
		h := &res.Latency[s]
		if h.N() == 0 {
			continue
		}
		fmt.Printf("  tx%d latency: mean %.0f cyc, p50 <= %d, p99 <= %d  [%s]\n",
			s, h.Mean(), h.Percentile(50), h.Percentile(99), h.Sparkline())
	}
}

// writeTo creates path and streams enc into it, exiting on failure.
func writeTo(path string, enc func(io.Writer) error) {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer out.Close()
	if err := enc(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func specByName(name string, bloom int) (harness.ManagerSpec, bool) {
	for _, m := range harness.BaselineSpecs() {
		if m.Name == name {
			return m, true
		}
	}
	if name == "Backoff-PT" {
		return harness.PerThreadBackoffSpec(), true
	}
	modes := map[string]sched.BFGTSMode{
		"BFGTS-SW":         sched.BFGTSSW,
		"BFGTS-HW":         sched.BFGTSHW,
		"BFGTS-HW/Backoff": sched.BFGTSHWBackoff,
		"BFGTS-NoOverhead": sched.BFGTSNoOverhead,
	}
	mode, ok := modes[name]
	if !ok {
		return harness.ManagerSpec{}, false
	}
	return harness.ManagerSpec{
		Name: name,
		New: func(env sched.Env) sched.Manager {
			cfg := core.DefaultConfig(env.NumThreads, env.NumStatic)
			cfg.BloomBits = bloom
			return sched.NewBFGTS(env, mode, cfg)
		},
	}, true
}
