// Command bfgtsvet is the repo's static-analysis gate: a go vet tool
// running the internal/analysis suite (determinism, allocfree, pinpair,
// metricshoist, atomicfield, lockorder, seqlock, spsc, shardsafe,
// directives) over the module.
//
// Usage:
//
//	go build -o /tmp/bfgtsvet ./cmd/bfgtsvet
//	go vet -vettool=/tmp/bfgtsvet ./...
//
// or, equivalently, `bfgtsvet ./...`, which re-execs go vet with itself as
// the vet tool. `bfgtsvet -json ./...` emits one JSON object per finding
// for CI annotation tooling. scripts/check.sh runs the text mode before
// the test phase so analyzer findings fail fast. See
// internal/analysis/README.md for the analyzer contracts and the
// //bfgts: directive reference.
package main

import "repro/internal/analysis"

func main() {
	analysis.VetMain()
}
