// Command jsonverify round-trips a bfgts-sim -json-out file back through
// the harness.Export schema and fails if it does not parse, carries the
// wrong schema version, or is structurally empty. check.sh runs it against
// a freshly generated export so schema drift breaks the gate, not a
// downstream consumer.
//
// Usage: go run ./scripts/jsonverify FILE
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonverify FILE")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err.Error())
	}
	var e harness.Export
	if err := json.Unmarshal(data, &e); err != nil {
		fatal("parse: " + err.Error())
	}
	if e.SchemaVersion != harness.ExportSchemaVersion {
		fatal(fmt.Sprintf("schema_version %d, want %d", e.SchemaVersion, harness.ExportSchemaVersion))
	}
	if len(e.Reports) == 0 {
		fatal("no reports")
	}
	for _, rep := range e.Reports {
		if rep.ID == "" {
			fatal("report with empty id")
		}
		if len(rep.Columns) == 0 || len(rep.Rows) == 0 {
			fatal("report " + rep.ID + ": empty columns or rows")
		}
		for _, row := range rep.Rows {
			if len(row) != len(rep.Columns) {
				fatal(fmt.Sprintf("report %s: row width %d != %d columns", rep.ID, len(row), len(rep.Columns)))
			}
		}
	}
	// Re-encode and re-parse: the export must survive its own round trip.
	out, err := json.Marshal(&e)
	if err != nil {
		fatal("re-encode: " + err.Error())
	}
	var again harness.Export
	if err := json.Unmarshal(out, &again); err != nil {
		fatal("re-parse: " + err.Error())
	}
	fmt.Printf("ok: %s (%d reports, schema v%d)\n", os.Args[1], len(e.Reports), e.SchemaVersion)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "jsonverify: "+msg)
	os.Exit(1)
}
