// Command jsonverify validates the repo's machine-readable JSON outputs
// and fails if one does not parse, carries the wrong schema version, or
// is structurally broken. check.sh runs it against freshly generated
// files so schema drift breaks the gate, not a downstream consumer.
//
// It dispatches on document shape:
//
//   - a "kind":"decisions" document (bfgts-sim/stmbench -decisions-out)
//     is validated against the internal/decision schema-v2 invariants
//     and must survive its own encode/parse round trip;
//   - a document with "traceEvents" (-trace-chrome output) is checked
//     for Chrome trace_event well-formedness: known phases, non-negative
//     timestamps, named metadata;
//   - anything else is a harness reports export (schema v1).
//
// Usage: go run ./scripts/jsonverify FILE
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/decision"
	"repro/internal/harness"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonverify FILE")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err.Error())
	}

	// Peek at the discriminating fields without committing to a schema.
	var probe struct {
		Kind        string           `json:"kind"`
		TraceEvents *json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		fatal("parse: " + err.Error())
	}
	switch {
	case probe.Kind == decision.ExportKind:
		verifyDecisions(data)
	case probe.TraceEvents != nil:
		verifyChrome(data)
	default:
		verifyReports(data)
	}
}

// verifyReports gates the harness schema-v1 experiment export.
func verifyReports(data []byte) {
	var e harness.Export
	if err := json.Unmarshal(data, &e); err != nil {
		fatal("parse: " + err.Error())
	}
	if e.SchemaVersion != harness.ExportSchemaVersion {
		fatal(fmt.Sprintf("schema_version %d, want %d", e.SchemaVersion, harness.ExportSchemaVersion))
	}
	if len(e.Reports) == 0 {
		fatal("no reports")
	}
	for _, rep := range e.Reports {
		if rep.ID == "" {
			fatal("report with empty id")
		}
		if len(rep.Columns) == 0 || len(rep.Rows) == 0 {
			fatal("report " + rep.ID + ": empty columns or rows")
		}
		for _, row := range rep.Rows {
			if len(row) != len(rep.Columns) {
				fatal(fmt.Sprintf("report %s: row width %d != %d columns", rep.ID, len(row), len(rep.Columns)))
			}
		}
	}
	// Re-encode and re-parse: the export must survive its own round trip.
	out, err := json.Marshal(&e)
	if err != nil {
		fatal("re-encode: " + err.Error())
	}
	var again harness.Export
	if err := json.Unmarshal(out, &again); err != nil {
		fatal("re-parse: " + err.Error())
	}
	fmt.Printf("ok: %s (%d reports, schema v%d)\n", os.Args[1], len(e.Reports), e.SchemaVersion)
}

// verifyDecisions gates the internal/decision schema-v2 export: the
// package's own Validate invariants plus an encode/parse round trip.
func verifyDecisions(data []byte) {
	var e decision.Export
	if err := json.Unmarshal(data, &e); err != nil {
		fatal("parse: " + err.Error())
	}
	if err := e.Validate(); err != nil {
		fatal("validate: " + err.Error())
	}
	var buf bytes.Buffer
	if err := e.EncodeJSON(&buf); err != nil {
		fatal("re-encode: " + err.Error())
	}
	var again decision.Export
	if err := json.Unmarshal(buf.Bytes(), &again); err != nil {
		fatal("re-parse: " + err.Error())
	}
	if err := again.Validate(); err != nil {
		fatal("re-validate: " + err.Error())
	}
	records := 0
	for i := range e.Runs {
		records += len(e.Runs[i].Records)
	}
	fmt.Printf("ok: %s (%d decision runs, %d records, schema v%d)\n",
		os.Args[1], len(e.Runs), records, e.SchemaVersion)
}

// verifyChrome smoke-checks a Chrome trace_event JSON Object Format
// document: every event has a known phase and a non-negative timestamp,
// and metadata events carry args.
func verifyChrome(data []byte) {
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal("parse: " + err.Error())
	}
	if doc.TraceEvents == nil {
		fatal("traceEvents is null, want an array")
	}
	known := map[string]bool{"X": true, "i": true, "M": true, "B": true, "E": true, "C": true}
	for i, ev := range doc.TraceEvents {
		if !known[ev.Ph] {
			fatal(fmt.Sprintf("event %d: unknown phase %q", i, ev.Ph))
		}
		if ev.Name == "" {
			fatal(fmt.Sprintf("event %d: empty name", i))
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			fatal(fmt.Sprintf("event %d: negative ts/dur", i))
		}
		if ev.Ph == "M" && len(ev.Args) == 0 {
			fatal(fmt.Sprintf("metadata event %d has no args", i))
		}
	}
	fmt.Printf("ok: %s (%d trace events)\n", os.Args[1], len(doc.TraceEvents))
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "jsonverify: "+msg)
	os.Exit(1)
}
