#!/bin/sh
# Regenerates BENCH_1.json: the speedup experiment (Figure 4a matrix) at a
# pinned configuration, exported through the schema-versioned JSON path.
# The file is deterministic — same seed, same scale, byte-identical across
# runs and across -parallel settings — so diffs against the committed copy
# are real result changes, not noise.
#
# Usage: ./scripts/bench.sh [-scale 0.1] [-out BENCH_1.json] [-shards N]
#
# -shards N runs every simulation through the sharded engine; the output
# is byte-identical to a sequential run by contract (BENCH_5.json is
# recorded with -shards 4 and committed equal to BENCH_4.json as the
# artifact-level proof).
set -eu
cd "$(dirname "$0")/.."

scale=0.1
out=BENCH_1.json
shards=1
while [ $# -gt 0 ]; do
	case "$1" in
	-scale) scale="$2"; shift 2 ;;
	-out) out="$2"; shift 2 ;;
	-shards) shards="$2"; shift 2 ;;
	*) echo "usage: $0 [-scale S] [-out FILE] [-shards N]" >&2; exit 2 ;;
	esac
done

go run ./cmd/bfgts-sim -exp speedup -seed 1 -scale "$scale" -shards "$shards" -quiet -json-out "$out" >/dev/null
go run ./scripts/jsonverify "$out"
