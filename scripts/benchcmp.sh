#!/bin/sh
# Records the hot-path benchmark suite to a file, or compares two recorded
# files side by side. Use it around a perf change:
#
#	./scripts/benchcmp.sh record /tmp/before.txt
#	... apply the change ...
#	./scripts/benchcmp.sh record /tmp/after.txt
#	./scripts/benchcmp.sh diff /tmp/before.txt /tmp/after.txt
#
# The suite is the three microbenchmarks gated by the zero-alloc tests
# (transaction lifecycle, event churn, Eq. 3 estimate) plus BenchmarkFig4a,
# the end-to-end figure-regeneration run. The diff is a plain side-by-side
# of matching benchmark lines — no external tooling (benchstat) required.
set -eu
cd "$(dirname "$0")/.."

benches='BenchmarkTxLifecycle|BenchmarkEngineChurn|BenchmarkEq3Estimate|BenchmarkFig4a'

usage() {
	echo "usage: $0 record FILE | diff BEFORE AFTER" >&2
	exit 2
}

[ $# -ge 1 ] || usage
mode=$1
shift
case "$mode" in
record)
	[ $# -eq 1 ] || usage
	out=$1
	go test -run=NONE -bench="$benches" -benchtime=3x -count=1 \
		./internal/tm/ ./internal/sim/ ./internal/bloom/ . |
		grep -E '^(Benchmark|PASS|ok)' | tee "$out"
	;;
diff)
	[ $# -eq 2 ] || usage
	before=$1
	after=$2
	echo "--- before: $before"
	echo "--- after:  $after"
	for name in $(grep -oE '^Benchmark[A-Za-z0-9]+' "$before" | sort -u); do
		echo "$name"
		grep "^$name" "$before" | sed 's/^/  before /'
		grep "^$name" "$after" | sed 's/^/  after  /' || echo "  after  (missing)"
	done
	;;
*)
	usage
	;;
esac
