#!/bin/sh
# Repo gate: vet, build, and the full test suite under the race detector.
# The harness fans simulations out across goroutines, so -race here is
# what keeps future PRs honest about cache/pool concurrency.
#
# Usage: ./scripts/check.sh [-short]   (-short skips the slowest sweeps)
set -eu
cd "$(dirname "$0")/.."
set -x
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
go vet ./...
go build ./...
# Static-analysis gate: build the repo's own vet tool and run the analyzer
# suite (determinism, allocfree, pinpair, metricshoist, atomicfield,
# lockorder, seqlock, spsc, shardsafe, directives) over the module.
# See internal/analysis/README.md for the contracts and //bfgts: directives.
go build -o "$workdir/bfgtsvet" ./cmd/bfgtsvet
go vet -vettool="$workdir/bfgtsvet" ./...
# Concurrency lane: the partitioned-shard differentials and the AtomicTree
# stress tests under the race detector — short mode, fresh run (-count=1 so
# the cache never absorbs a flake), and a hard timeout, so a protocol
# regression surfaces here in seconds even when the full suite below is
# trimmed with -short.
go test -race -short -count=1 -timeout 300s \
	-run 'TestEntangledShardedMatchesSequential|TestPartitionedWideMatchesSequential|TestPartitionedRaceStress|TestShardBarrierRace|TestShardRingSPSC' \
	./internal/sim/
go test -race -short -count=1 -timeout 300s \
	-run 'TestAtomicTreeMatchesTree|TestAtomicTreeRepairNoStaleBits|TestAtomicTreeConcurrentStress' \
	./internal/bloofi/
go test -race "$@" ./...
# Machine-readable output round trip: generate a small export and parse it
# back through the schema.
tmp="$workdir/export.json"
go run ./cmd/bfgts-sim -exp speedup -seed 1 -scale 0.02 -quiet -json-out "$tmp" >/dev/null
go run ./scripts/jsonverify "$tmp"
# Bloofi differential gate: the same experiment cell with the signature
# directory disabled (-no-bloofi) must be byte-identical — the directory
# is a host-side index, never a result change. The randomized in-process
# differential is TestBloofiMatchesLinear; this catches CLI-level drift.
bloofitmp="$workdir/export-linear.json"
go run ./cmd/bfgts-sim -exp speedup -seed 1 -scale 0.02 -quiet -no-bloofi -json-out "$bloofitmp" >/dev/null
cmp "$tmp" "$bloofitmp"
# Sharding differential gate: the same experiment cell split across 4
# engine shards must also be byte-identical — sharding is a host-side
# execution strategy, never a result change. The randomized in-process
# differentials are TestEntangledShardedMatchesSequential and
# TestPartitionedWideMatchesSequential; this catches CLI-level drift.
shardtmp="$workdir/export-sharded.json"
go run ./cmd/bfgts-sim -exp speedup -seed 1 -scale 0.02 -quiet -shards 4 -json-out "$shardtmp" >/dev/null
cmp "$tmp" "$shardtmp"
# STM smoke: a tiny stmbench sweep must run all three contention managers
# and emit an export that passes the same schema gate.
stmtmp="$workdir/stm.json"
go run ./cmd/stmbench -workers 2 -ops 200 -workloads counter,zipf -quiet -json-out "$stmtmp"
go run ./scripts/jsonverify "$stmtmp"
# Decision-trace round trip: a small single run must emit a schema-v2
# decisions document and a well-formed Chrome trace, both passing the
# jsonverify dispatch (it routes on document shape).
dectmp="$workdir/decisions.json"
chrometmp="$workdir/decisions.trace.json"
go run ./cmd/bfgts-sim -bench intruder -scale 0.02 -quiet \
	-decisions-out "$dectmp" -trace-chrome "$chrometmp" >/dev/null
go run ./scripts/jsonverify "$dectmp"
go run ./scripts/jsonverify "$chrometmp"
# Bench smoke: compile and run each hot-path microbenchmark once. The
# paired Test*AllocFree tests already gate the 0 allocs/op contract; this
# catches benchmarks that rot until release time.
go test -run=NONE -bench='BenchmarkTxLifecycle|BenchmarkEngineChurn|BenchmarkEq3Estimate|BenchmarkSTMContended$|BenchmarkTreeProbe|BenchmarkAtomicTreeProbe|BenchmarkBFGTSPredict' \
	-benchtime=1x ./internal/tm/ ./internal/sim/ ./internal/bloom/ ./internal/stm/ ./internal/bloofi/ ./internal/sched/ >/dev/null
go test -run=NONE -bench='BenchmarkWideSharded' -benchtime=1x . >/dev/null
# Fig4a wall-clock gate: the end-to-end figure run must stay within 15% of
# the committed baseline, so batching-path regressions fail here instead of
# rotting. The baseline is machine-specific — on other hardware either
# refresh scripts/fig4a_baseline.txt or set SKIP_FIG4A_GATE=1.
if [ -z "${SKIP_FIG4A_GATE:-}" ]; then
	baseline=$(grep -v '^#' scripts/fig4a_baseline.txt)
	nsop=$(go test -run=NONE -bench='^BenchmarkFig4a$' -benchtime=1x . |
		awk '/^BenchmarkFig4a/ {print $3; exit}')
	awk -v base="$baseline" -v got="$nsop" 'BEGIN {
		limit = base * 1.15
		printf "fig4a gate: %.0f ns/op vs baseline %.0f (limit %.0f)\n", got, base, limit
		exit got > limit ? 1 : 0
	}' || { echo "BenchmarkFig4a regressed >15% vs scripts/fig4a_baseline.txt" >&2; exit 1; }
fi
