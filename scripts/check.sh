#!/bin/sh
# Repo gate: vet, build, and the full test suite under the race detector.
# The harness fans simulations out across goroutines, so -race here is
# what keeps future PRs honest about cache/pool concurrency.
#
# Usage: ./scripts/check.sh [-short]   (-short skips the slowest sweeps)
set -eu
cd "$(dirname "$0")/.."
set -x
go vet ./...
go build ./...
go test -race "$@" ./...
