#!/bin/sh
# Repo gate: vet, build, and the full test suite under the race detector.
# The harness fans simulations out across goroutines, so -race here is
# what keeps future PRs honest about cache/pool concurrency.
#
# Usage: ./scripts/check.sh [-short]   (-short skips the slowest sweeps)
set -eu
cd "$(dirname "$0")/.."
set -x
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go build ./...
go test -race "$@" ./...
# Machine-readable output round trip: generate a small export and parse it
# back through the schema.
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go run ./cmd/bfgts-sim -exp speedup -seed 1 -scale 0.02 -quiet -json-out "$tmp" >/dev/null
go run ./scripts/jsonverify "$tmp"
# Bench smoke: compile and run each hot-path microbenchmark once. The
# paired Test*AllocFree tests already gate the 0 allocs/op contract; this
# catches benchmarks that rot until release time.
go test -run=NONE -bench='BenchmarkTxLifecycle|BenchmarkEngineChurn|BenchmarkEq3Estimate' \
	-benchtime=1x ./internal/tm/ ./internal/sim/ ./internal/bloom/ >/dev/null
