// Package repro's top-level benchmarks regenerate each table and figure of
// the paper at a reduced scale (so `go test -bench=.` stays tractable) and
// report the headline numbers as benchmark metrics:
//
//	BenchmarkTable1 — conflict graphs + similarity (reports delaunay tx3 sim)
//	BenchmarkTable4 — contention rates (reports delaunay Backoff %)
//	BenchmarkFig4a  — speedups (reports BFGTS-HW average)
//	BenchmarkFig4b  — improvement over PTS (reports BFGTS-HW average %)
//	BenchmarkFig5   — time breakdowns (reports ATS delaunay kernel share)
//	BenchmarkFig6a/b — Bloom-size sweeps (report labyrinth 8192b speedup)
//	BenchmarkSec532 — similarity-interval sweep (reports interval-20 gain)
//	BenchmarkAblations — aliasing and suspend-policy ablations
//
// For full-scale numbers use: go run ./cmd/bfgts-sim -exp all
package repro

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchConfig is the reduced scale used for benchmarks.
func benchConfig() harness.Config {
	cfg := harness.DefaultConfig()
	cfg.Scale = 0.12
	return cfg
}

func runExperiment(b *testing.B, id string, metric func(*harness.Report) (float64, string)) {
	b.Helper()
	exp, ok := harness.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		rep := exp.Run(harness.NewRunner(benchConfig()))
		if metric != nil {
			v, name := metric(rep)
			b.ReportMetric(v, name)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", func(r *harness.Report) (float64, string) {
		return r.Values["sim_delaunay_3"], "delaunay-tx3-similarity"
	})
}

func BenchmarkTable4(b *testing.B) {
	runExperiment(b, "table4", func(r *harness.Report) (float64, string) {
		return r.Values["cont_delaunay_Backoff"], "delaunay-backoff-contention-%"
	})
}

func BenchmarkFig4a(b *testing.B) {
	runExperiment(b, "fig4a", func(r *harness.Report) (float64, string) {
		return r.Values["avg_BFGTS-HW"], "bfgts-hw-avg-speedup"
	})
}

func BenchmarkFig4b(b *testing.B) {
	runExperiment(b, "fig4b", func(r *harness.Report) (float64, string) {
		return r.Values["avgimp_BFGTS-HW"], "bfgts-hw-avg-improvement-%"
	})
}

func BenchmarkFig5(b *testing.B) {
	runExperiment(b, "fig5", func(r *harness.Report) (float64, string) {
		return r.Values["kernel_delaunay_ATS"], "ats-delaunay-kernel-share"
	})
}

func BenchmarkFig6a(b *testing.B) {
	runExperiment(b, "fig6a", func(r *harness.Report) (float64, string) {
		return r.Values["speedup_labyrinth_8192"], "bfgts-hw-labyrinth-8192b-speedup"
	})
}

func BenchmarkFig6b(b *testing.B) {
	runExperiment(b, "fig6b", func(r *harness.Report) (float64, string) {
		return r.Values["speedup_labyrinth_8192"], "hybrid-labyrinth-8192b-speedup"
	})
}

func BenchmarkSec532(b *testing.B) {
	runExperiment(b, "sec532", func(r *harness.Report) (float64, string) {
		return r.Values["imp_interval_20"], "interval20-improvement-%"
	})
}

func BenchmarkAblationAliasing(b *testing.B) {
	runExperiment(b, "abl-alias", nil)
}

// benchRunAll regenerates the whole registry through the parallel engine
// at a given pool width; compare the serial and parallel variants to see
// the wall-clock win on your host (identical output is asserted by
// TestParallelMatchesSerial, so these differ only in scheduling).
func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	cfg := benchConfig()
	cfg.Scale = 0.05
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		reps := harness.RunAll(harness.NewRunner(cfg), harness.Experiments())
		if len(reps) == 0 || reps[0] == nil {
			b.Fatal("RunAll returned no reports")
		}
	}
}

func BenchmarkRunAllSerial(b *testing.B)   { benchRunAll(b, 1) }
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, 0) }

func BenchmarkAblationSuspendPolicy(b *testing.B) {
	runExperiment(b, "abl-suspend", nil)
}

// BenchmarkFig4aSharded regenerates Figure 4a with every simulation split
// into 4 entangled shards (stamp workloads have no shard partition, so this
// exercises the shared-clock lane driver). Output is byte-identical to the
// unsharded run — this benchmark prices the entanglement overhead against
// BenchmarkFig4a.
func BenchmarkFig4aSharded(b *testing.B) {
	exp, ok := harness.ExperimentByID("fig4a")
	if !ok {
		b.Fatal("fig4a experiment missing")
	}
	cfg := benchConfig()
	cfg.Shards = 4
	for i := 0; i < b.N; i++ {
		rep := exp.Run(harness.NewRunner(cfg))
		b.ReportMetric(rep.Values["avg_BFGTS-HW"], "bfgts-hw-avg-speedup")
	}
}

// BenchmarkWideSharded sweeps the shard count on a 256-core, 100k-transaction
// wide simulation under the shard-safe manager — the fully-partitioned path.
// The simulated result is identical at every shard count (pinned by
// TestPartitionedWideMatchesSequential); what changes is host wall-clock:
// each lane owns a small event heap whose horizon covers only its own
// cores, so horizon batching coalesces far more work per event and heap
// operations shrink, on top of any goroutine parallelism the host offers.
func BenchmarkWideSharded(b *testing.B) {
	for _, shards := range []int{1, 4, 16, 64, 128} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Setup (thread contexts, machines, directories) is
				// identical at every shard count; time only the run.
				b.StopTimer()
				r := sim.NewRunner(sim.RunConfig{
					Cores:          256,
					ThreadsPerCore: 4,
					Seed:           1,
					Workload:       workload.NewWide(256, 4, 100_000),
					NewManager:     func(env sched.Env) sched.Manager { return sched.NewPerThreadBackoff(env) },
					MaxCycles:      2_000_000_000_000,
					Shards:         shards,
				})
				b.StartTimer()
				res := r.Run()
				if res.TimedOut {
					b.Fatal("wide simulation timed out")
				}
				b.ReportMetric(float64(res.Makespan), "sim-cycles")
			}
		})
	}
}
